"""E15 -- ablation of the reuse model (Questions 1.1, 1.2, 1.3).

The paper's central modelling choice is that resources are reused *along
source-to-sink paths*.  This ablation runs the same greedy allocator under
the three accounting models (no reuse, global reuse, path reuse) and the
LP-based path-reuse algorithm on identical instances, showing where the
models separate:

* on chains, path reuse matches global reuse and dominates no-reuse by up to
  the chain length;
* on wide fork-joins all models coincide (nothing can be reused);
* on pipelines of fork-joins path reuse sits strictly between the two.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.engine import solve
from repro.generators import get_workload

from bench_common import emit

WORKLOADS = ["deep-chain-binary", "matmul-like", "pipeline", "medium-layered-binary"]


def test_reuse_model_ablation(benchmark):
    workload = get_workload("pipeline")
    dag = workload.build()
    benchmark(lambda: solve(dag=dag, budget=workload.budget, method="greedy-path-reuse",
                            use_cache=False))

    rows = []
    for name in WORKLOADS:
        workload = get_workload(name)
        dag = workload.build()
        budget = workload.budget
        base = dag.makespan_value({})
        no_reuse = solve(dag=dag, budget=budget, method="greedy-no-reuse")
        global_reuse = solve(dag=dag, budget=budget, method="greedy-global-reuse")
        path_reuse = solve(dag=dag, budget=budget, method="greedy-path-reuse")
        lp = solve(dag=dag, budget=budget, method="bicriteria-lp", alpha=0.5)
        rows.append([name, budget, base, no_reuse.makespan, global_reuse.makespan,
                     path_reuse.makespan, lp.makespan])
    emit("E15 / ablation -- reuse model (Question 1.1 vs 1.2 vs 1.3) under a fixed budget",
         format_table(["workload", "budget", "no resource", "greedy no-reuse (Q1.1)",
                       "greedy global reuse (Q1.2)", "greedy path reuse (Q1.3)",
                       "LP bi-criteria (Q1.3)"], rows))

    by_name = {row[0]: row for row in rows}
    chain = by_name["deep-chain-binary"]
    # on a chain, path reuse is at least as good as no reuse
    assert chain[5] <= chain[3] + 1e-9
    # on a pure fork-join the three greedy models coincide
    fork = by_name["matmul-like"]
    assert fork[3] == pytest.approx(fork[5])
