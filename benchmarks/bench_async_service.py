"""E18 -- the async serving front: concurrent clients vs serialized sweeps.

The sweep service (E17) serves one batch at a time: a burst of N client
requests is N blocking ``SweepService.run`` calls, one after another, and
scenarios shared between concurrently-arriving clients are recomputed (or
at best re-fetched) once per client.  The asyncio front
(:class:`repro.AsyncSweepService`) overlaps the burst on one warm pool and
deduplicates *in flight*: a hot scenario requested by every client in the
burst is solved exactly once, while it is still being solved.

The workload models that burst: each client submits one private scenario
plus the shared hot set (mixed duration families and shapes).  Both
strategies get the *same* configuration -- one warm process pool, no
persistent store (the serving layer itself is what is measured) -- and the
benchmark asserts

* **wall-clock** -- N concurrent clients through the async front finish
  faster than the same N batches through serialized ``SweepService.run``;
* **work elimination** -- the async front computes each unique scenario
  exactly once (the serialized front computes every slot of every batch);
* **dedup accounting** -- every hot repeat is answered by tier-0 in-flight
  dedup.

Run standalone:  python benchmarks/bench_async_service.py [--quick] [--json PATH]
"""

from __future__ import annotations

import asyncio
import sys
import time

from repro import (
    AsyncSweepService,
    MinMakespanProblem,
    Portfolio,
    SweepService,
    clear_caches,
)
from repro.analysis import format_table
from repro.generators import get_workload

from bench_common import emit, parse_json_flag, write_json_artifact

HOT_NAMES = ["medium-layered-general", "medium-layered-binary",
             "medium-layered-kway", "pipeline", "small-layered-general",
             "small-layered-binary"]
CLIENTS = 10
QUICK_HOT = HOT_NAMES[:4]
QUICK_CLIENTS = 6

METHOD = "bicriteria-lp"
OPTIONS = {"alpha": 0.5}
WORKERS = 2


def build_client_batches(hot_names, clients):
    """One batch per client: a private budget variant + the shared hot set."""
    hot = [MinMakespanProblem(get_workload(name).build(), get_workload(name).budget)
           for name in hot_names]
    batches = []
    for index in range(clients):
        workload = get_workload(hot_names[index % len(hot_names)])
        private = MinMakespanProblem(workload.build(),
                                     workload.budget * (1.11 + 0.07 * index))
        batches.append([private] + hot)
    return batches


def _warmup_problem():
    workload = get_workload("small-layered-kway")
    return MinMakespanProblem(workload.build(), workload.budget * 0.77)


def run_serialized(batches):
    """N blocking ``SweepService.run`` calls on one warm pool (the baseline)."""
    with Portfolio(executor="process", max_workers=WORKERS) as portfolio:
        portfolio.map([_warmup_problem()], method=METHOD, **OPTIONS)
        clear_caches()
        with SweepService(portfolio=portfolio) as service:
            start = time.perf_counter()
            computed = 0
            for batch in batches:
                report = service.run(batch, METHOD, **OPTIONS)
                computed += report.stats.computed
            wall = time.perf_counter() - start
    return wall, computed


async def _run_concurrent(batches):
    service = AsyncSweepService(
        portfolio=Portfolio(executor="process", max_workers=WORKERS))
    async with service:
        await service.solve(_warmup_problem(), METHOD, **OPTIONS)
        clear_caches()
        computed_before = service.stats.computed
        start = time.perf_counter()

        async def client(batch):
            ticket = await service.submit(batch, METHOD, **OPTIONS)
            return await ticket.results()

        results = await asyncio.gather(*[client(batch) for batch in batches])
        wall = time.perf_counter() - start
    stats = service.stats
    return wall, stats.computed - computed_before, stats, results


def run_async_front(batches):
    """The same burst through one :class:`AsyncSweepService` (concurrently)."""
    return asyncio.run(_run_concurrent(batches))


def run_comparison(hot_names, clients):
    batches = build_client_batches(hot_names, clients)
    unique = len(hot_names) + clients
    t_serialized, serialized_computed = run_serialized(batches)
    t_async, async_computed, async_stats, results = run_async_front(batches)

    # both strategies must agree on every scenario's answer
    reference = {}
    for client_results in results:
        for result in client_results:
            assert result.report is not None, result.error
            previous = reference.setdefault(result.key, result.report.makespan)
            assert abs(previous - result.report.makespan) < 1e-9

    return {
        "clients": clients,
        "batch_size": 1 + len(hot_names),
        "requests": clients * (1 + len(hot_names)),
        "unique": unique,
        "t_serialized": t_serialized,
        "t_async": t_async,
        "speedup": t_serialized / t_async,
        "serialized_computed": serialized_computed,
        "async_computed": async_computed,
        "async_deduped": async_stats.deduped,
        "async_store_hits": async_stats.store_hits,
    }


def render_comparison(stats) -> str:
    rows = [
        ["serialized SweepService.run x N",
         f"{stats['t_serialized'] * 1000:.0f}", "1.00",
         str(stats["serialized_computed"])],
        ["AsyncSweepService (concurrent clients)",
         f"{stats['t_async'] * 1000:.0f}", f"{stats['speedup']:.2f}",
         str(stats["async_computed"])],
    ]
    header = (f"{stats['clients']} concurrent clients x "
              f"{stats['batch_size']} scenarios "
              f"({stats['unique']} unique of {stats['requests']} requests; "
              f"tier-0 dedup answered {stats['async_deduped']})")
    return header + "\n\n" + format_table(
        ["strategy", "wall time (ms)", "speedup", "scenarios computed"], rows)


def check(stats) -> bool:
    hot = stats["batch_size"] - 1
    return (stats["t_async"] < stats["t_serialized"]
            and stats["async_computed"] == stats["unique"]
            and stats["serialized_computed"] == stats["requests"]
            and stats["async_deduped"] == (stats["clients"] - 1) * hot)


# ---------------------------------------------------------------------------
# pytest entry points (run in CI with --benchmark-disable)
# ---------------------------------------------------------------------------

def test_async_front_beats_serialized_sweeps(benchmark):
    stats = run_comparison(QUICK_HOT, QUICK_CLIENTS)
    emit("E18 / async serving front -- concurrent clients vs serialized sweeps",
         render_comparison(stats))
    assert stats["t_async"] < stats["t_serialized"], (
        f"async front ({stats['t_async'] * 1000:.0f}ms) must beat "
        f"{stats['clients']} serialized SweepService.run calls "
        f"({stats['t_serialized'] * 1000:.0f}ms)")
    assert stats["async_computed"] == stats["unique"], \
        "the async front must compute each unique scenario exactly once"
    assert stats["serialized_computed"] == stats["requests"]
    benchmark(lambda: stats["speedup"])


def test_inflight_dedup_computes_each_unique_once():
    batches = build_client_batches(QUICK_HOT[:2], 3)
    _, computed, stats, _results = run_async_front(batches)
    assert computed == len(QUICK_HOT[:2]) + 3
    # every hot repeat was answered while its solve was still in flight
    assert stats.deduped == (3 - 1) * len(QUICK_HOT[:2])
    assert stats.failed == 0


# ---------------------------------------------------------------------------
# standalone mode
# ---------------------------------------------------------------------------

def main(argv) -> int:
    quick = "--quick" in argv
    json_path = parse_json_flag(
        argv, "bench_async_service.py [--quick] [--json PATH]")

    hot_names = QUICK_HOT if quick else HOT_NAMES
    clients = QUICK_CLIENTS if quick else CLIENTS

    stats = run_comparison(hot_names, clients)
    print(render_comparison(stats))

    ok = check(stats)
    print(f"\nasync front beats serialized sweeps with exact in-flight "
          f"dedup: {ok}")

    if json_path:
        write_json_artifact(json_path, {
            "benchmark": "bench_async_service",
            "quick": quick,
            "clients": stats["clients"],
            "requests": stats["requests"],
            "unique": stats["unique"],
            "t_serialized_s": stats["t_serialized"],
            "t_async_s": stats["t_async"],
            "speedup": stats["speedup"],
            "serialized_computed": stats["serialized_computed"],
            "async_computed": stats["async_computed"],
            "async_deduped": stats["async_deduped"],
            "ok": ok,
        })
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
