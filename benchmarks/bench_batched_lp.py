"""E18 -- batched LP kernels: shared model skeletons vs per-scenario rebuild.

The serving stack funnels scenario sweeps into shards whose scenarios share
one DAG and differ only in the budget.  Before the batched kernel layer,
every scenario rebuilt the LP from scratch -- relaxed arcs, index maps,
sparse constraint matrices, bounds, cost vectors -- even though only the
budget row's RHS differs.  This benchmark measures the elimination on a
same-DAG budget sweep through the bi-criteria LP pipeline:

* **per-scenario rebuild** -- the historical path: a fresh
  :class:`~repro.core.lp.LPModelSkeleton` per scenario (N builds, N solves);
* **shard-batched skeletons** -- :func:`repro.engine.batch.solve_lp_batch`
  with the engine's cached-skeleton backend: the shard groups by DAG
  fingerprint, probes the structure once, builds ONE skeleton and drives it
  across every budget (1 build, N solves).

The gate is **machine-independent**: the kernel work counters
(:func:`~repro.core.lp.lp_kernel_counters`,
:func:`repro.engine.batch.batch_kernel_info`) must show exactly one
skeleton build and one structure probe for the batched sweep, an N-build
rebuild sweep, a >= 3x build-elimination ratio, and bit-identical
makespans between the two paths.  Wall-clock speedup is reported for
humans but never gated on.

Run standalone:  python benchmarks/bench_batched_lp.py [--quick] [--json PATH]
"""

from __future__ import annotations

import sys
import time

from repro import MinMakespanProblem, clear_caches, solve_lp_batch
from repro.analysis import format_table
from repro.core.bicriteria import solve_min_makespan_bicriteria
from repro.core.lp import lp_kernel_counters
from repro.engine.batch import batch_kernel_info
from repro.engine.structure import analyze_dag
from repro.generators import get_workload

from bench_common import emit, parse_json_flag, write_json_artifact

WORKLOAD = "medium-layered-general"
BUDGET_FACTORS = [0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0, 2.5, 3.0, 4.0, 5.0]
QUICK_FACTORS = BUDGET_FACTORS[:6]
ALPHA = 0.5


def build_sweep(factors):
    workload = get_workload(WORKLOAD)
    dag = workload.build()
    budgets = [workload.budget * factor for factor in factors]
    return dag, budgets


def run_rebuild(dag, budgets):
    """The historical per-scenario path: one fresh LP model per budget.

    Transforms are precomputed once (the pre-batching engine already
    memoized those); only the LP model construction is per scenario --
    exactly what the skeleton layer eliminates.
    """
    clear_caches()
    structure = analyze_dag(dag)
    transforms = (structure.arc_form()[0], structure.arc_form()[1],
                  structure.expansion())
    start = time.perf_counter()
    solutions = [solve_min_makespan_bicriteria(structure.dag, budget, ALPHA,
                                               transforms=transforms)
                 for budget in budgets]
    wall = time.perf_counter() - start
    return solutions, lp_kernel_counters(), wall


def run_batched(dag, budgets):
    """The shard path: group by fingerprint, one skeleton, N RHS swaps."""
    clear_caches()
    problems = [MinMakespanProblem(dag, budget) for budget in budgets]
    start = time.perf_counter()
    results = solve_lp_batch(problems, method="bicriteria-lp",
                             options={"alpha": ALPHA})
    wall = time.perf_counter() - start
    assert all(error is None for _report, error in results), results
    reports = [report for report, _error in results]
    return reports, batch_kernel_info(), wall


def run_comparison(factors):
    dag, budgets = build_sweep(factors)
    rebuild_solutions, rebuild_counters, t_rebuild = run_rebuild(dag, budgets)
    batched_reports, batched_info, t_batched = run_batched(dag, budgets)

    identical = all(
        report.makespan == solution.makespan
        and report.budget_used == solution.budget_used
        for report, solution in zip(batched_reports, rebuild_solutions))

    lp = batched_info["lp"]
    structure = batched_info["structure"]
    # Every scenario after a group's first is served a prebuilt skeleton,
    # via the identity fast path or the content-fingerprint LRU.
    skeleton_cache_hits = (batched_info["skeleton_identity"]["hits"]
                           + batched_info["skeletons"]["hits"])
    return {
        "scenarios": len(budgets),
        "rebuild_skeleton_builds": rebuild_counters["skeleton_builds"],
        "rebuild_skeleton_solves": rebuild_counters["skeleton_solves"],
        "batched_skeleton_builds": lp["skeleton_builds"],
        "batched_skeleton_solves": lp["skeleton_solves"],
        "batched_skeleton_cache_hits": skeleton_cache_hits,
        "batched_probe_runs": structure["probe_runs"],
        "identity_hits": structure["identity_hits"],
        "work_elimination": (rebuild_counters["skeleton_builds"]
                             / max(lp["skeleton_builds"], 1)),
        "identical": identical,
        "t_rebuild_s": t_rebuild,
        "t_batched_s": t_batched,
    }


#: The machine-independent acceptance conditions, shared by the standalone
#: gate and the pytest entry point so the two can never diverge.
GATE_CONDITIONS = [
    ("skeleton path matches the scalar path bit for bit",
     lambda s: s["identical"]),
    ("batched sweep builds exactly one skeleton",
     lambda s: s["batched_skeleton_builds"] == 1),
    ("batched sweep runs one LP solve per scenario",
     lambda s: s["batched_skeleton_solves"] == s["scenarios"]),
    ("every scenario after the first is served a cached skeleton",
     lambda s: s["batched_skeleton_cache_hits"] == s["scenarios"] - 1),
    ("rebuild path builds one model per scenario",
     lambda s: s["rebuild_skeleton_builds"] == s["scenarios"]),
    ("batched sweep probes the shared DAG exactly once",
     lambda s: s["batched_probe_runs"] == 1),
    ("model-build elimination is at least 3x",
     lambda s: s["work_elimination"] >= 3.0),
]


def gate(stats) -> bool:
    """The machine-independent acceptance predicate (counters only)."""
    return all(condition(stats) for _label, condition in GATE_CONDITIONS)


def render(stats) -> str:
    n = stats["scenarios"]
    rows = [
        ["per-scenario rebuild", str(stats["rebuild_skeleton_builds"]),
         str(stats["rebuild_skeleton_solves"]),
         f"{stats['t_rebuild_s'] * 1000:.0f}", "1.00"],
        ["shard-batched skeleton", str(stats["batched_skeleton_builds"]),
         str(stats["batched_skeleton_solves"]),
         f"{stats['t_batched_s'] * 1000:.0f}",
         f"{stats['t_rebuild_s'] / max(stats['t_batched_s'], 1e-9):.2f}"],
    ]
    header = (f"{n}-budget sweep over one '{WORKLOAD}' DAG "
              f"(identical makespans: {stats['identical']}); "
              f"model-build elimination: {stats['work_elimination']:.0f}x, "
              f"structure probes in the batched sweep: "
              f"{stats['batched_probe_runs']}")
    return header + "\n\n" + format_table(
        ["strategy", "model builds", "LP solves", "wall time (ms)",
         "speedup vs rebuild"], rows)


# ---------------------------------------------------------------------------
# pytest entry points (run in CI with --benchmark-disable)
# ---------------------------------------------------------------------------

def test_batched_skeletons_eliminate_model_rebuilds(benchmark):
    stats = run_comparison(QUICK_FACTORS)
    emit("E18 / batched LP kernels -- shared skeletons vs per-scenario rebuild",
         render(stats))
    for label, condition in GATE_CONDITIONS:
        assert condition(stats), f"{label} (stats: {stats})"

    dag, budgets = build_sweep(QUICK_FACTORS)
    problems = [MinMakespanProblem(dag, budget) for budget in budgets]

    def batched_sweep():
        clear_caches()
        return solve_lp_batch(problems, method="bicriteria-lp",
                              options={"alpha": ALPHA})

    benchmark(batched_sweep)


# ---------------------------------------------------------------------------
# standalone mode
# ---------------------------------------------------------------------------

def main(argv) -> int:
    quick = "--quick" in argv
    json_path = parse_json_flag(
        argv, "bench_batched_lp.py [--quick] [--json PATH]")

    factors = QUICK_FACTORS if quick else BUDGET_FACTORS
    stats = run_comparison(factors)
    print(render(stats))
    ok = gate(stats)
    print(f"\nshard-batched skeletons beat per-scenario rebuild on "
          f"work counters (>=3x build elimination, 1 probe, identical "
          f"results): {ok}")

    if json_path:
        write_json_artifact(json_path, {
            "benchmark": "bench_batched_lp",
            "quick": quick,
            "scenarios": stats["scenarios"],
            "rebuild_skeleton_builds": stats["rebuild_skeleton_builds"],
            "rebuild_skeleton_solves": stats["rebuild_skeleton_solves"],
            "batched_skeleton_builds": stats["batched_skeleton_builds"],
            "batched_skeleton_solves": stats["batched_skeleton_solves"],
            "batched_skeleton_cache_hits": stats["batched_skeleton_cache_hits"],
            "batched_probe_runs": stats["batched_probe_runs"],
            "work_elimination": stats["work_elimination"],
            "identical": stats["identical"],
            "t_rebuild_s": stats["t_rebuild_s"],
            "t_batched_s": stats["t_batched_s"],
            "ok": ok,
        })
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
