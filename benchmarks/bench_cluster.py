"""E20 -- the 3-runner cluster: routing affinity, store safety, parity.

The cluster (:mod:`repro.cluster`) must be a pure *where* change: moving
a sweep from one :class:`~repro.engine.async_service.AsyncSweepService`
to N consistent-hash-routed runners over one shared store may change
which process answers, never the answers.  Three phases, all gated on
machine-independent counters (wall clock is recorded, never gated):

* **parity** -- a single-runner sweep warms a store; a 3-runner cluster
  sweep over the *same* root must return bit-identical ``(key, report)``
  payloads (every cell a store hit), with routing affinity 1.0 (every
  cell answered by its ring-primary runner) and zero re-routes.
* **traffic** -- the seeded loadgen schedule replays against the cluster
  (cold shared store, three runners writing concurrently).  The
  aggregated dedup ratio must equal a single runner's on the identical
  schedule -- consistent-hash routing keeps each unique cell on one
  runner, so cluster-wide dedup loses nothing -- and the aggregated
  store counters must show zero lock timeouts, zero corruption and zero
  stale takeovers.
* **failover** -- a runner dies mid-fleet; the re-routed sweep must
  still deliver every cell (store-backed recovery) and the loss must be
  visible in the router stats, not in the results.

Run standalone:  python benchmarks/bench_cluster.py [--quick] [--json PATH]
"""

from __future__ import annotations

import asyncio
import json
import sys
import tempfile

from repro import Portfolio, clear_caches
from repro.cluster import ClusterClient, LocalCluster
from repro.engine import set_solution_store
from repro.engine.async_service import AsyncSweepService
from repro.engine.store import report_to_payload
from repro.loadgen import build_schedule, run_load
from repro.scenarios import Axis, ScenarioGrid
from repro.serve import SweepServer

from bench_common import emit, parse_json_flag, write_json_artifact

RUNNERS = 3
REQUESTS = 300
QUICK_REQUESTS = 60
RATE = 200.0
SKEW = 1.2
SEED = 0

GRID = ScenarioGrid(
    generators=({"generator": "fork-join",
                 "params": {"width": Axis([2, 3, 4]), "work": Axis([4, 8])}},),
    budget_rules=(("makespan-factor", 0.5), ("makespan-factor", 0.75)),
)


def _fresh_state():
    clear_caches()
    set_solution_store(None)


def run_parity_phase():
    """Single-runner sweep, then a cluster sweep over the same warm store."""
    with tempfile.TemporaryDirectory(prefix="bench-cluster-") as tmp:
        store_root = f"{tmp}/store"

        async def single():
            service = AsyncSweepService(
                store=store_root,
                portfolio=Portfolio(executor="thread", max_workers=2))
            async with service:
                ticket = await service.submit_specs(GRID)
                return await ticket.results()

        _fresh_state()
        expected = [(r.key, report_to_payload(r.report, r.key))
                    for r in asyncio.run(single())]

        async def clustered():
            async with LocalCluster(RUNNERS,
                                    store_root=store_root) as cluster:
                client = ClusterClient(cluster.addresses())
                results = await client.sweep_specs(GRID)
                return results, client.stats

        _fresh_state()
        results, stats = asyncio.run(clustered())

    got = [(r["key"], r["report"]) for r in results]
    return {
        "bit_identical": (json.dumps(got, sort_keys=True)
                          == json.dumps(expected, sort_keys=True)),
        "store_sourced": sum(r["source"] == "store" for r in results),
        "cells": stats.cells,
        "affinity": round(stats.affinity(), 6),
        "reroutes": stats.reroutes,
        "answering_runners": len({r["runner"] for r in results}),
    }


def _load_once(schedule, *, cluster_size):
    """One loadgen replay: against a cluster, or one plain server."""

    async def clustered():
        async with LocalCluster(cluster_size) as cluster:
            return await run_load(schedule, GRID,
                                  cluster=cluster.addresses(),
                                  time_scale=0.0)

    async def single():
        with tempfile.TemporaryDirectory(prefix="bench-cluster-") as tmp:
            service = AsyncSweepService(
                store=f"{tmp}/store",
                portfolio=Portfolio(executor="thread", max_workers=2))
            async with SweepServer(service,
                                   unix_socket=f"{tmp}/sweep.sock") as server:
                return await run_load(schedule, GRID,
                                      unix_socket=server.unix_socket,
                                      time_scale=0.0)

    _fresh_state()
    return asyncio.run(clustered() if cluster_size else single())


def run_traffic_phase(requests: int):
    """Identical seeded schedule against the cluster and a single runner."""
    schedule = build_schedule("poisson", rate=RATE, count=requests,
                              num_cells=GRID.size(), skew=SKEW, seed=SEED)
    cluster_report = _load_once(schedule, cluster_size=RUNNERS)
    single_report = _load_once(schedule, cluster_size=0)
    store = cluster_report.snapshot["store"]
    cluster_metrics = cluster_report.machine_independent()
    single_metrics = single_report.machine_independent()
    return {
        "requests": cluster_metrics["requests"],
        "delivered": cluster_metrics["delivered"],
        "unique_cells": cluster_metrics["unique_cells"],
        "dedup_ratio": cluster_metrics["dedup_ratio"],
        "cells_solved": cluster_metrics["cells_solved"],
        "single_dedup_ratio": single_metrics["dedup_ratio"],
        "dedup_matches_single": (cluster_metrics["dedup_ratio"]
                                 == single_metrics["dedup_ratio"]),
        "reconciled": (cluster_metrics["reconciled"]
                       and single_metrics["reconciled"]),
        "lock_timeouts": store["lock_timeouts"],
        "corrupt_shards": store["corrupt_shards"],
        "stale_locks_recovered": store["stale_locks_recovered"],
        "reporting_runners": len(cluster_report.snapshot["runners"]),
        "wall_s": cluster_report.wall_s,
        "latency_ms": cluster_report.latency_ms,
    }


def run_failover_phase():
    """Kill one runner between sweeps; the re-route must deliver all cells."""

    async def body():
        async with LocalCluster(RUNNERS) as cluster:
            client = ClusterClient(cluster.addresses(), request_timeout=60.0)
            warm = await client.sweep_specs(GRID)
            cluster.kill(warm[0]["runner"])
            again = await client.sweep_specs(GRID)
            return warm, again, client.stats, len(client.healthy)

    _fresh_state()
    warm, again, stats, healthy = asyncio.run(body())
    return {
        "delivered_after_kill": sum(r["report"] is not None for r in again),
        "keys_stable": [r["key"] for r in warm] == [r["key"] for r in again],
        "store_recovered": sum(r["source"] == "store" for r in again),
        "failover_reroutes": stats.reroutes,
        "healthy_after_kill": healthy,
    }


def run_comparison(requests: int):
    stats = {"runners": RUNNERS, "grid_cells": GRID.size()}
    stats.update(run_parity_phase())
    stats.update(run_traffic_phase(requests))
    stats.update(run_failover_phase())
    return stats


def check(stats) -> bool:
    return (stats["bit_identical"]
            and stats["store_sourced"] == stats["grid_cells"]
            # the acceptance gate: >= 95% affinity, achieved exactly
            and stats["affinity"] >= 0.95
            and stats["reroutes"] == 0
            # store safety under three concurrent writer runners
            and stats["lock_timeouts"] == 0
            and stats["corrupt_shards"] == 0
            and stats["stale_locks_recovered"] == 0
            and stats["dedup_matches_single"]
            and stats["reconciled"]
            and stats["reporting_runners"] == RUNNERS
            # failover: every cell still answered, from the shared store
            and stats["delivered_after_kill"] == stats["grid_cells"]
            and stats["keys_stable"]
            and stats["store_recovered"] == stats["grid_cells"]
            and stats["failover_reroutes"] > 0
            and stats["healthy_after_kill"] == RUNNERS - 1)


def render(stats) -> str:
    return "\n".join([
        f"parity:   {stats['cells']} cells over {stats['runners']} runners; "
        f"bit-identical to single runner: {stats['bit_identical']} "
        f"({stats['store_sourced']} store hits, affinity "
        f"{stats['affinity']:.3f}, {stats['reroutes']} re-routes, "
        f"{stats['answering_runners']} runners answering)",
        f"traffic:  {stats['delivered']}/{stats['requests']} delivered, "
        f"dedup {stats['dedup_ratio']:.4f} vs single-runner "
        f"{stats['single_dedup_ratio']:.4f} (match: "
        f"{stats['dedup_matches_single']}); store counters -- "
        f"lock_timeouts={stats['lock_timeouts']} "
        f"corrupt_shards={stats['corrupt_shards']} "
        f"stale={stats['stale_locks_recovered']}",
        f"failover: killed 1/{stats['runners']} runners; "
        f"{stats['delivered_after_kill']}/{stats['grid_cells']} cells "
        f"delivered ({stats['store_recovered']} from the shared store, "
        f"{stats['failover_reroutes']} re-routed), keys stable: "
        f"{stats['keys_stable']}",
    ])


# ---------------------------------------------------------------------------
# pytest entry points (run in CI with --benchmark-disable)
# ---------------------------------------------------------------------------

def test_cluster_parity_affinity_and_store_safety(benchmark):
    stats = run_comparison(QUICK_REQUESTS)
    emit("E20 / 3-runner cluster -- parity, affinity, store safety",
         render(stats))
    assert check(stats), stats
    benchmark(lambda: stats["affinity"])


# ---------------------------------------------------------------------------
# standalone mode
# ---------------------------------------------------------------------------

def main(argv) -> int:
    quick = "--quick" in argv
    json_path = parse_json_flag(
        argv, "bench_cluster.py [--quick] [--json PATH]")

    stats = run_comparison(QUICK_REQUESTS if quick else REQUESTS)
    print(render(stats))

    ok = check(stats)
    print(f"\ncluster bit-identical, affine, store-safe, failover-clean: {ok}")

    if json_path:
        write_json_artifact(json_path, {
            "benchmark": "bench_cluster",
            "quick": quick,
            "runners": stats["runners"],
            "grid_cells": stats["grid_cells"],
            "bit_identical": stats["bit_identical"],
            "store_sourced": stats["store_sourced"],
            "affinity": stats["affinity"],
            "reroutes": stats["reroutes"],
            "requests": stats["requests"],
            "delivered": stats["delivered"],
            "unique_cells": stats["unique_cells"],
            "dedup_ratio": stats["dedup_ratio"],
            "single_dedup_ratio": stats["single_dedup_ratio"],
            "dedup_matches_single": stats["dedup_matches_single"],
            "reconciled": stats["reconciled"],
            "lock_timeouts": stats["lock_timeouts"],
            "corrupt_shards": stats["corrupt_shards"],
            "stale_locks_recovered": stats["stale_locks_recovered"],
            "reporting_runners": stats["reporting_runners"],
            "delivered_after_kill": stats["delivered_after_kill"],
            "keys_stable": stats["keys_stable"],
            "store_recovered": stats["store_recovered"],
            "failover_reroutes": stats["failover_reroutes"],
            "healthy_after_kill": stats["healthy_after_kill"],
            # recorded for the curious, never gated (machine-dependent)
            "latency_p50_ms": stats["latency_ms"]["p50"],
            "latency_p95_ms": stats["latency_ms"]["p95"],
            "wall_s": stats["wall_s"],
            "ok": ok,
        })
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
