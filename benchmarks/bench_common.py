"""Shared artifact-printing helper for the benchmark harness."""

from __future__ import annotations


def emit(title: str, body: str) -> None:
    """Print a clearly delimited artifact block (collected into EXPERIMENTS.md)."""
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)
    print(body)
