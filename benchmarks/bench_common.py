"""Shared artifact helpers for the benchmark harness."""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional


def emit(title: str, body: str) -> None:
    """Print a clearly delimited artifact block (collected into EXPERIMENTS.md)."""
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)
    print(body)


def parse_json_flag(argv: List[str], usage: str) -> Optional[str]:
    """The PATH following ``--json`` in ``argv``, or ``None`` without the flag.

    Raises :class:`SystemExit` (2) with ``usage`` when the flag has no
    value (or the next token is another flag).
    """
    if "--json" not in argv:
        return None
    index = argv.index("--json") + 1
    if index >= len(argv) or argv[index].startswith("--"):
        print(f"usage: {usage}")
        raise SystemExit(2)
    return argv[index]


def write_json_artifact(path: str, payload: Dict[str, Any]) -> None:
    """Write one benchmark's machine-readable results (CI uploads these)."""
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    print(f"wrote {path}")
