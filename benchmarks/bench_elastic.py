"""E21 -- elastic resizing: live join/leave with key-range prewarming.

A live resize (:meth:`~repro.cluster.router.ClusterClient.add_runner` /
``remove_runner``) must be a pure *where* change executed while the
deployment is up: the ring diff (:func:`~repro.cluster.ring.moved_keys`)
must move only the fair share of the key space, the joiner must be
prewarmed with exactly its acquired key range *before* it takes traffic,
and no cell may ever be recomputed because of a membership change.
Three phases, all gated on machine-independent counters (wall clock is
recorded, never gated):

* **ring** -- the 3->4 ring diff itself: incremental splicing must be
  entry-for-entry identical to a full rebuild, and the moved fraction of
  the position space must stay within vnode slack of the ideal 1/4.
* **join** -- a cold 3-runner sweep, then a live join with prewarming:
  the resize must move at most ``ceil(cells/4)`` + slack cells, bulk-load
  the joiner's range into its tier-1 LRU, and the post-join sweep must be
  bit-identical with **zero** computes (every cell a memory or store
  answer; ``prewarm_hits > 0`` proves the handoff tier worked).
* **leave** -- a graceful leave mid-deployment: zero re-routes (planned,
  not failover), bit-identical results from the survivors.

Run standalone:  python benchmarks/bench_elastic.py [--quick] [--json PATH]
"""

from __future__ import annotations

import asyncio
import json
import math
import sys
import tempfile

from repro import Portfolio, clear_caches
from repro.cluster import ClusterClient, HashRing, LocalCluster, moved_keys
from repro.cluster.ring import RING_POSITIONS
from repro.engine import set_solution_store
from repro.engine.async_service import AsyncSweepService
from repro.engine.store import report_to_payload

from bench_common import emit, parse_json_flag, write_json_artifact
from bench_cluster import GRID, RUNNERS

KEY_SAMPLE = 2000
QUICK_KEY_SAMPLE = 500
JOINER = f"runner-{RUNNERS}"


def _fresh_state():
    clear_caches()
    set_solution_store(None)


def run_ring_phase(key_sample: int):
    """The 3->4 diff: splice equivalence and minimal movement."""
    incremental = HashRing([f"runner-{i}" for i in range(RUNNERS)])
    incremental.add(JOINER)
    rebuilt = HashRing([f"runner-{i}" for i in range(RUNNERS + 1)])
    rebuilt._rebuild()
    splice_equivalent = (
        incremental._positions == rebuilt._positions
        and incremental._owners == rebuilt._owners)

    old = HashRing([f"runner-{i}" for i in range(RUNNERS)])
    ranges = moved_keys(old, incremental)
    moved_fraction = sum(r.span() for r in ranges) / RING_POSITIONS
    keys = [f"key-{i:05d}" for i in range(key_sample)]
    moved = sum(old.route(k) != incremental.route(k) for k in keys)
    return {
        "splice_equivalent": splice_equivalent,
        "moved_ranges": len(ranges),
        "moved_fraction": round(moved_fraction, 6),
        "moved_fraction_ok": moved_fraction <= 1 / (RUNNERS + 1) + 0.05,
        "acquired_by_joiner": all(r.new_owner == JOINER for r in ranges),
        "sampled_moved_ok": moved <= math.ceil(key_sample / (RUNNERS + 1))
        + math.ceil(key_sample * 0.05),
    }


def run_join_phase():
    """Cold sweep, live join with prewarm, warm sweep: zero recompute."""

    async def body():
        async with LocalCluster(RUNNERS) as cluster:
            client = ClusterClient(cluster.addresses())
            before = await client.sweep_specs(GRID)
            computed_before = (await client.metrics())["service"]["computed"]
            # Cold the (process-shared) tier-1 LRU so the joiner's prewarm
            # measures real work, as in a fresh multi-host process.
            clear_caches()
            address = await cluster.start_runner(JOINER)
            outcome = await client.add_runner(address)
            after = await client.sweep_specs(GRID)
            computed_after = (await client.metrics())["service"]["computed"]
            return before, outcome, after, client.stats, \
                computed_after - computed_before

    _fresh_state()
    before, outcome, after, stats, recomputes = asyncio.run(body())
    warm_answers = sum(r["source"] in ("store", "memory") for r in after)
    return {
        "cells": GRID.size(),
        "ring_version": outcome["ring_version"],
        "cells_moved": outcome["cells_moved"],
        "moved_bound_ok": (outcome["cells_moved"]
                           <= math.ceil(GRID.size() / (RUNNERS + 1)) + 2),
        "prewarmed": outcome["warmed"],
        "prewarmed_aliases": outcome["aliases"],
        "prewarm_hits": stats.prewarm_hits,
        "post_join_recomputes": recomputes,
        "warm_hit_rate": round(warm_answers / len(after), 6),
        "join_bit_identical": (
            json.dumps([(r["key"], r["report"]) for r in after],
                       sort_keys=True)
            == json.dumps([(r["key"], r["report"]) for r in before],
                          sort_keys=True)),
        "joiner_serves": JOINER in {r["runner"] for r in after},
        "affinity": round(stats.affinity(), 6),
    }


def run_leave_phase():
    """Graceful leave: planned hand-back, no failover, identical bytes."""

    async def body():
        with tempfile.TemporaryDirectory(prefix="bench-elastic-") as tmp:
            store_root = f"{tmp}/store"
            service = AsyncSweepService(
                store=store_root,
                portfolio=Portfolio(executor="thread", max_workers=2))
            async with service:
                ticket = await service.submit_specs(GRID)
                expected = [(r.key, report_to_payload(r.report, r.key))
                            for r in await ticket.results()]
            _fresh_state()
            async with LocalCluster(RUNNERS,
                                    store_root=store_root) as cluster:
                client = ClusterClient(cluster.addresses())
                await client.sweep_specs(GRID)
                outcome = client.remove_runner("runner-0")
                await cluster.stop_runner("runner-0", graceful=True)
                final = await client.sweep_specs(GRID)
                return expected, outcome, final, client.stats

    _fresh_state()
    expected, outcome, final, stats = asyncio.run(body())
    return {
        "leave_ring_version": outcome["ring_version"],
        "leave_cells_moved": outcome["cells_moved"],
        "leave_reroutes": stats.reroutes,
        "leaver_retired": "runner-0" not in {r["runner"] for r in final},
        "leave_bit_identical": (
            json.dumps([(r["key"], r["report"]) for r in final],
                       sort_keys=True)
            == json.dumps(expected, sort_keys=True)),
    }


def run_comparison(key_sample: int):
    stats = {"runners": RUNNERS, "grid_cells": GRID.size(),
             "key_sample": key_sample}
    stats.update(run_ring_phase(key_sample))
    stats.update(run_join_phase())
    stats.update(run_leave_phase())
    return stats


def check(stats) -> bool:
    return (stats["splice_equivalent"]
            and stats["moved_fraction_ok"]
            and stats["acquired_by_joiner"]
            and stats["sampled_moved_ok"]
            # the join acceptance gate: minimal movement, warm handoff
            and stats["ring_version"] == 1
            and stats["moved_bound_ok"]
            and stats["prewarmed"] > 0
            and stats["prewarm_hits"] > 0
            and stats["post_join_recomputes"] == 0
            # >= 90% of the post-join sweep answered warm (tier 1/2)
            and stats["warm_hit_rate"] >= 0.9
            and stats["join_bit_identical"]
            and stats["joiner_serves"]
            and stats["affinity"] == 1.0
            # graceful leave: planned, zero failover, identical bytes
            and stats["leave_reroutes"] == 0
            and stats["leaver_retired"]
            and stats["leave_bit_identical"])


def render(stats) -> str:
    return "\n".join([
        f"ring:  3->4 splice == rebuild: {stats['splice_equivalent']}; "
        f"{stats['moved_ranges']} moved ranges covering "
        f"{stats['moved_fraction']:.4f} of the key space "
        f"(ideal {1 / (stats['runners'] + 1):.4f}), all acquired by the "
        f"joiner: {stats['acquired_by_joiner']}",
        f"join:  moved {stats['cells_moved']}/{stats['cells']} cells, "
        f"prewarmed {stats['prewarmed']} reports + "
        f"{stats['prewarmed_aliases']} aliases; post-join sweep: "
        f"{stats['prewarm_hits']} memory answers, "
        f"{stats['post_join_recomputes']} recomputes, warm hit rate "
        f"{stats['warm_hit_rate']:.3f}, bit-identical: "
        f"{stats['join_bit_identical']}",
        f"leave: graceful hand-back moved {stats['leave_cells_moved']} "
        f"cells with {stats['leave_reroutes']} re-routes; survivors "
        f"bit-identical to the static run: "
        f"{stats['leave_bit_identical']}",
    ])


# ---------------------------------------------------------------------------
# pytest entry points (run in CI with --benchmark-disable)
# ---------------------------------------------------------------------------

def test_elastic_resize_prewarm_and_parity(benchmark):
    stats = run_comparison(QUICK_KEY_SAMPLE)
    emit("E21 / elastic resize -- minimal movement, prewarm, parity",
         render(stats))
    assert check(stats), stats
    benchmark(lambda: stats["warm_hit_rate"])


# ---------------------------------------------------------------------------
# standalone mode
# ---------------------------------------------------------------------------

def main(argv) -> int:
    quick = "--quick" in argv
    json_path = parse_json_flag(
        argv, "bench_elastic.py [--quick] [--json PATH]")

    stats = run_comparison(QUICK_KEY_SAMPLE if quick else KEY_SAMPLE)
    print(render(stats))

    ok = check(stats)
    print(f"\nelastic resize minimal, prewarmed, zero-recompute, "
          f"bit-identical: {ok}")

    if json_path:
        write_json_artifact(json_path, {
            "benchmark": "bench_elastic",
            "quick": quick,
            "runners": stats["runners"],
            "grid_cells": stats["grid_cells"],
            "splice_equivalent": stats["splice_equivalent"],
            "moved_ranges": stats["moved_ranges"],
            "moved_fraction": stats["moved_fraction"],
            "moved_fraction_ok": stats["moved_fraction_ok"],
            "acquired_by_joiner": stats["acquired_by_joiner"],
            "ring_version": stats["ring_version"],
            "cells_moved": stats["cells_moved"],
            "moved_bound_ok": stats["moved_bound_ok"],
            "prewarmed": stats["prewarmed"],
            "prewarmed_aliases": stats["prewarmed_aliases"],
            "prewarm_hits": stats["prewarm_hits"],
            "post_join_recomputes": stats["post_join_recomputes"],
            "warm_hit_rate": stats["warm_hit_rate"],
            "join_bit_identical": stats["join_bit_identical"],
            "joiner_serves": stats["joiner_serves"],
            "affinity": stats["affinity"],
            "leave_ring_version": stats["leave_ring_version"],
            "leave_cells_moved": stats["leave_cells_moved"],
            "leave_reroutes": stats["leave_reroutes"],
            "leaver_retired": stats["leaver_retired"],
            "leave_bit_identical": stats["leave_bit_identical"],
            "ok": ok,
        })
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
