"""E16 -- the unified engine on a multi-scenario sweep (portfolio + cache).

The ROADMAP's serving scenario is many users sweeping many (often
repeating) instances.  This benchmark replays such a sweep -- N distinct
workload scenarios, each requested R times -- under three execution
strategies, all producing identical solutions:

* **direct single-solver**: the pre-engine style; every request calls the
  LP bi-criteria pipeline directly and recomputes the arc transforms and
  the LP from scratch;
* **engine (sequential, cached)**: every request goes through
  ``repro.solve``; repeated scenarios hit the LRU solution cache keyed on
  the DAG fingerprint, and distinct scenarios still share memoized
  structure probes;
* **portfolio map (warm process pool)**: the same requests fanned out
  over a *persistent* pool of worker processes by
  :meth:`repro.Portfolio.map` (started and warmed once, as a serving
  deployment would); each worker keeps its own solution cache, and on
  multi-core machines the distinct solves additionally run in parallel.

The printed table records wall times and speedups; the assertions require
the engine-backed strategies to beat the direct single-solver sweep.

A second section races the full portfolio against the slowest single
solver on one problem and prints the per-solver times.

Run standalone with:
    python benchmarks/bench_engine_portfolio.py [--quick] [--json PATH]
"""

from __future__ import annotations

import sys
import time


from repro.analysis import format_table
from repro.core.bicriteria import solve_min_makespan_bicriteria
from repro.engine import Portfolio, clear_caches, solve
from repro.generators import get_workload

from bench_common import emit, parse_json_flag, write_json_artifact

SCENARIOS = ["small-layered-general", "small-layered-binary", "small-layered-kway",
             "medium-layered-general", "medium-layered-binary", "pipeline"]
REPEATS = 5

QUICK_SCENARIOS = SCENARIOS[:3]
QUICK_REPEATS = 3


def _sweep_problems(names, repeats):
    problems = [get_workload(name).problem() for name in names]
    return problems * repeats


def run_sweep(names=SCENARIOS, repeats=REPEATS):
    """Run the three strategies over the repeated-scenario sweep."""
    problems = _sweep_problems(names, repeats)

    # 1. direct single-solver calls (no engine, no cache)
    start = time.perf_counter()
    direct = [solve_min_makespan_bicriteria(p.dag, p.budget, alpha=0.5) for p in problems]
    t_direct = time.perf_counter() - start

    # 2. engine, sequential, cache on
    clear_caches()
    start = time.perf_counter()
    cached = [solve(p, method="bicriteria-lp", alpha=0.5) for p in problems]
    t_cached = time.perf_counter() - start

    # 3. portfolio map over a persistent, warmed pool of worker processes
    #    (the serving deployment shape: start-up cost paid once, outside
    #    the request path; caches live in the workers)
    clear_caches()  # fork-started workers must not inherit strategy 2's cache
    with Portfolio(executor="process") as portfolio:
        portfolio.map(problems[:len(names)], method="bicriteria-lp", alpha=0.5)  # warm-up
        start = time.perf_counter()
        mapped = portfolio.map(problems, method="bicriteria-lp", alpha=0.5)
        t_portfolio = time.perf_counter() - start

    for d, c, m in zip(direct, cached, mapped):
        assert abs(d.makespan - c.makespan) < 1e-9
        assert abs(d.makespan - m.makespan) < 1e-9

    hits = sum(1 for r in cached if r.from_cache)
    return {
        "requests": len(problems),
        "distinct": len(names),
        "t_direct": t_direct,
        "t_cached": t_cached,
        "t_portfolio": t_portfolio,
        "cache_hits": hits,
    }


def render_sweep(stats) -> str:
    rows = [
        ["direct single-solver", f"{stats['t_direct'] * 1000:.0f}", "1.00", "-"],
        ["engine sequential + cache", f"{stats['t_cached'] * 1000:.0f}",
         f"{stats['t_direct'] / stats['t_cached']:.2f}", stats["cache_hits"]],
        ["portfolio map (warm process pool)", f"{stats['t_portfolio'] * 1000:.0f}",
         f"{stats['t_direct'] / stats['t_portfolio']:.2f}", "per-worker"],
    ]
    header = (f"{stats['requests']} requests over {stats['distinct']} distinct scenarios "
              f"(identical solutions for all strategies)")
    return header + "\n\n" + format_table(
        ["strategy", "wall time (ms)", "speedup vs direct", "cache hits"], rows)


def run_race(name="medium-layered-binary"):
    """Race the auto-selected portfolio against each single solver."""
    problem = get_workload(name).problem()
    clear_caches()
    result = Portfolio(executor="thread").solve(problem)
    rows = [[r.solver_id, r.makespan, r.budget_used,
             "yes" if r.feasible else "no", f"{r.wall_time * 1000:.1f}"]
            for r in sorted(result.runs, key=lambda r: (r.makespan, r.budget_used))]
    slowest = max(r.wall_time for r in result.runs)
    return result, rows, slowest


def test_engine_sweep_beats_direct_calls(benchmark):
    workload = get_workload("medium-layered-binary")
    problem = workload.problem()
    clear_caches()
    solve(problem, method="bicriteria-lp", alpha=0.5)  # warm the cache
    benchmark(lambda: solve(problem, method="bicriteria-lp", alpha=0.5))

    stats = run_sweep()
    emit("E16 / engine -- multi-scenario sweep: direct vs cached engine vs portfolio",
         render_sweep(stats))
    # engine-backed strategies must beat the single-solver sweep wall time
    assert stats["t_cached"] < stats["t_direct"]
    assert stats["t_portfolio"] < stats["t_direct"]
    assert stats["cache_hits"] >= (REPEATS - 1) * len(SCENARIOS)


def test_portfolio_race_summary(benchmark):
    result, rows, slowest = run_race()
    benchmark(lambda: Portfolio(executor="thread",
                                methods=[r.solver_id for r in result.runs])
              .solve(get_workload("medium-layered-binary").problem()))
    emit("E16b / portfolio race -- best certified-feasible solution wins",
         format_table(["solver", "makespan", "budget used", "feasible", "time (ms)"], rows)
         + f"\n\nwinner: {result.summary()}")
    assert result.best.feasible
    feasible = [r for r in result.runs if r.feasible]
    assert result.makespan == min(r.makespan for r in feasible)


def main(argv) -> int:
    quick = "--quick" in argv
    json_path = parse_json_flag(
        argv, "bench_engine_portfolio.py [--quick] [--json PATH]")
    names = QUICK_SCENARIOS if quick else SCENARIOS
    repeats = QUICK_REPEATS if quick else REPEATS
    stats = run_sweep(names, repeats)
    print(render_sweep(stats))
    result, rows, _slowest = run_race(names[-1])
    print()
    print(format_table(["solver", "makespan", "budget used", "feasible", "time (ms)"], rows))
    print(result.summary())
    ok = stats["t_cached"] < stats["t_direct"] and stats["t_portfolio"] < stats["t_direct"]
    print(f"\nengine beats direct single-solver sweep: {ok}")
    if json_path:
        write_json_artifact(json_path, {
            "benchmark": "bench_engine_portfolio",
            "quick": quick,
            "requests": stats["requests"],
            "distinct": stats["distinct"],
            "t_direct_s": stats["t_direct"],
            "t_cached_s": stats["t_cached"],
            "t_portfolio_s": stats["t_portfolio"],
            "cache_hits": stats["cache_hits"],
            "race_winner": result.solver_id,
            "ok": ok,
        })
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
