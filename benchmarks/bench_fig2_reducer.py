"""E7 -- Figure 2 and the Section 1 reducer claim: ceil(n / 2^h) + h + 1.

Simulates the recursive binary reducer (and the k-way split reducer of
Equation 2) update by update, sweeping the space budget, and checks the
simulated completion times against the closed-form duration functions that
the optimisation layer relies on.  The reproduced series is the space-time
curve of the introduction: near-linear speedup in the extra space until the
additive height term takes over.
"""

from __future__ import annotations

import math


from repro.analysis import format_table
from repro.races.reducer import (
    binary_reducer_formula,
    kway_reducer_formula,
    simulate_binary_reducer,
    simulate_kway_reducer,
)

from bench_common import emit


def test_binary_reducer_curve(benchmark):
    n = 4096
    benchmark(lambda: simulate_binary_reducer(n, 6))

    rows = []
    for h in range(0, int(math.log2(n)) + 1):
        sim = simulate_binary_reducer(n, h)
        formula = binary_reducer_formula(n, h)
        speedup = n / sim.completion_time if sim.completion_time else float("inf")
        rows.append([h, 2 ** h if h else 0, sim.completion_time, formula, round(speedup, 2)])
        assert sim.completion_time == formula
    emit(f"E7 / Figure 2 -- recursive binary reducer, n = {n} updates",
         format_table(["height h", "leaf cells 2^h", "simulated time",
                       "formula ceil(n/2^h)+h+1", "speedup vs serial"], rows))


def test_kway_reducer_curve(benchmark):
    n = 3600
    benchmark(lambda: simulate_kway_reducer(n, 60))

    rows = []
    for k in [1, 2, 4, 8, 15, 30, 60]:
        sim = simulate_kway_reducer(n, k)
        formula = kway_reducer_formula(n, k)
        rows.append([k, sim.completion_time, formula, round(n / sim.completion_time, 2)])
        assert sim.completion_time <= formula
    emit(f"E7b / Equation 2 -- k-way split reducer, n = {n} updates",
         format_table(["k", "simulated time", "formula ceil(n/k)+k", "speedup vs serial"], rows))
