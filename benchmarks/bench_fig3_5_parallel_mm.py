"""E8 -- Figures 3-5: Parallel-MM and the running makespan example.

Reproduces two artifacts:

* the Parallel-MM space/time curve of Section 1 -- with a height-``h``
  reducer on every output cell, the running time drops from ``n`` to
  ``Theta(log n)`` while the extra space grows to ``Theta(n^3)``;
* the Figure 4 -> Figure 5 effect in general: adding a small amount of
  reusable space to the cells on the critical path of a race DAG strictly
  decreases its makespan (the paper's 11 -> 10 example, reproduced on the
  Parallel-MM DAG and a small irregular DAG).
"""

from __future__ import annotations

import math


from repro.analysis import format_table
from repro.core.exact import exact_min_makespan
from repro.races.matmul import (
    parallel_mm_running_time,
    parallel_mm_space_used,
    parallel_mm_tradeoff_dag,
)
from repro.races.racedag import RaceDAG, to_tradeoff_dag

from bench_common import emit


def test_parallel_mm_space_time_curve(benchmark):
    n = 64
    benchmark(lambda: parallel_mm_tradeoff_dag(8, family="binary"))

    rows = []
    for h in range(0, int(math.log2(n)) + 1):
        rows.append([h, parallel_mm_space_used(n, h), parallel_mm_running_time(n, h)])
    emit(f"E8 / Figure 3 -- Parallel-MM with per-cell binary reducers, n = {n}",
         format_table(["reducer height h", "extra space n^2 * 2^h",
                       "running time ceil(n/2^h)+h+1"], rows))
    assert rows[0][2] == n
    assert rows[-1][2] <= 2 * math.log2(n) + 2


def test_figure4_to_figure5_makespan_drop(benchmark):
    """A unit of extra reusable space strictly shortens the critical path."""
    race_dag = RaceDAG()
    # a small irregular DAG in the spirit of Figure 4 (work = in-degree); the
    # cell `c` on the critical path receives many updates, so a small reducer
    # on it shortens the makespan, exactly as Figure 5 illustrates
    for u, v in [("s", "a"), ("s", "b"), ("a", "b"), ("a", "c"), ("b", "c"), ("b", "c"),
                 ("c", "d"), ("c", "d"), ("b", "d"), ("d", "t"), ("c", "t")]:
        race_dag.add_dependency(u, v)
    for _ in range(5):
        race_dag.add_dependency("a", "c")
    dag = to_tradeoff_dag(race_dag, family="kway")

    base = dag.makespan_value({})
    improved = benchmark(lambda: exact_min_makespan(dag, budget=2))
    rows = [["no extra space", 0, base],
            ["two units, reusable over paths (Figure 5 analogue)", 2, improved.makespan]]
    emit("E8b / Figures 4-5 -- extra reusable space shortens the race DAG's makespan",
         format_table(["configuration", "budget", "makespan"], rows))
    assert improved.makespan < base
