"""E9 -- Figures 6-7: the DAG transformations of Section 3.1.

Times the activity-on-arc reduction and the two-tuple expansion on
increasingly large random DAGs and verifies the structural accounting of
Figure 6 (``l_j`` parallel chains per multi-tuple job, optimal values
preserved on instances small enough to solve exactly) and the Figure 7
tuple list for recursive-binary jobs.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.core.arcdag import expand_to_two_tuples, node_to_arc_dag, section33_binary_tuples
from repro.core.exact import exact_min_makespan, exact_min_makespan_arcs
from repro.generators import layered_random_dag

from bench_common import emit


def test_transformation_scaling(benchmark):
    dag = layered_random_dag(6, 8, family="general", seed=42)

    def transform():
        arc_dag, _ = node_to_arc_dag(dag)
        return expand_to_two_tuples(arc_dag)

    expansion = benchmark(transform)

    rows = []
    for layers, per_layer in [(2, 2), (3, 4), (4, 6), (6, 8)]:
        d = layered_random_dag(layers, per_layer, family="general", seed=7)
        arc_dag, _ = node_to_arc_dag(d)
        exp = expand_to_two_tuples(arc_dag)
        rows.append([f"{layers}x{per_layer}", d.num_jobs, d.num_edges,
                     arc_dag.num_arcs, exp.arc_dag.num_arcs,
                     len(exp.arc_dag.two_tuple_arcs())])
    emit("E9 / Figure 6 -- activity-on-arc reduction and two-tuple expansion sizes",
         format_table(["instance", "jobs", "edges", "arcs in D'", "arcs in D''",
                       "two-tuple arcs in D''"], rows))
    assert expansion.arc_dag.num_arcs >= dag.num_jobs


def test_transformation_preserves_optimum(benchmark):
    """Lemma 3.1: optimal values agree before and after the expansion."""
    dag = layered_random_dag(3, 2, family="general", seed=9, max_base=12)
    budget = 5

    def both():
        node_opt = exact_min_makespan(dag, budget).makespan
        arc_dag, _ = node_to_arc_dag(dag)
        expansion = expand_to_two_tuples(arc_dag)
        arc_opt, _ = exact_min_makespan_arcs(expansion.arc_dag, budget)
        return node_opt, arc_opt

    node_opt, arc_opt = benchmark(both)
    emit("E9b / Lemma 3.1 -- the expansion preserves optimal makespans",
         format_table(["representation", "optimal makespan (budget 5)"],
                      [["activity on node (D)", node_opt],
                       ["expanded activity on arc (D'')", arc_opt]]))
    assert node_opt == pytest.approx(arc_opt)


def test_figure7_tuple_list(benchmark):
    tuples = benchmark(lambda: section33_binary_tuples(1024))
    rows = [[r, t] for r, t in tuples]
    emit("E9c / Figure 7 -- Section 3.3 tuple list for a recursive-binary job of work 1024",
         format_table(["resource 2^i", "duration"], rows))
    assert tuples[0][1] == 1024
    assert tuples[-1][1] < 1024
