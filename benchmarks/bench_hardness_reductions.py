"""E4 / E11 / E12 / E13 -- the hardness rows of Table 1, executed.

Runs every reduction of Section 4 / Appendix A on small source instances and
checks that the reduced tradeoff instances separate yes- from no-instances at
exactly the thresholds the paper claims:

* Theorem 4.1 / 4.3 -- 1-in-3SAT, makespan 1 (yes) vs >= 2 (no) with budget
  ``n + 2m`` (factor-2 inapproximability of min-makespan);
* Theorem 4.4 -- the chained variable gadget timing plus the stated 2-vs-3
  resource gap (3/2 inapproximability of min-resource);
* Theorem 4.6 -- Partition, makespan ``B/2`` iff partitionable, on a
  bounded-treewidth DAG (width <= 15);
* Lemma A.1 -- numerical 3DM, makespan ``2M + T`` iff solvable.
"""

from __future__ import annotations


from repro.analysis import format_table
from repro.hardness import (
    Numerical3DMInstance,
    OneInThreeSatInstance,
    PartitionInstance,
    build_partition_dag,
    build_variable_chain,
    construct_chain_flow,
    decomposition_width,
    minresource_gap,
    partition_construction_decomposition,
    tree_decomposition_is_valid,
    verify_matching3d_reduction,
    verify_partition_reduction,
    verify_theorem41,
)

from bench_common import emit


def test_theorem41_reduction(benchmark):
    """E11: 1-in-3SAT reduction (Figures 8-9), exact yes/no separation."""
    yes_instance = OneInThreeSatInstance(3, ((1, 2, 3),))
    no_instance = OneInThreeSatInstance(3, ((1, 2, 3), (-1, -2, -3)))

    report_yes = benchmark(lambda: verify_theorem41(yes_instance))
    report_no = verify_theorem41(no_instance)

    rows = [
        ["(V1 v V2 v V3)", report_yes.source_yes, report_yes.threshold,
         report_yes.reduced_optimum, report_yes.forward_witness_ok, report_yes.agrees],
        ["(V1 v V2 v V3) & (~V1 v ~V2 v ~V3)", report_no.source_yes, report_no.threshold,
         report_no.reduced_optimum, "-", report_no.agrees],
    ]
    emit("E4/E11 / Theorem 4.1 + 4.3 -- 1-in-3SAT reduction (makespan 1 vs >= 2, budget n+2m)",
         format_table(["formula", "1-in-3 satisfiable", "target makespan",
                       "exact optimal makespan", "witness ok", "reduction agrees"], rows))
    assert report_yes.agrees and report_no.agrees
    assert report_yes.reduced_optimum == 1
    assert report_no.reduced_optimum >= 2  # the Theorem 4.3 gap


def test_theorem44_chain_and_gap(benchmark):
    """E4: the Theorem 4.4 components -- chained variable timing + resource gap."""
    construction = build_variable_chain(6)
    assignment = {i: bool(i % 2) for i in range(1, 7)}
    flow = benchmark(lambda: construct_chain_flow(construction, assignment))
    times = flow.event_times()
    rows = [[i, times[("e", i)], times[("f", i)]] for i in range(1, 7)]
    gap = minresource_gap()
    emit("E4 / Theorem 4.4 -- chained variable gadgets (Figure 10) and the 3/2 resource gap",
         format_table(["gadget i", "entry time (= i-1)", "exit time (= i)"], rows)
         + f"\nbudget used by the witness flow: {flow.budget_used():.0f} units"
         + f"\nstated gap: yes-instances {gap['yes_resource']:.0f} units, "
           f"no-instances {gap['no_resource']:.0f} units  (ratio {gap['ratio']})")
    assert all(times[("e", i)] == i - 1 and times[("f", i)] == i for i in range(1, 7))
    assert flow.budget_used() == 2


def test_partition_reduction(benchmark):
    """E12: Partition reduction (Figures 15-16), bounded treewidth."""
    instances = [(1, 1, 2), (2, 3, 5, 4), (1, 2, 4), (3, 3, 2, 2, 2)]
    report = benchmark(lambda: verify_partition_reduction(PartitionInstance((2, 3, 5, 4))))
    rows = []
    for values in instances:
        r = verify_partition_reduction(PartitionInstance(values))
        rows.append([str(values), r.source_yes, r.threshold, r.reduced_optimum, r.agrees])
    construction = build_partition_dag(PartitionInstance((2, 3, 5, 4)))
    vertices, edges, bags, tree_edges = partition_construction_decomposition(construction)
    width = decomposition_width(bags)
    valid = tree_decomposition_is_valid(vertices, edges, bags, tree_edges)
    emit("E12 / Theorem 4.6 -- Partition reduction on bounded-treewidth DAGs (Figures 15-16)",
         format_table(["values", "partitionable", "target B/2", "exact optimal makespan",
                       "agrees"], rows)
         + f"\ntree decomposition: valid = {valid}, width = {width} (paper bound: 15)")
    assert report.agrees and valid and width <= 15


def test_matching3d_reduction(benchmark):
    """E13: numerical 3D matching reduction (Figures 17-18, Lemma A.1)."""
    cases = [
        ("solvable", Numerical3DMInstance((1, 2), (2, 3), (4, 2))),
        ("unsolvable", Numerical3DMInstance((1, 1), (1, 1), (1, 5))),
        ("solvable n=3", Numerical3DMInstance((1, 2, 3), (1, 2, 3), (1, 2, 3))),
    ]
    report = benchmark(lambda: verify_matching3d_reduction(cases[0][1]))
    rows = []
    for label, instance in cases:
        r = verify_matching3d_reduction(instance)
        rows.append([label, r.source_yes, r.threshold, r.reduced_optimum,
                     r.forward_witness_ok if r.source_yes else "-", r.agrees])
    emit("E13 / Lemma A.1 -- numerical 3D matching reduction (makespan 2M + T, budget n^2)",
         format_table(["instance", "3DM solvable", "target 2M+T", "exact optimal makespan",
                       "witness ok", "agrees"], rows))
    assert report.agrees
    assert all(row[-1] for row in rows)
