"""E21 -- the incremental sweep engine: edit a grid, pay only for the edit.

A 100+-cell grid that has already been swept should cost nothing to
sweep again, and an *edited* grid (one axis value swapped) should cost
exactly its new cells: the planning tier (:mod:`repro.engine.plan`)
classifies every cell against the store and the v2 resume manifest in
one batched pass before any shard forms, so unchanged cells never build
a DAG, never enter a shard and never cross a cluster wire.  Four phases,
all gated on machine-independent counters (wall clock is recorded,
never gated):

* **cold** -- sweep the original grid with a resume manifest: one DAG
  build and one solve per unique cell;
* **diff** -- :func:`repro.scenarios.grid_diff` against the edited grid
  (one axis value swapped) reports the exact gained/lost/shared split
  while building **zero** DAGs;
* **warm edit** -- a fresh process sweeps the edited grid over the same
  store + manifest: every shared cell resumes from the manifest with
  zero DAG builds, only the gained cells are materialized and solved,
  and the shared cells' stored payloads are bit-identical to the cold
  sweep's;
* **cluster** -- the swept grid re-submitted through a store-aware
  :class:`~repro.cluster.ClusterClient` is answered entirely by the
  router's local planning tier: zero cells cross the wire.

Run standalone:  python benchmarks/bench_incremental.py [--quick] [--json PATH]
"""

from __future__ import annotations

import asyncio
import json
import os
import sys
import tempfile
import time

from repro import clear_caches
from repro.analysis import format_table
from repro.cluster import ClusterClient, LocalCluster
from repro.engine.portfolio import Portfolio
from repro.engine.service import SweepService, load_manifest_state
from repro.engine.store import SolutionStore, report_to_payload
from repro.scenarios import (
    Axis,
    ScenarioGrid,
    grid_diff,
    materialization_info,
    reset_materialization_counters,
)

from bench_common import emit, parse_json_flag, write_json_artifact

#: 12 budget rules x the width axis = 12 cells per width value.
BUDGET_RULES = tuple(("const", float(b)) for b in range(2, 14))


def build_grid(widths) -> ScenarioGrid:
    return ScenarioGrid(
        generators=({"generator": "fork-join",
                     "params": {"width": Axis(list(widths)), "work": 8}},),
        seeds=(0,),
        budget_rules=BUDGET_RULES)


def grids(quick: bool):
    """The original grid and its edit (last width value swapped)."""
    top = 10 if quick else 16
    original = build_grid(range(2, top + 1))
    edited = build_grid(list(range(2, top)) + [top + 1])
    return original, edited


def service_for(root: str) -> SweepService:
    # Thread executor keeps DAG-build counters in-process, so the gates
    # observe exactly what the workers did.
    return SweepService(store=SolutionStore(root),
                        portfolio=Portfolio(executor="thread"))


def _shared_payloads(store_root: str, digests, key_by_digest):
    store = SolutionStore(store_root)
    payloads = {}
    for digest in digests:
        key = key_by_digest[digest]
        _key, report = store.get_reports_many([key])[key]
        payloads[digest] = json.dumps(report_to_payload(report, key),
                                      sort_keys=True)
    return payloads


def run_phases(quick: bool) -> dict:
    original, edited = grids(quick)
    store_root = tempfile.mkdtemp(prefix="bench-incremental-")
    manifest = os.path.join(store_root, "manifest.json")

    # -- phase 1: cold sweep of the original grid ----------------------
    clear_caches()
    reset_materialization_counters()
    start = time.perf_counter()
    with service_for(store_root) as service:
        cold = service.run(original, manifest=manifest)
    t_cold = time.perf_counter() - start
    cold_builds = materialization_info()["dag_builds"]
    cold_keys = {r.spec.cell_digest(): r.key for r in cold.results}

    # -- phase 2: grid diff (pure spec arithmetic) ---------------------
    reset_materialization_counters()
    diff = grid_diff(original, edited)
    diff_builds = materialization_info()["dag_builds"]
    counts = diff.counts()
    shared_digests = sorted(s.cell_digest() for s in diff.shared)
    before = _shared_payloads(store_root, shared_digests, cold_keys)

    # -- phase 3: warm sweep of the edited grid (fresh process state) --
    clear_caches()
    reset_materialization_counters()
    start = time.perf_counter()
    with service_for(store_root) as service:
        warm = service.run(edited, manifest=manifest)
    t_warm = time.perf_counter() - start
    warm_builds = materialization_info()["dag_builds"]
    warm_keys = {r.spec.cell_digest(): r.key for r in warm.results}
    after = _shared_payloads(store_root, shared_digests,
                             {**cold_keys, **warm_keys})
    identical = before == after
    manifest_state = load_manifest_state(manifest, "auto")

    # -- phase 4: swept grid through a store-aware cluster router ------
    clear_caches()

    async def clustered():
        async with LocalCluster(2, store_root=store_root) as cluster:
            client = ClusterClient(cluster.addresses(), store=store_root)
            results = await client.sweep_specs(edited)
            return results, client.stats

    start = time.perf_counter()
    cluster_results, cluster_stats = asyncio.run(clustered())
    t_cluster = time.perf_counter() - start

    return {
        "cells": original.size(),
        "gained": counts["gained"],
        "lost": counts["lost"],
        "shared": counts["shared"],
        "cold_computed": cold.stats.computed,
        "cold_dag_builds": cold_builds,
        "diff_dag_builds": diff_builds,
        "warm_store_hits": warm.stats.store_hits,
        "warm_resumed": warm.stats.resumed,
        "warm_computed": warm.stats.computed,
        "warm_dag_builds": warm_builds,
        "warm_shards": warm.stats.shards,
        "warm_shard_size": warm.stats.shard_size,
        "shared_bit_identical": identical,
        "manifest_cells": len(manifest_state.cells),
        "manifest_write_errors": warm.stats.manifest_write_errors,
        "cluster_wire_cells": cluster_stats.wire_cells,
        "cluster_planned_local": cluster_stats.planned_local,
        "cluster_answered": len(cluster_results),
        "t_cold_s": t_cold,
        "t_warm_s": t_warm,
        "t_cluster_s": t_cluster,
    }


#: The machine-independent acceptance conditions, shared by the standalone
#: gate and the pytest entry point so the two can never diverge.
GATE_CONDITIONS = [
    ("the grid is 100+ cells (the incremental claim is about scale)",
     lambda s: s["cells"] >= 100),
    ("grid_diff reports the exact one-axis-edit split without DAG builds",
     lambda s: s["gained"] == s["lost"] == len(BUDGET_RULES)
     and s["shared"] == s["cells"] - s["lost"]
     and s["diff_dag_builds"] == 0),
    ("cold sweep builds and solves exactly one of each unique cell",
     lambda s: s["cold_computed"] == s["cells"]
     and s["cold_dag_builds"] == s["cells"]),
    ("the edited sweep solves only the gained cells",
     lambda s: s["warm_computed"] == s["gained"]
     and s["warm_store_hits"] == s["shared"]),
    ("unchanged cells build zero DAGs on the edited sweep",
     lambda s: s["warm_dag_builds"] == s["gained"]),
    ("shared cells resume from the v2 manifest, not just the store",
     lambda s: s["warm_resumed"] == s["shared"]
     and s["manifest_write_errors"] == 0),
    ("shards carry only pending cells (adaptive size covers exactly them)",
     lambda s: s["warm_shards"] >= 1
     and (s["warm_shards"] - 1) * s["warm_shard_size"] < s["gained"] <=
     s["warm_shards"] * s["warm_shard_size"]),
    ("shared cells' stored payloads are bit-identical after the edit",
     lambda s: s["shared_bit_identical"]),
    ("the final manifest covers every cell of the edited grid",
     lambda s: s["manifest_cells"] >= s["cells"]),
    ("re-submitting the swept grid sends zero cells over the cluster wire",
     lambda s: s["cluster_wire_cells"] == 0
     and s["cluster_planned_local"] == s["cells"]
     and s["cluster_answered"] == s["cells"]),
]


def gate(stats) -> bool:
    """The machine-independent acceptance predicate (counters only)."""
    return all(condition(stats) for _label, condition in GATE_CONDITIONS)


def render(stats) -> str:
    header = (f"{stats['cells']}-cell grid, one width value swapped: "
              f"+{stats['gained']} / -{stats['lost']} / "
              f"{stats['shared']} shared (diff built "
              f"{stats['diff_dag_builds']} DAGs); shared payloads "
              f"bit-identical after the edit: "
              f"{stats['shared_bit_identical']}")
    table = format_table(
        ["phase", "computed", "DAG builds", "store hits", "resumed",
         "wall time (ms)"],
        [["cold original sweep", str(stats["cold_computed"]),
          str(stats["cold_dag_builds"]), "0", "0",
          f"{stats['t_cold_s'] * 1000:.0f}"],
         ["warm edited sweep", str(stats["warm_computed"]),
          str(stats["warm_dag_builds"]), str(stats["warm_store_hits"]),
          str(stats["warm_resumed"]),
          f"{stats['t_warm_s'] * 1000:.0f}"]])
    cluster = (f"cluster re-submit: {stats['cluster_planned_local']} cells "
               f"answered by the router's planning tier, "
               f"{stats['cluster_wire_cells']} over the wire "
               f"({stats['t_cluster_s'] * 1000:.0f} ms, 2 runners); "
               f"edited sweep sharded as {stats['warm_shards']} x "
               f"{stats['warm_shard_size']} over {stats['gained']} pending")
    return header + "\n\n" + table + "\n\n" + cluster


# ---------------------------------------------------------------------------
# pytest entry point (run in CI with --benchmark-disable)
# ---------------------------------------------------------------------------

def test_edited_grid_costs_only_the_edit(benchmark):
    stats = run_phases(quick=True)
    emit("E21 / incremental sweeps -- grid-diff planning + manifest resume",
         render(stats))
    for label, condition in GATE_CONDITIONS:
        assert condition(stats), f"{label} (stats: {stats})"

    original, _edited = grids(quick=True)
    root = tempfile.mkdtemp(prefix="bench-incremental-pytest-")
    with service_for(root) as service:
        service.run(original)

    def warm_resweep():
        clear_caches()
        with service_for(root) as service:
            return service.run(original)

    benchmark(warm_resweep)


# ---------------------------------------------------------------------------
# standalone mode
# ---------------------------------------------------------------------------

def main(argv) -> int:
    quick = "--quick" in argv
    json_path = parse_json_flag(
        argv, "bench_incremental.py [--quick] [--json PATH]")

    stats = run_phases(quick)
    print(render(stats))
    ok = gate(stats)
    if not ok:
        for label, condition in GATE_CONDITIONS:
            if not condition(stats):
                print(f"GATE FAILED: {label}")
    print(f"\nincremental sweep: edited grid pays only for its edit "
          f"(plan -> manifest resume -> pending-only shards/wire): {ok}")

    if json_path:
        payload = {"benchmark": "bench_incremental", "quick": quick,
                   "ok": ok}
        payload.update(stats)
        write_json_artifact(json_path, payload)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
