"""E14 -- Observation 1.1: simulated execution never exceeds the DAG makespan.

Runs the discrete-event executor on the race DAGs of several racy kernels
(Parallel-MM, histogram, global sum, sparse accumulate), with and without
reducers, and compares the simulated completion time against the
Observation 1.1 bound computed from the same configuration.
"""

from __future__ import annotations


from repro.analysis import format_table
from repro.races.matmul import parallel_mm_race_dag
from repro.races.programs import global_sum_program, histogram_program, sparse_accumulate_program
from repro.races.racedag import race_dag_from_program
from repro.races.simulator import makespan_upper_bound, simulate_race_dag

from bench_common import emit


def _workloads():
    mm = parallel_mm_race_dag(16)
    hist = race_dag_from_program(histogram_program(200, 8, seed=5))
    gsum = race_dag_from_program(global_sum_program(128))
    sparse = race_dag_from_program(sparse_accumulate_program(12, 12, density=0.4, seed=5))
    return [
        ("Parallel-MM n=16 (no reducers)", mm, None),
        ("Parallel-MM n=16 (binary h=2)", mm,
         {("Z", i, j): ("binary", 2) for i in range(16) for j in range(16)}),
        ("histogram 200/8 (no reducers)", hist, None),
        ("histogram 200/8 (k-way k=4)", hist,
         {("hist", b): ("kway", 4) for b in range(8)}),
        ("global sum 128 (binary h=5)", gsum, {("total",): ("binary", 5)}),
        ("sparse accumulate 12x12 (no reducers)", sparse, None),
    ]


def test_observation_11(benchmark):
    mm = parallel_mm_race_dag(16)
    benchmark(lambda: simulate_race_dag(mm))

    rows = []
    for label, dag, reducers in _workloads():
        sim = simulate_race_dag(dag, reducers)
        bound = makespan_upper_bound(dag, reducers)
        rows.append([label, sim.completion_time, bound, sim.completion_time <= bound + 1e-9])
    emit("E14 / Observation 1.1 -- simulated execution vs DAG-makespan bound",
         format_table(["workload", "simulated completion", "makespan bound", "within bound"],
                      rows))
    assert all(row[-1] for row in rows)
