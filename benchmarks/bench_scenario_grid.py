"""E19 -- spec-native scenario grids: declarative sweeps without DAG churn.

A scenario sweep used to enter the system as a list of fully materialized
``Problem`` objects: every cell's DAG built up front by the caller, every
warm re-run paying the same construction cost just to discover the store
already had the answers.  The scenario subsystem (``repro.scenarios``)
replaces that with a declarative 3-axis :class:`~repro.scenarios.ScenarioGrid`
(generator family x size x budget rule) flowing through
:meth:`~repro.engine.service.SweepService.sweep` spec-natively:

* **cold** -- cells are deduplicated and store-checked by spec content
  (no DAG exists yet); pending cells materialize lazily inside worker
  shards: exactly one DAG build per unique cell;
* **warm** -- every cell resolves its request fingerprint through the
  persistent spec alias and is answered from the store with **zero** DAG
  builds, even in a fresh process;
* **equivalence** -- the spec-native path reports the same request
  fingerprints and bit-identical makespans as sweeping the materialized
  problems.

The gate is **machine-independent**: DAG-build counters
(:func:`repro.scenarios.materialization_info`), store-hit counts, the
fingerprint/result equivalence, and the wire-payload compression of
shipping the grid instead of materialized problem payloads.  Wall-clock
times are reported for humans but never gated on.

Run standalone:  python benchmarks/bench_scenario_grid.py [--quick] [--json PATH]
"""

from __future__ import annotations

import json
import sys
import tempfile
import time

from repro import clear_caches
from repro.analysis import format_table, render_grid_table
from repro.engine.portfolio import Portfolio
from repro.engine.service import SweepService
from repro.engine.store import SolutionStore
from repro.scenarios import (
    Axis,
    ScenarioGrid,
    materialization_info,
    reset_materialization_counters,
)
from repro.serve import problem_to_payload

from bench_common import emit, parse_json_flag, write_json_artifact


def build_grid(quick: bool) -> ScenarioGrid:
    """The 3-axis grid: generator family x size x budget rule."""
    sizes = [2, 4] if quick else [2, 4, 8]
    chain_sizes = [2, 3] if quick else [2, 3, 4]
    return ScenarioGrid(
        generators=(
            {"generator": "fork-join",
             "params": {"width": Axis(sizes), "work": 16}},
            {"generator": "adversarial-minresource-chain",
             "params": {"num_variables": Axis(chain_sizes)}},
        ),
        seeds=(0,),
        budget_rules=(("const", 6.0), ("per-job", 1.0)),
    )


def service_for(root: str) -> SweepService:
    # Thread executor keeps the DAG-build counters in-process, so the gate
    # observes exactly what the workers did.
    return SweepService(store=SolutionStore(root),
                        portfolio=Portfolio(executor="thread"))


def run_comparison(quick: bool) -> dict:
    grid = build_grid(quick)
    store_root = tempfile.mkdtemp(prefix="bench-scenario-grid-")

    # -- cold spec-native sweep ----------------------------------------
    clear_caches()
    reset_materialization_counters()
    start = time.perf_counter()
    with service_for(store_root) as service:
        cold = service.run(grid)
    t_cold = time.perf_counter() - start
    cold_builds = materialization_info()["dag_builds"]

    # -- warm spec-native sweep (fresh process state, same store) ------
    clear_caches()
    reset_materialization_counters()
    start = time.perf_counter()
    with service_for(store_root) as service:
        warm = service.run(grid)
    t_warm = time.perf_counter() - start
    warm_builds = materialization_info()["dag_builds"]

    # -- materialized reference path -----------------------------------
    clear_caches()
    reset_materialization_counters()
    problems = [spec.materialize() for spec in grid.expand()]
    with service_for(tempfile.mkdtemp(prefix="bench-mat-grid-")) as service:
        materialized = service.run(problems)

    identical = (
        [r.key for r in cold.results] == [r.key for r in materialized.results]
        and [r.report.makespan for r in cold.results]
        == [r.report.makespan for r in materialized.results]
        and [r.report.budget_used for r in cold.results]
        == [r.report.budget_used for r in materialized.results])

    spec_bytes = len(json.dumps(grid.to_payload()))
    problem_bytes = len(json.dumps([problem_to_payload(p) for p in problems]))

    return {
        "cells": grid.size(),
        "cold_computed": cold.stats.computed,
        "cold_dag_builds": cold_builds,
        "warm_store_hits": warm.stats.store_hits,
        "warm_computed": warm.stats.computed,
        "warm_dag_builds": warm_builds,
        "identical": identical,
        "spec_payload_bytes": spec_bytes,
        "problem_payload_bytes": problem_bytes,
        "payload_compression": problem_bytes / max(spec_bytes, 1),
        "t_cold_s": t_cold,
        "t_warm_s": t_warm,
        "grid_table": render_grid_table(cold, by=("generator", "budget_rule")),
    }


#: The machine-independent acceptance conditions, shared by the standalone
#: gate and the pytest entry point so the two can never diverge.
GATE_CONDITIONS = [
    ("spec-native results are bit-identical to the materialized path",
     lambda s: s["identical"]),
    ("cold sweep builds exactly one DAG per unique cell",
     lambda s: s["cold_dag_builds"] == s["cells"]),
    ("cold sweep computes every cell once",
     lambda s: s["cold_computed"] == s["cells"]),
    ("warm sweep answers every cell from the store",
     lambda s: s["warm_store_hits"] == s["cells"]
     and s["warm_computed"] == 0),
    ("warm sweep builds zero DAGs (store hits resolve pre-materialization)",
     lambda s: s["warm_dag_builds"] == 0),
    ("the grid payload is at least 4x smaller than materialized problems",
     lambda s: s["payload_compression"] >= 4.0),
]


def gate(stats) -> bool:
    """The machine-independent acceptance predicate (counters only)."""
    return all(condition(stats) for _label, condition in GATE_CONDITIONS)


def render(stats) -> str:
    rows = [
        ["cold spec-native sweep", str(stats["cold_computed"]),
         str(stats["cold_dag_builds"]), "0",
         f"{stats['t_cold_s'] * 1000:.0f}"],
        ["warm spec-native sweep", str(stats["warm_computed"]),
         str(stats["warm_dag_builds"]), str(stats["warm_store_hits"]),
         f"{stats['t_warm_s'] * 1000:.0f}"],
    ]
    header = (f"{stats['cells']}-cell grid (generator family x size x budget "
              f"rule); identical to materialized path: {stats['identical']}; "
              f"wire payload {stats['spec_payload_bytes']}B as a grid vs "
              f"{stats['problem_payload_bytes']}B materialized "
              f"({stats['payload_compression']:.1f}x smaller)")
    table = format_table(
        ["sweep", "computed", "DAG builds", "store hits", "wall time (ms)"],
        rows)
    return (header + "\n\n" + table + "\n\nper-axis quality (cold sweep):\n"
            + stats["grid_table"])


# ---------------------------------------------------------------------------
# pytest entry point (run in CI with --benchmark-disable)
# ---------------------------------------------------------------------------

def test_spec_native_grid_sweeps_without_dag_churn(benchmark):
    stats = run_comparison(quick=True)
    emit("E19 / scenario grids -- spec-native sweeps vs materialized problems",
         render(stats))
    for label, condition in GATE_CONDITIONS:
        assert condition(stats), f"{label} (stats: {stats})"

    grid = build_grid(quick=True)
    root = tempfile.mkdtemp(prefix="bench-scenario-grid-pytest-")
    with service_for(root) as service:
        service.run(grid)

    def warm_spec_sweep():
        clear_caches()
        with service_for(root) as service:
            return service.run(grid)

    benchmark(warm_spec_sweep)


# ---------------------------------------------------------------------------
# standalone mode
# ---------------------------------------------------------------------------

def main(argv) -> int:
    quick = "--quick" in argv
    json_path = parse_json_flag(
        argv, "bench_scenario_grid.py [--quick] [--json PATH]")

    stats = run_comparison(quick)
    print(render(stats))
    ok = gate(stats)
    print(f"\nspec-native grid sweep: one lazy DAG build per cold cell, zero "
          f"for warm store hits, bit-identical results: {ok}")

    if json_path:
        write_json_artifact(json_path, {
            "benchmark": "bench_scenario_grid",
            "quick": quick,
            "cells": stats["cells"],
            "cold_computed": stats["cold_computed"],
            "cold_dag_builds": stats["cold_dag_builds"],
            "warm_store_hits": stats["warm_store_hits"],
            "warm_computed": stats["warm_computed"],
            "warm_dag_builds": stats["warm_dag_builds"],
            "identical": stats["identical"],
            "spec_payload_bytes": stats["spec_payload_bytes"],
            "problem_payload_bytes": stats["problem_payload_bytes"],
            "payload_compression": stats["payload_compression"],
            "t_cold_s": stats["t_cold_s"],
            "t_warm_s": stats["t_warm_s"],
            "ok": ok,
        })
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
