"""E19 -- the serve stack under open-loop load: SLOs, dedup, admission.

The load harness (:mod:`repro.loadgen`) replays a *seeded* open-loop
schedule -- Poisson arrivals, Zipf hot-key skew over a small scenario
grid -- against a live unix-socket :class:`~repro.serve.SweepServer`,
then reconciles what the clients measured against the server's own
``metrics`` counters.  Two phases:

* **traffic** -- a cold-store replay.  Every machine-independent number
  is exact by construction: the seeded schedule fixes the request mix,
  so unique cells, the dedup ratio, and fresh solves (``computed`` ==
  unique) must reproduce bit-for-bit on any machine.  Latency
  percentiles are recorded for the report but never gated (wall clock is
  machine-dependent).
* **admission** -- an event-gated solver pins the service's only
  admission slot and the harness replays probe arrivals: with
  ``admission_limit=1`` every probe must bounce with a structured
  ``rejected`` line, deterministically, and still reconcile.

Run standalone:  python benchmarks/bench_serve_load.py [--quick] [--json PATH]
"""

from __future__ import annotations

import asyncio
import sys
import tempfile
import threading

from repro import Portfolio, clear_caches
from repro.core.problem import TradeoffSolution
from repro.engine import (
    MIN_MAKESPAN,
    register_solver,
    set_solution_store,
    unregister_solver,
)
from repro.engine.async_service import AsyncSweepService
from repro.loadgen import build_schedule, render_report, run_load
from repro.scenarios import Axis, ScenarioGrid
from repro.serve import SweepServer

from bench_common import emit, parse_json_flag, write_json_artifact

REQUESTS = 300
QUICK_REQUESTS = 60
RATE = 200.0
SKEW = 1.2
SEED = 0
CONNECTIONS = 4
PROBES = 5

GRID = ScenarioGrid(
    generators=({"generator": "fork-join",
                 "params": {"width": Axis([2, 3, 4]), "work": Axis([4, 8])}},),
    budget_rules=(("makespan-factor", 0.5), ("makespan-factor", 0.75)),
)


def _fresh_state():
    clear_caches()
    set_solution_store(None)


def run_traffic_phase(requests: int):
    """Cold-store open-loop replay; returns the reconciled LoadReport."""
    schedule = build_schedule("poisson", rate=RATE, count=requests,
                              num_cells=GRID.size(), skew=SKEW, seed=SEED)
    # the determinism contract: rebuilding the schedule reproduces it
    rebuilt = build_schedule("poisson", rate=RATE, count=requests,
                             num_cells=GRID.size(), skew=SKEW, seed=SEED)
    deterministic = schedule.signature() == rebuilt.signature()

    async def body():
        with tempfile.TemporaryDirectory(prefix="bench-load-") as tmp:
            service = AsyncSweepService(
                store=f"{tmp}/store",
                portfolio=Portfolio(executor="thread", max_workers=2))
            async with SweepServer(service,
                                   unix_socket=f"{tmp}/sweep.sock") as server:
                return await run_load(schedule, GRID,
                                      unix_socket=server.unix_socket,
                                      connections=CONNECTIONS,
                                      time_scale=0.0)

    _fresh_state()
    return asyncio.run(body()), deterministic


def run_admission_phase():
    """Saturate a 1-slot server; every probe must bounce deterministically."""
    name = "bench-load-blocking"
    started = threading.Event()
    release = threading.Event()

    @register_solver(name, summary="event-gated load-bench solver",
                     objectives=(MIN_MAKESPAN,), kind="baseline",
                     theorem="-", guarantee="none", priority=996,
                     can_solve=lambda p, s, lim: True)
    def _gated(problem, structure, limits, **options):
        started.set()
        release.wait(30.0)
        return TradeoffSolution(makespan=float(problem.budget),
                                budget_used=0.0, algorithm=name)

    probe_schedule = build_schedule("poisson", rate=RATE, count=PROBES,
                                    num_cells=GRID.size(), skew=SKEW,
                                    seed=SEED + 1)

    async def body():
        with tempfile.TemporaryDirectory(prefix="bench-load-") as tmp:
            service = AsyncSweepService(
                store=f"{tmp}/store",
                portfolio=Portfolio(executor="thread", max_workers=2))
            async with SweepServer(service, unix_socket=f"{tmp}/sweep.sock",
                                   admission_limit=1) as server:
                # pin the only admission slot with a gated in-process solve
                holder = await service.submit(
                    [next(iter(GRID.expand())).materialize()], name)
                loop = asyncio.get_running_loop()
                assert await loop.run_in_executor(None, started.wait, 10.0)
                report = await run_load(probe_schedule, GRID,
                                        unix_socket=server.unix_socket,
                                        connections=2, method=name,
                                        time_scale=0.0)
                release.set()
                await holder.results()
                return report

    _fresh_state()
    try:
        return asyncio.run(body())
    finally:
        release.set()
        unregister_solver(name)


def run_comparison(requests: int):
    traffic, deterministic = run_traffic_phase(requests)
    admission = run_admission_phase()
    metrics = traffic.machine_independent()
    return {
        "traffic": traffic,
        "admission": admission,
        "requests": metrics["requests"],
        "delivered": metrics["delivered"],
        "unique_cells": metrics["unique_cells"],
        "dedup_ratio": metrics["dedup_ratio"],
        "cells_solved": metrics["cells_solved"],
        "cells_per_request": metrics["cells_per_request"],
        "shared_hits": metrics["shared_hits"],
        "schedule_deterministic": deterministic,
        "traffic_reconciled": metrics["reconciled"],
        "rejected_probes": admission.counts["rejected"],
        "admission_reconciled": not admission.reconcile(),
    }


def check(stats) -> bool:
    return (stats["schedule_deterministic"]
            and stats["traffic_reconciled"]
            and stats["admission_reconciled"]
            and stats["delivered"] == stats["requests"]
            # a cold store means every unique cell is one fresh solve --
            # and nothing more (dedup absorbed every repeat)
            and stats["cells_solved"] == stats["unique_cells"]
            and stats["rejected_probes"] == PROBES)


def render(stats) -> str:
    return (render_report(stats["traffic"])
            + "\n\nadmission phase: "
            + f"{stats['rejected_probes']}/{PROBES} probes rejected at the "
              f"saturated server (reconciled: "
              f"{stats['admission_reconciled']})")


# ---------------------------------------------------------------------------
# pytest entry points (run in CI with --benchmark-disable)
# ---------------------------------------------------------------------------

def test_load_harness_reconciles_and_dedups(benchmark):
    stats = run_comparison(QUICK_REQUESTS)
    emit("E19 / serve stack under open-loop load -- SLOs, dedup, admission",
         render(stats))
    assert check(stats), stats
    assert stats["dedup_ratio"] > 0.5, \
        "Zipf-skewed traffic over a small grid must dedup most requests"
    benchmark(lambda: stats["dedup_ratio"])


def test_same_seed_load_runs_report_identical_metrics():
    first, _ = run_traffic_phase(QUICK_REQUESTS)
    second, _ = run_traffic_phase(QUICK_REQUESTS)
    assert first.machine_independent() == second.machine_independent()
    assert first.reconcile() == [] and second.reconcile() == []


# ---------------------------------------------------------------------------
# standalone mode
# ---------------------------------------------------------------------------

def main(argv) -> int:
    quick = "--quick" in argv
    json_path = parse_json_flag(
        argv, "bench_serve_load.py [--quick] [--json PATH]")

    stats = run_comparison(QUICK_REQUESTS if quick else REQUESTS)
    print(render(stats))

    ok = check(stats)
    print(f"\nload harness deterministic, reconciled, dedup-exact: {ok}")

    if json_path:
        latency = stats["traffic"].latency_ms
        write_json_artifact(json_path, {
            "benchmark": "bench_serve_load",
            "quick": quick,
            "requests": stats["requests"],
            "delivered": stats["delivered"],
            "unique_cells": stats["unique_cells"],
            "dedup_ratio": stats["dedup_ratio"],
            "cells_solved": stats["cells_solved"],
            "cells_per_request": stats["cells_per_request"],
            "shared_hits": stats["shared_hits"],
            "rejected_probes": stats["rejected_probes"],
            "schedule_deterministic": stats["schedule_deterministic"],
            "reconciled": (stats["traffic_reconciled"]
                           and stats["admission_reconciled"]),
            # recorded for the curious, never gated (machine-dependent)
            "latency_p50_ms": latency["p50"],
            "latency_p95_ms": latency["p95"],
            "latency_p99_ms": latency["p99"],
            "wall_s": stats["traffic"].wall_s,
            "ok": ok,
        })
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
