"""E10 -- Section 3.4: the O(m B^2) series-parallel dynamic program.

Times the DP as the instance size ``m`` and the budget ``B`` grow, verifies
the pseudo-polynomial scaling shape (the cost is driven by ``m`` and ``B``,
not by the numeric values of the durations), and cross-checks the DP against
the LP-based approximation on the same instances (the ablation the paper's
Section 3.4 motivates: exact where the structure allows, approximate in
general).
"""

from __future__ import annotations

import time


from repro.analysis import format_table
from repro.core.series_parallel import sp_min_makespan_table
from repro.engine import solve
from repro.generators import balanced_sp_tree, random_sp_tree

from bench_common import emit


def test_sp_dp_scaling(benchmark):
    tree = balanced_sp_tree(5, family="binary", seed=3)  # 32 jobs
    benchmark(lambda: sp_min_makespan_table(tree, 64))

    rows = []
    for depth in [3, 4, 5, 6]:
        for budget in [16, 64, 256]:
            t = balanced_sp_tree(depth, family="binary", seed=3)
            start = time.perf_counter()
            table = sp_min_makespan_table(t, budget)
            elapsed = time.perf_counter() - start
            rows.append([2 ** depth, budget, float(table[budget]), round(elapsed * 1000, 2)])
    emit("E10 / Section 3.4 -- series-parallel DP, O(m B^2) scaling",
         format_table(["jobs m", "budget B", "optimal makespan", "time (ms)"], rows))


def test_sp_dp_vs_lp_approximation(benchmark):
    tree = random_sp_tree(12, family="binary", seed=11)
    dag = tree.to_dag()
    budget = 16

    # the engine's auto-dispatch recognises the SP structure and runs the DP
    exact = benchmark(lambda: solve(dag=dag, budget=budget, use_cache=False))
    assert exact.solver_id == "series-parallel-dp"
    rows = []
    for alpha in [0.25, 0.5, 0.75]:
        approx = solve(dag=dag, budget=budget, method="bicriteria-lp", alpha=alpha)
        rows.append([alpha, exact.makespan, approx.makespan,
                     approx.makespan / exact.makespan if exact.makespan else 1.0,
                     approx.budget_used])
    emit("E10b / exact DP vs LP bi-criteria on the same series-parallel instance (budget 16)",
         format_table(["alpha", "exact makespan", "bi-criteria makespan", "ratio",
                       "bi-criteria budget"], rows))
    for row in rows:
        assert row[3] <= 1 / row[0] + 1e-6
