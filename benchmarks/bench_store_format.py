"""E19 -- packed binary store format: lazy v2 shards vs sharded JSON (v1).

The tier-2 :class:`~repro.engine.store.SolutionStore` used to keep each
shard as one JSON blob: any ``get()`` parsed the whole shard, a bulk table
regeneration re-decoded every alias entry, and 10^7-entry deployments paid
for it.  The packed v2 format puts a fixed-width, key-sorted record table
in front of per-entry payload blobs: ``get()`` binary-searches the table
and decodes ONE payload, alias entries resolve from the record flags with
no JSON decode at all, and :meth:`~repro.engine.store.SolutionStore.scan`
streams the whole store in one pass.  This benchmark measures both layouts
on the same contents (real solved reports + bulk entries + aliases):

* **sharded JSON (v1)** -- the legacy format, bulk-read via ``scan()``
  (which falls back to full shard parses there);
* **packed binary (v2)** -- the same store after ``migrate()``.

The gate is **machine-independent** (the ISSUE 6 acceptance criteria): the
warm bulk scan over v2 performs 0 full-shard JSON parses and 0
alias-payload decodes (one decode per non-alias entry, nothing more), a
cold point ``get()`` decodes exactly one payload, an alias ``get()``
decodes zero, and the v1 -> v2 migration round-trips every payload
bit-identically.  Wall-clock is reported for humans but never gated on.

Run standalone:  python benchmarks/bench_store_format.py [--quick] [--json PATH]
"""

from __future__ import annotations

import hashlib
import json
import shutil
import sys
import tempfile
import time

from repro import clear_caches
from repro.analysis import format_table
from repro.analysis.sweep import sweep_records
from repro.core.dag import TradeoffDAG
from repro.core.duration import GeneralStepDuration
from repro.core.problem import MinMakespanProblem
from repro.engine import SolutionStore, request_key
from repro.engine.core import solve

from bench_common import emit, parse_json_flag, write_json_artifact

#: Bulk synthetic entries (quick / full).  Real solved reports ride along so
#: the migration round-trip covers true SolveReport payloads too.
BULK_ENTRIES = 4000
QUICK_BULK = 400
REPORT_BUDGETS = (1.0, 2.0, 3.0, 4.0)
ALIAS_EVERY = 4  # one alias entry per this many bulk entries


def _chain_problem(budget: float) -> MinMakespanProblem:
    dag = TradeoffDAG()
    for name in ("s", "x", "t"):
        dag.add_job(name, GeneralStepDuration([(0, 4), (2, 1)]))
    dag.add_edge("s", "x")
    dag.add_edge("x", "t")
    return MinMakespanProblem(dag, budget)


def _bulk_key(index: int) -> str:
    return hashlib.sha256(f"bulk:{index}".encode()).hexdigest()


def _bulk_payload(index: int) -> dict:
    return {
        "solver_id": "bench-synthetic",
        "objective": "min_makespan",
        "wall_time": 0.001 * (index % 7),
        "parameter": float(index % 13 + 1),
        "solution": {"makespan": float(index % 97),
                     "budget_used": float(index % 11),
                     "lower_bound": float(index % 97) / 2.0 or None},
    }


def build_v1_store(root: str, bulk: int) -> dict:
    """Populate a legacy sharded-JSON store: reports + bulk + aliases."""
    clear_caches()
    store = SolutionStore(root, shard_format="json")
    report_keys = []
    for budget in REPORT_BUDGETS:
        problem = _chain_problem(budget)
        key = request_key(problem)
        store.put_report(key, solve(problem, use_cache=False))
        report_keys.append(key)
    items = [(_bulk_key(i), _bulk_payload(i)) for i in range(bulk)]
    aliases = [(hashlib.sha256(f"alias:{i}".encode()).hexdigest(),
                {"alias_of": _bulk_key(i)})
               for i in range(0, bulk, ALIAS_EVERY)]
    store.put_many(items + aliases)
    return {"store": store, "report_keys": report_keys,
            "non_alias": bulk + len(REPORT_BUDGETS), "aliases": len(aliases)}


def _snapshot(store: SolutionStore) -> str:
    """Canonical JSON of every payload -- the bit-identity yardstick."""
    return json.dumps(dict(store.payloads()), sort_keys=True)


def timed_scan(root: str) -> tuple:
    """Cold-handle bulk scan (the analysis/sweep.py table-regen path)."""
    store = SolutionStore(root)
    start = time.perf_counter()
    records = sweep_records(store)
    wall = time.perf_counter() - start
    return records, store.info(), wall


def run_comparison(bulk: int) -> dict:
    workdir = tempfile.mkdtemp(prefix="bench-store-")
    try:
        seeded = build_v1_store(f"{workdir}/v1", bulk)
        before = _snapshot(seeded["store"])

        json_records, json_info, t_json = timed_scan(f"{workdir}/v1")

        # v1 -> v2 migration on a copy (so both layouts hold the same data)
        shutil.copytree(f"{workdir}/v1", f"{workdir}/v2")
        migration = SolutionStore(f"{workdir}/v2",
                                  shard_format="binary").migrate()
        migrated = SolutionStore(f"{workdir}/v2")
        migration_identical = _snapshot(migrated) == before
        reports_decode = all(migrated.get_report(key) is not None
                             for key in seeded["report_keys"])

        binary_records, binary_info, t_binary = timed_scan(f"{workdir}/v2")

        # cold point lookups on v2: one decode per get, zero for aliases
        point = SolutionStore(f"{workdir}/v2")
        point.get(_bulk_key(1))
        point.get(_bulk_key(2))
        alias_key = hashlib.sha256(b"alias:0").hexdigest()
        point.get(alias_key)
        point_info = point.info()

        return {
            "entries": seeded["non_alias"] + seeded["aliases"],
            "non_alias": seeded["non_alias"],
            "aliases": seeded["aliases"],
            "records_match": json_records == binary_records,
            "json_full_shard_parses": json_info["full_shard_parses"],
            "binary_full_shard_parses": binary_info["full_shard_parses"],
            "binary_payload_decodes": binary_info["payload_decodes"],
            "binary_alias_skips": binary_info["scan_alias_skips"],
            "migration_shards": migration["shards"],
            "migration_failed": migration["failed"],
            "migration_identical": migration_identical,
            "reports_decode": reports_decode,
            "point_payload_decodes": point_info["payload_decodes"],
            "point_alias_fast_hits": point_info["alias_fast_hits"],
            "t_scan_json_s": t_json,
            "t_scan_binary_s": t_binary,
        }
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


#: The machine-independent acceptance conditions, shared by the standalone
#: gate and the pytest entry point so the two can never diverge.
GATE_CONDITIONS = [
    ("binary bulk scan performs zero full-shard JSON parses",
     lambda s: s["binary_full_shard_parses"] == 0),
    ("binary bulk scan decodes exactly one payload per non-alias entry",
     lambda s: s["binary_payload_decodes"] == s["non_alias"]),
    ("binary bulk scan skips every alias without decoding it",
     lambda s: s["binary_alias_skips"] == s["aliases"]),
    ("both layouts produce identical sweep records",
     lambda s: s["records_match"]),
    ("v1 -> v2 migration round-trips every payload bit-identically",
     lambda s: s["migration_identical"] and s["migration_failed"] == 0),
    ("migrated SolveReports still decode",
     lambda s: s["reports_decode"]),
    ("a cold point get() decodes exactly one payload",
     lambda s: s["point_payload_decodes"] == 2),
    ("an alias point get() resolves with zero payload decodes",
     lambda s: s["point_alias_fast_hits"] == 1),
    ("the JSON path really was paying full-shard parses",
     lambda s: s["json_full_shard_parses"] > 0),
]


def gate(stats) -> bool:
    """The machine-independent acceptance predicate (counters only)."""
    return all(condition(stats) for _label, condition in GATE_CONDITIONS)


def render(stats) -> str:
    rows = [
        ["sharded JSON (v1)", str(stats["json_full_shard_parses"]), "n/a",
         "n/a", f"{stats['t_scan_json_s'] * 1000:.0f}", "1.00"],
        ["packed binary (v2)", str(stats["binary_full_shard_parses"]),
         str(stats["binary_payload_decodes"]),
         str(stats["binary_alias_skips"]),
         f"{stats['t_scan_binary_s'] * 1000:.0f}",
         f"{stats['t_scan_json_s'] / max(stats['t_scan_binary_s'], 1e-9):.2f}"],
    ]
    header = (f"bulk scan of {stats['entries']} entries "
              f"({stats['non_alias']} payloads + {stats['aliases']} aliases) "
              f"in {stats['migration_shards']} shards; "
              f"migration bit-identical: {stats['migration_identical']}, "
              f"identical records: {stats['records_match']}")
    return header + "\n\n" + format_table(
        ["layout", "full shard parses", "payload decodes", "alias skips",
         "wall time (ms)", "speedup vs JSON"], rows)


# ---------------------------------------------------------------------------
# pytest entry points (run in CI with --benchmark-disable)
# ---------------------------------------------------------------------------

def test_packed_store_scans_without_full_parses(benchmark):
    stats = run_comparison(QUICK_BULK)
    emit("E19 / packed binary store -- lazy v2 shards vs sharded JSON",
         render(stats))
    for label, condition in GATE_CONDITIONS:
        assert condition(stats), f"{label} (stats: {stats})"

    workdir = tempfile.mkdtemp(prefix="bench-store-pytest-")
    try:
        build_v1_store(f"{workdir}/v1", QUICK_BULK)
        SolutionStore(f"{workdir}/v1", shard_format="binary").migrate()

        def binary_scan():
            return sweep_records(SolutionStore(f"{workdir}/v1"))

        benchmark(binary_scan)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


# ---------------------------------------------------------------------------
# standalone mode
# ---------------------------------------------------------------------------

def main(argv) -> int:
    quick = "--quick" in argv
    json_path = parse_json_flag(
        argv, "bench_store_format.py [--quick] [--json PATH]")

    stats = run_comparison(QUICK_BULK if quick else BULK_ENTRIES)
    print(render(stats))
    ok = gate(stats)
    print(f"\npacked v2 beats sharded JSON on decode counters (0 full "
          f"parses, 0 alias decodes, bit-identical migration): {ok}")

    if json_path:
        write_json_artifact(json_path, {
            "benchmark": "bench_store_format",
            "quick": quick,
            "entries": stats["entries"],
            "non_alias": stats["non_alias"],
            "aliases": stats["aliases"],
            "binary_full_shard_parses": stats["binary_full_shard_parses"],
            "binary_payload_decodes": stats["binary_payload_decodes"],
            "binary_alias_skips": stats["binary_alias_skips"],
            "json_full_shard_parses": stats["json_full_shard_parses"],
            "records_match": stats["records_match"],
            "migration_identical": stats["migration_identical"],
            "reports_decode": stats["reports_decode"],
            "point_payload_decodes": stats["point_payload_decodes"],
            "point_alias_fast_hits": stats["point_alias_fast_hits"],
            "t_scan_json_s": stats["t_scan_json_s"],
            "t_scan_binary_s": stats["t_scan_binary_s"],
            "ok": ok,
        })
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
