"""E17 -- the sweep service: persistent store + batched shards vs portfolio map.

PR 1's serving shape (``Portfolio.map`` over a warm process pool) recomputes
every scenario on every run; the sweep service adds the two pieces the
ROADMAP asks for on top of it: a **persistent cross-process solution store**
(tier 2 of the engine cache) and **batched, deduplicated, resumable**
sweep execution.  This benchmark measures both claims:

* **warm-store sweep beats the cold portfolio map** -- the same scenario
  batch is swept twice through a :class:`repro.SweepService` backed by an
  on-disk store; the second (warm) sweep must answer >= 90% of unique
  requests from the store and finish measurably faster than a cold
  ``Portfolio.map`` over the full batch;
* **an interrupted sweep resumes from the manifest** -- the stream is cut
  after a prefix of results, and the follow-up sweep must only compute the
  scenarios the interrupted run never finished.

The sweep-quality table (per-solver empirical ratios) is regenerated from
the *store* afterwards -- no solver re-runs.

Run standalone:  python benchmarks/bench_sweep_service.py [--quick] [--json PATH]
"""

from __future__ import annotations

import os
import sys
import tempfile
import time


from repro import MinMakespanProblem, Portfolio, SolutionStore, SweepService, clear_caches
from repro.analysis import format_table, render_sweep_table
from repro.generators import get_workload

from bench_common import emit, parse_json_flag, write_json_artifact

SCENARIO_NAMES = ["small-layered-general", "small-layered-binary", "small-layered-kway",
                  "medium-layered-general", "medium-layered-binary", "pipeline"]
BUDGET_FACTORS = [0.75, 1.0, 1.25]
REPEATS = 3

QUICK_NAMES = SCENARIO_NAMES[:3]
QUICK_FACTORS = [1.0, 1.25]
QUICK_REPEATS = 2

METHOD = "bicriteria-lp"
OPTIONS = {"alpha": 0.5}


def build_batch(names=SCENARIO_NAMES, factors=BUDGET_FACTORS, repeats=REPEATS):
    """A scenario batch with both distinct instances and exact repeats."""
    problems = []
    for name in names:
        workload = get_workload(name)
        dag = workload.build()
        for factor in factors:
            problems.append(MinMakespanProblem(dag, workload.budget * factor))
    return problems * repeats


def run_sweep_comparison(names=SCENARIO_NAMES, factors=BUDGET_FACTORS,
                         repeats=REPEATS, store_root=None):
    """Cold portfolio map vs cold sweep vs warm-store sweep on one batch."""
    problems = build_batch(names, factors, repeats)
    store_root = store_root or tempfile.mkdtemp(prefix="repro-sweep-bench-")

    with Portfolio(executor="process") as portfolio:
        # strategy 1: cold Portfolio.map (PR 1's serving shape; pool started
        # outside the timed region, exactly like a standing deployment)
        clear_caches()
        start = time.perf_counter()
        mapped = portfolio.map(problems, method=METHOD, **OPTIONS)
        t_portfolio = time.perf_counter() - start

        service = SweepService(store=SolutionStore(os.path.join(store_root, "store")),
                               portfolio=portfolio)
        # strategy 2: cold sweep (empty store; dedup + shards, fills tier 2)
        clear_caches()
        start = time.perf_counter()
        cold = service.run(problems, METHOD, **OPTIONS)
        t_cold = time.perf_counter() - start

        # strategy 3: warm sweep (same batch again; the store answers)
        clear_caches()
        start = time.perf_counter()
        warm = service.run(problems, METHOD, **OPTIONS)
        t_warm = time.perf_counter() - start

    for direct, c, w in zip(mapped, cold.reports(), warm.reports()):
        assert abs(direct.makespan - c.makespan) < 1e-9
        assert abs(direct.makespan - w.makespan) < 1e-9

    return {
        "requests": len(problems),
        "unique": cold.stats.unique,
        "t_portfolio_map": t_portfolio,
        "t_cold_sweep": t_cold,
        "t_warm_sweep": t_warm,
        "cold_stats": cold.stats,
        "warm_stats": warm.stats,
        "store_root": store_root,
    }


def render_comparison(stats) -> str:
    def speedup(t):
        return f"{stats['t_portfolio_map'] / t:.2f}"

    rows = [
        ["portfolio map (cold, warm pool)",
         f"{stats['t_portfolio_map'] * 1000:.0f}", "1.00", "-"],
        ["sweep service (cold store)",
         f"{stats['t_cold_sweep'] * 1000:.0f}", speedup(stats["t_cold_sweep"]),
         f"{stats['cold_stats'].store_hits}/{stats['unique']}"],
        ["sweep service (warm store)",
         f"{stats['t_warm_sweep'] * 1000:.0f}", speedup(stats["t_warm_sweep"]),
         f"{stats['warm_stats'].store_hits}/{stats['unique']}"],
    ]
    header = (f"{stats['requests']} requests over {stats['unique']} unique scenarios "
              f"(identical solutions for all strategies)")
    return header + "\n\n" + format_table(
        ["strategy", "wall time (ms)", "speedup vs map", "store hits"], rows)


def run_resume(names=QUICK_NAMES, factors=QUICK_FACTORS, take: int = 4):
    """Interrupt a manifest-backed sweep, then resume it from the store."""
    problems = build_batch(names, factors, repeats=1)
    root = tempfile.mkdtemp(prefix="repro-sweep-resume-")
    manifest = os.path.join(root, "manifest.json")
    with SweepService(store=SolutionStore(os.path.join(root, "store")),
                      portfolio=Portfolio(executor="process")) as service:
        clear_caches()
        generator = service.sweep(problems, METHOD, manifest=manifest,
                                  shard_size=1, **OPTIONS)
        finished = [next(generator) for _ in range(take)]
        generator.close()  # the "crash": shards beyond `take` never ran
        interrupted_done = {r.key for r in finished}

        clear_caches()
        resumed = service.run(problems, METHOD, manifest=manifest,
                              shard_size=1, **OPTIONS)
    return interrupted_done, resumed


def render_resume(interrupted_done, resumed) -> str:
    stats = resumed.stats
    lines = [
        f"interrupted after {len(interrupted_done)} of {stats.unique} unique scenarios",
        f"resume: {stats.store_hits} from store "
        f"({stats.resumed} via manifest), {stats.computed} computed, "
        f"{stats.failed} failed",
        f"recomputed already-finished scenarios: "
        f"{len(interrupted_done) - stats.resumed}",
    ]
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# pytest entry points (run in CI with --benchmark-disable)
# ---------------------------------------------------------------------------

def test_warm_store_sweep_beats_cold_portfolio_map(benchmark):
    stats = run_sweep_comparison(QUICK_NAMES, QUICK_FACTORS, QUICK_REPEATS)
    emit("E17 / sweep service -- cold portfolio map vs cold/warm store sweeps",
         render_comparison(stats)
         + f"\n\ncold: {stats['cold_stats'].summary()}"
         + f"\nwarm: {stats['warm_stats'].summary()}")

    warm = stats["warm_stats"]
    assert warm.hit_rate >= 0.9, f"warm sweep hit rate {warm.hit_rate:.0%} < 90%"
    assert warm.computed == 0, "a warm sweep over the same batch must not re-solve"
    assert stats["t_warm_sweep"] < stats["t_portfolio_map"], (
        f"warm store sweep ({stats['t_warm_sweep'] * 1000:.0f}ms) must beat the "
        f"cold portfolio map ({stats['t_portfolio_map'] * 1000:.0f}ms)")

    # timing microbenchmark: the warm path end to end on the existing store
    problems = build_batch(QUICK_NAMES, QUICK_FACTORS, 1)
    store = SolutionStore(os.path.join(stats["store_root"], "store"))
    with SweepService(store=store, portfolio=Portfolio(executor="thread")) as service:
        benchmark(lambda: (clear_caches(), service.run(problems, METHOD, **OPTIONS)))


def test_interrupted_sweep_resumes_from_manifest(benchmark):
    interrupted_done, resumed = run_resume()
    emit("E17b / sweep service -- resume from manifest after interruption",
         render_resume(interrupted_done, resumed))
    stats = resumed.stats
    # every scenario the interrupted run finished is served from the store...
    assert stats.resumed == len(interrupted_done)
    assert stats.store_hits >= len(interrupted_done)
    # ...and only the remainder is computed: nothing is recomputed
    assert stats.computed == stats.unique - stats.store_hits
    assert stats.failed == 0
    benchmark(lambda: len(interrupted_done))


def test_sweep_table_renders_from_store():
    stats = run_sweep_comparison(QUICK_NAMES[:2], [1.0], repeats=1)
    store = SolutionStore(os.path.join(stats["store_root"], "store"))
    table = render_sweep_table(store, title="sweep quality (from store)")
    emit("E17c / sweep quality table regenerated from the persistent store", table)
    assert METHOD in table  # the dispatched solver id shows up as a row


# ---------------------------------------------------------------------------
# standalone mode
# ---------------------------------------------------------------------------

def main(argv) -> int:
    quick = "--quick" in argv
    json_path = parse_json_flag(
        argv, "bench_sweep_service.py [--quick] [--json PATH]")

    names = QUICK_NAMES if quick else SCENARIO_NAMES
    factors = QUICK_FACTORS if quick else BUDGET_FACTORS
    repeats = QUICK_REPEATS if quick else REPEATS

    stats = run_sweep_comparison(names, factors, repeats)
    print(render_comparison(stats))
    print()
    interrupted_done, resumed = run_resume(names, factors)
    print(render_resume(interrupted_done, resumed))
    print()
    print(render_sweep_table(
        SolutionStore(os.path.join(stats["store_root"], "store")),
        title="sweep quality table (regenerated from the store)"))

    warm = stats["warm_stats"]
    ok = (warm.hit_rate >= 0.9
          and stats["t_warm_sweep"] < stats["t_portfolio_map"]
          and resumed.stats.resumed == len(interrupted_done)
          and resumed.stats.computed == resumed.stats.unique - resumed.stats.store_hits)
    print(f"\nwarm-store sweep beats cold portfolio map with >=90% hits "
          f"and lossless resume: {ok}")

    if json_path:
        write_json_artifact(json_path, {
            "benchmark": "bench_sweep_service",
            "quick": quick,
            "requests": stats["requests"],
            "unique": stats["unique"],
            "t_portfolio_map_s": stats["t_portfolio_map"],
            "t_cold_sweep_s": stats["t_cold_sweep"],
            "t_warm_sweep_s": stats["t_warm_sweep"],
            "warm_hit_rate": warm.hit_rate,
            "warm_computed": warm.computed,
            "resume_interrupted_done": len(interrupted_done),
            "resume_store_hits": resumed.stats.store_hits,
            "resume_computed": resumed.stats.computed,
            "ok": ok,
        })
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
