"""E2 -- Table 1, row "Recursive binary": 4-approx and (4/3, 14/5) bi-criteria.

Measures the makespan of Theorem 3.10's single-criteria 4-approximation and
Theorem 3.16's improved bi-criteria algorithm against exact optima (series-
parallel DP or enumeration) and LP lower bounds on recursive-binary
workloads, and checks the proven factors.
"""

from __future__ import annotations


from repro.analysis import format_table
from repro.engine import SolveLimits, exact_reference, solve
from repro.generators import get_workload

from bench_common import emit

WORKLOADS = ["small-layered-binary", "deep-chain-binary", "matmul-like"]

_LIMITS = SolveLimits(max_exact_combinations=200_000)


def _exact(dag, budget):
    reference = exact_reference(dag=dag, budget=budget, limits=_LIMITS)
    return reference.makespan if reference is not None else None


def _collect():
    rows = []
    worst_plain, worst_improved_ms, worst_improved_budget = 0.0, 0.0, 0.0
    for name in WORKLOADS:
        workload = get_workload(name)
        dag = workload.build()
        plain = solve(dag=dag, budget=workload.budget, method="binary-4approx").solution
        improved = solve(dag=dag, budget=workload.budget, method="binary-improved").solution
        exact = _exact(dag, workload.budget)
        reference = exact if exact else plain.lower_bound
        ratio_plain = plain.makespan / reference if reference else 1.0
        ratio_improved = improved.makespan / improved.metadata["lp_makespan"] \
            if improved.metadata["lp_makespan"] else 1.0
        budget_factor = improved.budget_used / workload.budget if workload.budget else 1.0
        worst_plain = max(worst_plain, ratio_plain)
        worst_improved_ms = max(worst_improved_ms, ratio_improved)
        worst_improved_budget = max(worst_improved_budget, budget_factor)
        rows.append([name, workload.budget, exact if exact is not None else "-",
                     plain.makespan, ratio_plain, improved.makespan, ratio_improved,
                     budget_factor])
    return rows, worst_plain, worst_improved_ms, worst_improved_budget


def test_table1_binary_approximations(benchmark):
    workload = get_workload("matmul-like")
    dag = workload.build()
    benchmark(lambda: solve(dag=dag, budget=workload.budget, method="binary-4approx",
                            use_cache=False))

    rows, worst_plain, worst_improved_ms, worst_improved_budget = _collect()
    emit(
        "E2 / Table 1 row 'Recursive binary' -- 4-approx (Thm 3.10) and (4/3, 14/5) (Thm 3.16)",
        format_table(
            ["workload", "budget", "exact OPT", "4-approx makespan", "ratio (bound 4)",
             "improved makespan", "ratio vs LP (bound 14/5)", "budget factor (bound 4/3)"],
            rows,
        ),
    )
    assert worst_plain <= 4 + 1e-6
    assert worst_improved_ms <= 14 / 5 + 1e-6
    assert worst_improved_budget <= 4 / 3 + 1e-6
