"""E1 -- Table 1, row "General non-increasing": the bi-criteria guarantee.

Reproduces the (makespan, resource) bi-criteria behaviour of Theorem 3.4 on
random general-step-duration workloads: for every rounding threshold alpha
the measured makespan inflation (vs. the LP lower bound / the exact optimum)
must stay within 1/alpha and the measured resource inflation within
1/(1-alpha).  The benchmark times one full pipeline run and prints the
measured worst-case factors next to the proven bounds.
"""

from __future__ import annotations


from repro.analysis import format_table
from repro.analysis.ratios import measure_ratios, summarize_measurements
from repro.engine import solve
from repro.generators import get_workload

from bench_common import emit

GENERAL_WORKLOADS = ["small-layered-general", "medium-layered-general", "pipeline"]
ALPHAS = [0.25, 0.5, 0.75]


def _run_sweep():
    rows = []
    for alpha in ALPHAS:
        measurements = []
        for name in GENERAL_WORKLOADS:
            workload = get_workload(name)
            dag = workload.build()
            measurements += measure_ratios(
                dag, workload.budget, name,
                {"bicriteria": lambda d, b, a=alpha:
                    solve(dag=d, budget=b, method="bicriteria-lp", alpha=a).solution},
                compute_exact=(name.startswith("small")),
            )
        summary = summarize_measurements(measurements)["bicriteria"]
        rows.append([
            alpha,
            f"{1 / alpha:.2f}",
            summary["worst_ratio_vs_lp"],
            summary["worst_ratio_vs_exact"] or "-",
            f"{1 / (1 - alpha):.2f}",
            summary["worst_budget_ratio"],
        ])
    return rows


def test_table1_general_bicriteria(benchmark):
    workload = get_workload("medium-layered-general")
    dag = workload.build()
    benchmark(lambda: solve(dag=dag, budget=workload.budget, method="bicriteria-lp",
                            alpha=0.5, use_cache=False))

    rows = _run_sweep()
    emit(
        "E1 / Table 1 row 'General non-increasing' -- bi-criteria (Theorem 3.4)",
        format_table(
            ["alpha", "proven makespan factor (1/alpha)", "measured worst vs LP",
             "measured worst vs exact", "proven resource factor (1/(1-alpha))",
             "measured worst budget factor"],
            rows,
        ),
    )
    for alpha, row in zip(ALPHAS, rows):
        assert row[2] <= 1 / alpha + 1e-6          # makespan factor within the bound
        assert row[5] <= 1 / (1 - alpha) + 1e-6    # resource factor within the bound
