"""E3 -- Table 1, row "Multiway splitting": the 5-approximation (Theorem 3.9)."""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.core.exact import ExactSearchLimit, exact_min_makespan
from repro.core.kway_approx import solve_min_makespan_kway
from repro.core.series_parallel import decompose_series_parallel, sp_exact_min_makespan
from repro.generators import get_workload

from bench_common import emit

WORKLOADS = ["small-layered-kway", "deep-chain-kway", "medium-layered-kway"]


def _exact(dag, budget):
    tree = decompose_series_parallel(dag)
    if tree is not None:
        return sp_exact_min_makespan(tree, int(budget)).makespan
    try:
        return exact_min_makespan(dag, budget, max_combinations=40_000).makespan
    except ExactSearchLimit:
        return None


def test_table1_kway_five_approximation(benchmark):
    workload = get_workload("medium-layered-kway")
    dag = workload.build()
    benchmark(lambda: solve_min_makespan_kway(dag, workload.budget))

    rows = []
    worst = 0.0
    for name in WORKLOADS:
        workload = get_workload(name)
        dag = workload.build()
        solution = solve_min_makespan_kway(dag, workload.budget)
        exact = _exact(dag, workload.budget)
        reference = exact if exact else solution.lower_bound
        ratio = solution.makespan / reference if reference else 1.0
        worst = max(worst, ratio)
        rows.append([name, workload.budget, exact if exact is not None else "-",
                     solution.lower_bound, solution.makespan, solution.budget_used, ratio])

    emit(
        "E3 / Table 1 row 'Multiway splitting' -- 5-approximation (Theorem 3.9)",
        format_table(
            ["workload", "budget", "exact OPT", "LP lower bound", "5-approx makespan",
             "budget used", "measured ratio (bound 5)"],
            rows,
        ),
    )
    assert worst <= 5 + 1e-6
