"""E3 -- Table 1, row "Multiway splitting": the 5-approximation (Theorem 3.9)."""

from __future__ import annotations


from repro.analysis import format_table
from repro.engine import SolveLimits, exact_reference, solve
from repro.generators import get_workload

from bench_common import emit

WORKLOADS = ["small-layered-kway", "deep-chain-kway", "medium-layered-kway"]

_LIMITS = SolveLimits(max_exact_combinations=40_000)


def _exact(dag, budget):
    reference = exact_reference(dag=dag, budget=budget, limits=_LIMITS)
    return reference.makespan if reference is not None else None


def test_table1_kway_five_approximation(benchmark):
    workload = get_workload("medium-layered-kway")
    dag = workload.build()
    benchmark(lambda: solve(dag=dag, budget=workload.budget, method="kway-5approx",
                            use_cache=False))

    rows = []
    worst = 0.0
    for name in WORKLOADS:
        workload = get_workload(name)
        dag = workload.build()
        solution = solve(dag=dag, budget=workload.budget, method="kway-5approx").solution
        exact = _exact(dag, workload.budget)
        reference = exact if exact else solution.lower_bound
        ratio = solution.makespan / reference if reference else 1.0
        worst = max(worst, ratio)
        rows.append([name, workload.budget, exact if exact is not None else "-",
                     solution.lower_bound, solution.makespan, solution.budget_used, ratio])

    emit(
        "E3 / Table 1 row 'Multiway splitting' -- 5-approximation (Theorem 3.9)",
        format_table(
            ["workload", "budget", "exact OPT", "LP lower bound", "5-approx makespan",
             "budget used", "measured ratio (bound 5)"],
            rows,
        ),
    )
    assert worst <= 5 + 1e-6
