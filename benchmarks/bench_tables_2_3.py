"""E5 / E6 -- regenerate Table 2 and Table 3 from the gadget constructions."""

from __future__ import annotations


from repro.analysis import render_table2, render_table3
from repro.hardness.gadgets_general import table2_rows
from repro.hardness.gadgets_splitting import section42_parameters, table3_rows

from bench_common import emit


def test_table2_regeneration(benchmark):
    rows = benchmark(table2_rows)
    emit("E5 / Table 2 -- earliest start times of C(5), C(6), C(7) (Theorem 4.1 gadget)",
         render_table2())
    assert len(rows) == 8
    # exactly the 1-in-3 rows have a zero column
    one_in_three = [r for r in rows if [r[0], r[1], r[2]].count("True") == 1]
    assert all(0 in r[3:] for r in one_in_three)


def test_table3_regeneration(benchmark):
    params = section42_parameters(3, 2)
    x = int(params["x"])
    rows = benchmark(lambda: table3_rows(x))
    emit(f"E6 / Table 3 -- earliest finish times of C(5), C(6), C(7) (Section 4.2 gadget, x={x})",
         render_table3(x) + f"\n(a = 6x+4 = {6 * x + 4}, b = 5x+6 = {5 * x + 6})")
    assert len(rows) == 8
    b_plus_2 = 5 * x + 6 + 2
    early_rows = [r for r in rows if b_plus_2 in r[3:]]
    # exactly the three 1-in-3 satisfying assignments finish one branch early
    assert len(early_rows) == 3
