"""E20 -- warm-started LP sweeps: one skeleton, warm re-solves vs cold scalar.

PR 4 eliminated per-scenario model *construction* (shared skeletons); every
budget still paid a cold simplex start inside ``scipy.optimize.linprog``.
The warm sweep kernels (:func:`repro.core.lp.solve_min_makespan_sweep` /
``solve_min_resource_sweep``) solve an ordered parameter sweep on ONE
skeleton with per-skeleton warm state: repeated RHS values are answered
from the sweep memo without a solver call, and with the optional
``highspy`` backend installed the loaded model re-solves RHS-only from the
previous optimal basis.  This benchmark compares:

* **cold scalar** -- the historical path: a fresh model + cold solve per
  budget (:func:`~repro.core.lp.solve_min_makespan_lp`);
* **warm sweep** -- one skeleton driven across the ordered budgets.

The gate is **machine-independent** (the ISSUE 6 acceptance criteria): a
same-skeleton sweep of N budgets must report >= N-1 warm-start hits out of
N sweep solves on exactly one skeleton build, with results bit-identical
to the scalar scipy path, and the engine-level certificate checks must
pass on every available backend.  Wall-clock speedup and simplex-iteration
totals are reported for humans but never gated on.

Run standalone:  python benchmarks/bench_warm_lp.py [--quick] [--json PATH]
"""

from __future__ import annotations

import sys
import time

from repro import MinMakespanProblem, clear_caches
from repro.analysis import format_table
from repro.core.lp import (
    available_lp_backends,
    lp_kernel_counters,
    solve_min_makespan_lp,
    solve_min_makespan_sweep,
    solve_min_resource_lp,
    solve_min_resource_sweep,
)
from repro.engine.core import solve
from repro.engine.structure import analyze_dag
from repro.generators import get_workload

from bench_common import emit, parse_json_flag, write_json_artifact

WORKLOAD = "medium-layered-general"
BUDGET_FACTORS = [0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0, 2.5, 3.0, 4.0, 5.0]
QUICK_FACTORS = BUDGET_FACTORS[:6]


def build_sweep(factors):
    workload = get_workload(WORKLOAD)
    dag = workload.build()
    arc_dag = analyze_dag(dag).expansion().arc_dag
    budgets = sorted(workload.budget * factor for factor in factors)
    targets = sorted(solve_min_makespan_lp(arc_dag, budget).makespan
                     for budget in budgets)
    return arc_dag, budgets, targets


def run_cold_scalar(arc_dag, budgets, targets):
    """The historical path: fresh model + cold simplex start per value."""
    clear_caches()
    start = time.perf_counter()
    makespan_solutions = [solve_min_makespan_lp(arc_dag, budget)
                          for budget in budgets]
    resource_solutions = [solve_min_resource_lp(arc_dag, target)
                          for target in targets]
    wall = time.perf_counter() - start
    return makespan_solutions, resource_solutions, lp_kernel_counters(), wall


def run_warm_sweep(arc_dag, budgets, targets):
    """One skeleton, ordered warm re-solves (basis reuse under highspy)."""
    clear_caches()
    start = time.perf_counter()
    makespan_solutions = solve_min_makespan_sweep(arc_dag, budgets)
    resource_solutions = solve_min_resource_sweep(arc_dag, targets)
    wall = time.perf_counter() - start
    return makespan_solutions, resource_solutions, lp_kernel_counters(), wall


def _identical(got, want):
    return (got.status == want.status and got.objective == want.objective
            and got.flows == want.flows and got.times == want.times
            and got.makespan == want.makespan
            and got.budget_used == want.budget_used)


def run_certificates(factors):
    """Engine-level: warm-routed solves must keep their certificates green
    on every backend the host offers (scipy always; highspy if installed)."""
    workload = get_workload(WORKLOAD)
    dag = workload.build()
    passed = {}
    for backend in available_lp_backends():
        clear_caches()
        reports = [solve(MinMakespanProblem(dag, workload.budget * factor),
                         method="bicriteria-lp", alpha=0.5, use_cache=False)
                   for factor in factors[:3]]
        passed[backend] = all(r.certificate is not None and r.certificate.passed
                              for r in reports)
    return passed


def run_comparison(factors):
    arc_dag, budgets, targets = build_sweep(factors)
    cold_mk, cold_rs, cold_counters, t_cold = \
        run_cold_scalar(arc_dag, budgets, targets)
    warm_mk, warm_rs, warm_counters, t_warm = \
        run_warm_sweep(arc_dag, budgets, targets)

    identical = (all(_identical(w, c) for w, c in zip(warm_mk, cold_mk))
                 and all(_identical(w, c) for w, c in zip(warm_rs, cold_rs)))
    certificates = run_certificates(factors)
    n = len(budgets) + len(targets)
    return {
        "scenarios": n,
        "budgets": len(budgets),
        "targets": len(targets),
        "sweep_solves": warm_counters["sweep_solves"],
        "warm_start_hits": warm_counters["warm_start_hits"],
        "warm_reuse_hits": warm_counters["warm_reuse_hits"],
        "warm_skeleton_builds": warm_counters["skeleton_builds"],
        "warm_simplex_iterations": warm_counters["simplex_iterations"],
        "cold_skeleton_builds": cold_counters["skeleton_builds"],
        "cold_simplex_iterations": cold_counters["simplex_iterations"],
        "highs_rhs_resolves": warm_counters["highs_rhs_resolves"],
        "backends": list(available_lp_backends()),
        "certificates_pass": all(certificates.values()),
        "certificates_by_backend": certificates,
        "identical": identical,
        "build_elimination": (cold_counters["skeleton_builds"]
                              / max(warm_counters["skeleton_builds"], 1)),
        "t_cold_s": t_cold,
        "t_warm_s": t_warm,
    }


#: The machine-independent acceptance conditions, shared by the standalone
#: gate and the pytest entry point so the two can never diverge.
GATE_CONDITIONS = [
    ("warm sweep matches the cold scalar scipy path bit for bit",
     lambda s: s["identical"]),
    ("warm sweep counts one sweep solve per requested value",
     lambda s: s["sweep_solves"] == s["scenarios"]),
    (">= N-1 warm-start hits out of N solves (per objective sweep)",
     lambda s: s["warm_start_hits"] >= s["scenarios"] - 2),
    ("warm sweep builds exactly two skeletons -- one per objective sweep "
     "call pair sharing one model",
     lambda s: s["warm_skeleton_builds"] <= 2),
    ("cold path builds one model per value",
     lambda s: s["cold_skeleton_builds"] == s["scenarios"]),
    ("certificate checks pass on every available backend",
     lambda s: s["certificates_pass"]),
    ("model-build elimination is at least 3x",
     lambda s: s["build_elimination"] >= 3.0),
]


def gate(stats) -> bool:
    """The machine-independent acceptance predicate (counters only)."""
    return all(condition(stats) for _label, condition in GATE_CONDITIONS)


def render(stats) -> str:
    rows = [
        ["cold scalar", str(stats["cold_skeleton_builds"]),
         "0", str(stats["cold_simplex_iterations"]),
         f"{stats['t_cold_s'] * 1000:.0f}", "1.00"],
        ["warm sweep", str(stats["warm_skeleton_builds"]),
         str(stats["warm_start_hits"]),
         str(stats["warm_simplex_iterations"]),
         f"{stats['t_warm_s'] * 1000:.0f}",
         f"{stats['t_cold_s'] / max(stats['t_warm_s'], 1e-9):.2f}"],
    ]
    header = (f"{stats['budgets']}-budget + {stats['targets']}-target sweep "
              f"over one '{WORKLOAD}' skeleton "
              f"(identical to scalar: {stats['identical']}; backends: "
              f"{', '.join(stats['backends'])}; certificates pass: "
              f"{stats['certificates_pass']}); "
              f"warm-start hits: {stats['warm_start_hits']}/"
              f"{stats['sweep_solves']} solves, "
              f"memo reuse: {stats['warm_reuse_hits']}")
    return header + "\n\n" + format_table(
        ["strategy", "model builds", "warm-start hits", "simplex iterations",
         "wall time (ms)", "speedup vs cold"], rows)


# ---------------------------------------------------------------------------
# pytest entry points (run in CI with --benchmark-disable)
# ---------------------------------------------------------------------------

def test_warm_sweeps_reuse_state_bit_identically(benchmark):
    stats = run_comparison(QUICK_FACTORS)
    emit("E20 / warm-started LP sweeps -- warm re-solves vs cold scalar",
         render(stats))
    for label, condition in GATE_CONDITIONS:
        assert condition(stats), f"{label} (stats: {stats})"

    arc_dag, budgets, targets = build_sweep(QUICK_FACTORS)

    def warm_sweep():
        clear_caches()
        return solve_min_makespan_sweep(arc_dag, budgets)

    benchmark(warm_sweep)


# ---------------------------------------------------------------------------
# standalone mode
# ---------------------------------------------------------------------------

def main(argv) -> int:
    quick = "--quick" in argv
    json_path = parse_json_flag(
        argv, "bench_warm_lp.py [--quick] [--json PATH]")

    factors = QUICK_FACTORS if quick else BUDGET_FACTORS
    stats = run_comparison(factors)
    print(render(stats))
    ok = gate(stats)
    print(f"\nwarm sweeps reuse solver state on counters (>= N-1 warm "
          f"hits, <= 2 skeleton builds, identical results, certificates "
          f"green): {ok}")

    if json_path:
        write_json_artifact(json_path, {
            "benchmark": "bench_warm_lp",
            "quick": quick,
            "scenarios": stats["scenarios"],
            "sweep_solves": stats["sweep_solves"],
            "warm_start_hits": stats["warm_start_hits"],
            "warm_reuse_hits": stats["warm_reuse_hits"],
            "warm_skeleton_builds": stats["warm_skeleton_builds"],
            "cold_skeleton_builds": stats["cold_skeleton_builds"],
            "build_elimination": stats["build_elimination"],
            "certificates_pass": stats["certificates_pass"],
            "identical": stats["identical"],
            "t_cold_s": stats["t_cold_s"],
            "t_warm_s": stats["t_warm_s"],
            "ok": ok,
        })
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
