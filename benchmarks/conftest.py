"""Pytest configuration for the benchmark harness.

Every benchmark module reproduces one table or figure of the paper (see the
per-experiment index in DESIGN.md).  Benchmarks use ``pytest-benchmark`` for
timing and additionally *print* the reproduced rows/series, so running

    pytest benchmarks/ --benchmark-only -s

regenerates the artifacts recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import os
import sys

# Make the sibling bench_common helper importable regardless of how pytest
# inserts rootdir paths.
sys.path.insert(0, os.path.dirname(__file__))
