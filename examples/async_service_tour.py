#!/usr/bin/env python
"""Tour of the asyncio serving front (``AsyncSweepService`` + ``repro.serve``).

The sweep service (see ``sweep_service_tour.py``) serves one batch at a
time; this tour shows the layer that turns it into a long-running
concurrent server:

1. **concurrent clients** -- several coroutines ``await submit(...)``
   against one :class:`repro.AsyncSweepService` at once; shard execution
   overlaps across clients on the warm worker pool;
2. **in-flight dedup (tier 0)** -- clients asking for the same request
   fingerprint *while it is still being solved* share a single solve;
3. **backpressure** -- the bounded request queue blocks producers instead
   of letting a burst overwhelm the pool;
4. **the network front** -- a stdlib JSON-lines-over-TCP server
   (``python -m repro.serve``) started in-process, spoken to with the
   bundled asyncio client helper.

Run with:  python examples/async_service_tour.py
"""

import asyncio
import os
import tempfile

from repro import AsyncSweepService, MinMakespanProblem, Portfolio, SolutionStore
from repro.generators import get_workload
from repro.serve import SweepServer, request_sweep

WORKLOADS = ["small-layered-general", "small-layered-binary", "small-layered-kway"]


def client_batches():
    """Per-client scenario batches: a private budget each + a shared hot one."""
    batches = []
    for index, name in enumerate(WORKLOADS * 2):
        workload = get_workload(name)
        dag = workload.build()
        batches.append([
            MinMakespanProblem(dag, workload.budget * (1.0 + 0.05 * index)),
            MinMakespanProblem(get_workload(WORKLOADS[0]).build(),
                               get_workload(WORKLOADS[0]).budget),  # hot scenario
        ])
    return batches


async def show_concurrent_clients(root: str) -> None:
    print("1. Concurrent clients sharing one async service\n")
    async with AsyncSweepService(
            store=SolutionStore(os.path.join(root, "store")),
            portfolio=Portfolio(executor="thread"),
            manifest=os.path.join(root, "manifest.json")) as service:

        async def client(client_id: int, scenarios) -> str:
            ticket = await service.submit(scenarios, "bicriteria-lp", alpha=0.5)
            results = await ticket.results()
            sources = ",".join(r.source for r in results)
            return f"   client {client_id}: {len(results)} results ({sources})"

        lines = await asyncio.gather(*[
            client(i, batch) for i, batch in enumerate(client_batches())])
        print("\n".join(lines))
        print(f"   service:  {service.stats.summary()}")
        tier0 = service.stats.deduped
        print(f"   tier-0 in-flight dedup answered {tier0} requests "
              f"before a result even existed")


async def show_network_front(root: str) -> None:
    print("\n2. The JSON-lines network front (python -m repro.serve)\n")
    service = AsyncSweepService(store=SolutionStore(os.path.join(root, "store")),
                                portfolio=Portfolio(executor="thread"))
    async with SweepServer(service, port=0) as server:   # port 0: OS picks one
        print(f"   serving on {server.address}")
        scenarios = [get_workload(name).problem() for name in WORKLOADS]
        responses = await request_sweep(scenarios, port=server.port)
        for response in responses:
            solution = response["report"]["solution"]
            print(f"   scenario {response['index']}: source={response['source']}, "
                  f"solver={response['report']['solver_id']}, "
                  f"makespan={solution['makespan']:.2f}")
        again = await request_sweep(scenarios, port=server.port)
        print(f"   second client: {sorted({r['source'] for r in again})} "
              f"(persistent store answered)")


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-async-tour-") as root:
        asyncio.run(show_concurrent_clients(root))
        asyncio.run(show_network_front(root))


if __name__ == "__main__":
    main()
