#!/usr/bin/env python
"""Tour of the unified solver engine: registry, dispatch, portfolio, cache.

Walks through the four pieces the engine adds on top of the paper's
algorithms:

1. the **solver registry** -- every algorithm of the reproduction behind a
   stable solver id with its paper theorem and proven guarantee;
2. **auto-dispatch** -- ``repro.solve`` probes each instance (duration
   families, series-parallel structure, exhaustive-search size) and picks
   the strongest applicable solver;
3. the **portfolio runner** -- several solvers race on one problem, best
   certified-feasible solution wins;
4. the **solution cache** -- repeated scenario solves are served from an
   LRU keyed on the DAG's content fingerprint.

Run with:  python examples/engine_tour.py
"""

import time

from repro import Portfolio, clear_caches, solve
from repro.analysis import format_table, render_solver_table
from repro.generators import get_workload


def show_registry() -> None:
    print("1. The solver registry (auto-dispatch order):\n")
    print(render_solver_table())


def show_dispatch() -> None:
    print("\n2. Auto-dispatch picks a different solver per instance shape:\n")
    rows = []
    for name in ["deep-chain-binary", "small-layered-kway", "medium-layered-general",
                 "pipeline"]:
        workload = get_workload(name)
        report = solve(workload.problem())
        rows.append([name, report.structure["num_jobs"],
                     ",".join(report.structure["duration_families"]),
                     "yes" if report.structure["is_series_parallel"] else "no",
                     report.solver_id, report.makespan])
    print(format_table(
        ["workload", "jobs", "duration families", "series-parallel",
         "dispatched solver", "makespan"], rows))


def show_portfolio() -> None:
    print("\n3. Portfolio race (threads) on one medium instance:\n")
    problem = get_workload("medium-layered-binary").problem()
    portfolio = Portfolio(executor="thread")
    result = portfolio.solve(problem)
    rows = [[r.solver_id, r.makespan, r.budget_used,
             "yes" if r.feasible else "no", f"{r.wall_time * 1000:.1f}"]
            for r in sorted(result.runs, key=lambda r: r.makespan)]
    print(format_table(["solver", "makespan", "budget used", "feasible", "time (ms)"], rows))
    print(f"\n   -> {result.summary()}")


def show_cache() -> None:
    print("\n4. The solution cache across a repeated scenario sweep:\n")
    clear_caches()
    names = ["small-layered-general", "small-layered-binary", "small-layered-kway"]
    problems = [get_workload(n).problem() for n in names] * 4  # repeated traffic
    start = time.perf_counter()
    cold = [solve(p, use_cache=False) for p in problems]
    cold_time = time.perf_counter() - start
    start = time.perf_counter()
    warm = [solve(p) for p in problems]
    warm_time = time.perf_counter() - start
    hits = sum(1 for r in warm if r.from_cache)
    assert [c.makespan for c in cold] == [w.makespan for w in warm]
    print(f"   {len(problems)} solves, uncached: {cold_time * 1000:.0f} ms; "
          f"cached: {warm_time * 1000:.0f} ms ({hits} cache hits)")


def main() -> None:
    show_registry()
    show_dispatch()
    show_portfolio()
    show_cache()


if __name__ == "__main__":
    main()
