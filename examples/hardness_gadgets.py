#!/usr/bin/env python
"""Execute the NP-hardness reductions of Section 4 and Appendix A.

Reproduces the constructions around Figures 8-9 (1-in-3SAT, Theorem 4.1),
Figure 15-16 (Partition, bounded treewidth) and Figures 17-18 (numerical 3D
matching), including Table 2, and verifies each reduction against the exact
solvers on small instances.

Run with:  python examples/hardness_gadgets.py
"""

from repro.analysis import format_table, render_table2
from repro.hardness import (
    Numerical3DMInstance,
    OneInThreeSatInstance,
    PartitionInstance,
    build_theorem41_dag,
    construct_satisfying_flow,
    decomposition_width,
    figure9_formula,
    partition_construction_decomposition,
    build_partition_dag,
    tree_decomposition_is_valid,
    verify_matching3d_reduction,
    verify_partition_reduction,
    verify_theorem41,
)


def theorem41_demo() -> None:
    print("=" * 72)
    print("Theorem 4.1 / Lemma 4.2: 1-in-3SAT -> makespan 1 with budget n + 2m")
    print("=" * 72)
    formula = figure9_formula()
    construction = build_theorem41_dag(formula)
    assignment = formula.solve_brute_force()
    witness = construct_satisfying_flow(construction, assignment)
    print(f"Figure 9 formula: (V1 v ~V2 v V3) & (~V1 v V2 v V3); witness assignment {assignment}")
    print(f"Reduced DAG: {construction.arc_dag.num_vertices} vertices, "
          f"{construction.arc_dag.num_arcs} arcs, budget B = {construction.budget:.0f}")
    print(f"Witness flow: budget used = {witness.budget_used():.0f}, "
          f"makespan = {witness.makespan():.0f}  (target 1)")

    print("\nTable 2 (earliest start times of the clause branch vertices):")
    print(render_table2())

    print("\nExact verification on small formulas (Theorem 4.3's 1-vs-2 gap):")
    rows = []
    cases = [
        ("satisfiable, 1 clause", OneInThreeSatInstance(3, ((1, 2, 3),))),
        ("unsatisfiable, 2 clauses", OneInThreeSatInstance(3, ((1, 2, 3), (-1, -2, -3)))),
    ]
    for label, instance in cases:
        report = verify_theorem41(instance)
        rows.append([label, report.source_yes, report.reduced_optimum, report.agrees])
    print(format_table(["instance", "1-in-3 satisfiable", "optimal makespan", "reduction agrees"],
                       rows))


def partition_demo() -> None:
    print("\n" + "=" * 72)
    print("Section 4.3: Partition -> bounded-treewidth instances (weak NP-hardness)")
    print("=" * 72)
    rows = []
    for values in [(1, 1, 2), (2, 3, 5, 4), (1, 2, 4), (3, 3, 2, 2, 2)]:
        report = verify_partition_reduction(PartitionInstance(values))
        rows.append([str(values), report.source_yes, report.reduced_optimum,
                     report.threshold, report.agrees])
    print(format_table(["values", "partitionable", "optimal makespan", "target B/2", "agrees"],
                       rows))

    construction = build_partition_dag(PartitionInstance((2, 3, 5, 4)))
    vertices, edges, bags, tree_edges = partition_construction_decomposition(construction)
    ok = tree_decomposition_is_valid(vertices, edges, bags, tree_edges)
    print(f"\nTree decomposition of the construction (Figure 16 analogue): valid = {ok}, "
          f"width = {decomposition_width(bags)} (paper's bound: 15)")


def matching3d_demo() -> None:
    print("\n" + "=" * 72)
    print("Appendix A: numerical 3D matching -> makespan 2M + T with budget n^2")
    print("=" * 72)
    rows = []
    cases = [
        ("solvable", Numerical3DMInstance((1, 2), (2, 3), (4, 2))),
        ("unsolvable", Numerical3DMInstance((1, 1), (1, 1), (1, 5))),
    ]
    for label, instance in cases:
        report = verify_matching3d_reduction(instance)
        rows.append([label, report.source_yes, report.reduced_optimum,
                     report.threshold, report.agrees])
    print(format_table(["instance", "3DM solvable", "optimal makespan", "target 2M+T", "agrees"],
                       rows))


def main() -> None:
    theorem41_demo()
    partition_demo()
    matching3d_demo()


if __name__ == "__main__":
    main()
