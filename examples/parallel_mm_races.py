#!/usr/bin/env python
"""Parallel-MM end to end: races -> race DAG -> reducers -> space/time curve.

Reproduces the Section 1 narrative around Figures 1-5:

1. build the racy Parallel-MM program (Figure 3) and detect its data races;
2. extract the race DAG ``D(P)`` (every output cell receives ``n`` updates);
3. sweep the reducer height ``h`` and show the running time dropping from
   ``Theta(n)`` to ``Theta(log n)`` as the extra space grows to
   ``Theta(n^3)`` -- the space/time tradeoff that motivates the whole paper;
4. cross-check the simulated reducers against the closed-form duration.

Run with:  python examples/parallel_mm_races.py [n]
"""

import math
import sys

from repro.analysis import format_table
from repro.races import (
    find_data_races,
    makespan_upper_bound,
    parallel_mm_program,
    parallel_mm_race_dag,
    parallel_mm_running_time,
    parallel_mm_space_used,
    simulate_binary_reducer,
    simulate_race_dag,
)


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 8

    # 1. races in the program (kept tiny: the program has n^3 update operations)
    program_n = min(n, 4)
    program = parallel_mm_program(program_n)
    races = find_data_races(program)
    print(f"Parallel-MM(n={program_n}): {program.num_operations()} operations, "
          f"{len(races)} data races detected "
          f"({program_n ** 2} racy output cells x C({program_n},2) conflicting pairs each)")

    # 2. the race DAG for the full n
    race_dag = parallel_mm_race_dag(n)
    serial = simulate_race_dag(race_dag)
    print(f"\nRace DAG for n={n}: {len(race_dag.cells)} cells; lock-serialised makespan = "
          f"{serial.completion_time:.0f} (= n, as the paper's introduction states)")

    # 3. space/time tradeoff sweep over reducer heights
    rows = []
    for h in range(0, int(math.log2(n)) + 1):
        reducers = {("Z", i, j): ("binary", h) for i in range(n) for j in range(n)} if h else None
        simulated = simulate_race_dag(race_dag, reducers).completion_time
        bound = makespan_upper_bound(race_dag, reducers)
        rows.append([h, parallel_mm_space_used(n, h), parallel_mm_running_time(n, h),
                     simulated, bound])
    print()
    print(format_table(
        ["reducer height h", "extra space n^2*2^h", "closed form ceil(n/2^h)+h+1",
         "simulated", "Observation 1.1 bound"], rows))

    # 4. reducer simulation vs formula for the per-cell reduction
    print("\nPer-cell reducer check (n updates through one binary reducer):")
    check_rows = []
    for h in range(0, int(math.log2(n)) + 1):
        sim = simulate_binary_reducer(n, h)
        check_rows.append([h, sim.completion_time, parallel_mm_running_time(n, h)])
    print(format_table(["height", "simulated", "formula"], check_rows))


if __name__ == "__main__":
    main()
