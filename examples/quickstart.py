#!/usr/bin/env python
"""Quickstart: model a tradeoff DAG and compare every solver on it.

The instance is the paper's setting in miniature: a small DAG of jobs whose
durations shrink when extra resource (space for reducers) flows through
them, with a total budget that can be *reused along source-to-sink paths*.

Run with:  python examples/quickstart.py
"""

from repro import (
    KWaySplitDuration,
    RecursiveBinarySplitDuration,
    TradeoffDAG,
    exact_min_makespan,
    greedy_no_reuse,
    greedy_path_reuse,
    no_resource_solution,
    solve_min_makespan_bicriteria,
    solve_min_makespan_binary,
    solve_min_makespan_kway,
)
from repro.analysis import format_table


def build_instance() -> TradeoffDAG:
    """A diamond of racy accumulations: two parallel stages between fork and join."""
    dag = TradeoffDAG()
    dag.add_job("fork")
    dag.add_job("left_a", RecursiveBinarySplitDuration(64))
    dag.add_job("left_b", KWaySplitDuration(36))
    dag.add_job("right_a", RecursiveBinarySplitDuration(48))
    dag.add_job("right_b", KWaySplitDuration(25))
    dag.add_job("join")
    dag.add_edge("fork", "left_a")
    dag.add_edge("left_a", "left_b")
    dag.add_edge("fork", "right_a")
    dag.add_edge("right_a", "right_b")
    dag.add_edge("left_b", "join")
    dag.add_edge("right_b", "join")
    return dag


def main() -> None:
    dag = build_instance()
    budget = 12

    solvers = {
        "no extra resource": lambda d, b: no_resource_solution(d),
        "greedy (no reuse, Q1.1)": greedy_no_reuse,
        "greedy (path reuse, Q1.3)": greedy_path_reuse,
        "bi-criteria LP (Thm 3.4, alpha=0.5)": lambda d, b: solve_min_makespan_bicriteria(d, b, 0.5),
        "binary 4-approx (Thm 3.10)": solve_min_makespan_binary,
        "k-way 5-approx (Thm 3.9)": solve_min_makespan_kway,
        "exact (enumeration)": lambda d, b: exact_min_makespan(d, b),
    }

    rows = []
    for name, solver in solvers.items():
        solution = solver(dag, budget)
        rows.append([name, solution.makespan, solution.budget_used,
                     solution.lower_bound if solution.lower_bound is not None else "-"])

    print(f"Instance: {dag.num_jobs} jobs, {dag.num_edges} precedence edges, budget B = {budget}")
    print()
    print(format_table(["algorithm", "makespan", "budget used", "LP lower bound"], rows))
    print()
    print("Reading the table: the bi-criteria algorithm may exceed the budget by the")
    print("proven 1/(1-alpha) factor but never exceeds 1/alpha times the LP bound on")
    print("the makespan; the exact row is the true optimum for this budget.")


if __name__ == "__main__":
    main()
