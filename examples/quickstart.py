#!/usr/bin/env python
"""Quickstart: model a tradeoff DAG and compare every solver on it.

The instance is the paper's setting in miniature: a small DAG of jobs whose
durations shrink when extra resource (space for reducers) flows through
them, with a total budget that can be *reused along source-to-sink paths*.

All solvers run through the unified engine (``repro.solve``): the first row
is the engine's own auto-dispatch pick, the rest invoke each registered
solver id directly on the same problem.

Run with:  python examples/quickstart.py
"""

from repro import (
    KWaySplitDuration,
    MinMakespanProblem,
    RecursiveBinarySplitDuration,
    TradeoffDAG,
    solve,
)
from repro.analysis import format_table


def build_instance() -> TradeoffDAG:
    """A diamond of racy accumulations: two parallel stages between fork and join."""
    dag = TradeoffDAG()
    dag.add_job("fork")
    dag.add_job("left_a", RecursiveBinarySplitDuration(64))
    dag.add_job("left_b", KWaySplitDuration(36))
    dag.add_job("right_a", RecursiveBinarySplitDuration(48))
    dag.add_job("right_b", KWaySplitDuration(25))
    dag.add_job("join")
    dag.add_edge("fork", "left_a")
    dag.add_edge("left_a", "left_b")
    dag.add_edge("fork", "right_a")
    dag.add_edge("right_a", "right_b")
    dag.add_edge("left_b", "join")
    dag.add_edge("right_b", "join")
    return dag


def main() -> None:
    dag = build_instance()
    problem = MinMakespanProblem(dag, budget=12)

    methods = [
        ("auto", {}),
        ("no-resource", {}),
        ("greedy-no-reuse", {}),
        ("greedy-path-reuse", {}),
        ("bicriteria-lp", {"alpha": 0.5}),
        ("binary-4approx", {}),
        ("kway-5approx", {}),
        ("exact-enumeration", {}),
    ]

    rows = []
    for method, options in methods:
        report = solve(problem, method=method, **options)
        rows.append([
            method,
            report.solver_id,
            report.makespan,
            report.budget_used,
            report.lower_bound if report.lower_bound is not None else "-",
            "yes" if report.feasible else "no",
            f"{report.wall_time * 1000:.1f}",
        ])

    print(f"Instance: {dag.num_jobs} jobs, {dag.num_edges} precedence edges, "
          f"budget B = {problem.budget:.0f}")
    print()
    print(format_table(
        ["method", "dispatched solver", "makespan", "budget used", "LP lower bound",
         "within budget", "time (ms)"], rows))
    print()
    print("Reading the table: 'auto' is the engine's capability-based pick (exact")
    print("solvers first, then family-specialised approximations, then the LP")
    print("pipeline).  The bi-criteria algorithm may exceed the budget by the proven")
    print("1/(1-alpha) factor but never exceeds 1/alpha times the LP bound on the")
    print("makespan; the exact row is the true optimum for this budget.")


if __name__ == "__main__":
    main()
