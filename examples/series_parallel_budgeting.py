#!/usr/bin/env python
"""Series-parallel budgeting: exact DP vs LP-based approximation (Section 3.4).

On series-parallel DAGs the problem is solvable exactly in pseudo-polynomial
time ``O(m B^2)``.  This example builds a pipeline-of-fork-joins instance,
sweeps the budget, and compares:

* the exact DP optimum (``sp_exact_min_makespan``),
* the bi-criteria LP algorithm run on the *same* DAG,
* the greedy critical-path baseline,

then answers the reverse question ("how much space do I need for a target
makespan?") with both the exact DP and the min-resource LP pipeline.

Run with:  python examples/series_parallel_budgeting.py
"""

from repro import (
    greedy_path_reuse,
    solve_min_makespan_bicriteria,
    solve_min_resource_bicriteria,
    sp_exact_min_makespan,
    sp_exact_min_resource,
)
from repro.analysis import format_table
from repro.core.series_parallel import SPLeaf, parallel, series
from repro.core.duration import KWaySplitDuration, RecursiveBinarySplitDuration


def build_tree():
    """Three pipeline stages; stages 1 and 3 are 4-way parallel, stage 2 is serial."""
    stage1 = parallel(*[SPLeaf(f"s1_{i}", RecursiveBinarySplitDuration(32 + 8 * i))
                        for i in range(4)])
    stage2 = series(SPLeaf("s2_a", KWaySplitDuration(49)), SPLeaf("s2_b", KWaySplitDuration(25)))
    stage3 = parallel(*[SPLeaf(f"s3_{i}", RecursiveBinarySplitDuration(24 + 4 * i))
                        for i in range(4)])
    return series(stage1, stage2, stage3)


def main() -> None:
    tree = build_tree()
    dag = tree.to_dag()
    print(f"Series-parallel instance: {len(tree.leaves())} jobs "
          f"({dag.num_jobs} DAG nodes including fork/join vertices)")

    print("\nBudget sweep (minimum makespan):")
    rows = []
    for budget in [0, 2, 4, 8, 16, 32, 64]:
        exact = sp_exact_min_makespan(tree, budget)
        lp = solve_min_makespan_bicriteria(dag, budget, alpha=0.5)
        greedy = greedy_path_reuse(dag, budget)
        rows.append([budget, exact.makespan, lp.makespan, lp.budget_used, greedy.makespan])
    print(format_table(
        ["budget B", "exact DP makespan", "bi-criteria makespan", "bi-criteria budget",
         "greedy makespan"], rows))

    print("\nTarget-makespan sweep (minimum resource):")
    rows = []
    for target in [200, 150, 120, 100, 80, 60]:
        exact = sp_exact_min_resource(tree, target)
        lp = solve_min_resource_bicriteria(dag, target, alpha=0.5)
        rows.append([target, exact.budget_used, exact.makespan, lp.budget_used, lp.makespan])
    print(format_table(
        ["target makespan", "exact min budget", "exact makespan", "LP-rounded budget",
         "LP-rounded makespan"], rows))

    print("\nThe exact DP is the Section 3.4 algorithm; on series-parallel instances it")
    print("certifies how close the LP-based approximation (which works on every DAG) gets.")


if __name__ == "__main__":
    main()
