#!/usr/bin/env python
"""Series-parallel budgeting: exact DP vs LP-based approximation (Section 3.4).

On series-parallel DAGs the problem is solvable exactly in pseudo-polynomial
time ``O(m B^2)``.  This example builds a pipeline-of-fork-joins instance
and hands it to the engine, which *detects* the series-parallel structure
and auto-dispatches the exact DP; the bi-criteria LP pipeline and the
greedy baseline are then invoked by solver id on the same problems for
comparison.  The reverse question ("how much space do I need for a target
makespan?") goes through the same ``repro.solve`` entry point with
``target_makespan=``.

Run with:  python examples/series_parallel_budgeting.py
"""

from repro import solve
from repro.analysis import format_table
from repro.core.duration import KWaySplitDuration, RecursiveBinarySplitDuration
from repro.core.series_parallel import SPLeaf, parallel, series


def build_tree():
    """Three pipeline stages; stages 1 and 3 are 4-way parallel, stage 2 is serial."""
    stage1 = parallel(*[SPLeaf(f"s1_{i}", RecursiveBinarySplitDuration(32 + 8 * i))
                        for i in range(4)])
    stage2 = series(SPLeaf("s2_a", KWaySplitDuration(49)), SPLeaf("s2_b", KWaySplitDuration(25)))
    stage3 = parallel(*[SPLeaf(f"s3_{i}", RecursiveBinarySplitDuration(24 + 4 * i))
                        for i in range(4)])
    return series(stage1, stage2, stage3)


def main() -> None:
    tree = build_tree()
    dag = tree.to_dag()
    print(f"Series-parallel instance: {len(tree.leaves())} jobs "
          f"({dag.num_jobs} DAG nodes including fork/join vertices)")

    probe = solve(dag=dag, budget=16)
    print(f"Engine structure probe: series-parallel={probe.structure['is_series_parallel']}, "
          f"auto-dispatch -> {probe.solver_id}")

    print("\nBudget sweep (minimum makespan):")
    rows = []
    for budget in [0, 2, 4, 8, 16, 32, 64]:
        exact = solve(dag=dag, budget=budget)  # auto: series-parallel-dp
        lp = solve(dag=dag, budget=budget, method="bicriteria-lp", alpha=0.5)
        greedy = solve(dag=dag, budget=budget, method="greedy-path-reuse")
        rows.append([budget, exact.makespan, lp.makespan, lp.budget_used, greedy.makespan])
    print(format_table(
        ["budget B", "exact DP makespan", "bi-criteria makespan", "bi-criteria budget",
         "greedy makespan"], rows))

    print("\nTarget-makespan sweep (minimum resource):")
    rows = []
    for target in [200, 150, 120, 100, 80, 60]:
        exact = solve(dag=dag, target_makespan=target)  # auto: series-parallel-dp
        lp = solve(dag=dag, target_makespan=target, method="bicriteria-lp", alpha=0.5)
        rows.append([target, exact.budget_used, exact.makespan, lp.budget_used, lp.makespan])
    print(format_table(
        ["target makespan", "exact min budget", "exact makespan", "LP-rounded budget",
         "LP-rounded makespan"], rows))

    print("\nThe exact DP is the Section 3.4 algorithm; the engine dispatches it")
    print("automatically whenever its SP-decomposition probe succeeds, and it")
    print("certifies how close the LP-based approximation (which works on every DAG)")
    print("gets.  Both sweeps reuse the memoized decomposition across all rows.")


if __name__ == "__main__":
    main()
