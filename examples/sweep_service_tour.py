#!/usr/bin/env python
"""Tour of the persistent store and the batched scenario-sweep service.

Walks through the serving stack this repo builds on top of ``repro.solve``:

1. the **two-tier cache** -- ``solve()`` backed by the in-process LRU
   (tier 1) plus a persistent on-disk :class:`repro.SolutionStore`
   (tier 2): a result computed once is a disk hit in every later process;
2. the **sweep service** -- a batch of scenarios deduplicated by request
   fingerprint, answered from the store where possible, and the rest
   sharded over a warm worker pool with streaming results;
3. **interruption + resume** -- a sweep cut mid-flight restarts from its
   manifest and the store, recomputing nothing it already finished;
4. the **sweep quality table** -- per-solver empirical ratios regenerated
   from the store, without re-running a single solver.

Run with:  python examples/sweep_service_tour.py
"""

import os
import tempfile

from repro import (
    MinMakespanProblem,
    Portfolio,
    SolutionStore,
    SweepService,
    clear_caches,
    set_solution_store,
    solve,
)
from repro.analysis import render_sweep_table
from repro.generators import get_workload


def build_scenarios():
    """A request batch with distinct instances, budget variants and repeats."""
    scenarios = []
    for name in ["small-layered-general", "small-layered-binary", "small-layered-kway"]:
        workload = get_workload(name)
        dag = workload.build()
        for factor in (0.75, 1.0, 1.25):
            scenarios.append(MinMakespanProblem(dag, workload.budget * factor))
    return scenarios * 2  # every request arrives twice


def show_two_tier_cache(root: str) -> None:
    print("1. Two-tier cache: LRU (per process) + persistent store (on disk)\n")
    store = set_solution_store(os.path.join(root, "tier2"))
    problem = get_workload("small-layered-binary").problem()
    clear_caches()
    fresh = solve(problem)
    clear_caches()  # drops the LRU -- simulates a brand-new process
    from_store = solve(problem)
    from_memory = solve(problem)
    print(f"   fresh:       {fresh.summary()}")
    print(f"   new process: {from_store.summary()}")
    print(f"   same process:{from_memory.summary()}")
    print(f"   store stats: {store.info()['hits']} hits, "
          f"{store.info()['entries']} entries on disk")
    set_solution_store(None)


def show_sweep_service(root: str) -> None:
    print("\n2. Sweep service: dedup -> store lookup -> sharded compute\n")
    scenarios = build_scenarios()
    with SweepService(store=SolutionStore(os.path.join(root, "sweeps")),
                      portfolio=Portfolio(executor="process")) as service:
        clear_caches()
        cold = service.run(scenarios, "bicriteria-lp", alpha=0.5)
        print(f"   cold sweep: {cold.summary()}")
        clear_caches()
        warm = service.run(scenarios, "bicriteria-lp", alpha=0.5)
        print(f"   warm sweep: {warm.summary()}")
        assert warm.stats.computed == 0, "everything came from the store"


def show_resume(root: str) -> None:
    print("\n3. Interrupted sweep resumes from the manifest + store\n")
    scenarios = build_scenarios()
    manifest = os.path.join(root, "sweep-manifest.json")
    with SweepService(store=SolutionStore(os.path.join(root, "resumable")),
                      portfolio=Portfolio(executor="process")) as service:
        clear_caches()
        stream = service.sweep(scenarios, "bicriteria-lp", manifest=manifest,
                               shard_size=1, alpha=0.5)
        partial = [next(stream) for _ in range(5)]
        stream.close()  # simulate a crash mid-sweep
        print(f"   interrupted after {len({r.key for r in partial})} unique scenarios")
        clear_caches()
        resumed = service.run(scenarios, "bicriteria-lp", manifest=manifest,
                              shard_size=1, alpha=0.5)
        stats = resumed.stats
        print(f"   resume:     {resumed.summary()}")
        print(f"   recomputed already-finished scenarios: "
              f"{len({r.key for r in partial}) - stats.resumed}")


def show_quality_table(root: str) -> None:
    print("\n4. Sweep quality table regenerated from the store (no re-solving)\n")
    store = SolutionStore(os.path.join(root, "sweeps"))
    print(render_sweep_table(store))


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-sweep-tour-") as root:
        show_two_tier_cache(root)
        show_sweep_service(root)
        show_resume(root)
        show_quality_table(root)


if __name__ == "__main__":
    main()
