"""Setup shim for environments without the `wheel` package.

The canonical configuration lives in pyproject.toml; this file only enables
legacy editable installs (`pip install -e . --no-use-pep517` or
`python setup.py develop`) on machines where PEP 660 builds are unavailable.
"""
from setuptools import setup

setup()
