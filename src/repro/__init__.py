"""repro -- reproduction of Das et al., "Data Races and the Discrete
Resource-time Tradeoff Problem with Resource Reuse over Paths" (SPAA 2019).

The package is organised as:

* :mod:`repro.core` -- the resource-time tradeoff problem itself: modelling,
  LP-rounding bi-criteria approximation (Theorem 3.4), single-criteria
  approximations for k-way and recursive-binary splitting (Theorems 3.9,
  3.10, 3.16), the exact series-parallel dynamic program (Section 3.4),
  exact solvers and baselines.
* :mod:`repro.races` -- the data-race motivation: fork-join program model,
  determinacy-race detection, race DAG construction (Section 1), reducer
  simulators validating the duration functions, and the Parallel-MM example.
* :mod:`repro.hardness` -- executable NP-hardness constructions of Section 4
  and Appendix A, with verifiers based on the exact solvers.
* :mod:`repro.generators` -- random instance generators used by the tests
  and benchmarks.
* :mod:`repro.scenarios` -- declarative scenario production: the generator
  registry, JSON-serializable :class:`~repro.scenarios.ScenarioSpec`
  records and lazily-expanded :class:`~repro.scenarios.ScenarioGrid`
  cross-products the serving layers consume natively.
* :mod:`repro.analysis` -- approximation-ratio measurement and regeneration
  of the paper's tables.

* :mod:`repro.engine` -- the unified solver engine: a capability-declaring
  solver registry, ``repro.solve(problem, method="auto")`` auto-dispatch
  with structure detection, memoized transforms, certificates, a two-tier
  solution cache (in-process LRU plus the persistent
  :class:`~repro.engine.SolutionStore`), a parallel
  :class:`~repro.engine.Portfolio` runner for scenario sweeps, and the
  batched, resumable :class:`~repro.engine.SweepService`.

Quickstart
----------
>>> from repro import TradeoffDAG, RecursiveBinarySplitDuration, solve
>>> dag = TradeoffDAG()
>>> _ = dag.add_job("s"); _ = dag.add_job("x", RecursiveBinarySplitDuration(64))
>>> _ = dag.add_job("t"); dag.add_edge("s", "x"); dag.add_edge("x", "t")
>>> report = solve(dag=dag, budget=8)   # auto-dispatches the best solver
>>> report.makespan <= 64
True
"""

from repro.core import *  # noqa: F401,F403 -- re-export the public core API
from repro.core import __all__ as _core_all
from repro.engine import (  # noqa: F401 -- re-export the engine API
    AsyncSweepService,
    AsyncSweepStats,
    Certificate,
    NoSolverError,
    Portfolio,
    PortfolioReport,
    SolutionStore,
    SolveLimits,
    SolveReport,
    SolverSpec,
    SweepReport,
    SweepResult,
    SweepService,
    SweepStats,
    analyze_dag,
    candidate_solvers,
    certify_solution,
    batch_kernel_info,
    clear_caches,
    dag_fingerprint,
    exact_reference,
    get_solution_store,
    get_solver,
    normalize_problem,
    register_solver,
    request_key,
    set_solution_store,
    solve,
    solve_lp_batch,
    solver_ids,
    solver_specs,
    spec_fingerprint,
)
from repro.scenarios import (  # noqa: F401 -- re-export the scenario API
    Axis,
    GeneratorSpec,
    ScenarioGrid,
    ScenarioSpec,
    generator_ids,
    generator_specs,
    get_generator,
    register_generator,
)

__version__ = "1.10.0"

_engine_all = [
    "solve", "exact_reference", "normalize_problem",
    "SolveReport", "SolveLimits", "Certificate", "certify_solution",
    "SolverSpec", "register_solver", "get_solver", "solver_ids", "solver_specs",
    "candidate_solvers", "NoSolverError",
    "Portfolio", "PortfolioReport",
    "SweepService", "SweepReport", "SweepResult", "SweepStats",
    "AsyncSweepService", "AsyncSweepStats",
    "SolutionStore", "set_solution_store", "get_solution_store", "request_key",
    "analyze_dag", "dag_fingerprint", "clear_caches",
    "solve_lp_batch", "batch_kernel_info",
    "spec_fingerprint",
    "ScenarioSpec", "ScenarioGrid", "Axis", "GeneratorSpec",
    "register_generator", "get_generator", "generator_ids", "generator_specs",
]

__all__ = list(_core_all) + _engine_all + ["__version__"]
