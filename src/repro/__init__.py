"""repro -- reproduction of Das et al., "Data Races and the Discrete
Resource-time Tradeoff Problem with Resource Reuse over Paths" (SPAA 2019).

The package is organised as:

* :mod:`repro.core` -- the resource-time tradeoff problem itself: modelling,
  LP-rounding bi-criteria approximation (Theorem 3.4), single-criteria
  approximations for k-way and recursive-binary splitting (Theorems 3.9,
  3.10, 3.16), the exact series-parallel dynamic program (Section 3.4),
  exact solvers and baselines.
* :mod:`repro.races` -- the data-race motivation: fork-join program model,
  determinacy-race detection, race DAG construction (Section 1), reducer
  simulators validating the duration functions, and the Parallel-MM example.
* :mod:`repro.hardness` -- executable NP-hardness constructions of Section 4
  and Appendix A, with verifiers based on the exact solvers.
* :mod:`repro.generators` -- random instance generators used by the tests
  and benchmarks.
* :mod:`repro.analysis` -- approximation-ratio measurement and regeneration
  of the paper's tables.

Quickstart
----------
>>> from repro import TradeoffDAG, RecursiveBinarySplitDuration
>>> from repro import solve_min_makespan_bicriteria
>>> dag = TradeoffDAG()
>>> _ = dag.add_job("s"); _ = dag.add_job("x", RecursiveBinarySplitDuration(64))
>>> _ = dag.add_job("t"); dag.add_edge("s", "x"); dag.add_edge("x", "t")
>>> solution = solve_min_makespan_bicriteria(dag, budget=8, alpha=0.5)
>>> solution.makespan <= 64
True
"""

from repro.core import *  # noqa: F401,F403 -- re-export the public core API
from repro.core import __all__ as _core_all

__version__ = "1.0.0"

__all__ = list(_core_all) + ["__version__"]
