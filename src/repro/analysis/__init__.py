"""Analysis helpers: empirical ratios, sweep-level quality tables and
regeneration of the paper's tables."""

from repro.analysis.ratios import RatioMeasurement, measure_ratios, summarize_measurements
from repro.analysis.report import format_float, format_table
from repro.analysis.sweep import (
    grid_records,
    render_grid_table,
    render_sweep_table,
    summarize_grid,
    summarize_sweep,
    sweep_records,
)
from repro.analysis.tables import (
    TABLE1_ROWS,
    render_solver_table,
    render_table1,
    render_table2,
    render_table3,
    table1_summary,
)

__all__ = [
    "RatioMeasurement", "measure_ratios", "summarize_measurements",
    "format_table", "format_float",
    "TABLE1_ROWS", "table1_summary", "render_table1", "render_table2", "render_table3",
    "render_solver_table",
    "sweep_records", "summarize_sweep", "render_sweep_table",
    "grid_records", "summarize_grid", "render_grid_table",
]
