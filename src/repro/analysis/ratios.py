"""Empirical approximation-ratio measurement (the Table 1 experiments).

Table 1 of the paper states worst-case guarantees; the reproduction measures
the corresponding *empirical* ratios on synthetic workloads.  Two reference
points are used:

* the **LP optimum** of the relaxation (a valid lower bound on OPT for every
  instance -- every algorithm in this library stores it in
  ``solution.lower_bound``), giving a ratio that is always an upper bound on
  the true approximation ratio;
* the **exact optimum** computed by exhaustive enumeration on instances
  small enough for it (``ratio_vs_exact``), giving the true ratio.

A measurement never exceeding the proven bound is the reproduction criterion
for the approximation rows of Table 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.core.dag import TradeoffDAG
from repro.core.problem import TradeoffSolution
from repro.engine import SolveLimits, exact_reference, solve

__all__ = ["RatioMeasurement", "measure_ratios", "summarize_measurements"]

#: An algorithm under measurement: either a registered engine solver id or a
#: legacy ``callable(dag, budget) -> TradeoffSolution``.
Algorithm = Union[str, Callable[[TradeoffDAG, float], TradeoffSolution]]


@dataclass
class RatioMeasurement:
    """One (workload, algorithm) measurement."""

    workload: str
    algorithm: str
    budget: float
    makespan: float
    budget_used: float
    lp_lower_bound: Optional[float]
    exact_optimum: Optional[float]

    @property
    def ratio_vs_lp(self) -> Optional[float]:
        """Makespan / LP lower bound (an upper bound on the true ratio)."""
        if not self.lp_lower_bound:
            return None
        return self.makespan / self.lp_lower_bound if self.lp_lower_bound > 0 else (
            1.0 if self.makespan == 0 else math.inf)

    @property
    def ratio_vs_exact(self) -> Optional[float]:
        """Makespan / exact optimum (the true approximation ratio)."""
        if self.exact_optimum is None:
            return None
        if self.exact_optimum == 0:
            return 1.0 if self.makespan == 0 else math.inf
        return self.makespan / self.exact_optimum

    @property
    def budget_ratio(self) -> float:
        """Resource used / stated budget (the bi-criteria resource factor)."""
        if self.budget == 0:
            return 1.0 if self.budget_used == 0 else math.inf
        return self.budget_used / self.budget


def measure_ratios(dag: TradeoffDAG, budget: float, workload_name: str,
                   algorithms: Dict[str, Algorithm],
                   compute_exact: bool = True,
                   exact_limit: int = 50_000) -> List[RatioMeasurement]:
    """Run every algorithm on one instance and collect ratio measurements.

    Parameters
    ----------
    dag, budget:
        The instance.
    workload_name:
        Label recorded in the measurements.
    algorithms:
        ``name -> algorithm``, where an algorithm is a registered engine
        solver id (dispatched through :func:`repro.engine.solve`, sharing
        the engine's memoized transforms and solution cache) or a legacy
        ``callable(dag, budget) -> TradeoffSolution``.
    compute_exact:
        Whether to attempt an exact reference optimum.  The engine picks
        whichever exact solver applies (series-parallel DP or exhaustive
        enumeration up to ``exact_limit`` combinations) and the measurement
        is skipped silently when none does.
    """
    exact_optimum: Optional[float] = None
    if compute_exact:
        reference = exact_reference(
            dag=dag, budget=budget,
            limits=SolveLimits(max_exact_combinations=exact_limit))
        exact_optimum = reference.makespan if reference is not None else None

    measurements: List[RatioMeasurement] = []
    for name, solver in algorithms.items():
        if isinstance(solver, str):
            solution = solve(dag=dag, budget=budget, method=solver).solution
        else:
            solution = solver(dag, budget)
        measurements.append(RatioMeasurement(
            workload=workload_name,
            algorithm=name,
            budget=budget,
            makespan=solution.makespan,
            budget_used=solution.budget_used,
            lp_lower_bound=solution.lower_bound,
            exact_optimum=exact_optimum,
        ))
    return measurements


def summarize_measurements(measurements: Sequence[RatioMeasurement]) -> Dict[str, Dict[str, float]]:
    """Aggregate per-algorithm worst-case ratios over a set of measurements."""
    summary: Dict[str, Dict[str, float]] = {}
    for m in measurements:
        entry = summary.setdefault(m.algorithm, {
            "worst_ratio_vs_lp": 0.0,
            "worst_ratio_vs_exact": 0.0,
            "worst_budget_ratio": 0.0,
            "count": 0.0,
        })
        entry["count"] += 1
        if m.ratio_vs_lp is not None:
            entry["worst_ratio_vs_lp"] = max(entry["worst_ratio_vs_lp"], m.ratio_vs_lp)
        if m.ratio_vs_exact is not None:
            entry["worst_ratio_vs_exact"] = max(entry["worst_ratio_vs_exact"], m.ratio_vs_exact)
        entry["worst_budget_ratio"] = max(entry["worst_budget_ratio"], m.budget_ratio)
    return summary
