"""Plain-text table formatting shared by examples, benchmarks and EXPERIMENTS.md."""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence

__all__ = ["format_table", "format_float"]


def format_float(value, digits: int = 3) -> str:
    """Render numbers compactly (integers without trailing zeros)."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float) and not math.isfinite(value):
        return str(value)  # 'inf' / '-inf' / 'nan' (int() would raise)
    if isinstance(value, (int,)) or (isinstance(value, float) and value == int(value)):
        return str(int(value))
    if isinstance(value, float):
        return f"{value:.{digits}f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence], digits: int = 3) -> str:
    """Render a simple aligned ASCII table (used for stdout reproduction of
    the paper's tables)."""
    str_rows: List[List[str]] = [[format_float(cell, digits) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    header_line = " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
