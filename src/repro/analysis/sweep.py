"""Sweep-level ratio analysis fed from the persistent solution store.

The Table-1 experiments (:mod:`repro.analysis.ratios`) measure one
instance at a time; a :class:`~repro.engine.service.SweepService` run
leaves *every* solved scenario in the
:class:`~repro.engine.store.SolutionStore`, so sweep-scale quality tables
can be regenerated from disk without re-running a single solver.

Records are extracted either from a live sweep
(:class:`~repro.engine.service.SweepReport` / a list of
:class:`~repro.engine.service.SweepResult`) or straight from a store; each
record carries the dispatched solver, the makespan, the LP lower bound the
solution stored, and the problem parameter -- enough for empirical
approximation ratios (makespan / lower bound, an upper bound on the true
ratio) and resource factors (budget used / budget) per solver.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.analysis.report import format_table
from repro.engine.fingerprint import decode_payload_value
from repro.engine.registry import MIN_MAKESPAN

__all__ = ["sweep_records", "summarize_sweep", "render_sweep_table",
           "grid_records", "summarize_grid", "render_grid_table"]


def _record(solver_id: str, objective: str, makespan: float, budget_used: float,
            lower_bound: Optional[float], parameter: Optional[float],
            wall_time: float, source: str) -> Dict[str, Any]:
    ratio = None
    if lower_bound is not None and lower_bound > 0:
        ratio = makespan / lower_bound
    budget_ratio = None
    if objective == MIN_MAKESPAN and parameter:
        budget_ratio = budget_used / parameter
    return {
        "solver_id": solver_id,
        "objective": objective,
        "makespan": makespan,
        "budget_used": budget_used,
        "lower_bound": lower_bound,
        "parameter": parameter,
        "ratio_vs_lower_bound": ratio,
        "budget_ratio": budget_ratio,
        "wall_time": wall_time,
        "source": source,
    }


def sweep_records(source) -> List[Dict[str, Any]]:
    """Normalize a sweep outcome or a store into flat analysis records.

    ``source`` may be a :class:`~repro.engine.service.SweepReport`, an
    iterable of :class:`~repro.engine.service.SweepResult`, or a
    :class:`~repro.engine.store.SolutionStore` (every persisted entry is
    read back).  Failed scenarios contribute no record.
    """
    from repro.engine.service import SweepReport, SweepResult
    from repro.engine.store import SolutionStore

    records: List[Dict[str, Any]] = []
    if isinstance(source, SolutionStore):
        # One bulk scan() pass: packed v2 shards stream each payload with a
        # single decode and skip the spec-to-fingerprint alias entries (which
        # carry no solution) straight from the record flags, without decoding
        # their payloads at all.
        for _key, payload in source.scan(include_aliases=False):
            solution = payload.get("solution", {})
            records.append(_record(
                solver_id=payload.get("solver_id", "?"),
                objective=payload.get("objective", "?"),
                makespan=decode_payload_value(solution.get("makespan")),
                budget_used=decode_payload_value(solution.get("budget_used")),
                lower_bound=decode_payload_value(solution.get("lower_bound")),
                parameter=payload.get("parameter"),
                wall_time=float(payload.get("wall_time", 0.0)),
                source="store",
            ))
        return records

    if isinstance(source, SweepReport):
        source = source.results
    for result in source:
        if not isinstance(result, SweepResult):
            raise TypeError(
                f"sweep_records() wants a SweepReport, SweepResults or a "
                f"SolutionStore, got element {type(result).__name__}")
        report = result.report
        if report is None:
            continue
        records.append(_record(
            solver_id=report.solver_id,
            objective=report.objective,
            makespan=report.makespan,
            budget_used=report.budget_used,
            lower_bound=report.lower_bound,
            parameter=report.parameter,
            wall_time=report.wall_time,
            source=result.source,
        ))
    return records


def summarize_sweep(source) -> Dict[str, Dict[str, Any]]:
    """Per-solver aggregates over a sweep or store (see module docstring).

    Returns ``solver_id -> {count, from_store, worst_ratio, mean_ratio,
    worst_budget_ratio, mean_wall_time}`` where the ratio fields are
    ``None`` when no record carried a usable lower bound.
    """
    summary: Dict[str, Dict[str, Any]] = {}
    for record in sweep_records(source):
        entry = summary.setdefault(record["solver_id"], {
            "count": 0, "from_store": 0, "ratios": [], "budget_ratios": [],
            "wall_times": [],
        })
        entry["count"] += 1
        if record["source"] == "store":
            entry["from_store"] += 1
        if record["ratio_vs_lower_bound"] is not None:
            entry["ratios"].append(record["ratio_vs_lower_bound"])
        if record["budget_ratio"] is not None:
            entry["budget_ratios"].append(record["budget_ratio"])
        entry["wall_times"].append(record["wall_time"])

    out: Dict[str, Dict[str, Any]] = {}
    for solver_id, entry in sorted(summary.items()):
        ratios, budget_ratios = entry["ratios"], entry["budget_ratios"]
        wall_times = entry["wall_times"]
        out[solver_id] = {
            "count": entry["count"],
            "from_store": entry["from_store"],
            "worst_ratio": max(ratios) if ratios else None,
            "mean_ratio": sum(ratios) / len(ratios) if ratios else None,
            "worst_budget_ratio": max(budget_ratios) if budget_ratios else None,
            "mean_wall_time": (sum(wall_times) / len(wall_times)
                               if wall_times else 0.0),
        }
    return out


def grid_records(results) -> List[Dict[str, Any]]:
    """Flatten spec-native sweep results into axis-addressable records.

    ``results`` is a :class:`~repro.engine.service.SweepReport` or an
    iterable of :class:`~repro.engine.service.SweepResult` produced by a
    spec-native sweep (each result carries its
    :class:`~repro.scenarios.spec.ScenarioSpec`).  Every record holds the
    quality fields of :func:`sweep_records` plus the cell's grid
    coordinates: ``generator``, ``seed``, ``budget_rule`` (as
    ``"name:value"``), ``objective`` and one column per generator
    parameter -- the keys :func:`summarize_grid` groups on.  Failed cells
    contribute no record; results without a spec raise.
    """
    from repro.engine.service import SweepReport

    if isinstance(results, SweepReport):
        results = results.results
    records: List[Dict[str, Any]] = []
    for result in results:
        if result.report is None:
            continue
        if result.spec is None:
            raise TypeError(
                "grid_records() wants spec-native sweep results (run the "
                "sweep over ScenarioSpecs or a ScenarioGrid)")
        spec = result.spec
        report = result.report
        record = _record(
            solver_id=report.solver_id,
            objective=report.objective,
            makespan=report.makespan,
            budget_used=report.budget_used,
            lower_bound=report.lower_bound,
            parameter=report.parameter,
            wall_time=report.wall_time,
            source=result.source,
        )
        rule_name, rule_value = spec.budget_rule
        record["generator"] = spec.generator
        record["seed"] = spec.seed
        record["budget_rule"] = f"{rule_name}:{rule_value:g}"
        for name, value in spec.params.items():
            record.setdefault(name, value if not isinstance(value, list)
                              else tuple(value))
        records.append(record)
    return records


def summarize_grid(results, by=("generator", "budget_rule")) -> Dict[tuple, Dict[str, Any]]:
    """Aggregate a spec-native sweep along grid axes.

    ``by`` names the grouping axes -- any :func:`grid_records` columns:
    ``"generator"``, ``"budget_rule"``, ``"seed"``, ``"solver_id"`` or a
    generator parameter (``"width"``, ``"num_layers"``, ...).  Returns
    ``axis-value tuple -> {count, solvers, worst_ratio, mean_ratio,
    worst_budget_ratio, mean_wall_time}`` with groups sorted by their axis
    values; cells missing an axis column group under ``None`` for it.
    """
    groups: Dict[tuple, List[Dict[str, Any]]] = {}
    for record in grid_records(results):
        key = tuple(record.get(axis) for axis in by)
        groups.setdefault(key, []).append(record)

    out: Dict[tuple, Dict[str, Any]] = {}
    for key in sorted(groups, key=repr):
        rows = groups[key]
        ratios = [r["ratio_vs_lower_bound"] for r in rows
                  if r["ratio_vs_lower_bound"] is not None]
        budget_ratios = [r["budget_ratio"] for r in rows
                         if r["budget_ratio"] is not None]
        wall_times = [r["wall_time"] for r in rows]
        out[key] = {
            "count": len(rows),
            "solvers": sorted({r["solver_id"] for r in rows}),
            "worst_ratio": max(ratios) if ratios else None,
            "mean_ratio": sum(ratios) / len(ratios) if ratios else None,
            "worst_budget_ratio": max(budget_ratios) if budget_ratios else None,
            "mean_wall_time": (sum(wall_times) / len(wall_times)
                               if wall_times else 0.0),
        }
    return out


def render_grid_table(results, by=("generator", "budget_rule"),
                      title: Optional[str] = None) -> str:
    """Render the per-axis quality table of a spec-native sweep.

    One row per combination of the ``by`` axes; columns mirror
    :func:`render_sweep_table` plus the dispatched solver set, so a mixed
    benign/adversarial grid shows at a glance where quality degrades.
    """
    summary = summarize_grid(results, by=by)
    headers = [*by, "cells", "solvers", "worst ratio (vs LB)", "mean ratio",
               "worst budget factor", "mean solve time (ms)"]
    rows = []
    for key, entry in summary.items():
        rows.append([
            *key,
            entry["count"],
            ", ".join(entry["solvers"]),
            entry["worst_ratio"],
            entry["mean_ratio"],
            entry["worst_budget_ratio"],
            entry["mean_wall_time"] * 1000.0,
        ])
    table = format_table(headers, rows)
    return f"{title}\n\n{table}" if title else table


def render_sweep_table(source, title: Optional[str] = None) -> str:
    """Render the per-solver sweep quality table (fed from store or sweep).

    Columns: scenario count, how many were answered from the persistent
    store, worst and mean makespan ratio against the stored LP lower
    bounds, worst resource factor, and mean recorded solve time.
    """
    summary = summarize_sweep(source)
    headers = ["solver id", "solved", "from store", "worst ratio (vs LB)",
               "mean ratio", "worst budget factor", "mean solve time (ms)"]
    rows = []
    for solver_id, entry in summary.items():
        rows.append([
            solver_id,
            entry["count"],
            entry["from_store"],
            entry["worst_ratio"],
            entry["mean_ratio"],
            entry["worst_budget_ratio"],
            entry["mean_wall_time"] * 1000.0,
        ])
    table = format_table(headers, rows)
    return f"{title}\n\n{table}" if title else table
