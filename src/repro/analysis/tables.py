"""Regeneration of the paper's tables.

* **Table 1** -- the summary of hardness and approximation results.  The
  hardness column is reproduced by executing the reductions (Section 4 /
  Appendix A) through :mod:`repro.hardness.verify`; the approximation column
  is reproduced empirically by measuring ratios against LP lower bounds and
  exact optima (:mod:`repro.analysis.ratios`).
* **Table 2** -- earliest start times of the Theorem 4.1 clause gadget
  branches (regenerated from the gadget construction).
* **Table 3** -- earliest finish times of the Section 4.2 clause gadget
  branches (regenerated from the composite-node timing algebra).
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.report import format_table
from repro.hardness.gadgets_general import TABLE2_HEADER, table2_rows
from repro.hardness.gadgets_splitting import TABLE3_HEADER, table3_rows

__all__ = ["TABLE1_ROWS", "table1_summary", "render_table1", "render_table2",
           "render_table3", "render_solver_table"]


#: The paper's Table 1, as structured data.  ``measured_*`` fields are filled
#: in by the benchmarks; the static fields are the proven bounds.
TABLE1_ROWS: List[Dict[str, object]] = [
    {
        "duration_function": "General non-increasing",
        "hardness": "strongly NP-hard",
        "hardness_of_approximation": "makespan < 2 OPT; resource < 3/2 OPT",
        "approximation": "(1/alpha, 1/(1-alpha)) bi-criteria, 0 < alpha < 1",
        "implemented_by": "repro.core.bicriteria.solve_min_makespan_bicriteria",
        "solver_id": "bicriteria-lp",
        "hardness_reduction": "repro.hardness.gadgets_general (Theorem 4.1, 4.3) / "
                              "minresource_chain (Theorem 4.4)",
    },
    {
        "duration_function": "Recursive binary",
        "hardness": "strongly NP-hard",
        "hardness_of_approximation": "-",
        "approximation": "makespan <= 4 OPT; (4/3, 14/5) bi-criteria",
        "implemented_by": "repro.core.binary_approx",
        "solver_id": "binary-4approx / binary-improved",
        "hardness_reduction": "repro.hardness.gadgets_splitting (Section 4.2)",
    },
    {
        "duration_function": "Multiway splitting",
        "hardness": "strongly NP-hard",
        "hardness_of_approximation": "-",
        "approximation": "makespan <= 5 OPT",
        "implemented_by": "repro.core.kway_approx",
        "solver_id": "kway-5approx",
        "hardness_reduction": "repro.hardness.gadgets_splitting (Section 4.2)",
    },
]


def table1_summary() -> List[Dict[str, object]]:
    """Return the structured Table 1 rows (proven bounds + implementation map)."""
    return [dict(row) for row in TABLE1_ROWS]


def render_table1(measured: Dict[str, Dict[str, float]] = None) -> str:
    """Render Table 1, optionally annotated with measured worst-case ratios.

    ``measured`` maps the duration-function name to a dict with keys such as
    ``worst_ratio_vs_exact`` / ``worst_budget_ratio`` produced by the
    benchmarks.
    """
    measured = measured or {}
    headers = ["Duration function", "Hardness", "Hardness of approx.",
               "Approximation (paper)", "Measured worst ratio", "Measured budget factor"]
    rows = []
    for row in TABLE1_ROWS:
        name = str(row["duration_function"])
        m = measured.get(name, {})
        rows.append([
            name,
            row["hardness"],
            row["hardness_of_approximation"],
            row["approximation"],
            m.get("worst_ratio_vs_exact", m.get("worst_ratio_vs_lp")),
            m.get("worst_budget_ratio"),
        ])
    return format_table(headers, rows)


def render_solver_table() -> str:
    """Render the engine's solver registry as a paper-result mapping table.

    One row per registered solver, in auto-dispatch order: the stable
    solver id usable as ``repro.solve(..., method=...)``, the paper result
    it implements, its proven guarantee and the objectives it supports.
    The table is generated from the live registry, so custom solvers added
    via :func:`repro.engine.register_solver` show up automatically.
    """
    from repro.engine import solver_specs

    headers = ["solver id", "kind", "paper result", "guarantee", "objectives"]
    rows = []
    for spec in solver_specs():
        objectives = ", ".join(sorted(o.replace("min_", "min-") for o in spec.objectives))
        rows.append([spec.solver_id, spec.kind, spec.theorem, spec.guarantee, objectives])
    return format_table(headers, rows)


def render_table2() -> str:
    """Render the reproduction of Table 2."""
    return format_table(TABLE2_HEADER, table2_rows())


def render_table3(x: int = 21) -> str:
    """Render the reproduction of Table 3 for parameter ``x`` (default: the
    value the construction picks for the Figure 9 formula)."""
    return format_table(TABLE3_HEADER, table3_rows(x))
