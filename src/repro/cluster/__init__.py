"""Multi-runner sweep cluster: consistent-hash routing over serve workers.

``repro.serve`` is one process over one
:class:`~repro.engine.async_service.AsyncSweepService`; this package turns
N such processes into **one logical deployment** sharing a single
:class:`~repro.engine.store.SolutionStore`:

* :class:`~repro.cluster.ring.HashRing` -- deterministic consistent
  hashing with virtual nodes; the same cell digest always routes to the
  same runner, and a join/leave moves only the keys that must move --
  with :func:`~repro.cluster.ring.moved_keys` enumerating *exactly*
  which ranges those are, the substrate of live resizing.
* :class:`~repro.cluster.router.ClusterClient` -- the client-side router:
  groups a spec sweep by ring placement, fires per-runner sub-requests,
  reassembles streamed results in expansion order, fails over unanswered
  cells to the next runner in preference order when a runner dies
  mid-sweep, and aggregates the ``metrics`` op across runners.
* :class:`~repro.cluster.router.RouterServer` -- the same router as a
  standalone JSON-lines front (``python -m repro.cluster``), so
  unmodified single-server clients talk to the whole cluster.
* :class:`~repro.cluster.runners.LocalCluster` -- N in-process
  unix-socket :class:`~repro.serve.SweepServer` runners over one store
  root, with ``kill()`` for failover tests; and
  :class:`~repro.cluster.runners.RunnerAddress`, the one way every layer
  names a runner endpoint.

Cross-process write safety for the shared store (per-shard advisory file
locks, single-writer compaction election) lives in
:mod:`repro.engine.store`; the cluster layer only *observes* it through
store counters (``lock_timeouts``, ``stale_locks_recovered``,
``compactions_skipped``).  See ``docs/serving.md`` ("Running a cluster").
"""

from repro.cluster.ring import HashRing, MovedRange, moved_keys
from repro.cluster.router import ClusterClient, ClusterStats, RouterServer, aggregate_metrics
from repro.cluster.runners import LocalCluster, RunnerAddress

__all__ = [
    "HashRing",
    "MovedRange",
    "moved_keys",
    "RunnerAddress",
    "LocalCluster",
    "ClusterClient",
    "ClusterStats",
    "RouterServer",
    "aggregate_metrics",
]
