"""``python -m repro.cluster`` -- run the router front of a sweep cluster.

Two deployment shapes:

* ``--spawn N --store DIR`` -- fork N ``python -m repro.serve`` runner
  *subprocesses* on unix sockets sharing ``DIR`` (the store's per-shard
  advisory locking makes their concurrent writes safe), then serve the
  router in front of them.  One command, a whole cluster::

      python -m repro.cluster --spawn 3 --store var/solutions --port 7430

* ``--runner SPEC`` (repeatable) -- front already-running runners
  (``unix:/path``, ``host:port`` or bare ``port``)::

      python -m repro.cluster --runner unix:/tmp/r0.sock \\
                              --runner unix:/tmp/r1.sock --port 7430

``--spawn-transport tcp`` binds each spawned runner to a TCP port
(``--spawn-base-port`` + index) instead of a unix socket -- the multi-host
shape, where every runner is reachable by ``host:port`` from anywhere.

The router listens on TCP (``--port``) or a unix socket (``--unix``) and
speaks the single-server JSON-lines protocol (``docs/serving.md``), so
every existing client works unchanged against the cluster.  Once up, the
deployment resizes **live**: send the router a ``resize`` op to join a
freshly started runner (the router prewarms the joiner's key range before
routing traffic to it) or to retire one, and ``ring`` to inspect the
current membership -- see docs/serving.md ("Elastic scaling").
"""

from __future__ import annotations

import argparse
import asyncio
import os
import subprocess
import sys
import tempfile
import time
from typing import List, Optional, Sequence

from repro.cluster.router import ClusterClient, RouterServer
from repro.cluster.runners import RunnerAddress
from repro.utils.validation import require

__all__ = ["main"]

#: Seconds to wait for a spawned runner's socket to appear.
_SPAWN_WAIT = 30.0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster",
        description="Consistent-hash router front for N repro.serve runners.")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=7430,
                        help="router TCP port (0 picks a free one)")
    parser.add_argument("--unix", metavar="PATH", default=None,
                        help="serve the router on a unix socket instead")
    parser.add_argument("--runner", metavar="SPEC", action="append",
                        default=[],
                        help="existing runner endpoint (unix:/path, "
                             "host:port or port); repeatable")
    parser.add_argument("--spawn", type=int, metavar="N", default=0,
                        help="spawn N repro.serve runner subprocesses on "
                             "unix sockets (requires --store)")
    parser.add_argument("--spawn-transport", choices=("unix", "tcp"),
                        default="unix",
                        help="socket family for --spawn runners: unix "
                             "sockets (default) or TCP on 127.0.0.1 -- the "
                             "multi-host shape")
    parser.add_argument("--spawn-base-port", type=int, metavar="PORT",
                        default=7441,
                        help="first TCP port for --spawn-transport tcp "
                             "(runner-i binds PORT+i; default 7441)")
    parser.add_argument("--store", metavar="DIR", default=None,
                        help="shared SolutionStore directory: required for "
                             "--spawn runners, and (either mode) lets the "
                             "router answer already-solved cells locally "
                             "instead of routing them")
    parser.add_argument("--executor", choices=("process", "thread"),
                        default="process",
                        help="executor for --spawn runners")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker pool size per --spawn runner")
    parser.add_argument("--vnodes", type=int, default=128,
                        help="virtual nodes per runner on the hash ring")
    parser.add_argument("--request-timeout", type=float, default=60.0,
                        help="seconds before a runner sub-request fails over")
    return parser


def _tcp_bound(port: int) -> bool:
    """Is something accepting connections on ``127.0.0.1:port``?"""
    import socket

    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
        probe.settimeout(0.25)
        return probe.connect_ex(("127.0.0.1", port)) == 0


def _spawn_runners(addresses: Sequence[RunnerAddress], store: str, *,
                   executor: str, workers: Optional[int]
                   ) -> List[subprocess.Popen]:
    """Start one serve subprocess per address; blocks until all bind."""
    processes: List[subprocess.Popen] = []
    for address in addresses:
        command = [sys.executable, "-m", "repro.serve",
                   "--store", store, "--executor", executor,
                   "--runner-id", address.name]
        if address.unix_socket:
            command.extend(["--unix", address.unix_socket])
        else:
            command.extend(["--host", address.host,
                            "--port", str(address.port)])
        if workers is not None:
            command.extend(["--workers", str(workers)])
        processes.append(subprocess.Popen(command))
    deadline = time.monotonic() + _SPAWN_WAIT
    for address, process in zip(addresses, processes):
        while not (os.path.exists(address.unix_socket)
                   if address.unix_socket else _tcp_bound(address.port)):
            require(process.poll() is None,
                    f"{address.name} exited with {process.returncode} "
                    "before binding its socket")
            require(time.monotonic() < deadline,
                    f"{address.name} did not bind {address.endpoint} "
                    f"within {_SPAWN_WAIT}s")
            time.sleep(0.05)
    return processes


async def _run_router(args: argparse.Namespace,
                      addresses: List[RunnerAddress]) -> None:
    client = ClusterClient(addresses, vnodes=args.vnodes,
                           request_timeout=args.request_timeout,
                           store=args.store)
    health = await client.check_health()
    down = sorted(name for name, ok in health.items() if not ok)
    require(len(client.healthy) > 0,
            f"no runner answered the initial health check: {down}")
    router = RouterServer(client, host=args.host, port=args.port,
                          unix_socket=args.unix)
    await router.start()
    print(f"repro.cluster: routing on {router.address} over "
          f"{len(client.healthy)}/{len(addresses)} runners"
          + (f" (down: {', '.join(down)})" if down else ""), flush=True)
    try:
        await router.serve_forever()
    except asyncio.CancelledError:  # pragma: no cover - Ctrl-C path
        pass
    finally:
        await router.aclose()


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``python -m repro.cluster``."""
    args = _build_parser().parse_args(argv)
    require(bool(args.runner) != (args.spawn > 0),
            "need exactly one of --runner ... or --spawn N")
    processes: List[subprocess.Popen] = []
    socket_dir: Optional[tempfile.TemporaryDirectory] = None
    if args.spawn:
        require(args.store is not None, "--spawn requires --store DIR")
        if args.spawn_transport == "tcp":
            addresses = [RunnerAddress(name=f"runner-{i}", host="127.0.0.1",
                                       port=args.spawn_base_port + i)
                         for i in range(args.spawn)]
        else:
            socket_dir = tempfile.TemporaryDirectory(prefix="repro-cluster-")
            addresses = [RunnerAddress(name=f"runner-{i}",
                                       unix_socket=os.path.join(
                                           socket_dir.name,
                                           f"runner-{i}.sock"))
                         for i in range(args.spawn)]
        processes = _spawn_runners(addresses, args.store,
                                   executor=args.executor,
                                   workers=args.workers)
    else:
        addresses = [RunnerAddress.parse(spec) for spec in args.runner]
    try:
        asyncio.run(_run_router(args, addresses))
    except KeyboardInterrupt:  # pragma: no cover - interactive teardown
        print("repro.cluster: shutting down", flush=True)
    finally:
        for process in processes:
            process.terminate()
        for process in processes:
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover
                process.kill()
        if socket_dir is not None:
            socket_dir.cleanup()
    return 0


if __name__ == "__main__":
    sys.exit(main())
