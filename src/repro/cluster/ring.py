"""Consistent-hash ring with virtual nodes -- the cluster's placement law.

The router's one job is answering "which runner owns this cell?" the same
way every time, from every process, with no shared state.  A
:class:`HashRing` does it with the classic construction: each node is
hashed onto a circle at ``vnodes`` positions (sha256 of ``"{node}#{i}"``),
a key routes to the first node position clockwise from the key's own hash,
and adding or removing a node only moves the keys whose clockwise arc
changed -- in expectation ``1/n`` of the key space, never a full reshuffle.
That *minimal movement* property is what keeps the surviving runners' warm
LRU/skeleton caches warm across a join or leave.

Everything is derived from sha256 of stable strings: two
:class:`HashRing` instances built from the same node names agree exactly,
whether they live in the router process, a client library, or a test --
there is no registration protocol to drift.

Elastic resizes need two more affordances, both provided here:

* rings are **versioned snapshots** -- :attr:`HashRing.version` bumps on
  every membership change and :meth:`HashRing.copy` is cheap, so a router
  can capture the pre-resize ring, mutate the live one, and reason about
  the difference;
* :func:`moved_keys` enumerates **exactly** the position ranges whose
  owner differs between two rings (as :class:`MovedRange` records), which
  is what lets a resize prove minimal movement and a joining runner
  prewarm precisely its acquired key range -- everything outside the
  returned ranges is untouched by construction.
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.utils.validation import require

__all__ = ["HashRing", "DEFAULT_VNODES", "MovedRange", "moved_keys",
           "RING_POSITIONS"]

#: Virtual nodes per runner.  128 keeps the per-runner share of a 3-5 node
#: ring within a few percent of uniform while the ring stays tiny
#: (hundreds of 8-byte positions) and O(log) to probe.
DEFAULT_VNODES = 128

#: Size of the position space (ring positions are 64-bit sha256 prefixes).
RING_POSITIONS = 2 ** 64


def _position(token: str) -> int:
    """A stable 64-bit ring position for one token."""
    return int.from_bytes(hashlib.sha256(token.encode("utf-8")).digest()[:8],
                          "big")


class HashRing:
    """Deterministic consistent hashing over named nodes.

    Nodes are plain strings (runner names); keys are plain strings (spec
    cell digests / request fingerprints).  Mutation (:meth:`add` /
    :meth:`remove`) is **incremental** -- only the joining/leaving node's
    own vnode positions are spliced in or out, the other ``(n-1) *
    vnodes`` entries are untouched -- and bumps :attr:`version`, so a
    live resize costs O(vnodes · log) instead of a full rebuild.
    """

    def __init__(self, nodes: Iterable[str] = (), *,
                 vnodes: int = DEFAULT_VNODES):
        require(vnodes >= 1, "vnodes must be >= 1")
        self.vnodes = vnodes
        self._nodes: List[str] = []
        #: Sorted vnode positions and the node owning each (parallel lists).
        self._positions: List[int] = []
        self._owners: List[str] = []
        #: Membership mutations since construction: two rings built from
        #: the same node list start at the same version (0), and every
        #: live join/leave afterwards bumps it -- the resize epoch the
        #: router reports as ``ring_version``.
        self.version = 0
        for node in nodes:
            self.add(node)
        self.version = 0

    # ------------------------------------------------------------------
    @property
    def nodes(self) -> Tuple[str, ...]:
        """The member node names, in insertion order."""
        return tuple(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def copy(self) -> "HashRing":
        """An independent snapshot (same placement, same version)."""
        clone = HashRing(vnodes=self.vnodes)
        clone._nodes = list(self._nodes)
        clone._positions = list(self._positions)
        clone._owners = list(self._owners)
        clone.version = self.version
        return clone

    def to_payload(self) -> Dict[str, Any]:
        """JSON-safe description; :meth:`from_payload` rebuilds it."""
        return {"nodes": list(self._nodes), "vnodes": self.vnodes,
                "version": self.version}

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "HashRing":
        """Rebuild a ring shipped over the wire (placement-identical)."""
        require(isinstance(payload, dict), "ring payload must be an object")
        nodes = payload.get("nodes")
        require(isinstance(nodes, list)
                and all(isinstance(n, str) for n in nodes),
                "ring payload needs a 'nodes' list of strings")
        ring = cls(nodes, vnodes=int(payload.get("vnodes", DEFAULT_VNODES)))
        ring.version = int(payload.get("version", 0))
        return ring

    def _rebuild(self) -> None:
        """Reference (re)construction: sort every node's vnodes at once.

        Mutation no longer uses this -- :meth:`add`/:meth:`remove` splice
        incrementally -- but it stays as the pinned equivalence oracle:
        ``tests/test_cluster_elastic.py`` asserts an incrementally mutated
        ring is entry-for-entry identical to a rebuilt one.
        """
        pairs: List[Tuple[int, str]] = []
        for node in self._nodes:
            for i in range(self.vnodes):
                pairs.append((_position(f"{node}#{i}"), node))
        # Ties (astronomically unlikely) resolve by node name so every
        # replica of the ring still agrees.
        pairs.sort()
        self._positions = [p for p, _ in pairs]
        self._owners = [n for _, n in pairs]

    def _splice_in(self, node: str) -> None:
        """Insert ``node``'s vnodes, preserving the (position, name) order."""
        for i in range(self.vnodes):
            position = _position(f"{node}#{i}")
            index = bisect.bisect_left(self._positions, position)
            # Match _rebuild()'s tie order: equal positions sort by name.
            while (index < len(self._positions)
                   and self._positions[index] == position
                   and self._owners[index] < node):
                index += 1
            self._positions.insert(index, position)
            self._owners.insert(index, node)

    def _splice_out(self, node: str) -> None:
        """Remove ``node``'s vnodes; everyone else's entries stay put."""
        for i in range(self.vnodes):
            position = _position(f"{node}#{i}")
            index = bisect.bisect_left(self._positions, position)
            while (index < len(self._positions)
                   and self._positions[index] == position):
                if self._owners[index] == node:
                    del self._positions[index]
                    del self._owners[index]
                    break
                index += 1

    def add(self, node: str) -> None:
        """Join one node (idempotent); bumps :attr:`version` on change."""
        require(isinstance(node, str) and bool(node),
                "ring nodes must be non-empty strings")
        if node in self._nodes:
            return
        self._nodes.append(node)
        self._splice_in(node)
        self.version += 1

    def remove(self, node: str) -> None:
        """Leave one node (idempotent); bumps :attr:`version` on change."""
        if node not in self._nodes:
            return
        self._nodes.remove(node)
        self._splice_out(node)
        self.version += 1

    # ------------------------------------------------------------------
    def owner_at(self, position: int) -> Optional[str]:
        """The node owning an absolute ring ``position`` (``None`` when
        empty).

        A key hashing *exactly onto* a vnode position belongs to the next
        position clockwise (``bisect_right`` semantics), matching
        :meth:`route` bit for bit -- :func:`moved_keys` relies on the two
        never disagreeing.
        """
        if not self._nodes:
            return None
        index = bisect.bisect_right(self._positions, position)
        if index == len(self._positions):  # wrap past 2**64
            index = 0
        return self._owners[index]

    def route(self, key: str) -> str:
        """The node owning ``key`` (the first vnode clockwise)."""
        require(len(self._nodes) > 0, "cannot route on an empty ring")
        owner = self.owner_at(_position(key))
        assert owner is not None
        return owner

    def preference(self, key: str, limit: Optional[int] = None) -> List[str]:
        """Distinct nodes in failover order for ``key``.

        The first entry is :meth:`route`'s answer (the primary); each
        subsequent entry is the next *distinct* owner clockwise -- exactly
        where the key would live if every earlier entry left the ring, so
        walking this list IS the deterministic rebalancing rule.
        """
        require(len(self._nodes) > 0, "cannot route on an empty ring")
        want = len(self._nodes) if limit is None else min(limit, len(self._nodes))
        start = bisect.bisect_right(self._positions, _position(key))
        order: List[str] = []
        seen: set = set()
        for step in range(len(self._positions)):
            owner = self._owners[(start + step) % len(self._positions)]
            if owner not in seen:
                seen.add(owner)
                order.append(owner)
                if len(order) >= want:
                    break
        return order

    def shares(self, keys: Iterable[str]) -> Dict[str, int]:
        """How many of ``keys`` each node owns (distribution diagnostics)."""
        counts: Dict[str, int] = {node: 0 for node in self._nodes}
        for key in keys:
            counts[self.route(key)] += 1
        return counts


# ---------------------------------------------------------------------------
# resize diffing
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class MovedRange:
    """One maximal position interval whose owner changed across a resize.

    ``start``/``end`` are *inclusive* 64-bit ring positions (wraparound
    intervals are split at 0, so ``start <= end`` always holds); any key
    hashing into the interval routed to ``old_owner`` before the resize
    and routes to ``new_owner`` after it.  ``old_owner`` is ``None`` only
    when the old ring was empty.
    """

    start: int
    end: int
    old_owner: Optional[str]
    new_owner: str

    def contains_position(self, position: int) -> bool:
        return self.start <= position <= self.end

    def contains(self, key: str) -> bool:
        """Did ``key`` change owner in this range's resize?"""
        return self.contains_position(_position(key))

    def span(self) -> int:
        """How many ring positions the interval covers."""
        return self.end - self.start + 1


def moved_keys(old: HashRing, new: HashRing) -> List[MovedRange]:
    """Exactly the key ranges that change owner going from ``old`` to
    ``new``.

    The union of both rings' vnode positions cuts the circle into
    elementary arcs on which both ownership functions are constant; each
    arc whose owners differ is reported (wraparound arcs split at 0).  A
    key is moved by the resize **iff** it falls in a returned range --
    pinned against per-key ``route()`` comparison in the tests -- so the
    total :meth:`MovedRange.span` over :data:`RING_POSITIONS` is the exact
    moved fraction of the key space, and a joining runner's prewarm scan
    (:meth:`repro.engine.store.SolutionStore.scan_routed`) touches nothing
    outside these ranges.
    """
    boundaries = sorted(set(old._positions) | set(new._positions))
    if not boundaries:
        return []
    ranges: List[MovedRange] = []

    def emit(start: int, end: int) -> None:
        if start > end:
            return
        old_owner = old.owner_at(start)
        new_owner = new.owner_at(start)
        if new_owner is not None and old_owner != new_owner:
            ranges.append(MovedRange(start, end, old_owner, new_owner))

    for index in range(len(boundaries) - 1):
        emit(boundaries[index], boundaries[index + 1] - 1)
    # The wrap arc past the last vnode: identical ownership on both sides
    # of 0 (both resolve to each ring's first vnode), split for start<=end.
    emit(boundaries[-1], RING_POSITIONS - 1)
    emit(0, boundaries[0] - 1)
    return ranges


def moved_key_subset(ranges: Sequence[MovedRange],
                     keys: Iterable[str]) -> List[str]:
    """The subset of ``keys`` falling inside any of ``ranges``."""
    if not ranges:
        return []
    starts = sorted((r.start, r.end) for r in ranges)
    lows = [s for s, _ in starts]

    def hit(position: int) -> bool:
        index = bisect.bisect_right(lows, position) - 1
        return index >= 0 and position <= starts[index][1]

    return [key for key in keys if hit(_position(key))]
