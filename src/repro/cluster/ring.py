"""Consistent-hash ring with virtual nodes -- the cluster's placement law.

The router's one job is answering "which runner owns this cell?" the same
way every time, from every process, with no shared state.  A
:class:`HashRing` does it with the classic construction: each node is
hashed onto a circle at ``vnodes`` positions (sha256 of ``"{node}#{i}"``),
a key routes to the first node position clockwise from the key's own hash,
and adding or removing a node only moves the keys whose clockwise arc
changed -- in expectation ``1/n`` of the key space, never a full reshuffle.
That *minimal movement* property is what keeps the surviving runners' warm
LRU/skeleton caches warm across a join or leave.

Everything is derived from sha256 of stable strings: two
:class:`HashRing` instances built from the same node names agree exactly,
whether they live in the router process, a client library, or a test --
there is no registration protocol to drift.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Optional, Tuple

from repro.utils.validation import require

__all__ = ["HashRing", "DEFAULT_VNODES"]

#: Virtual nodes per runner.  128 keeps the per-runner share of a 3-5 node
#: ring within a few percent of uniform while the ring stays tiny
#: (hundreds of 8-byte positions) and O(log) to probe.
DEFAULT_VNODES = 128


def _position(token: str) -> int:
    """A stable 64-bit ring position for one token."""
    return int.from_bytes(hashlib.sha256(token.encode("utf-8")).digest()[:8],
                          "big")


class HashRing:
    """Deterministic consistent hashing over named nodes.

    Nodes are plain strings (runner names); keys are plain strings (spec
    cell digests / request fingerprints).  The ring is cheap to copy and
    rebuild -- mutation (:meth:`add` / :meth:`remove`) exists for
    join/leave, not for performance.
    """

    def __init__(self, nodes: Iterable[str] = (), *,
                 vnodes: int = DEFAULT_VNODES):
        require(vnodes >= 1, "vnodes must be >= 1")
        self.vnodes = vnodes
        self._nodes: List[str] = []
        #: Sorted vnode positions and the node owning each (parallel lists).
        self._positions: List[int] = []
        self._owners: List[str] = []
        for node in nodes:
            self.add(node)

    # ------------------------------------------------------------------
    @property
    def nodes(self) -> Tuple[str, ...]:
        """The member node names, in insertion order."""
        return tuple(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def _rebuild(self) -> None:
        pairs: List[Tuple[int, str]] = []
        for node in self._nodes:
            for i in range(self.vnodes):
                pairs.append((_position(f"{node}#{i}"), node))
        # Ties (astronomically unlikely) resolve by node name so every
        # replica of the ring still agrees.
        pairs.sort()
        self._positions = [p for p, _ in pairs]
        self._owners = [n for _, n in pairs]

    def add(self, node: str) -> None:
        """Join one node (idempotent)."""
        require(isinstance(node, str) and bool(node),
                "ring nodes must be non-empty strings")
        if node in self._nodes:
            return
        self._nodes.append(node)
        self._rebuild()

    def remove(self, node: str) -> None:
        """Leave one node (idempotent)."""
        if node not in self._nodes:
            return
        self._nodes.remove(node)
        self._rebuild()

    # ------------------------------------------------------------------
    def route(self, key: str) -> str:
        """The node owning ``key`` (the first vnode clockwise)."""
        require(len(self._nodes) > 0, "cannot route on an empty ring")
        index = bisect.bisect_right(self._positions, _position(key))
        if index == len(self._positions):  # wrap past 2**64
            index = 0
        return self._owners[index]

    def preference(self, key: str, limit: Optional[int] = None) -> List[str]:
        """Distinct nodes in failover order for ``key``.

        The first entry is :meth:`route`'s answer (the primary); each
        subsequent entry is the next *distinct* owner clockwise -- exactly
        where the key would live if every earlier entry left the ring, so
        walking this list IS the deterministic rebalancing rule.
        """
        require(len(self._nodes) > 0, "cannot route on an empty ring")
        want = len(self._nodes) if limit is None else min(limit, len(self._nodes))
        start = bisect.bisect_right(self._positions, _position(key))
        order: List[str] = []
        seen: set = set()
        for step in range(len(self._positions)):
            owner = self._owners[(start + step) % len(self._positions)]
            if owner not in seen:
                seen.add(owner)
                order.append(owner)
                if len(order) >= want:
                    break
        return order

    def shares(self, keys: Iterable[str]) -> Dict[str, int]:
        """How many of ``keys`` each node owns (distribution diagnostics)."""
        counts: Dict[str, int] = {node: 0 for node in self._nodes}
        for key in keys:
            counts[self.route(key)] += 1
        return counts
