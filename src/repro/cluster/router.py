"""The cluster router: placement, fan-out, failover, metric aggregation.

:class:`ClusterClient` is the client-side library form -- callers that
already speak :func:`repro.serve.request_sweep_spec` get the same call
shape against N runners.  One sweep is routed cell-by-cell on a
:class:`~repro.cluster.ring.HashRing` over the runner *names* (the key is
the spec's content digest, so the same cell always lands on the runner
whose LRU and LP-skeleton caches already saw it), fanned out as one
``sweep_spec`` sub-request per runner, and reassembled in expansion order
as the per-cell lines stream back.  A runner that dies mid-sweep fails
over: its *unanswered* cells are re-routed to the next runner in each
cell's ring preference order (deterministic -- exactly where the ring
would place them if the dead runner had left), and the shared
:class:`~repro.engine.store.SolutionStore` makes the recovery cheap --
whatever the dead runner persisted before dying is answered from the
store, not recomputed.

:class:`RouterServer` wraps the same client as a standalone JSON-lines
front (``python -m repro.cluster``), so unmodified single-server clients
(the load harness included) talk to the whole cluster through one socket.

``metrics`` aggregates across runners: :func:`aggregate_metrics` sums
every numeric counter leaf key-by-key and keeps the per-runner snapshots
under ``"runners"`` -- the aggregate has the exact shape one runner's
snapshot has, so everything downstream (the load report's reconciliation,
the benchmark gates) works unchanged against a cluster.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.cluster.ring import (DEFAULT_VNODES, HashRing, moved_key_subset,
                                moved_keys)
from repro.cluster.runners import RunnerAddress
from repro.engine.core import Problem, SolveLimits
from repro.engine.fingerprint import spec_alias_key
from repro.engine.plan import build_sweep_plan
from repro.engine.store import SolutionStore, report_to_payload
from repro.scenarios import ScenarioGrid, ScenarioSpec
from repro.serve import PROTOCOL_VERSION, problem_to_payload
from repro.utils.validation import ValidationError, require

__all__ = ["ClusterClient", "ClusterStats", "RouterServer",
           "aggregate_metrics", "spec_route_key", "payload_route_key"]

#: ``on_line`` callback: ``(global cell index, per-cell response line)``.
LineCallback = Callable[[int, Dict[str, Any]], Any]


def spec_route_key(spec: ScenarioSpec) -> str:
    """The ring key of one declarative cell: its content digest.

    Deliberately *not* the request fingerprint: the digest needs no DAG
    build and no method/limits context, and it is exactly as stable --
    the same cell payload routes identically from every client process.
    """
    return spec.cell_digest()


def payload_route_key(payload: Dict[str, Any]) -> str:
    """The ring key of one materialized problem payload (content hash)."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class ClusterStats:
    """Rolling counters of one :class:`ClusterClient` lifetime."""

    #: Sweep calls served.
    requests: int = 0
    #: Cells routed (duplicates included).
    cells: int = 0
    #: Cells shipped over the cluster wire (= routed cells; kept as its
    #: own counter so incremental-sweep gates can pin it to 0).
    wire_cells: int = 0
    #: Cells answered client-side from the shared store by the planning
    #: tier -- never shipped to any runner.
    planned_local: int = 0
    #: Cells answered by their ring-primary runner.
    primary_cells: int = 0
    #: Cells re-routed to a failover runner after a runner failure.
    reroutes: int = 0
    #: Runner connection failures observed (connect, mid-stream, timeout).
    runner_errors: int = 0
    #: ``metrics`` aggregation polls served.
    metrics_polls: int = 0
    #: Resize epoch: the full-membership ring's version (0 until the
    #: first live :meth:`ClusterClient.add_runner` / ``remove_runner``).
    ring_version: int = 0
    #: Cells of the most recent sweep whose owner changed across resizes
    #: -- the live measure of the ring's minimal-movement property
    #: (:func:`~repro.cluster.ring.moved_keys` over the retained keys).
    cells_moved: int = 0
    #: Cells answered from a runner's prewarmed memory tier
    #: (``source: "memory"``) -- the warm-handoff payoff counter.
    prewarm_hits: int = 0

    def affinity(self) -> float:
        """Fraction of cells answered by their ring primary (1.0 if none)."""
        return self.primary_cells / self.cells if self.cells else 1.0


class ClusterClient:
    """Consistent-hash router over N serve runners (see module docstring).

    Parameters
    ----------
    runners:
        The runner endpoints.  Ring placement depends only on each
        runner's ``name``; keep names stable across restarts.
    vnodes:
        Virtual nodes per runner on the ring.
    request_timeout:
        Seconds one runner sub-request may take end to end before it is
        treated as a runner failure (and its cells fail over).
    store:
        Optional handle on (or path to) the cluster's **shared**
        :class:`~repro.engine.store.SolutionStore` root.  With it, spec
        sweeps run the incremental planning tier client-side
        (:func:`~repro.engine.plan.build_sweep_plan`): cells the shared
        store already answers are delivered locally (``planned_local``)
        and only pending cells ship over the wire (``wire_cells``).
        Without it every cell routes as before.
    limits / validate:
        The solve context the runners use, baked into every plan lookup
        -- they must match the runners' own configuration or the
        client-side plan simply misses (correct, just not incremental).
    """

    def __init__(self, runners: Sequence[RunnerAddress], *,
                 vnodes: int = DEFAULT_VNODES,
                 request_timeout: float = 60.0,
                 store: Union[SolutionStore, str, None] = None,
                 limits: Optional[SolveLimits] = None,
                 validate: bool = True):
        runners = list(runners)
        require(len(runners) >= 1, "a cluster client needs >= 1 runner")
        names = [r.name for r in runners]
        require(len(set(names)) == len(names),
                f"duplicate runner names: {sorted(names)}")
        require(request_timeout > 0, "request_timeout must be positive")
        self.runners: Dict[str, RunnerAddress] = {r.name: r for r in runners}
        self.ring = HashRing(names, vnodes=vnodes)
        #: The full-membership ring: affinity is always measured against
        #: where a cell *should* live, even while a runner is down.
        self._full_ring = HashRing(names, vnodes=vnodes)
        self.request_timeout = request_timeout
        if isinstance(store, str):
            store = SolutionStore(store)
        self.store = store
        self.limits = limits
        self.validate = validate
        self.stats = ClusterStats()
        self._unhealthy: set = set()
        self._sub_ids = 0
        #: Route keys of the most recent sweep, retained so a resize can
        #: report how many of its cells actually changed owner
        #: (``cells_moved``) without re-asking the caller.
        self._last_keys: List[str] = []

    # ------------------------------------------------------------------
    # health / membership
    # ------------------------------------------------------------------
    @property
    def healthy(self) -> List[str]:
        """Names of runners currently believed reachable."""
        return [name for name in self.runners if name not in self._unhealthy]

    def _mark_unhealthy(self, name: str) -> None:
        if name not in self._unhealthy:
            self._unhealthy.add(name)
            self.stats.runner_errors += 1
            self.ring.remove(name)

    def _mark_healthy(self, name: str) -> None:
        if name in self._unhealthy:
            self._unhealthy.discard(name)
            self.ring.add(name)

    async def _open(self, address: RunnerAddress
                    ) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        if address.unix_socket:
            return await asyncio.open_unix_connection(address.unix_socket)
        return await asyncio.open_connection(address.host, address.port)

    async def check_health(self, timeout: float = 5.0) -> Dict[str, bool]:
        """Ping every registered runner; update ring membership to match.

        A runner that answers rejoins the ring (deterministically regaining
        exactly its old key range); one that does not leaves it.
        """
        async def probe(name: str, address: RunnerAddress) -> bool:
            try:
                reader, writer = await asyncio.wait_for(
                    self._open(address), timeout)
            except (ConnectionError, OSError, asyncio.TimeoutError):
                return False
            try:
                writer.write(json.dumps({"op": "ping", "id": "hc"}).encode()
                             + b"\n")
                await writer.drain()
                line = await asyncio.wait_for(reader.readline(), timeout)
                return bool(line) and bool(json.loads(line).get("pong"))
            except (ConnectionError, OSError, asyncio.TimeoutError,
                    json.JSONDecodeError):
                return False
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass

        names = list(self.runners)
        alive = await asyncio.gather(*[probe(n, self.runners[n])
                                       for n in names])
        for name, ok in zip(names, alive):
            if ok:
                self._mark_healthy(name)
            else:
                self._mark_unhealthy(name)
        return dict(zip(names, alive))

    # ------------------------------------------------------------------
    # elastic membership
    # ------------------------------------------------------------------
    def _account_resize(self, old_full: HashRing) -> int:
        """Update resize stats after a membership change; returns the
        number of last-sweep cells whose owner moved."""
        self.stats.ring_version = self._full_ring.version
        moved = 0
        if self._last_keys:
            ranges = moved_keys(old_full, self._full_ring)
            moved = len(moved_key_subset(ranges, self._last_keys))
            self.stats.cells_moved += moved
        return moved

    async def add_runner(self, address: Union[RunnerAddress, str], *,
                         prewarm: bool = True,
                         warm_limit: Optional[int] = None) -> Dict[str, Any]:
        """Join one runner to the *running* cluster -- no restart.

        Ordering is the warm-handoff contract: the runner is registered
        and the full ring resized first, then (with ``prewarm``, the
        default) the joiner is told to bulk-load its acquired key range
        from the shared store via the ``warm_cache`` wire op, and only
        after that warm completes does the *live* routing ring include it
        -- the first cell routed to the joiner finds a warm LRU.  Sweeps
        in flight are untouched: routing rounds capture their assignment
        up front, so the resize applies between rounds.

        A failed warm (connection error, no store on the runner) does not
        fail the join; the runner simply takes traffic cold and the
        shared store answers its misses.  Returns a summary dict
        (``runner``, ``ring_version``, ``cells_moved``, ``warmed``,
        ``aliases``).
        """
        if isinstance(address, str):
            address = RunnerAddress.parse(address)
        require(isinstance(address, RunnerAddress),
                "add_runner() wants a RunnerAddress or a runner spec string")
        require(address.name not in self.runners,
                f"runner {address.name!r} is already registered")
        old_full = self._full_ring.copy()
        self.runners[address.name] = address
        self._full_ring.add(address.name)
        warm = {"warmed": 0, "aliases": 0}
        if prewarm:
            try:
                warm = await self._warm_one(address.name, limit=warm_limit)
            except (ConnectionError, OSError, asyncio.TimeoutError,
                    json.JSONDecodeError, ValidationError) as exc:
                warm = {"warmed": 0, "aliases": 0,
                        "error": f"{type(exc).__name__}: {exc}"}
        self.ring.add(address.name)
        self._unhealthy.discard(address.name)
        moved = self._account_resize(old_full)
        return {"runner": address.name, "action": "add",
                "ring_version": self.stats.ring_version,
                "cells_moved": moved, "warmed": warm.get("warmed", 0),
                "aliases": warm.get("aliases", 0),
                **({"warm_error": warm["error"]} if "error" in warm else {})}

    def remove_runner(self, name: str) -> Dict[str, Any]:
        """Retire one runner from the running cluster (graceful leave).

        The runner leaves both rings and the registry immediately, so no
        *new* cells route to it; a sub-request already streaming from it
        drains normally on the old assignment (routing rounds capture
        their placement up front).  Its key range falls to the ring
        successors, whose misses the shared store answers -- zero
        recompute.  For a *killed* runner no call is needed at all: the
        existing health-based failover re-routes unanswered cells.
        """
        require(name in self.runners, f"unknown runner {name!r}")
        require(len(self.runners) > 1, "cannot remove the last runner")
        old_full = self._full_ring.copy()
        del self.runners[name]
        self._full_ring.remove(name)
        self.ring.remove(name)
        self._unhealthy.discard(name)
        moved = self._account_resize(old_full)
        return {"runner": name, "action": "remove",
                "ring_version": self.stats.ring_version,
                "cells_moved": moved}

    async def _warm_one(self, name: str, *,
                        limit: Optional[int] = None) -> Dict[str, Any]:
        """Tell one runner to prewarm its full-ring key range."""
        address = self.runners[name]
        reader, writer = await self._open(address)
        try:
            payload: Dict[str, Any] = {
                "op": "warm_cache", "id": f"warm-{name}",
                "ring": self._full_ring.to_payload(), "owner": name}
            if limit is not None:
                payload["limit"] = limit
            writer.write(json.dumps(payload).encode() + b"\n")
            await writer.drain()
            line = await asyncio.wait_for(reader.readline(),
                                          self.request_timeout)
            require(bool(line), "runner closed the connection mid-warm")
            response = json.loads(line)
            if response.get("error"):
                raise ValidationError(
                    f"runner {name!r} warm_cache error: {response['error']}")
            return {"warmed": int(response.get("warmed", 0)),
                    "aliases": int(response.get("aliases", 0))}
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # ------------------------------------------------------------------
    # sweeps
    # ------------------------------------------------------------------
    def _next_failover(self, key: str, tried: set) -> Optional[str]:
        """The first healthy, untried runner in ``key``'s preference order."""
        for name in self._full_ring.preference(key):
            if name in tried or name in self._unhealthy:
                continue
            return name
        return None

    async def sweep_specs(self, scenarios: Union[ScenarioGrid,
                                                 Sequence[ScenarioSpec]],
                          method: str = "auto", *,
                          options: Optional[Dict[str, Any]] = None,
                          on_line: Optional[LineCallback] = None,
                          ) -> List[Dict[str, Any]]:
        """Route one spec-native sweep across the cluster.

        Returns the per-cell response dicts in expansion order, each with
        ``"index"`` rewritten to the *global* cell index -- the same shape
        :func:`repro.serve.request_sweep_spec` returns from one runner.
        ``on_line`` (if given) sees each line the moment it arrives, which
        is how :class:`RouterServer` streams.  Raises
        :class:`ValidationError` when a cell exhausts every runner.

        With a shared ``store`` configured, the sweep is planned first:
        store-answered cells are delivered locally (``source: "store"``,
        ``runner: null``) and only pending cells are routed.
        """
        if isinstance(scenarios, ScenarioGrid):
            scenarios = scenarios.expand()
        specs = [s for s in scenarios]
        require(all(isinstance(s, ScenarioSpec) for s in specs),
                "sweep_specs() wants ScenarioSpecs (or a ScenarioGrid)")
        require(len(specs) > 0, "the sweep expands to zero cells")
        # Retain the full sweep's route keys (planned-local cells
        # included): a later resize measures cells_moved against them.
        self._last_keys = [spec_route_key(spec) for spec in specs]

        answered = self._plan_local(specs, method, options or {}, on_line)
        pending = [i for i in range(len(specs)) if i not in answered]
        if not pending:
            self.stats.requests += 1
            return [answered[i] for i in range(len(specs))]

        keys = [spec_route_key(specs[i]) for i in pending]
        payloads = [specs[i].to_payload() for i in pending]

        def remap_line(sub_index: int, line: Dict[str, Any]) -> None:
            line = dict(line)
            line["index"] = pending[sub_index]
            if on_line is not None:
                on_line(pending[sub_index], line)

        routed = await self._routed_sweep(
            op="sweep_spec", field="specs", payloads=payloads, keys=keys,
            method=method, options=options, on_line=remap_line)
        for sub_index, line in enumerate(routed):
            line = dict(line)
            line["index"] = pending[sub_index]
            answered[pending[sub_index]] = line
        return [answered[i] for i in range(len(specs))]

    def _plan_local(self, specs: Sequence[ScenarioSpec], method: str,
                    options: Dict[str, Any],
                    on_line: Optional[LineCallback],
                    ) -> Dict[int, Dict[str, Any]]:
        """Answer what the shared store already holds; ``{index: line}``.

        Best-effort by design: without a store handle -- or when the
        sweep's options defeat alias hashing -- nothing is answered and
        every cell routes (correct, just not incremental).
        """
        if self.store is None:
            return {}
        try:
            aliases = [spec_alias_key(spec, method, limits=self.limits,
                                      validate=self.validate, **options)
                       for spec in specs]
        except ValidationError:
            return {}
        unique: Dict[str, ScenarioSpec] = {}
        for alias, spec in zip(aliases, specs):
            unique.setdefault(alias, spec)
        plan = build_sweep_plan(list(unique.items()), method,
                                store=self.store, limits=self.limits,
                                validate=self.validate, **options)
        cell_by_alias = {cell.alias: cell for cell in plan.cells}
        answered: Dict[int, Dict[str, Any]] = {}
        for index, alias in enumerate(aliases):
            cell = cell_by_alias[alias]
            if cell.report is None:
                continue
            line = {"index": index, "key": cell.key, "source": "store",
                    "error": None,
                    "report": report_to_payload(cell.report, cell.key),
                    "cell": cell.digest, "runner": None}
            answered[index] = line
            self.stats.planned_local += 1
            if on_line is not None:
                on_line(index, line)
        return answered

    async def sweep(self, problems: Sequence[Problem],
                    method: str = "auto", *,
                    options: Optional[Dict[str, Any]] = None,
                    on_line: Optional[LineCallback] = None,
                    ) -> List[Dict[str, Any]]:
        """Route one materialized sweep (payload-content-hash placement)."""
        payloads = [problem_to_payload(p) for p in problems]
        return await self.sweep_payloads(payloads, method,
                                         options=options, on_line=on_line)

    async def sweep_payloads(self, payloads: Sequence[Dict[str, Any]],
                             method: str = "auto", *,
                             options: Optional[Dict[str, Any]] = None,
                             on_line: Optional[LineCallback] = None,
                             ) -> List[Dict[str, Any]]:
        """:meth:`sweep` for already-encoded wire problem payloads."""
        payloads = list(payloads)
        require(len(payloads) > 0, "sweep requests need >= 1 scenario")
        keys = [payload_route_key(p) for p in payloads]
        self._last_keys = list(keys)
        return await self._routed_sweep(
            op="sweep", field="scenarios", payloads=payloads, keys=keys,
            method=method, options=options, on_line=on_line)

    async def _routed_sweep(self, *, op: str, field: str,
                            payloads: List[Dict[str, Any]], keys: List[str],
                            method: str, options: Optional[Dict[str, Any]],
                            on_line: Optional[LineCallback],
                            ) -> List[Dict[str, Any]]:
        self.stats.requests += 1
        self.stats.cells += len(payloads)
        self.stats.wire_cells += len(payloads)
        require(len(self.healthy) > 0, "no healthy runners in the cluster")
        primaries = [self._full_ring.route(key) for key in keys]
        tried: List[set] = [set() for _ in payloads]
        results: Dict[int, Dict[str, Any]] = {}

        def deliver(index: int, runner: str, line: Dict[str, Any]) -> None:
            line = dict(line)
            line["index"] = index
            line.pop("id", None)
            line["runner"] = runner
            results[index] = line
            if runner == primaries[index]:
                self.stats.primary_cells += 1
            if line.get("source") == "memory":
                # Only the runners' prewarm tier emits this source: the
                # cell was answered from a warmed LRU, no store round-trip.
                self.stats.prewarm_hits += 1
            if on_line is not None:
                on_line(index, line)

        # Initial placement on the live ring, then rounds of fan-out;
        # every round re-routes only the cells its dead runner never
        # answered, so one failure costs one extra round, not a restart.
        assignment: Dict[str, List[int]] = {}
        for index, key in enumerate(keys):
            runner = self.ring.route(key)
            assignment.setdefault(runner, []).append(index)
        while assignment:
            pairs = list(assignment.items())
            failures = await asyncio.gather(*[
                self._fan_once(name, indices, payloads, op=op, field=field,
                               method=method, options=options,
                               deliver=deliver)
                for name, indices in pairs])
            assignment = {}
            for (name, indices), failure in zip(pairs, failures):
                if failure is None:
                    continue
                self._mark_unhealthy(name)
                for index in indices:
                    if index in results:
                        continue
                    tried[index].add(name)
                    target = self._next_failover(keys[index], tried[index])
                    if target is None:
                        raise ValidationError(
                            f"cell {index} exhausted every runner "
                            f"(last failure on {name!r}: {failure})")
                    self.stats.reroutes += 1
                    assignment.setdefault(target, []).append(index)
        require(len(results) == len(payloads),
                f"cluster answered {len(results)}/{len(payloads)} cells")
        return [results[i] for i in range(len(payloads))]

    async def _fan_once(self, name: str, indices: List[int],
                        payloads: List[Dict[str, Any]], *, op: str,
                        field: str, method: str,
                        options: Optional[Dict[str, Any]],
                        deliver: Callable[[int, str, Dict[str, Any]], None],
                        ) -> Optional[str]:
        """One sub-request to one runner; ``None`` on success, else the
        failure description (the caller fails the unanswered cells over).

        A *request-level* error line from the runner (bad payload,
        admission rejection) raises -- that is a deterministic answer, not
        a dead runner, and re-routing it would just repeat it elsewhere.
        """
        self._sub_ids += 1
        sub_id = f"cluster-{self._sub_ids}"
        payload = {"op": op, "id": sub_id,
                   field: [payloads[i] for i in indices],
                   "method": method, "options": options or {}}
        try:
            return await asyncio.wait_for(
                self._fan_stream(name, sub_id, payload, indices, deliver),
                self.request_timeout)
        except (ConnectionError, OSError) as exc:
            return f"connection failed: {exc}"
        except asyncio.TimeoutError:
            return f"no answer within {self.request_timeout}s"
        except asyncio.IncompleteReadError:  # pragma: no cover - readline EOF
            return "connection closed mid-stream"

    async def _fan_stream(self, name: str, sub_id: str,
                          payload: Dict[str, Any], indices: List[int],
                          deliver: Callable[[int, str, Dict[str, Any]], None],
                          ) -> Optional[str]:
        reader, writer = await self._open(self.runners[name])
        try:
            writer.write(json.dumps(payload).encode() + b"\n")
            await writer.drain()
            while True:
                line = await reader.readline()
                if not line:
                    return "runner closed the connection mid-sweep"
                response = json.loads(line)
                if response.get("id") != sub_id:
                    continue  # protocol notices ({"id": null, ...})
                if response.get("rejected"):
                    raise ValidationError(
                        f"runner {name!r} rejected the sweep: "
                        f"{response.get('error')}")
                if "index" in response:
                    deliver(indices[response["index"]], name, response)
                    continue
                if response.get("error"):
                    raise ValidationError(
                        f"runner {name!r} request error: {response['error']}")
                if response.get("done"):
                    return None
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    async def metrics(self) -> Dict[str, Any]:
        """Aggregated ``metrics`` across every healthy runner.

        The aggregate sums each numeric counter leaf key-by-key (shape
        identical to one runner's snapshot), adds per-runner snapshots
        under ``"runners"`` and the router's own :class:`ClusterStats`
        under ``"router"``.  A runner that fails the poll is marked
        unhealthy and skipped.
        """
        self.stats.metrics_polls += 1
        snapshots: Dict[str, Dict[str, Any]] = {}
        for name in list(self.healthy):
            try:
                snapshots[name] = await asyncio.wait_for(
                    self._metrics_one(name), self.request_timeout)
            except (ConnectionError, OSError, asyncio.TimeoutError,
                    json.JSONDecodeError):
                self._mark_unhealthy(name)
        require(len(snapshots) > 0, "no healthy runners answered metrics")
        aggregate = aggregate_metrics(snapshots)
        aggregate["router"] = vars(self.stats).copy()
        aggregate["router"]["affinity"] = round(self.stats.affinity(), 6)
        aggregate["router"]["healthy_runners"] = len(self.healthy)
        return aggregate

    async def _metrics_one(self, name: str) -> Dict[str, Any]:
        reader, writer = await self._open(self.runners[name])
        try:
            writer.write(json.dumps({"op": "metrics",
                                     "id": "cluster-metrics"}).encode()
                         + b"\n")
            await writer.drain()
            line = await reader.readline()
            require(bool(line), "runner closed the connection mid-request")
            response = json.loads(line)
            if response.get("error"):
                raise ValidationError(f"runner {name!r} metrics error: "
                                      f"{response['error']}")
            metrics = response.get("metrics")
            require(isinstance(metrics, dict),
                    "metrics reply must carry a 'metrics' object")
            return metrics
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass


def _merge_leaves(values: List[Any]) -> Any:
    """Aggregate one leaf position across runner snapshots.

    Numbers sum, bools AND (an aggregate flag holds iff it holds on every
    runner), equal strings pass through, anything mixed degrades to
    ``None`` -- aggregation must never invent a value.
    """
    present = [v for v in values if v is not None]
    if not present:
        return None
    if all(isinstance(v, bool) for v in present):
        return all(present)
    if all(isinstance(v, (int, float)) and not isinstance(v, bool)
           for v in present):
        total = sum(present)
        return round(total, 9) if isinstance(total, float) else total
    if all(isinstance(v, str) for v in present):
        return present[0] if len(set(present)) == 1 else None
    return None


def aggregate_metrics(snapshots: Dict[str, Dict[str, Any]]
                      ) -> Dict[str, Any]:
    """Sum runner ``metrics`` snapshots into one cluster-wide snapshot.

    Dicts merge by key union, recursively; leaves combine via
    :func:`_merge_leaves`.  The per-runner inputs are preserved verbatim
    under ``"runners"`` so nothing is lost to the aggregation.
    """
    require(len(snapshots) > 0, "aggregate_metrics needs >= 1 snapshot")

    def merge(values: List[Any]) -> Any:
        if all(isinstance(v, dict) for v in values if v is not None):
            dicts = [v for v in values if isinstance(v, dict)]
            if dicts:
                merged_keys: List[str] = []
                for d in dicts:
                    for k in d:
                        if k not in merged_keys:
                            merged_keys.append(k)
                return {k: merge([d[k] for d in dicts if k in d])
                        for k in merged_keys}
            return None
        return _merge_leaves(values)

    aggregate = merge([snap for snap in snapshots.values()])
    aggregate["runners"] = {name: snap for name, snap in snapshots.items()}
    return aggregate


# ---------------------------------------------------------------------------
# the standalone router front
# ---------------------------------------------------------------------------

class RouterServer:
    """``python -m repro.cluster``: the router as a JSON-lines server.

    Speaks the same protocol as :class:`~repro.serve.SweepServer` (ops
    ``sweep``, ``sweep_spec``, ``metrics``, ``stats``, ``ping``), so any
    single-server client -- :func:`repro.serve.request_sweep_spec`, the
    load harness -- talks to the whole cluster through one socket.  Sweep
    results stream back per cell as the runners answer, with indices
    already rewritten to the client's cell order.  Two router-only ops
    drive elastic scaling without a restart: ``resize`` (live
    join/retire, see :meth:`_serve_resize`) and ``ring`` (the current
    full-membership ring payload plus the healthy-runner list).
    """

    def __init__(self, client: ClusterClient, *,
                 host: str = "127.0.0.1", port: int = 0,
                 unix_socket: Optional[str] = None,
                 max_line_bytes: int = 1 << 20):
        require(max_line_bytes > 0, "max_line_bytes must be positive")
        self.client = client
        self.host = host
        self.port = port
        self.unix_socket = unix_socket
        self.max_line_bytes = max_line_bytes
        self._server: Optional[asyncio.AbstractServer] = None
        self._request_tasks: set = set()

    async def start(self) -> "RouterServer":
        if self.unix_socket:
            self._server = await asyncio.start_unix_server(
                self._handle_client, path=self.unix_socket,
                limit=self.max_line_bytes + 2)
        else:
            self._server = await asyncio.start_server(
                self._handle_client, host=self.host, port=self.port,
                limit=self.max_line_bytes + 2)
            self.port = self._server.sockets[0].getsockname()[1]
        return self

    @property
    def address(self) -> str:
        if self.unix_socket:
            return self.unix_socket
        return f"{self.host}:{self.port}"

    async def serve_forever(self) -> None:
        require(self._server is not None, "call start() before serve_forever()")
        async with self._server:
            await self._server.serve_forever()

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._request_tasks:
            await asyncio.gather(*list(self._request_tasks),
                                 return_exceptions=True)

    async def __aenter__(self) -> "RouterServer":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.aclose()

    # ------------------------------------------------------------------
    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        write_lock = asyncio.Lock()

        async def send(obj: Dict[str, Any]) -> None:
            async with write_lock:
                try:
                    writer.write(json.dumps(obj, sort_keys=True).encode()
                                 + b"\n")
                    await writer.drain()
                except (ConnectionError, RuntimeError, OSError):
                    pass  # client went away; runners finish regardless

        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await send({"id": None,
                                "error": "oversized request line "
                                         f"(> {self.max_line_bytes} bytes)"})
                    break
                except (ConnectionError, OSError):
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    request = json.loads(line)
                    require(isinstance(request, dict),
                            "request lines must be JSON objects")
                except (json.JSONDecodeError, ValidationError) as exc:
                    await send({"id": None, "error": f"bad request line: {exc}"})
                    continue
                task = asyncio.create_task(self._serve_request(request, send))
                self._request_tasks.add(task)
                task.add_done_callback(self._request_tasks.discard)
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_request(self, request: Dict[str, Any], send) -> None:
        request_id = request.get("id")
        op = request.get("op", "sweep")
        try:
            if op == "ping":
                await send({"id": request_id, "pong": True, "router": True})
            elif op == "metrics":
                await send({"id": request_id,
                            "metrics": await self.client.metrics()})
            elif op == "stats":
                stats = vars(self.client.stats).copy()
                stats["affinity"] = round(self.client.stats.affinity(), 6)
                stats["healthy_runners"] = len(self.client.healthy)
                stats["runners"] = {name: name not in self.client._unhealthy
                                    for name in self.client.runners}
                await send({"id": request_id, "stats": stats})
            elif op == "ring":
                await send({"id": request_id,
                            "ring": self.client._full_ring.to_payload(),
                            "healthy": self.client.healthy})
            elif op == "resize":
                await self._serve_resize(request_id, request, send)
            elif op in ("sweep", "sweep_spec"):
                await self._serve_sweep(request_id, op, request, send)
            else:
                await send({"id": request_id, "error": f"unknown op {op!r}"})
        except (ValidationError, ValueError, TypeError, KeyError,
                RuntimeError) as exc:
            await send({"id": request_id,
                        "error": f"{type(exc).__name__}: {exc}"})

    async def _serve_resize(self, request_id: Any,
                            request: Dict[str, Any], send) -> None:
        """Serve one ``resize`` op: live membership change over the wire.

        ``{"op": "resize", "action": "add", "runner": {"name": ...,
        "unix_socket": ...}}`` (or ``"host"``/``"port"``, or a plain
        ``unix:/path`` / ``host:port`` spec string) joins a runner with
        store prewarming (``"prewarm": false`` skips it);
        ``{"action": "remove", "runner": "name"}`` retires one
        gracefully.  Replies with the client's resize summary
        (``ring_version``, ``cells_moved``, warm counts).
        """
        action = request.get("action")
        require(action in ("add", "remove"),
                "resize requests need action 'add' or 'remove'")
        runner = request.get("runner")
        if action == "add":
            if isinstance(runner, dict):
                address = RunnerAddress(
                    name=runner.get("name"),
                    host=runner.get("host", "127.0.0.1"),
                    port=runner.get("port"),
                    unix_socket=runner.get("unix_socket"))
            else:
                require(isinstance(runner, str) and bool(runner),
                        "resize add needs a 'runner' address object or spec")
                address = RunnerAddress.parse(
                    runner, name=request.get("name"))
            outcome = await self.client.add_runner(
                address, prewarm=bool(request.get("prewarm", True)),
                warm_limit=request.get("limit"))
        else:
            require(isinstance(runner, str) and bool(runner),
                    "resize remove needs the runner name")
            outcome = self.client.remove_runner(runner)
        await send({"id": request_id, **outcome})

    async def _serve_sweep(self, request_id: Any, op: str,
                           request: Dict[str, Any], send) -> None:
        options = request.get("options") or {}
        require(isinstance(options, dict), "'options' must be an object")
        method = request.get("method", "auto")
        loop = asyncio.get_running_loop()
        relay_tasks: List[asyncio.Task] = []

        def on_line(index: int, line: Dict[str, Any]) -> None:
            out = dict(line)
            out["id"] = request_id
            relay_tasks.append(loop.create_task(send(out)))

        if op == "sweep_spec":
            grid_payload = request.get("grid")
            spec_payloads = request.get("specs")
            require((grid_payload is None) != (spec_payloads is None),
                    "sweep_spec requests need exactly one of 'grid' or "
                    "'specs'")
            if grid_payload is not None:
                specs = list(ScenarioGrid.from_payload(grid_payload).expand())
            else:
                require(isinstance(spec_payloads, list) and spec_payloads,
                        "'specs' must be a non-empty list of spec payloads")
                specs = [ScenarioSpec.from_payload(p) for p in spec_payloads]
            results = await self.client.sweep_specs(
                specs, method, options=options, on_line=on_line)
        else:
            scenarios = request.get("scenarios")
            require(isinstance(scenarios, list) and scenarios,
                    "sweep requests need a non-empty 'scenarios' list")
            results = await self.client.sweep_payloads(
                scenarios, method, options=options, on_line=on_line)
        if relay_tasks:
            await asyncio.gather(*relay_tasks)
        await send({"id": request_id, "done": True, "count": len(results),
                    "protocol": PROTOCOL_VERSION})
