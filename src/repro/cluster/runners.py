"""Runner endpoints and the in-process test/bench cluster.

:class:`RunnerAddress` is the one way every cluster layer names a runner:
a stable ``name`` (the ring token -- routing depends only on it) plus how
to reach the socket.  :class:`LocalCluster` spins N real
:class:`~repro.serve.SweepServer` runners *in one process* over unix
sockets, each with its own :class:`~repro.engine.async_service.
AsyncSweepService` and its own :class:`~repro.engine.store.SolutionStore`
handle onto one shared store root -- the exact topology
``python -m repro.cluster --spawn`` builds with subprocesses, minus the
process boundary, which is what makes it fast enough for CI
(``tests/test_cluster.py``) and the cluster benchmark.  ``kill()`` takes a
runner down the hard way (listener closed, connections reset) so failover
paths are testable deterministically.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.engine.async_service import AsyncSweepService
from repro.engine.portfolio import Portfolio
from repro.engine.store import SolutionStore
from repro.serve import SweepServer
from repro.utils.validation import require

__all__ = ["RunnerAddress", "LocalCluster"]


@dataclass(frozen=True)
class RunnerAddress:
    """One runner endpoint: ring token plus socket coordinates.

    Exactly one of ``unix_socket`` or ``port`` must be set.  ``name`` is
    the consistent-hash token -- keep it stable across restarts or the
    ring will reshuffle the runner's share of the key space.
    """

    name: str
    host: str = "127.0.0.1"
    port: Optional[int] = None
    unix_socket: Optional[str] = None

    def __post_init__(self) -> None:
        require(isinstance(self.name, str) and bool(self.name),
                "runner names must be non-empty strings")
        require((self.port is None) != (self.unix_socket is None),
                f"runner {self.name!r} needs exactly one of port= or "
                f"unix_socket=")

    @classmethod
    def parse(cls, text: str, *, name: Optional[str] = None) -> "RunnerAddress":
        """Parse a CLI runner spec: ``unix:/path``, ``host:port`` or ``port``.

        ``name`` defaults to the spec text itself, which keeps ring
        placement stable for a given flag value.
        """
        require(isinstance(text, str) and bool(text),
                "runner specs must be non-empty strings")
        label = name if name is not None else text
        if text.startswith("unix:"):
            return cls(name=label, unix_socket=text[len("unix:"):])
        host, sep, port_text = text.rpartition(":")
        if not sep:
            host, port_text = "127.0.0.1", text
        require(port_text.isdigit(), f"bad runner spec {text!r} "
                                     "(want unix:/path, host:port or port)")
        return cls(name=label, host=host or "127.0.0.1", port=int(port_text))

    @property
    def endpoint(self) -> str:
        """Human-readable socket coordinates."""
        if self.unix_socket:
            return self.unix_socket
        return f"{self.host}:{self.port}"


class LocalCluster:
    """N in-process serve runners (unix-socket or TCP) over one store root.

    Elastic membership: :meth:`start_runner` brings one more runner up on
    the running cluster and :meth:`stop_runner` retires one (gracefully
    or as a crash) -- the runner halves of the router's live
    ``resize`` protocol.

    Parameters
    ----------
    size:
        How many runners to start.
    store_root:
        Shared :class:`~repro.engine.store.SolutionStore` directory.  Each
        runner opens its **own** store handle on it (as separate processes
        would); the store's per-shard advisory locking is what keeps their
        concurrent writes safe.  ``None`` creates a temporary root owned
        (and deleted) by the cluster.
    socket_dir:
        Directory for the unix sockets (``None``: a temp dir).
    executor / workers:
        Portfolio configuration per runner; the thread executor keeps a
        3-runner CI cluster cheap (one process, no pool forking).
    lock_timeout:
        Per-runner store ``lock_timeout`` (seconds).
    admission_limit / queue_size / shard_size:
        Passed through to each runner's server/service.
    transport:
        ``"unix"`` (default) serves each runner on a unix socket;
        ``"tcp"`` binds each runner to ``127.0.0.1`` on an OS-assigned
        port -- the multi-host shape (every runner reachable by
        ``host:port``), so the same elastic resize protocol exercised
        over TCP is exactly what a real multi-machine deployment runs.
    """

    def __init__(self, size: int = 3, *,
                 store_root: Optional[str] = None,
                 socket_dir: Optional[str] = None,
                 executor: str = "thread",
                 workers: Optional[int] = 2,
                 lock_timeout: float = 10.0,
                 admission_limit: Optional[int] = None,
                 queue_size: int = 64,
                 shard_size: int = 1,
                 transport: str = "unix"):
        require(size >= 1, "a cluster needs >= 1 runner")
        require(transport in ("unix", "tcp"),
                f"transport must be 'unix' or 'tcp', got {transport!r}")
        self.size = size
        self.transport = transport
        self._tempdirs: List[tempfile.TemporaryDirectory] = []
        if store_root is None:
            owned = tempfile.TemporaryDirectory(prefix="repro-cluster-store-")
            self._tempdirs.append(owned)
            store_root = owned.name
        if socket_dir is None:
            sockets = tempfile.TemporaryDirectory(prefix="repro-cluster-sock-")
            self._tempdirs.append(sockets)
            socket_dir = sockets.name
        self.store_root = store_root
        self.socket_dir = socket_dir
        self.executor = executor
        self.workers = workers
        self.lock_timeout = lock_timeout
        self.admission_limit = admission_limit
        self.queue_size = queue_size
        self.shard_size = shard_size
        self.servers: Dict[str, SweepServer] = {}
        self._names: List[str] = [f"runner-{i}" for i in range(size)]
        #: Hard-stopped runners kept for service reaping at :meth:`aclose`.
        self._aborted: List[SweepServer] = []
        self._started = False

    # ------------------------------------------------------------------
    @property
    def runner_names(self) -> List[str]:
        """Current membership (grows/shrinks with the elastic calls)."""
        return list(self._names)

    def _socket_path(self, name: str) -> str:
        return os.path.join(self.socket_dir, f"{name}.sock")

    def address_of(self, name: str) -> RunnerAddress:
        """One runner's :class:`RunnerAddress` under the cluster transport.

        Unix-socket addresses are knowable before start; TCP addresses
        only exist once the runner has bound its OS-assigned port.
        """
        if self.transport == "unix":
            return RunnerAddress(name=name,
                                 unix_socket=self._socket_path(name))
        server = self.servers.get(name)
        require(server is not None,
                f"TCP runner {name!r} has no bound port until started")
        return RunnerAddress(name=name, host=server.host, port=server.port)

    def addresses(self) -> List[RunnerAddress]:
        """Every current runner's :class:`RunnerAddress`.

        In TCP mode only started runners are listed (their ports are
        OS-assigned at bind time).
        """
        if self.transport == "unix":
            return [self.address_of(name) for name in self._names]
        return [self.address_of(name) for name in self._names
                if name in self.servers]

    async def _start_one(self, name: str) -> RunnerAddress:
        store = SolutionStore(self.store_root,
                              lock_timeout=self.lock_timeout)
        service = AsyncSweepService(
            store=store,
            portfolio=Portfolio(executor=self.executor,
                                max_workers=self.workers),
            queue_size=self.queue_size,
            shard_size=self.shard_size,
            runner_id=name)
        if self.transport == "unix":
            server = SweepServer(service,
                                 unix_socket=self._socket_path(name),
                                 admission_limit=self.admission_limit,
                                 runner_id=name)
        else:
            server = SweepServer(service, host="127.0.0.1", port=0,
                                 admission_limit=self.admission_limit,
                                 runner_id=name)
        await server.start()
        self.servers[name] = server
        return self.address_of(name)

    async def start(self) -> "LocalCluster":
        """Start every runner (idempotent)."""
        if self._started:
            return self
        for name in list(self._names):
            await self._start_one(name)
        self._started = True
        return self

    async def start_runner(self, name: str) -> RunnerAddress:
        """Start one *additional* runner on the running cluster.

        The runner side of an elastic join: a fresh store handle, service
        and server come up on the shared root (same transport as the
        rest) and its address is returned, ready to hand to
        :meth:`ClusterClient.add_runner
        <repro.cluster.router.ClusterClient.add_runner>`.  The new runner
        serves nothing until the router resizes the ring toward it.
        """
        require(self._started, "start the cluster before adding runners")
        require(name not in self.servers,
                f"runner {name!r} is already running")
        if name not in self._names:
            self._names.append(name)
        self.size = len(self._names)
        return await self._start_one(name)

    async def stop_runner(self, name: str, *, graceful: bool = True) -> None:
        """Retire one runner: drain and close (graceful) or hard-kill.

        Graceful is the planned-leave path (pair it with the router's
        ``remove_runner`` *first* so no new cells route here); in-flight
        requests drain before the listener closes.  ``graceful=False``
        mimics a crash exactly like :meth:`kill` -- connections reset,
        failover takes over -- but also removes the runner from the
        membership list (the service is still reaped at :meth:`aclose`).
        """
        require(name in self.servers, f"unknown runner {name!r}")
        if name in self._names:
            self._names.remove(name)
        self.size = len(self._names)
        server = self.servers.pop(name)
        if graceful:
            await server.aclose()
        else:
            server.abort()
            self._aborted.append(server)

    async def __aenter__(self) -> "LocalCluster":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.aclose()

    def kill(self, name: str) -> None:
        """Hard-kill one runner (listener closed, connections reset).

        The runner's server object stays in :attr:`servers` so
        :meth:`aclose` can still reap its service; clients attempting the
        dead socket get a connection reset/refusal, which is what drives
        the router's failover re-route.
        """
        require(name in self.servers, f"unknown runner {name!r}")
        self.servers[name].abort()

    async def aclose(self) -> None:
        """Close every runner and delete any owned temp directories."""
        for server in list(self.servers.values()) + self._aborted:
            await server.aclose()
        self.servers.clear()
        self._aborted.clear()
        self._started = False
        for tempdir in self._tempdirs:
            tempdir.cleanup()
        self._tempdirs.clear()

    # ------------------------------------------------------------------
    def store_view(self) -> SolutionStore:
        """A fresh read-side store handle on the shared root.

        Integrity checks open their own handle (exactly as an external
        auditor process would) instead of borrowing a runner's.
        """
        return SolutionStore(self.store_root, lock_timeout=self.lock_timeout)
