"""Core library: the discrete resource-time tradeoff problem with reuse over paths.

This subpackage implements the paper's primary contribution:

* problem modelling -- duration functions (:mod:`~repro.core.duration`),
  activity-on-node DAGs (:mod:`~repro.core.dag`), activity-on-arc DAGs and
  the Section 2 / Section 3.1 transformations (:mod:`~repro.core.arcdag`),
  resource flows (:mod:`~repro.core.flow`);
* the LP-rounding bi-criteria approximation of Theorem 3.4
  (:mod:`~repro.core.lp`, :mod:`~repro.core.rounding`,
  :mod:`~repro.core.minflow`, :mod:`~repro.core.bicriteria`);
* the single-criteria approximations for k-way splitting (Theorem 3.9) and
  recursive binary splitting (Theorems 3.10 and 3.16);
* the exact series-parallel dynamic program of Section 3.4;
* exact solvers and baseline heuristics used by the experiments.
"""

from repro.core.duration import (
    ConstantDuration,
    DurationFunction,
    GeneralStepDuration,
    KWaySplitDuration,
    RecursiveBinarySplitDuration,
    recursive_binary_height_bound,
)
from repro.core.dag import MakespanResult, TradeoffDAG
from repro.core.arcdag import (
    Arc,
    ArcDAG,
    NodeToArcMapping,
    TwoTupleExpansion,
    expand_to_two_tuples,
    node_to_arc_dag,
    section33_binary_tuples,
)
from repro.core.flow import FlowValidationError, ResourceFlow
from repro.core.maxflow import DinicMaxFlow
from repro.core.minflow import (
    InfeasibleFlowError,
    MinFlowResult,
    allocation_min_budget,
    min_flow_with_lower_bounds,
)
from repro.core.lp import (
    LPSolution,
    available_lp_backends,
    lp_kernel_counters,
    solve_min_makespan_lp,
    solve_min_makespan_sweep,
    solve_min_resource_lp,
    solve_min_resource_sweep,
)
from repro.core.rounding import RoundedRequirements, round_lp_solution
from repro.core.problem import MinMakespanProblem, MinResourceProblem, TradeoffSolution
from repro.core.bicriteria import (
    BicriteriaReport,
    solve_min_makespan_bicriteria,
    solve_min_resource_bicriteria,
)
from repro.core.kway_approx import solve_min_makespan_kway
from repro.core.binary_approx import (
    solve_min_makespan_binary,
    solve_min_makespan_binary_improved,
)
from repro.core.series_parallel import (
    SPLeaf,
    SPNode,
    SPParallel,
    SPSeries,
    decompose_series_parallel,
    parallel,
    series,
    sp_exact_min_makespan,
    sp_exact_min_resource,
    sp_min_makespan_table,
)
from repro.core.exact import (
    ExactSearchLimit,
    exact_min_makespan,
    exact_min_makespan_arcs,
    exact_min_resource,
    exact_min_resource_arcs,
)
from repro.core.baselines import (
    greedy_global_reuse,
    greedy_no_reuse,
    greedy_path_reuse,
    no_resource_solution,
    peak_resource_usage,
    uniform_split_solution,
)

__all__ = [
    # durations
    "DurationFunction", "GeneralStepDuration", "ConstantDuration",
    "KWaySplitDuration", "RecursiveBinarySplitDuration", "recursive_binary_height_bound",
    # DAGs
    "TradeoffDAG", "MakespanResult", "Arc", "ArcDAG", "NodeToArcMapping",
    "TwoTupleExpansion", "node_to_arc_dag", "expand_to_two_tuples", "section33_binary_tuples",
    # flows
    "ResourceFlow", "FlowValidationError", "DinicMaxFlow",
    "MinFlowResult", "InfeasibleFlowError", "min_flow_with_lower_bounds", "allocation_min_budget",
    # LP + rounding
    "LPSolution", "solve_min_makespan_lp", "solve_min_resource_lp",
    "solve_min_makespan_sweep", "solve_min_resource_sweep",
    "available_lp_backends", "lp_kernel_counters",
    "RoundedRequirements", "round_lp_solution",
    # problems / solutions
    "MinMakespanProblem", "MinResourceProblem", "TradeoffSolution",
    # approximation algorithms
    "BicriteriaReport", "solve_min_makespan_bicriteria", "solve_min_resource_bicriteria",
    "solve_min_makespan_kway", "solve_min_makespan_binary", "solve_min_makespan_binary_improved",
    # series-parallel
    "SPNode", "SPLeaf", "SPSeries", "SPParallel", "series", "parallel",
    "sp_min_makespan_table", "sp_exact_min_makespan", "sp_exact_min_resource",
    "decompose_series_parallel",
    # exact + baselines
    "exact_min_makespan", "exact_min_resource", "exact_min_makespan_arcs",
    "exact_min_resource_arcs", "ExactSearchLimit",
    "no_resource_solution", "uniform_split_solution", "greedy_path_reuse",
    "greedy_no_reuse", "greedy_global_reuse", "peak_resource_usage",
]
