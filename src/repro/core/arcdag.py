"""Activity-on-arc DAGs and the transformations of Sections 2 and 3.1.

The LP-based approximation algorithms operate on DAGs whose *arcs* carry the
jobs (and duration functions) while vertices represent events.  Two
transformations take the user-facing activity-on-node DAG there:

1. ``node_to_arc_dag`` (Section 2, last paragraph): every job ``v`` becomes
   an arc ``(a_v, b_v)`` carrying its duration function, and every precedence
   edge ``(u, v)`` becomes a zero-duration dummy arc ``(b_u, a_v)``.
2. ``expand_to_two_tuples`` (Section 3.1, Figure 6): every job arc with
   ``l >= 2`` resource-time tuples is replaced by ``l`` parallel two-arc
   chains, each carrying at most two tuples, such that resource allocations
   map canonically back and forth (Lemma 3.1).

Both directions of the canonical mapping are provided so that the integral
flow produced by the rounding + min-flow pipeline can be reported as a
per-job resource allocation on the original DAG.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Optional, Tuple

from repro.core.dag import TradeoffDAG
from repro.core.duration import ConstantDuration, DurationFunction, GeneralStepDuration
from repro.utils.ordering import topological_order
from repro.utils.validation import require

__all__ = [
    "Arc",
    "ArcDAG",
    "NodeToArcMapping",
    "node_to_arc_dag",
    "ChainPiece",
    "TwoTupleExpansion",
    "expand_to_two_tuples",
    "section33_binary_tuples",
]

Vertex = Hashable


@dataclass(frozen=True)
class Arc:
    """A single activity (or dummy precedence) on an arc.

    Attributes
    ----------
    arc_id:
        Unique identifier within the owning :class:`ArcDAG`.
    tail, head:
        The event vertices the arc connects (``tail -> head``).
    duration:
        The arc's duration function; dummy arcs use ``ConstantDuration(0)``.
    is_dummy:
        ``True`` for pure-precedence arcs introduced by the transformations.
    label:
        Free-form provenance label (e.g. the originating job name).
    """

    arc_id: str
    tail: Vertex
    head: Vertex
    duration: DurationFunction
    is_dummy: bool = False
    label: Optional[Hashable] = None

    @property
    def is_two_tuple(self) -> bool:
        """Whether the arc carries exactly two resource-time tuples."""
        return self.duration.num_tuples() == 2

    @property
    def base_time(self) -> float:
        """Duration with no resource, ``t(0)``."""
        return self.duration.base_duration

    @property
    def full_resource(self) -> float:
        """Resource level of the last breakpoint (``r_e`` for two-tuple arcs)."""
        return self.duration.max_useful_resource()


class ArcDAG:
    """DAG with activities on arcs and a unique source / sink vertex."""

    def __init__(self, source: Vertex = "s", sink: Vertex = "t") -> None:
        self.source: Vertex = source
        self.sink: Vertex = sink
        self._vertices: Dict[Vertex, None] = {source: None, sink: None}
        self._arcs: Dict[str, Arc] = {}
        self._out: Dict[Vertex, List[str]] = {source: [], sink: []}
        self._in: Dict[Vertex, List[str]] = {source: [], sink: []}
        self._counter = itertools.count()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_vertex(self, v: Vertex) -> Vertex:
        """Add an event vertex (idempotent)."""
        if v not in self._vertices:
            self._vertices[v] = None
            self._out[v] = []
            self._in[v] = []
        return v

    def add_arc(
        self,
        tail: Vertex,
        head: Vertex,
        duration: Optional[DurationFunction] = None,
        *,
        is_dummy: bool = False,
        label: Optional[Hashable] = None,
        arc_id: Optional[str] = None,
    ) -> Arc:
        """Add an arc ``tail -> head`` carrying ``duration``.

        ``duration`` defaults to ``ConstantDuration(0)``; pass
        ``is_dummy=True`` for arcs that exist purely to encode precedence.
        """
        require(tail != head, "self-loop arcs are not allowed")
        self.add_vertex(tail)
        self.add_vertex(head)
        if duration is None:
            duration = ConstantDuration(0.0)
        if arc_id is None:
            arc_id = f"a{next(self._counter)}"
        require(arc_id not in self._arcs, f"duplicate arc id {arc_id!r}")
        arc = Arc(arc_id, tail, head, duration, is_dummy, label)
        self._arcs[arc_id] = arc
        self._out[tail].append(arc_id)
        self._in[head].append(arc_id)
        return arc

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def vertices(self) -> List[Vertex]:
        return list(self._vertices)

    @property
    def arcs(self) -> List[Arc]:
        return list(self._arcs.values())

    @property
    def num_vertices(self) -> int:
        return len(self._vertices)

    @property
    def num_arcs(self) -> int:
        return len(self._arcs)

    def arc(self, arc_id: str) -> Arc:
        return self._arcs[arc_id]

    def out_arcs(self, v: Vertex) -> List[Arc]:
        return [self._arcs[a] for a in self._out.get(v, [])]

    def in_arcs(self, v: Vertex) -> List[Arc]:
        return [self._arcs[a] for a in self._in.get(v, [])]

    def job_arcs(self) -> List[Arc]:
        """All non-dummy arcs (the actual activities)."""
        return [a for a in self._arcs.values() if not a.is_dummy]

    def two_tuple_arcs(self) -> List[Arc]:
        """Non-dummy arcs with exactly two resource-time tuples."""
        return [a for a in self.job_arcs() if a.is_two_tuple]

    def vertex_edges(self) -> List[Tuple[Vertex, Vertex]]:
        """The underlying vertex adjacency (one entry per arc)."""
        return [(a.tail, a.head) for a in self._arcs.values()]

    def topological_vertices(self) -> List[Vertex]:
        """Topological order of the event vertices (raises on cycles)."""
        return topological_order(self.vertices, self.vertex_edges())

    def validate(self) -> None:
        """Check acyclicity, terminal degrees and duration-function validity."""
        self.topological_vertices()
        require(not self._in[self.source], "source vertex must have no incoming arcs")
        require(not self._out[self.sink], "sink vertex must have no outgoing arcs")
        for arc in self._arcs.values():
            arc.duration.validate()
        for v in self._vertices:
            if v in (self.source, self.sink):
                continue
            require(self._in[v], f"internal vertex {v!r} has no incoming arc")
            require(self._out[v], f"internal vertex {v!r} has no outgoing arc")

    def total_finite_base_time(self) -> float:
        """Sum of the finite ``t(0)`` values over all arcs.

        Used to pick the "big M" substitute for infinite durations inside
        the LP relaxation.
        """
        total = 0.0
        for arc in self._arcs.values():
            if not math.isinf(arc.base_time):
                total += arc.base_time
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ArcDAG(vertices={self.num_vertices}, arcs={self.num_arcs})"


# ----------------------------------------------------------------------
# Transformation 1: activity on node -> activity on arc (Section 2)
# ----------------------------------------------------------------------
@dataclass
class NodeToArcMapping:
    """Bookkeeping for :func:`node_to_arc_dag`.

    Attributes
    ----------
    job_arc:
        ``job name -> arc id`` of the arc carrying that job's duration.
    dummy_arcs:
        arc ids of the pure-precedence arcs added for the original edges.
    """

    job_arc: Dict[Hashable, str] = field(default_factory=dict)
    dummy_arcs: List[str] = field(default_factory=list)

    def job_of_arc(self, arc_id: str) -> Optional[Hashable]:
        for job, aid in self.job_arc.items():
            if aid == arc_id:
                return job
        return None


def node_to_arc_dag(dag: TradeoffDAG) -> Tuple[ArcDAG, NodeToArcMapping]:
    """Transform an activity-on-node DAG into an activity-on-arc DAG.

    Every job ``v`` becomes the arc ``("in", v) -> ("out", v)`` carrying
    ``v``'s duration function; every precedence edge ``(u, v)`` becomes the
    dummy arc ``("out", u) -> ("in", v)``.  The arc DAG's source / sink are
    the "in" vertex of the unique source job and the "out" vertex of the
    unique sink job.
    """
    dag = dag.ensure_single_source_sink()
    dag.validate()
    src_job, sink_job = dag.source, dag.sink
    arc_dag = ArcDAG(source=("in", src_job), sink=("out", sink_job))
    mapping = NodeToArcMapping()
    for job in dag.jobs:
        arc = arc_dag.add_arc(
            ("in", job), ("out", job), dag.duration_function(job), label=job,
            arc_id=f"job::{job!r}",
        )
        mapping.job_arc[job] = arc.arc_id
    for u, v in dag.edges:
        arc = arc_dag.add_arc(
            ("out", u), ("in", v), ConstantDuration(0.0), is_dummy=True,
            label=(u, v), arc_id=f"prec::{u!r}->{v!r}",
        )
        mapping.dummy_arcs.append(arc.arc_id)
    arc_dag.validate()
    return arc_dag, mapping


# ----------------------------------------------------------------------
# Transformation 2: at most two tuples per arc (Section 3.1, Figure 6)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ChainPiece:
    """One of the ``l_j`` parallel chains created for a multi-tuple job arc.

    Attributes
    ----------
    job_arc_id:
        Arc id of the chain's *job* arc ``(u, u_i)`` in the expanded DAG.
    tail_dummy_id:
        Arc id of the chain's zero-duration arc ``(u_i, v)``.
    time_without:
        ``t_j(r_{j,i})`` -- the duration of this chain piece if it receives
        no resource.
    resource_gap:
        ``r_{j,i+1} - r_{j,i}`` -- the resource that buys this piece down to
        duration 0; ``None`` for the last chain (which has a single tuple and
        cannot be improved).
    tuple_index:
        Index ``i`` (0-based) into the original arc's tuple list.
    """

    job_arc_id: str
    tail_dummy_id: str
    time_without: float
    resource_gap: Optional[float]
    tuple_index: int


@dataclass
class TwoTupleExpansion:
    """Result of :func:`expand_to_two_tuples` with the canonical mapping back.

    Attributes
    ----------
    arc_dag:
        The expanded DAG ``D''`` in which every non-dummy arc has at most
        two resource-time tuples.
    chains:
        ``original arc id -> list of ChainPiece`` for arcs that were
        expanded.  Arcs with a single tuple (and dummy arcs) are carried
        over unchanged and identified by :attr:`passthrough`.
    passthrough:
        ``original arc id -> arc id in the expanded DAG`` for unexpanded arcs.
    """

    arc_dag: ArcDAG
    chains: Dict[str, List[ChainPiece]] = field(default_factory=dict)
    passthrough: Dict[str, str] = field(default_factory=dict)

    # -- canonical mapping back (Lemma 3.1) -----------------------------
    def original_resource(self, original_arc_id: str, flow: Mapping[str, float]) -> float:
        """Total resource attributed to the original arc under ``flow``.

        The canonical mapping sums, over the parallel chains, the amount of
        resource *usefully* consumed by each chain (capped at the chain's
        resource gap); flow merely passing through contributes nothing.
        """
        if original_arc_id in self.passthrough:
            return 0.0
        total = 0.0
        for piece in self.chains[original_arc_id]:
            f = flow.get(piece.job_arc_id, 0.0)
            if piece.resource_gap is None:
                continue
            total += min(f, piece.resource_gap)
        return total

    def original_duration(self, original_arc_id: str, flow: Mapping[str, float]) -> float:
        """Duration of the original job given the chain flows (max over chains)."""
        dag = self.arc_dag
        if original_arc_id in self.passthrough:
            arc = dag.arc(self.passthrough[original_arc_id])
            return arc.duration.duration(flow.get(arc.arc_id, 0.0))
        worst = 0.0
        for piece in self.chains[original_arc_id]:
            arc = dag.arc(piece.job_arc_id)
            worst = max(worst, arc.duration.duration(flow.get(piece.job_arc_id, 0.0)))
        return worst

    def all_original_arc_ids(self) -> List[str]:
        return list(self.chains) + list(self.passthrough)


def _two_tuple_fn(time_without: float, resource_gap: Optional[float]) -> DurationFunction:
    if resource_gap is None or time_without == 0:
        return GeneralStepDuration([(0.0, time_without)])
    return GeneralStepDuration([(0.0, time_without), (resource_gap, 0.0)])


def expand_to_two_tuples(arc_dag: ArcDAG) -> TwoTupleExpansion:
    """Expand every multi-tuple job arc into parallel two-tuple chains.

    This is the Figure 6 transformation: a job ``j`` on arc ``(u, v)`` with
    tuples ``<r_1, t_1>, ..., <r_l, t_l>`` (``r_1 = 0``) becomes ``l``
    parallel chains ``u -> u_i -> v``; chain ``i < l`` can be finished in
    ``t_i`` time with no resource or in 0 time with ``r_{i+1} - r_i``
    resource, and chain ``l`` always takes ``t_l``.  Completing job ``j`` in
    time ``t_i`` therefore costs exactly ``r_i`` resource in total across the
    chains, preserving optimal values (Lemma 3.1).
    """
    out = ArcDAG(source=arc_dag.source, sink=arc_dag.sink)
    for v in arc_dag.vertices:
        out.add_vertex(v)
    expansion = TwoTupleExpansion(arc_dag=out)
    for arc in arc_dag.arcs:
        tuples = arc.duration.tuples()
        if arc.is_dummy or len(tuples) < 2:
            # Dummy precedence arcs and constant-duration jobs are carried over
            # unchanged.  Improvable jobs (two or more tuples) are always
            # expanded, so that the final single-tuple chain provides the
            # uncapacitated parallel route the LP needs for resources that are
            # merely passing through on their way to later jobs (Section 3.1).
            new = out.add_arc(arc.tail, arc.head, arc.duration,
                              is_dummy=arc.is_dummy, label=arc.label,
                              arc_id=f"{arc.arc_id}::keep")
            expansion.passthrough[arc.arc_id] = new.arc_id
            continue
        pieces: List[ChainPiece] = []
        for i, (r_i, t_i) in enumerate(tuples):
            mid = ("chain", arc.arc_id, i)
            out.add_vertex(mid)
            if i + 1 < len(tuples):
                gap: Optional[float] = tuples[i + 1][0] - r_i
            else:
                gap = None
            job_arc = out.add_arc(
                arc.tail, mid, _two_tuple_fn(t_i, gap),
                label=(arc.label, "chain", i), arc_id=f"{arc.arc_id}::chain{i}",
            )
            dummy = out.add_arc(
                mid, arc.head, ConstantDuration(0.0), is_dummy=True,
                label=(arc.label, "chain-out", i), arc_id=f"{arc.arc_id}::chainout{i}",
            )
            pieces.append(ChainPiece(job_arc.arc_id, dummy.arc_id, t_i, gap, i))
        expansion.chains[arc.arc_id] = pieces
    out.validate()
    return expansion


def section33_binary_tuples(base_work: int) -> List[Tuple[float, float]]:
    """The Section 3.3 tuple list for a recursive-binary job of work ``x``.

    Section 3.3 analyses the expansion of Figure 7, whose tuple list keeps a
    (non-improving) breakpoint at resource 1:
    ``{<0, x>, <1, x>, <2, t_1>, ..., <2^k, t_k>}`` with
    ``t_j = ceil(x / 2^j) + j + 1``.  This helper returns that exact list
    (used by the improved rounding analysis and its tests); the canonical
    :class:`~repro.core.duration.RecursiveBinarySplitDuration` drops the
    redundant ``<1, x>`` entry.
    """
    from repro.core.duration import recursive_binary_height_bound

    x = base_work
    k = recursive_binary_height_bound(x)
    tuples: List[Tuple[float, float]] = [(0.0, float(x)), (1.0, float(x))]
    for j in range(1, k + 1):
        tuples.append((float(2 ** j), float(math.ceil(x / 2 ** j) + j + 1)))
    return tuples
