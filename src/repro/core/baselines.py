"""Baseline allocation strategies and the reuse-model ablation (Questions 1.1-1.3).

The paper's central modelling choice is *where* resources may be reused:

* **Question 1.1 -- no reuse**: every unit of space is dedicated to a single
  reducer; the sum of all allocations must fit the budget.
* **Question 1.2 -- global reuse**: a global memory manager recycles space
  as soon as a reducer finishes; only the *peak concurrent* usage must fit
  the budget.
* **Question 1.3 -- reuse over paths** (the paper's problem): units flow
  from source to sink and can serve every job on their path; the budget
  bounds the source outflow.

This module provides simple greedy critical-path heuristics under all three
models (so that the ablation benchmark can compare them on identical
instances) plus trivial reference points (no resource, uniform split).
None of these carries a worst-case guarantee -- they are baselines, not the
paper's algorithms.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Hashable, List, Mapping, Optional, Tuple

from repro.core.dag import TradeoffDAG
from repro.core.minflow import InfeasibleFlowError, allocation_min_budget
from repro.core.problem import TradeoffSolution
from repro.utils.validation import check_non_negative

__all__ = [
    "no_resource_solution",
    "uniform_split_solution",
    "greedy_path_reuse",
    "greedy_no_reuse",
    "greedy_global_reuse",
    "peak_resource_usage",
]


def no_resource_solution(dag: TradeoffDAG) -> TradeoffSolution:
    """The trivial solution that uses no extra resource anywhere."""
    makespan = dag.makespan_value({})
    return TradeoffSolution(makespan=makespan, budget_used=0.0, allocation={},
                            algorithm="no-resource")


def uniform_split_solution(dag: TradeoffDAG, budget: float) -> TradeoffSolution:
    """Split the budget evenly across the improvable jobs (no-reuse accounting).

    Each job whose duration function has more than one breakpoint receives
    ``floor(budget / #improvable)`` units, snapped down to a breakpoint.  The
    reported ``budget_used`` is the *sum* of allocations (the conservative,
    no-reuse accounting), so this baseline never overstates its efficiency.
    """
    check_non_negative(budget, "budget")
    improvable = [j for j in dag.jobs if dag.duration_function(j).num_tuples() > 1]
    allocation: Dict[Hashable, float] = {}
    if improvable:
        share = math.floor(budget / len(improvable))
        for job in improvable:
            fn = dag.duration_function(job)
            snapped = 0.0
            for level, _t in fn.tuples():
                if level <= share:
                    snapped = level
            if snapped > 0:
                allocation[job] = snapped
    makespan = dag.makespan_value(allocation)
    return TradeoffSolution(makespan=makespan, budget_used=float(sum(allocation.values())),
                            allocation=allocation, algorithm="uniform-split",
                            metadata={"budget": budget})


def peak_resource_usage(dag: TradeoffDAG, allocation: Mapping[Hashable, float]) -> float:
    """Peak concurrent resource usage of an allocation (global-reuse accounting).

    Under the unbounded-processor schedule (every job starts as soon as its
    predecessors finish), a job holds its allocated resource for exactly its
    duration; the peak is the maximum total held at any instant.
    """
    result = dag.makespan(allocation)
    events: List[Tuple[float, float]] = []  # (time, delta)
    for job, finish in result.completion_times.items():
        amount = allocation.get(job, 0.0)
        if amount <= 0:
            continue
        duration = dag.duration_function(job).duration(amount)
        start = finish - duration
        events.append((start, amount))
        events.append((finish, -amount))
    # releases are processed before acquisitions at the same instant, matching
    # the "deallocate right after the last update" semantics of Question 1.2
    events.sort(key=lambda e: (e[0], e[1]))
    peak = current = 0.0
    for _, delta in events:
        current += delta
        peak = max(peak, current)
    return peak


def _greedy(dag: TradeoffDAG, budget: float, cost_of: Callable[[Dict[Hashable, float]], float],
            algorithm: str) -> TradeoffSolution:
    """Generic greedy critical-path allocator.

    Repeatedly considers the jobs on the current critical path; bumps the
    one whose next breakpoint yields the largest makespan reduction per unit
    of *additional feasibility cost* (as measured by ``cost_of``), as long
    as the cost stays within the budget.  Stops when no bump improves the
    makespan or fits the budget.
    """
    check_non_negative(budget, "budget")
    dag = dag.ensure_single_source_sink()
    allocation: Dict[Hashable, float] = {}

    def makespan_of(alloc: Mapping[Hashable, float]) -> float:
        return dag.makespan_value(alloc)

    while True:
        result = dag.makespan(allocation)
        current = result.makespan
        best_gain = -1.0
        best_job: Optional[Hashable] = None
        best_level: Optional[float] = None
        for job in result.critical_path:
            fn = dag.duration_function(job)
            levels = [r for r, _t in fn.tuples()]
            have = allocation.get(job, 0.0)
            next_levels = [r for r in levels if r > have]
            if not next_levels:
                continue
            level = next_levels[0]
            trial = dict(allocation)
            trial[job] = level
            cost = cost_of(trial)
            if cost > budget + 1e-9:
                continue
            gain = current - makespan_of(trial)
            if gain > best_gain + 1e-12:
                best_gain = gain
                best_job = job
                best_level = level
        if best_job is None:
            break
        # Zero-gain bumps are accepted too: on wide fork-joins the makespan only
        # drops once *every* critical job is bumped, so plateaus must be crossed.
        allocation[best_job] = float(best_level)

    final_cost = cost_of(allocation) if allocation else 0.0
    return TradeoffSolution(
        makespan=makespan_of(allocation),
        budget_used=final_cost,
        allocation=allocation,
        algorithm=algorithm,
        metadata={"budget": budget},
    )


def greedy_path_reuse(dag: TradeoffDAG, budget: float) -> TradeoffSolution:
    """Greedy critical-path heuristic under the paper's path-reuse model (Question 1.3).

    Feasibility of a candidate allocation is its minimum routing flow
    (:func:`repro.core.minflow.allocation_min_budget`).
    """
    def cost(alloc: Dict[Hashable, float]) -> float:
        if not alloc:
            return 0.0
        try:
            value, _ = allocation_min_budget(dag, alloc)
        except InfeasibleFlowError:  # pragma: no cover - defensive
            return math.inf
        return value

    return _greedy(dag, budget, cost, "greedy-path-reuse")


def greedy_no_reuse(dag: TradeoffDAG, budget: float) -> TradeoffSolution:
    """Greedy critical-path heuristic when resources cannot be reused (Question 1.1)."""
    return _greedy(dag, budget, lambda alloc: float(sum(alloc.values())), "greedy-no-reuse")


def greedy_global_reuse(dag: TradeoffDAG, budget: float) -> TradeoffSolution:
    """Greedy critical-path heuristic with global reuse (Question 1.2).

    Feasibility of a candidate allocation is its peak concurrent usage under
    the unbounded-processor schedule.
    """
    return _greedy(dag, budget, lambda alloc: peak_resource_usage(dag, alloc),
                   "greedy-global-reuse")
