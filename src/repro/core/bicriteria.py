"""The LP-rounding bi-criteria approximation algorithm (Theorem 3.4).

Pipeline (Section 3.1), starting from an activity-on-node
:class:`~repro.core.dag.TradeoffDAG`:

1. *Activity-on-arc reduction* -- every job becomes an arc
   (:func:`repro.core.arcdag.node_to_arc_dag`).
2. *Two-tuple expansion* -- every multi-tuple job arc becomes parallel
   two-tuple chains (:func:`repro.core.arcdag.expand_to_two_tuples`,
   Figure 6, Lemma 3.1).
3. *LP relaxation* -- solve LP (6)-(10) with linearised durations
   (:mod:`repro.core.lp`).
4. *α-threshold rounding* -- commit each two-tuple arc to either full
   resource or none (:mod:`repro.core.rounding`).
5. *Min-flow* -- route the committed requirements with the fewest resource
   units, reusing units over paths (:mod:`repro.core.minflow`, LP 11-13);
   the optimum is integral when the requirements are.

With rounding threshold ``alpha`` (durations below ``alpha * t(0)`` are
rounded down), the result satisfies

* ``makespan  <=  (1 / alpha)      * LP makespan  <=  (1 / alpha) * OPT(B)``
* ``budget    <=  (1 / (1 - alpha)) * LP budget    <=  (1 / (1 - alpha)) * B``

which is the bi-criteria guarantee of Theorem 3.4 (the paper states the pair
with the roles of ``alpha`` and ``1 - alpha`` swapped; the guarantees are
identical up to renaming the parameter).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, Optional

from repro.core.arcdag import expand_to_two_tuples, node_to_arc_dag
from repro.core.dag import TradeoffDAG
from repro.core.flow import ResourceFlow
from repro.core.lp import LPSolution, solve_min_makespan_lp, solve_min_resource_lp
from repro.core.minflow import min_flow_with_lower_bounds
from repro.core.problem import TradeoffSolution
from repro.core.rounding import round_lp_solution
from repro.utils.validation import check_non_negative, check_open_unit_interval

__all__ = ["BicriteriaReport", "solve_min_makespan_bicriteria", "solve_min_resource_bicriteria"]


@dataclass
class BicriteriaReport:
    """Detailed record of one bi-criteria run (returned inside solution metadata).

    Attributes
    ----------
    lp:
        The fractional LP solution.
    alpha:
        Rounding threshold used.
    minflow_value:
        Budget used by the final integral flow.
    makespan:
        Realised makespan of the final integral flow.
    makespan_guarantee, resource_guarantee:
        The proven inflation factors ``1/alpha`` and ``1/(1-alpha)``.
    """

    lp: LPSolution
    alpha: float
    minflow_value: float
    makespan: float

    @property
    def makespan_guarantee(self) -> float:
        return 1.0 / self.alpha

    @property
    def resource_guarantee(self) -> float:
        return 1.0 / (1.0 - self.alpha)


def _run_pipeline(dag: TradeoffDAG, lp_solution_builder, alpha: float, algorithm: str,
                  budget: Optional[float], target_makespan: Optional[float],
                  transforms=None) -> TradeoffSolution:
    if transforms is not None:
        arc_dag, node_map, expansion = transforms
    else:
        arc_dag, node_map = node_to_arc_dag(dag)
        expansion = expand_to_two_tuples(arc_dag)
    expanded = expansion.arc_dag

    lp = lp_solution_builder(expanded)
    if lp.status != "optimal":
        return TradeoffSolution(
            makespan=math.inf, budget_used=math.inf, allocation={},
            algorithm=algorithm, lower_bound=None,
            metadata={"status": "infeasible", "alpha": alpha},
        )

    rounded = round_lp_solution(expanded, lp, alpha)
    result = min_flow_with_lower_bounds(expanded, rounded.lower_bounds)
    flow = ResourceFlow(expanded, result.flow)
    flow.validate()
    makespan = flow.makespan()

    allocation: Dict[Hashable, float] = {}
    for job, orig_arc_id in node_map.job_arc.items():
        allocation[job] = expansion.original_resource(orig_arc_id, result.flow)

    report = BicriteriaReport(lp=lp, alpha=alpha, minflow_value=result.value, makespan=makespan)
    solution = TradeoffSolution(
        makespan=makespan,
        budget_used=result.value,
        allocation=allocation,
        algorithm=algorithm,
        lower_bound=lp.makespan if budget is not None else None,
        resource_lower_bound=lp.budget_used if target_makespan is not None else None,
        metadata={
            "alpha": alpha,
            "lp_makespan": lp.makespan,
            "lp_budget_used": lp.budget_used,
            "budget": budget,
            "target_makespan": target_makespan,
            "report": report,
            "expanded_flow": result.flow,
        },
    )
    return solution


def solve_min_makespan_bicriteria(dag: TradeoffDAG, budget: float, alpha: float = 0.5,
                                  transforms=None, lp_backend=None) -> TradeoffSolution:
    """Bi-criteria approximation for the minimum-makespan problem (Theorem 3.4).

    Parameters
    ----------
    dag:
        The activity-on-node instance (any non-increasing duration functions).
    budget:
        Resource budget ``B``.
    alpha:
        Rounding threshold in ``(0, 1)``.  ``alpha = 0.5`` gives the (2, 2)
        guarantee used by Section 3.2; ``alpha = 0.75`` gives the (4/3, 4)
        pair quoted at the start of Section 3.3.
    transforms:
        Optional precomputed ``(arc_dag, node_map, expansion)`` triple for
        ``dag`` (the engine memoizes these per DAG fingerprint); computed
        here when omitted.
    lp_backend:
        Optional object with ``solve_min_makespan(arc_dag, budget)`` /
        ``solve_min_resource(arc_dag, target)`` methods used for the LP
        relaxation step.  Defaults to building a fresh model per call; the
        engine passes :data:`repro.engine.batch.CACHED_LP_BACKEND`, which
        reuses one prebuilt :class:`~repro.core.lp.LPModelSkeleton` per
        arc DAG across a whole scenario sweep.

    Returns
    -------
    TradeoffSolution
        ``makespan <= (1/alpha) * OPT(B)`` while
        ``budget_used <= (1/(1-alpha)) * B``; the LP optimum (a lower bound
        on ``OPT(B)``) is stored in ``lower_bound``.
    """
    check_non_negative(budget, "budget")
    check_open_unit_interval(alpha, "alpha")
    if lp_backend is not None:
        builder = lambda expanded: lp_backend.solve_min_makespan(expanded, budget)  # noqa: E731
    else:
        builder = lambda expanded: solve_min_makespan_lp(expanded, budget)  # noqa: E731
    return _run_pipeline(
        dag,
        builder,
        alpha,
        algorithm="bicriteria-lp",
        budget=budget,
        target_makespan=None,
        transforms=transforms,
    )


def solve_min_resource_bicriteria(dag: TradeoffDAG, target_makespan: float,
                                  alpha: float = 0.5, transforms=None,
                                  lp_backend=None) -> TradeoffSolution:
    """Bi-criteria approximation for the minimum-resource problem.

    Solves the min-resource LP (minimise source outflow subject to the
    makespan target), rounds with threshold ``alpha`` and routes the
    requirements with a min-flow.  The returned solution uses at most
    ``1/(1-alpha)`` times the optimal budget while its makespan is at most
    ``target_makespan / alpha``.
    """
    check_non_negative(target_makespan, "target_makespan")
    check_open_unit_interval(alpha, "alpha")
    if lp_backend is not None:
        builder = lambda expanded: lp_backend.solve_min_resource(expanded, target_makespan)  # noqa: E731
    else:
        builder = lambda expanded: solve_min_resource_lp(expanded, target_makespan)  # noqa: E731
    return _run_pipeline(
        dag,
        builder,
        alpha,
        algorithm="bicriteria-lp-minresource",
        budget=None,
        target_makespan=target_makespan,
        transforms=transforms,
    )
