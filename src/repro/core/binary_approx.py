"""Approximation algorithms for recursive binary splitting durations.

Two results from the paper are implemented:

* **Theorem 3.10** -- a single-criteria 4-approximation for the
  minimum-makespan problem: run the ``alpha = 1/2`` bi-criteria pipeline and
  then halve every job's committed allocation (snapping down to a power-of-
  two breakpoint).  Halving a recursive-binary allocation at most doubles
  the duration, and the (2, 2) bi-criteria already pays a factor 2, giving
  4 on makespan while the routed resource no longer exceeds the budget-
  feasible optimum.

* **Theorem 3.16 (Section 3.3)** -- an improved ``(4/3, 14/5)`` bi-criteria
  algorithm: solve the LP, sum the fractional resource each job received
  over its parallel chains, and round that sum to a power of two using the
  asymmetric ``3 * 2^{i-1}`` threshold of Lemmas 3.11-3.15.  The rounded
  requirements are then routed with a min-flow.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable

from repro.core.arcdag import expand_to_two_tuples, node_to_arc_dag
from repro.core.dag import TradeoffDAG
from repro.core.flow import ResourceFlow
from repro.core.lp import solve_min_makespan_lp
from repro.core.minflow import min_flow_with_lower_bounds
from repro.core.problem import TradeoffSolution
from repro.core.rounding import round_lp_solution
from repro.utils.validation import check_non_negative

__all__ = [
    "solve_min_makespan_binary",
    "solve_min_makespan_binary_improved",
    "round_binary_resource_section33",
    "halve_binary_allocation",
]


def halve_binary_allocation(rounded_resource: float, duration) -> float:
    """Theorem 3.10's repair step: halve and snap down to a breakpoint."""
    target = rounded_resource / 2.0
    snapped = 0.0
    for level, _t in duration.tuples():
        if level <= target:
            snapped = level
    return snapped


def round_binary_resource_section33(fractional_resource: float, duration) -> float:
    """Section 3.3 rounding of a job's summed fractional LP resource.

    The rule (applied to ``r`` = the summed fractional resource):

    * ``r < 1``                     -> 0
    * ``2^i <= r < 3 * 2^(i-1)``     -> ``2^i``   (round down)
    * ``3 * 2^(i-1) <= r < 2^(i+1)`` -> ``2^(i+1)`` (round up)

    and the result never exceeds the largest useful breakpoint ``2^k`` of the
    job's recursive-binary duration function (Lemma 3.15 guarantees the
    rounded value is at most ``4/3`` times the fractional one).
    """
    levels = [r for r, _ in duration.tuples()]
    max_useful = levels[-1]
    r = fractional_resource
    if r < 1.0:
        return 0.0
    i = int(math.floor(math.log2(r)))
    low = float(2 ** i)
    high = float(2 ** (i + 1))
    threshold = 1.5 * low
    rounded = low if r < threshold else high
    rounded = min(rounded, max_useful)
    snapped = 0.0
    for level in levels:
        if level <= rounded:
            snapped = level
    return snapped


def _finalise(dag: TradeoffDAG, arc_dag, node_map, allocation, lp, algorithm, budget, guarantee,
              extra=None) -> TradeoffSolution:
    lower = {node_map.job_arc[job]: amount for job, amount in allocation.items() if amount > 0}
    result = min_flow_with_lower_bounds(arc_dag, lower)
    flow = ResourceFlow(arc_dag, result.flow)
    flow.validate()
    metadata = {
        "lp_makespan": lp.makespan,
        "lp_budget_used": lp.budget_used,
        "budget": budget,
        "guarantee": guarantee,
    }
    if extra:
        metadata.update(extra)
    return TradeoffSolution(
        makespan=flow.makespan(),
        budget_used=result.value,
        allocation=allocation,
        algorithm=algorithm,
        lower_bound=lp.makespan,
        metadata=metadata,
    )


def solve_min_makespan_binary(dag: TradeoffDAG, budget: float,
                              transforms=None, lp_backend=None) -> TradeoffSolution:
    """4-approximation for min-makespan with recursive binary splitting (Theorem 3.10).

    ``transforms`` optionally supplies a precomputed ``(arc_dag, node_map,
    expansion)`` triple (the engine memoizes these per DAG fingerprint).
    """
    check_non_negative(budget, "budget")
    if transforms is not None:
        arc_dag, node_map, expansion = transforms
    else:
        arc_dag, node_map = node_to_arc_dag(dag)
        expansion = expand_to_two_tuples(arc_dag)
    expanded = expansion.arc_dag

    lp = (lp_backend.solve_min_makespan(expanded, budget) if lp_backend is not None
          else solve_min_makespan_lp(expanded, budget))
    if lp.status != "optimal":
        return TradeoffSolution(makespan=math.inf, budget_used=math.inf,
                                algorithm="binary-4approx",
                                metadata={"status": "infeasible"})
    rounded = round_lp_solution(expanded, lp, alpha=0.5)

    normalized = dag.ensure_single_source_sink()
    allocation: Dict[Hashable, float] = {}
    for job, orig_arc_id in node_map.job_arc.items():
        fn = normalized.duration_function(job)
        rounded_resource = expansion.original_resource(orig_arc_id, rounded.lower_bounds)
        allocation[job] = halve_binary_allocation(rounded_resource, fn)

    return _finalise(dag, arc_dag, node_map, allocation, lp,
                     algorithm="binary-4approx", budget=budget, guarantee=4.0)


def solve_min_makespan_binary_improved(dag: TradeoffDAG, budget: float,
                                       transforms=None, lp_backend=None) -> TradeoffSolution:
    """(4/3, 14/5) bi-criteria algorithm for recursive binary splitting (Theorem 3.16).

    Returns a solution whose makespan is at most ``14/5`` times the LP lower
    bound while the routed resource is at most ``4/3`` times the LP's
    (budget-feasible) resource usage.  ``transforms`` optionally supplies a
    precomputed ``(arc_dag, node_map, expansion)`` triple.
    """
    check_non_negative(budget, "budget")
    if transforms is not None:
        arc_dag, node_map, expansion = transforms
    else:
        arc_dag, node_map = node_to_arc_dag(dag)
        expansion = expand_to_two_tuples(arc_dag)
    expanded = expansion.arc_dag

    lp = (lp_backend.solve_min_makespan(expanded, budget) if lp_backend is not None
          else solve_min_makespan_lp(expanded, budget))
    if lp.status != "optimal":
        return TradeoffSolution(makespan=math.inf, budget_used=math.inf,
                                algorithm="binary-improved-bicriteria",
                                metadata={"status": "infeasible"})

    normalized = dag.ensure_single_source_sink()
    allocation: Dict[Hashable, float] = {}
    for job, orig_arc_id in node_map.job_arc.items():
        fn = normalized.duration_function(job)
        fractional = expansion.original_resource(orig_arc_id, lp.flows)
        allocation[job] = round_binary_resource_section33(fractional, fn)

    return _finalise(dag, arc_dag, node_map, allocation, lp,
                     algorithm="binary-improved-bicriteria", budget=budget,
                     guarantee=(4.0 / 3.0, 14.0 / 5.0),
                     extra={"resource_guarantee": 4.0 / 3.0, "makespan_guarantee": 14.0 / 5.0})
