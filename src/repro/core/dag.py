"""Activity-on-node tradeoff DAGs (Section 2, "Preliminaries").

The optimisation problems of the paper are posed on a DAG ``D = (V, E)``
whose vertices are jobs carrying non-increasing duration functions and whose
edges are precedence constraints.  Resources are routed along source-to-sink
paths; the resource available to a job equals the amount of flow passing
through its vertex, and every unit of flow can be reused by every job on its
path (Question 1.3).

:class:`TradeoffDAG` is the user-facing representation.  The approximation
algorithms of Section 3 first convert it to an activity-on-arc DAG
(:mod:`repro.core.arcdag`), but exact solvers, baselines and the data-race
substrate work directly on this class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Optional, Tuple

from repro.core.duration import ConstantDuration, DurationFunction
from repro.utils.ordering import topological_order
from repro.utils.validation import ValidationError, check_non_negative, require

__all__ = ["TradeoffDAG", "MakespanResult"]

Node = Hashable


@dataclass(frozen=True)
class MakespanResult:
    """Makespan of a DAG under a particular per-job resource assignment.

    Attributes
    ----------
    makespan:
        Length of the longest source-to-sink path, where each job
        contributes ``t_v(r_v)``.
    critical_path:
        One maximising path (list of job names from source to sink).
    completion_times:
        ``job -> earliest completion time`` under the unbounded-processor
        model of Observation 1.1.
    """

    makespan: float
    critical_path: Tuple[Node, ...]
    completion_times: Mapping[Node, float] = field(default_factory=dict)


class TradeoffDAG:
    """A DAG of jobs with per-job duration functions.

    Jobs are added with :meth:`add_job`, precedence constraints with
    :meth:`add_edge`.  The paper assumes (w.l.o.g.) a unique source and a
    unique sink; :meth:`ensure_single_source_sink` adds zero-duration virtual
    terminals when the modelled workload has several.

    Examples
    --------
    Build the six-node running example of Figure 4 (work = in-degree) and
    compute its makespan with no extra resources::

        dag = TradeoffDAG()
        ...
        dag.makespan({}).makespan
    """

    #: Names used for automatically inserted virtual terminals.
    VIRTUAL_SOURCE = "__source__"
    VIRTUAL_SINK = "__sink__"

    def __init__(self) -> None:
        self._durations: Dict[Node, DurationFunction] = {}
        self._succ: Dict[Node, List[Node]] = {}
        self._pred: Dict[Node, List[Node]] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_job(self, name: Node, duration: Optional[DurationFunction] = None) -> Node:
        """Add a job named ``name`` with the given duration function.

        ``duration`` defaults to ``ConstantDuration(0)`` which is the right
        choice for structural vertices (sources, sinks, join points).
        Re-adding an existing job replaces its duration function.
        """
        if duration is None:
            duration = ConstantDuration(0.0)
        require(isinstance(duration, DurationFunction),
                f"duration for job {name!r} must be a DurationFunction")
        self._durations[name] = duration
        self._succ.setdefault(name, [])
        self._pred.setdefault(name, [])
        return name

    def add_edge(self, u: Node, v: Node) -> None:
        """Add the precedence constraint ``u -> v`` (u must finish before v starts)."""
        require(u in self._durations, f"unknown job {u!r}; add_job it first")
        require(v in self._durations, f"unknown job {v!r}; add_job it first")
        require(u != v, "self-loops are not allowed in a DAG")
        if v not in self._succ[u]:
            self._succ[u].append(v)
            self._pred[v].append(u)

    def remove_edge(self, u: Node, v: Node) -> None:
        """Remove the precedence constraint ``u -> v`` if present."""
        if u in self._succ and v in self._succ[u]:
            self._succ[u].remove(v)
            self._pred[v].remove(u)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def jobs(self) -> List[Node]:
        """All job names, in insertion order."""
        return list(self._durations)

    @property
    def num_jobs(self) -> int:
        return len(self._durations)

    @property
    def num_edges(self) -> int:
        return sum(len(vs) for vs in self._succ.values())

    @property
    def edges(self) -> List[Tuple[Node, Node]]:
        return [(u, v) for u, vs in self._succ.items() for v in vs]

    def duration_function(self, job: Node) -> DurationFunction:
        """Return the duration function attached to ``job``."""
        return self._durations[job]

    def successors(self, job: Node) -> List[Node]:
        return list(self._succ[job])

    def predecessors(self, job: Node) -> List[Node]:
        return list(self._pred[job])

    def in_degree(self, job: Node) -> int:
        return len(self._pred[job])

    def out_degree(self, job: Node) -> int:
        return len(self._succ[job])

    def sources(self) -> List[Node]:
        """Jobs with in-degree 0."""
        return [n for n in self._durations if not self._pred[n]]

    def sinks(self) -> List[Node]:
        """Jobs with out-degree 0."""
        return [n for n in self._durations if not self._succ[n]]

    @property
    def source(self) -> Node:
        """The unique source; raises if there is not exactly one."""
        srcs = self.sources()
        require(len(srcs) == 1, f"expected a unique source, found {len(srcs)}")
        return srcs[0]

    @property
    def sink(self) -> Node:
        """The unique sink; raises if there is not exactly one."""
        snks = self.sinks()
        require(len(snks) == 1, f"expected a unique sink, found {len(snks)}")
        return snks[0]

    def topological_order(self) -> List[Node]:
        """A topological order of the jobs (raises on cycles)."""
        return topological_order(self.jobs, self.edges)

    def validate(self) -> None:
        """Check acyclicity, duration-function validity and terminal uniqueness."""
        self.topological_order()
        for job, fn in self._durations.items():
            try:
                fn.validate()
            except ValidationError as exc:
                raise ValidationError(f"job {job!r}: {exc}") from exc
        require(len(self.sources()) >= 1, "DAG has no source")
        require(len(self.sinks()) >= 1, "DAG has no sink")

    def ensure_single_source_sink(self) -> "TradeoffDAG":
        """Return a DAG with unique source/sink, adding virtual terminals if needed.

        The returned object is ``self`` when the terminals are already
        unique; otherwise it is a shallow copy with zero-duration jobs
        :data:`VIRTUAL_SOURCE` / :data:`VIRTUAL_SINK` connected to every
        original source / sink.
        """
        srcs, snks = self.sources(), self.sinks()
        if len(srcs) == 1 and len(snks) == 1:
            return self
        dag = self.copy()
        if len(srcs) > 1:
            dag.add_job(self.VIRTUAL_SOURCE, ConstantDuration(0.0))
            for s in srcs:
                dag.add_edge(self.VIRTUAL_SOURCE, s)
        if len(snks) > 1:
            dag.add_job(self.VIRTUAL_SINK, ConstantDuration(0.0))
            for t in snks:
                dag.add_edge(t, self.VIRTUAL_SINK)
        return dag

    def copy(self) -> "TradeoffDAG":
        """Return a structural copy sharing the (immutable) duration functions."""
        dag = TradeoffDAG()
        for job, fn in self._durations.items():
            dag.add_job(job, fn)
        for u, v in self.edges:
            dag.add_edge(u, v)
        return dag

    # ------------------------------------------------------------------
    # makespan evaluation
    # ------------------------------------------------------------------
    def makespan(self, resources: Optional[Mapping[Node, float]] = None) -> MakespanResult:
        """Makespan under a per-job resource assignment.

        Parameters
        ----------
        resources:
            ``job -> units of resource available to that job``.  Jobs absent
            from the mapping receive 0 units.  This is the *allocation view*
            of a solution; consistency of the allocation with a source-to-
            sink resource flow is checked elsewhere
            (:func:`repro.core.flow.node_allocation_is_routable`).

        Returns
        -------
        MakespanResult
        """
        resources = dict(resources or {})
        for job, r in resources.items():
            require(job in self._durations, f"resource assigned to unknown job {job!r}")
            check_non_negative(r, f"resource for job {job!r}")

        def node_weight(v: Node) -> float:
            return self._durations[v].duration(resources.get(v, 0.0))

        order = self.topological_order()
        completion: Dict[Node, float] = {}
        best_pred: Dict[Node, Optional[Node]] = {}
        for v in order:
            if self._pred[v]:
                chosen: Optional[Node] = max(self._pred[v], key=lambda u: completion[u])
                start = completion[chosen]
            else:
                chosen = None
                start = 0.0
            completion[v] = start + node_weight(v)
            best_pred[v] = chosen
        if not completion:
            return MakespanResult(0.0, (), {})
        # Tie-break towards the latest node in topological order so the
        # reported critical path ends at the sink when several nodes share the
        # maximum completion time (e.g. zero-duration join vertices).
        end_node = max(reversed(order), key=lambda n: completion[n])
        path: List[Node] = [end_node]
        while best_pred[path[-1]] is not None:
            path.append(best_pred[path[-1]])  # type: ignore[arg-type]
        path.reverse()
        return MakespanResult(completion[end_node], tuple(path), completion)

    def makespan_value(self, resources: Optional[Mapping[Node, float]] = None) -> float:
        """Shorthand for ``self.makespan(resources).makespan``."""
        return self.makespan(resources).makespan

    def critical_path_no_resources(self) -> Tuple[Node, ...]:
        """The critical path when no extra resource is used anywhere."""
        return self.makespan({}).critical_path

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def to_networkx(self):
        """Export to a :class:`networkx.DiGraph` with ``duration`` node attributes."""
        import networkx as nx

        g = nx.DiGraph()
        for job, fn in self._durations.items():
            g.add_node(job, duration=fn)
        g.add_edges_from(self.edges)
        return g

    @classmethod
    def from_networkx(cls, graph) -> "TradeoffDAG":
        """Build from a :class:`networkx.DiGraph` whose nodes carry ``duration`` attributes."""
        dag = cls()
        for node, data in graph.nodes(data=True):
            dag.add_job(node, data.get("duration"))
        for u, v in graph.edges():
            dag.add_edge(u, v)
        return dag

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TradeoffDAG(jobs={self.num_jobs}, edges={self.num_edges})"
