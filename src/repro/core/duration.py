"""Duration functions (Section 2 of the paper).

A *duration function* ``t_v(r)`` gives the time needed to complete job ``v``
when ``r`` units of resource are routed through it.  The paper considers
three classes (all non-increasing in ``r``):

* **General non-increasing step functions** (Equation 1) -- an arbitrary
  finite list of resource-time tuples ``<r_i, t(r_i)>`` with ``r_1 = 0``.
* **k-way splitting** (Equation 2) -- the duration obtained by splitting the
  ``d = t_v(0)`` incoming updates of a memory cell across ``k`` extra cells
  (a one-level "fan-in" reducer).
* **Recursive binary splitting** (Equation 3) -- the duration obtained by a
  recursive binary reducer of height ``h`` (``r = 2^h`` extra cells).

All classes expose the same small interface:

``duration(r)``
    time needed with ``r`` units of resource (non-increasing in ``r``);
``tuples()``
    the canonical breakpoint list ``[(r_1, t_1), (r_2, t_2), ...]`` with
    ``r_1 = 0``, strictly increasing resources and strictly decreasing
    times -- exactly the representation consumed by the DAG transformations
    of Section 3.1;
``max_useful_resource()``
    the smallest ``r`` attaining the minimum duration;
``base_duration`` / ``min_duration()``
    ``t(0)`` and ``min_r t(r)``.

Durations may be ``math.inf`` (used by the hardness gadgets of Section 4 and
Appendix A for "impossible without resource" activities).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import List, Sequence, Tuple

from repro.utils.validation import ValidationError, check_non_negative, require

__all__ = [
    "DurationFunction",
    "GeneralStepDuration",
    "ConstantDuration",
    "KWaySplitDuration",
    "RecursiveBinarySplitDuration",
    "LOG2_LOG2_E",
    "recursive_binary_height_bound",
]

#: ``log2(log2(e))`` -- the constant appearing in the optimal reducer height
#: ``k = floor(log2 t_v(0) - log2 log2 e)`` of Equation 3.
LOG2_LOG2_E = math.log2(math.log2(math.e))

ResourceTimeTuple = Tuple[float, float]


class DurationFunction(ABC):
    """Abstract non-increasing duration function ``t(r)``.

    Subclasses must provide :meth:`duration` and :meth:`tuples`.  The other
    helpers are derived from those two primitives.
    """

    @abstractmethod
    def duration(self, resource: float) -> float:
        """Return the duration when ``resource`` units are available."""

    @abstractmethod
    def tuples(self) -> List[ResourceTimeTuple]:
        """Return the canonical resource-time breakpoints.

        The list always starts with ``(0, t(0))``; resources are strictly
        increasing and times strictly decreasing, matching Equation 1.
        """

    # -- derived helpers -------------------------------------------------
    def __call__(self, resource: float) -> float:
        return self.duration(resource)

    @property
    def base_duration(self) -> float:
        """Duration with no extra resource, ``t(0)``."""
        return self.duration(0)

    def min_duration(self) -> float:
        """The smallest achievable duration, ``min_r t(r)``."""
        return self.tuples()[-1][1]

    def max_useful_resource(self) -> float:
        """Smallest resource level attaining :meth:`min_duration`."""
        return self.tuples()[-1][0]

    def num_tuples(self) -> int:
        """Number of breakpoints ``l_v`` (Section 2)."""
        return len(self.tuples())

    def resource_levels(self) -> List[float]:
        """The breakpoint resource values ``r_{v,1} < r_{v,2} < ...``."""
        return [r for r, _ in self.tuples()]

    def validate(self) -> None:
        """Check the Equation-1 invariants of :meth:`tuples`.

        Raises
        ------
        ValidationError
            If the first breakpoint is not at resource 0, resources are not
            strictly increasing, or times are not strictly decreasing.
        """
        tups = self.tuples()
        require(len(tups) >= 1, "duration function must have at least one tuple")
        require(tups[0][0] == 0, "first resource-time tuple must have resource 0")
        for (r1, t1), (r2, t2) in zip(tups, tups[1:]):
            require(r2 > r1, f"resource breakpoints must strictly increase ({r1} !< {r2})")
            require(t2 < t1, f"durations must strictly decrease ({t1} !> {t2})")
        for r, t in tups:
            check_non_negative(r, "resource breakpoint")
            if not math.isinf(t):
                check_non_negative(t, "duration value")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.tuples()!r})"


def _envelope(pairs: Sequence[ResourceTimeTuple]) -> List[ResourceTimeTuple]:
    """Reduce ``pairs`` to the canonical strictly-decreasing step envelope.

    Duplicated resource levels keep their best (smallest) time; breakpoints
    that do not strictly improve on the running minimum are dropped.  The
    result satisfies the Equation-1 invariants checked by
    :meth:`DurationFunction.validate`.
    """
    best: dict = {}
    for r, t in pairs:
        if r in best:
            best[r] = min(best[r], t)
        else:
            best[r] = t
    out: List[ResourceTimeTuple] = []
    current = math.inf
    for r in sorted(best):
        t = best[r]
        if not out:
            out.append((r, t))
            current = t
        elif t < current:
            out.append((r, t))
            current = t
    return out


class GeneralStepDuration(DurationFunction):
    """General non-increasing step function of Equation 1.

    Parameters
    ----------
    pairs:
        Iterable of ``(resource, time)`` tuples.  A tuple at resource 0 is
        required (it defines ``t(0)``).  Redundant breakpoints (those that
        do not strictly improve the duration) are silently dropped so the
        stored representation is canonical.

    Examples
    --------
    >>> f = GeneralStepDuration([(0, 10), (2, 4), (5, 1)])
    >>> f(0), f(1), f(2), f(4), f(5), f(100)
    (10, 10, 4, 4, 1, 1)
    """

    def __init__(self, pairs: Sequence[ResourceTimeTuple]):
        pairs = [(r, t) for r, t in pairs]
        require(len(pairs) >= 1, "GeneralStepDuration requires at least one tuple")
        for r, t in pairs:
            check_non_negative(r, "resource breakpoint")
            if not (isinstance(t, (int, float)) and (math.isinf(t) or t >= 0)):
                raise ValidationError(f"duration must be a non-negative number or inf, got {t!r}")
        self._tuples = _envelope(pairs)
        require(self._tuples[0][0] == 0, "a tuple with resource 0 is required")
        self.validate()

    def duration(self, resource: float) -> float:
        check_non_negative(resource, "resource")
        result = self._tuples[0][1]
        for r, t in self._tuples:
            if resource >= r:
                result = t
            else:
                break
        return result

    def tuples(self) -> List[ResourceTimeTuple]:
        return list(self._tuples)

    def __eq__(self, other) -> bool:
        return isinstance(other, GeneralStepDuration) and self._tuples == other._tuples

    def __hash__(self) -> int:
        return hash(tuple(self._tuples))


class ConstantDuration(GeneralStepDuration):
    """A duration that cannot be improved by resources (single tuple).

    Dummy arcs introduced by the activity-on-arc transformation (Section 2)
    use ``ConstantDuration(0)``.
    """

    def __init__(self, value: float = 0.0):
        super().__init__([(0, value)])
        self.value = value


class KWaySplitDuration(DurationFunction):
    """k-way splitting duration function (Equation 2).

    A k-way split reducer distributes the ``d = t(0)`` incoming updates of a
    node across ``k`` extra cells (``2 <= k <= floor(sqrt(d))`` useful
    levels), each of which is later folded into the node, giving

    ``t(k) = ceil(d / k) + k``.

    Beyond ``k = floor(sqrt(d))`` no further improvement is possible.  The
    exact Equation-2 expression is not monotone in the last one or two
    integer steps before ``sqrt(d)`` for some ``d``; as in the paper we treat
    the duration function as non-increasing, so this class exposes the
    *monotone (running-minimum) envelope* of Equation 2, which agrees with
    Equation 2 wherever Equation 2 is itself non-increasing.

    Parameters
    ----------
    base_work:
        ``d = t(0)``, the number of updates received by the node (its
        in-degree in the race DAG).
    """

    def __init__(self, base_work: int):
        require(isinstance(base_work, int) and not isinstance(base_work, bool),
                "base_work must be an integer")
        require(base_work >= 0, "base_work must be non-negative")
        self.base_work = base_work
        d = base_work
        pairs: List[ResourceTimeTuple] = [(0, float(d))]
        kmax = int(math.isqrt(d)) if d > 0 else 0
        for k in range(2, kmax + 1):
            pairs.append((float(k), float(math.ceil(d / k) + k)))
        self._tuples = _envelope(pairs)

    def raw_equation2(self, resource: float) -> float:
        """The literal Equation-2 value (possibly non-monotone near sqrt(d))."""
        d = self.base_work
        k = int(resource)
        if k in (0, 1):
            return float(d)
        kmax = int(math.isqrt(d)) if d > 0 else 0
        if kmax < 2:
            return float(d)
        if k <= kmax:
            return float(math.ceil(d / k) + k)
        return float(math.ceil(d / kmax) + kmax)

    def duration(self, resource: float) -> float:
        check_non_negative(resource, "resource")
        result = self._tuples[0][1]
        for r, t in self._tuples:
            if resource >= r:
                result = t
            else:
                break
        return result

    def tuples(self) -> List[ResourceTimeTuple]:
        return list(self._tuples)


def recursive_binary_height_bound(base_work: float) -> int:
    """Largest useful height exponent ``k = floor(log2 d - log2 log2 e)``.

    This is the value of ``k`` in Equation 3 beyond which increasing the
    reducer height no longer decreases ``ceil(d / 2^k) + k + 1``.
    Returns 0 when ``d`` is too small for any reducer to help.
    """
    if base_work <= 1:
        return 0
    k = int(math.floor(math.log2(base_work) - LOG2_LOG2_E))
    return max(k, 0)


class RecursiveBinarySplitDuration(DurationFunction):
    """Recursive binary splitting duration function (Equation 3).

    A recursive binary reducer of height ``i`` (``2^i`` units of extra
    space in the formalisation of Section 2) applies the ``d = t(0)``
    updates in time ``ceil(d / 2^i) + i + 1``.  The useful heights are
    ``i = 1 .. k`` with ``k = floor(log2 d - log2 log2 e)``; beyond that the
    ``+ i`` additive term dominates.

    The breakpoints are therefore at resources ``0`` and ``2^i`` for the
    heights that strictly improve the duration, and ``duration(r)`` is the
    step function through those breakpoints (constant between powers of
    two), exactly as in Equation 3.

    Parameters
    ----------
    base_work:
        ``d = t(0)``, the number of updates received by the node.
    """

    def __init__(self, base_work: int):
        require(isinstance(base_work, int) and not isinstance(base_work, bool),
                "base_work must be an integer")
        require(base_work >= 0, "base_work must be non-negative")
        self.base_work = base_work
        d = base_work
        self.height_bound = recursive_binary_height_bound(d)
        pairs: List[ResourceTimeTuple] = [(0, float(d))]
        for i in range(1, self.height_bound + 1):
            pairs.append((float(2 ** i), float(math.ceil(d / 2 ** i) + i + 1)))
        self._tuples = _envelope(pairs)

    def duration_at_height(self, height: int) -> float:
        """Duration with a reducer of height ``height`` (Equation 3 row)."""
        check_non_negative(height, "height")
        d = self.base_work
        if height == 0:
            return float(d)
        h = min(int(height), self.height_bound) if self.height_bound else 0
        if h == 0:
            return float(d)
        return float(math.ceil(d / 2 ** h) + h + 1)

    def duration(self, resource: float) -> float:
        check_non_negative(resource, "resource")
        result = self._tuples[0][1]
        for r, t in self._tuples:
            if resource >= r:
                result = t
            else:
                break
        return result

    def tuples(self) -> List[ResourceTimeTuple]:
        return list(self._tuples)
