"""Exact solvers for small instances.

The paper proves the problems strongly NP-hard (Section 4), so no exact
polynomial algorithm exists in general.  This module provides exact solvers
that are practical for the *small* instances used to (a) measure empirical
approximation ratios against the true optimum and (b) verify the hardness
reductions end to end:

* :func:`exact_min_makespan` / :func:`exact_min_resource` -- exhaustive
  enumeration over per-job breakpoint allocations of an activity-on-node
  DAG, with a min-flow feasibility check for each candidate allocation
  (resources are reused over paths, so an allocation is feasible for budget
  ``B`` iff its minimum routing flow is at most ``B``).
* :func:`exact_min_resource_arcs` / :func:`exact_min_makespan_arcs` --
  branch-and-bound over the expedite/not-expedite decisions of the arcs of
  an activity-on-arc DAG whose arcs carry at most two resource-time tuples
  (the natural form of the hardness gadgets).  The search prunes with
  optimistic longest paths and monotone min-flow lower bounds, making the
  1-in-3SAT and Partition constructions of Section 4 tractable for small
  formulas.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from repro.core.arcdag import Arc, ArcDAG, node_to_arc_dag
from repro.core.dag import TradeoffDAG
from repro.core.minflow import InfeasibleFlowError, min_flow_with_lower_bounds
from repro.core.problem import TradeoffSolution
from repro.utils.validation import check_non_negative, require

__all__ = [
    "exact_min_makespan",
    "exact_min_resource",
    "exact_min_resource_arcs",
    "exact_min_makespan_arcs",
    "ExactSearchLimit",
]


class ExactSearchLimit(RuntimeError):
    """Raised when an exhaustive search would exceed its combination limit."""


# ----------------------------------------------------------------------
# activity-on-node exhaustive solvers
# ----------------------------------------------------------------------
def _candidate_levels(dag: TradeoffDAG, budget: Optional[float]) -> Dict[Hashable, List[float]]:
    levels: Dict[Hashable, List[float]] = {}
    for job in dag.jobs:
        fn = dag.duration_function(job)
        opts = [r for r, _t in fn.tuples()]
        if budget is not None:
            opts = [r for r in opts if r <= budget]
            if not opts:
                opts = [0.0]
        levels[job] = opts
    return levels


def _combination_count(levels: Mapping[Hashable, Sequence[float]]) -> int:
    count = 1
    for opts in levels.values():
        count *= len(opts)
        if count > 10 ** 12:
            break
    return count


def exact_min_makespan(dag: TradeoffDAG, budget: float,
                       max_combinations: int = 200_000) -> TradeoffSolution:
    """Exact minimum makespan under budget ``budget`` (reuse over paths).

    Enumerates every combination of per-job breakpoint allocations, keeps
    those whose minimum routing flow fits in the budget, and returns the
    best makespan.  Raises :class:`ExactSearchLimit` if the number of
    combinations exceeds ``max_combinations``.
    """
    check_non_negative(budget, "budget")
    dag = dag.ensure_single_source_sink()
    dag.validate()
    levels = _candidate_levels(dag, budget)
    count = _combination_count(levels)
    if count > max_combinations:
        raise ExactSearchLimit(
            f"{count} allocation combinations exceed the limit of {max_combinations}")

    arc_dag, mapping = node_to_arc_dag(dag)
    jobs = list(levels)
    best: Optional[TradeoffSolution] = None
    pruned = 0
    flow_checks = 0
    for combo in itertools.product(*(levels[j] for j in jobs)):
        allocation = dict(zip(jobs, combo))
        makespan = dag.makespan_value(allocation)
        if best is not None and makespan >= best.makespan:
            pruned += 1
            continue
        lower = {mapping.job_arc[j]: allocation[j] for j in jobs if allocation[j] > 0}
        flow_checks += 1
        try:
            result = min_flow_with_lower_bounds(arc_dag, lower)
        except InfeasibleFlowError:
            continue
        if result.value > budget + 1e-9:
            continue
        best = TradeoffSolution(
            makespan=makespan,
            budget_used=result.value,
            allocation=dict(allocation),
            algorithm="exact-enumeration",
            lower_bound=makespan,
            metadata={"budget": budget, "combinations": count,
                      "pruned": pruned, "flow_checks": flow_checks},
        )
    if best is not None:
        best.metadata["pruned"] = pruned
        best.metadata["flow_checks"] = flow_checks
    if best is None:
        # budget 0 / no feasible routing: the empty allocation is always feasible
        makespan = dag.makespan_value({})
        best = TradeoffSolution(makespan=makespan, budget_used=0.0, allocation={},
                                algorithm="exact-enumeration", lower_bound=makespan,
                                metadata={"budget": budget, "combinations": count})
    return best


def exact_min_resource(dag: TradeoffDAG, target_makespan: float,
                       max_combinations: int = 200_000) -> TradeoffSolution:
    """Exact minimum budget achieving ``makespan <= target_makespan``."""
    check_non_negative(target_makespan, "target_makespan")
    dag = dag.ensure_single_source_sink()
    dag.validate()
    levels = _candidate_levels(dag, None)
    count = _combination_count(levels)
    if count > max_combinations:
        raise ExactSearchLimit(
            f"{count} allocation combinations exceed the limit of {max_combinations}")

    arc_dag, mapping = node_to_arc_dag(dag)
    jobs = list(levels)
    best: Optional[TradeoffSolution] = None
    pruned = 0
    flow_checks = 0
    for combo in itertools.product(*(levels[j] for j in jobs)):
        allocation = dict(zip(jobs, combo))
        makespan = dag.makespan_value(allocation)
        if makespan > target_makespan + 1e-9:
            continue
        # Bound on the running best: every unit allocated to a job must be
        # routed through its arc, so the min-flow value is at least the
        # largest single-job allocation.  A combination whose peak
        # allocation already matches or exceeds the incumbent budget cannot
        # improve it -- skip the (expensive) min-flow computation.
        if best is not None and max(combo, default=0.0) >= best.budget_used:
            pruned += 1
            continue
        lower = {mapping.job_arc[j]: allocation[j] for j in jobs if allocation[j] > 0}
        flow_checks += 1
        try:
            result = min_flow_with_lower_bounds(arc_dag, lower)
        except InfeasibleFlowError:
            continue
        if best is None or result.value < best.budget_used:
            best = TradeoffSolution(
                makespan=makespan,
                budget_used=result.value,
                allocation=dict(allocation),
                algorithm="exact-enumeration-minresource",
                resource_lower_bound=result.value,
                metadata={"target_makespan": target_makespan, "combinations": count,
                          "pruned": pruned, "flow_checks": flow_checks},
            )
    if best is not None:
        best.metadata["pruned"] = pruned
        best.metadata["flow_checks"] = flow_checks
    if best is None:
        return TradeoffSolution(makespan=math.inf, budget_used=math.inf, allocation={},
                                algorithm="exact-enumeration-minresource",
                                metadata={"status": "infeasible",
                                          "target_makespan": target_makespan})
    return best


# ----------------------------------------------------------------------
# activity-on-arc branch and bound
# ----------------------------------------------------------------------
@dataclass
class _ArcChoice:
    arc: Arc
    base_time: float
    improved_time: float
    requirement: float


def _arc_choices(arc_dag: ArcDAG) -> List[_ArcChoice]:
    choices: List[_ArcChoice] = []
    for arc in arc_dag.arcs:
        tuples = arc.duration.tuples()
        require(len(tuples) <= 2,
                f"arc {arc.arc_id} has more than two tuples; expand_to_two_tuples first")
        if len(tuples) == 2 and tuples[0][1] > tuples[1][1]:
            choices.append(_ArcChoice(arc, tuples[0][1], tuples[1][1], tuples[1][0]))
    return choices


def _longest_path(arc_dag: ArcDAG, durations: Mapping[str, float]) -> float:
    times: Dict[Hashable, float] = {}
    for v in arc_dag.topological_vertices():
        in_arcs = arc_dag.in_arcs(v)
        if not in_arcs:
            times[v] = 0.0
            continue
        times[v] = max(times[a.tail] + durations.get(a.arc_id, a.base_time) for a in in_arcs)
    return times.get(arc_dag.sink, 0.0)


def exact_min_resource_arcs(arc_dag: ArcDAG, target_makespan: float,
                            node_limit: int = 2_000_000) -> Tuple[float, Dict[str, float]]:
    """Exact minimum budget for an activity-on-arc DAG with <=2-tuple arcs.

    Performs branch and bound over the expedite decisions of the improvable
    arcs; returns ``(budget, flow)`` where ``flow`` realises the optimum, or
    ``(inf, {})`` when the target makespan is unachievable even with every
    arc expedited.

    ``node_limit`` bounds the number of search nodes explored (a
    :class:`ExactSearchLimit` is raised beyond it).
    """
    check_non_negative(target_makespan, "target_makespan")
    arc_dag.validate()
    choices = _arc_choices(arc_dag)
    base_durations = {arc.arc_id: arc.base_time for arc in arc_dag.arcs}

    # Optimistic check: all improvable arcs expedited.
    optimistic = dict(base_durations)
    for choice in choices:
        optimistic[choice.arc.arc_id] = choice.improved_time
    if _longest_path(arc_dag, optimistic) > target_makespan + 1e-9:
        return math.inf, {}

    # Order arcs by decreasing potential duration saving: deciding the most
    # influential arcs first tightens the bounds quickly.
    choices.sort(key=lambda c: c.base_time - c.improved_time, reverse=True)

    best_value = math.inf
    best_flow: Dict[str, float] = {}
    explored = 0

    def search(index: int, expedited: Dict[str, float], durations: Dict[str, float]) -> None:
        nonlocal best_value, best_flow, explored
        explored += 1
        if explored > node_limit:
            raise ExactSearchLimit(f"branch-and-bound exceeded {node_limit} nodes")

        # Bound 1: optimistic makespan (undecided arcs expedited) must meet target.
        optimistic_durations = dict(durations)
        for choice in choices[index:]:
            optimistic_durations[choice.arc.arc_id] = choice.improved_time
        if _longest_path(arc_dag, optimistic_durations) > target_makespan + 1e-9:
            return

        # Bound 2: the min-flow of the already-committed requirements can only
        # grow as more arcs are expedited.
        try:
            partial = min_flow_with_lower_bounds(arc_dag, expedited)
        except InfeasibleFlowError:
            return
        if partial.value >= best_value - 1e-9:
            return

        if index == len(choices):
            makespan = _longest_path(arc_dag, durations)
            if makespan <= target_makespan + 1e-9 and partial.value < best_value:
                best_value = partial.value
                best_flow = partial.flow
            return

        choice = choices[index]
        # Branch A: do not expedite (cheaper in resources, tried first).
        durations_no = dict(durations)
        durations_no[choice.arc.arc_id] = choice.base_time
        search(index + 1, expedited, durations_no)
        # Branch B: expedite.
        durations_yes = dict(durations)
        durations_yes[choice.arc.arc_id] = choice.improved_time
        expedited_yes = dict(expedited)
        expedited_yes[choice.arc.arc_id] = choice.requirement
        search(index + 1, expedited_yes, durations_yes)

    search(0, {}, dict(base_durations))
    return best_value, best_flow


def exact_min_makespan_arcs(arc_dag: ArcDAG, budget: float,
                            node_limit: int = 2_000_000) -> Tuple[float, Dict[str, float]]:
    """Exact minimum makespan for an activity-on-arc DAG with <=2-tuple arcs.

    Branch and bound over expedite decisions, pruning with (a) the
    optimistic longest path, which lower-bounds every completion of the
    current partial assignment, and (b) the monotone min-flow of the
    committed requirements, which must stay within the budget.
    Returns ``(makespan, flow)``.
    """
    check_non_negative(budget, "budget")
    arc_dag.validate()
    choices = _arc_choices(arc_dag)
    base_durations = {arc.arc_id: arc.base_time for arc in arc_dag.arcs}
    choices.sort(key=lambda c: c.base_time - c.improved_time, reverse=True)

    best_value = math.inf
    best_flow: Dict[str, float] = {}
    explored = 0

    def search(index: int, expedited: Dict[str, float], durations: Dict[str, float]) -> None:
        nonlocal best_value, best_flow, explored
        explored += 1
        if explored > node_limit:
            raise ExactSearchLimit(f"branch-and-bound exceeded {node_limit} nodes")

        optimistic_durations = dict(durations)
        for choice in choices[index:]:
            optimistic_durations[choice.arc.arc_id] = choice.improved_time
        if _longest_path(arc_dag, optimistic_durations) >= best_value - 1e-9:
            return

        try:
            partial = min_flow_with_lower_bounds(arc_dag, expedited)
        except InfeasibleFlowError:
            return
        if partial.value > budget + 1e-9:
            return

        if index == len(choices):
            makespan = _longest_path(arc_dag, durations)
            if makespan < best_value:
                best_value = makespan
                best_flow = partial.flow
            return

        choice = choices[index]
        durations_yes = dict(durations)
        durations_yes[choice.arc.arc_id] = choice.improved_time
        expedited_yes = dict(expedited)
        expedited_yes[choice.arc.arc_id] = choice.requirement
        search(index + 1, expedited_yes, durations_yes)

        durations_no = dict(durations)
        durations_no[choice.arc.arc_id] = choice.base_time
        search(index + 1, expedited, durations_no)

    search(0, {}, dict(base_durations))
    if math.isinf(best_value):
        # No allocation at all is always feasible for budget >= 0.
        best_value = _longest_path(arc_dag, base_durations)
        best_flow = {}
    return best_value, best_flow
