"""Resource flows over activity-on-arc DAGs.

A *solution* to the resource-time tradeoff problem with reuse over paths
(Question 1.3) is a flow of resource units from the source to the sink of
the DAG: conservation holds at every internal event vertex, the amount
leaving the source is the budget actually consumed, and the duration of
every arc is its duration function evaluated at the flow it carries.

:class:`ResourceFlow` packages a flow assignment together with the derived
quantities the paper reasons about -- event times, makespan and the critical
path -- and validates conservation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping

from repro.core.arcdag import Arc, ArcDAG

__all__ = ["ResourceFlow", "FlowValidationError"]


class FlowValidationError(ValueError):
    """Raised when a flow assignment violates conservation or non-negativity."""


@dataclass
class ResourceFlow:
    """A source-to-sink resource flow on an :class:`ArcDAG`.

    Parameters
    ----------
    arc_dag:
        The DAG the flow lives on.
    flow:
        ``arc id -> flow value``; arcs absent from the mapping carry 0.
    tolerance:
        Numerical slack used when validating conservation (flows produced by
        the LP relaxation are floating point).
    """

    arc_dag: ArcDAG
    flow: Dict[str, float] = field(default_factory=dict)
    tolerance: float = 1e-7

    # ------------------------------------------------------------------
    # validation and bookkeeping
    # ------------------------------------------------------------------
    def flow_on(self, arc_id: str) -> float:
        """Flow carried by arc ``arc_id`` (0 if unassigned)."""
        return self.flow.get(arc_id, 0.0)

    def budget_used(self) -> float:
        """Total resource leaving the source (the consumed budget)."""
        return sum(self.flow_on(a.arc_id) for a in self.arc_dag.out_arcs(self.arc_dag.source))

    def validate(self) -> None:
        """Check non-negativity and flow conservation at internal vertices.

        Raises
        ------
        FlowValidationError
            If any flow is negative or conservation fails beyond
            :attr:`tolerance`.
        """
        for arc_id, value in self.flow.items():
            if value < -self.tolerance:
                raise FlowValidationError(f"negative flow {value} on arc {arc_id}")
        for v in self.arc_dag.vertices:
            if v in (self.arc_dag.source, self.arc_dag.sink):
                continue
            inflow = sum(self.flow_on(a.arc_id) for a in self.arc_dag.in_arcs(v))
            outflow = sum(self.flow_on(a.arc_id) for a in self.arc_dag.out_arcs(v))
            if abs(inflow - outflow) > self.tolerance * max(1.0, inflow, outflow):
                raise FlowValidationError(
                    f"flow conservation violated at vertex {v!r}: in={inflow} out={outflow}"
                )
        src_out = self.budget_used()
        sink_in = sum(self.flow_on(a.arc_id) for a in self.arc_dag.in_arcs(self.arc_dag.sink))
        if abs(src_out - sink_in) > self.tolerance * max(1.0, src_out, sink_in):
            raise FlowValidationError(
                f"source outflow {src_out} does not match sink inflow {sink_in}"
            )

    # ------------------------------------------------------------------
    # derived schedule quantities
    # ------------------------------------------------------------------
    def arc_duration(self, arc: Arc) -> float:
        """Duration of ``arc`` given the flow it carries."""
        return arc.duration.duration(self.flow_on(arc.arc_id))

    def arc_durations(self) -> Dict[str, float]:
        """``arc id -> realised duration`` for every arc."""
        return {a.arc_id: self.arc_duration(a) for a in self.arc_dag.arcs}

    def event_times(self) -> Dict[Hashable, float]:
        """Earliest event time of every vertex (longest path by realised durations).

        The source occurs at time 0; an event occurs when all arcs entering
        it have completed (constraint 7 of the LP, taken with equality).
        """
        order = self.arc_dag.topological_vertices()
        times: Dict[Hashable, float] = {}
        for v in order:
            in_arcs = self.arc_dag.in_arcs(v)
            if not in_arcs:
                times[v] = 0.0
                continue
            best = 0.0
            for arc in in_arcs:
                tail_time = times.get(arc.tail, 0.0)
                cand = tail_time + self.arc_duration(arc)
                if cand > best:
                    best = cand
            times[v] = best
        return times

    def makespan(self) -> float:
        """Time at which the sink event occurs."""
        return self.event_times().get(self.arc_dag.sink, 0.0)

    def critical_path(self) -> List[Arc]:
        """One maximising source-to-sink path (list of arcs)."""
        times = self.event_times()
        path: List[Arc] = []
        v = self.arc_dag.sink
        while v != self.arc_dag.source:
            in_arcs = self.arc_dag.in_arcs(v)
            if not in_arcs:
                break
            best_arc = None
            for arc in in_arcs:
                if abs(times[arc.tail] + self.arc_duration(arc) - times[v]) <= 1e-9 + self.tolerance:
                    best_arc = arc
                    break
            if best_arc is None:
                best_arc = max(in_arcs, key=lambda a: times[a.tail] + self.arc_duration(a))
            path.append(best_arc)
            v = best_arc.tail
        path.reverse()
        return path

    def job_resources(self, job_arc_ids: Mapping[Hashable, str]) -> Dict[Hashable, float]:
        """Resource received by each job given the ``job -> arc id`` mapping."""
        return {job: self.flow_on(arc_id) for job, arc_id in job_arc_ids.items()}

    def rounded(self, digits: int = 9) -> "ResourceFlow":
        """Return a copy with flows rounded to ``digits`` decimals (for reporting)."""
        return ResourceFlow(self.arc_dag, {k: round(v, digits) for k, v in self.flow.items()},
                            self.tolerance)

    def is_integral(self, tol: float = 1e-6) -> bool:
        """Whether every flow value is (numerically) an integer."""
        return all(abs(v - round(v)) <= tol for v in self.flow.values())

    def summary(self) -> str:
        """Short human-readable summary used by examples and benchmarks."""
        return (f"ResourceFlow(budget_used={self.budget_used():.3f}, "
                f"makespan={self.makespan():.3f}, arcs={len(self.flow)})")
