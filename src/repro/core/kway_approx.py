"""Single-criteria 5-approximation for k-way splitting (Theorem 3.9).

The algorithm of Section 3.2 starts from the ``alpha = 1/2`` bi-criteria
solution (a (2, 2) pair), then *repairs* the resource blow-up: for every job
``j`` whose rounded allocation ``r_j`` exceeds what the optimum could have
used, the allocation is reduced to ``k = floor(r_j / 2)`` (for ``r_j > 3``)
or to one of ``{0, 2}`` (for ``r_j <= 3``, Lemmas 3.7-3.8).  Because the
k-way duration function satisfies ``ceil(d/k) + k <= 2.5 * (ceil(d/r) + r)``
when ``k = floor(r/2)`` (Lemma 3.5), the makespan grows by at most another
factor 2.5 over the (2, 2) solution, giving a 5-approximation on makespan
while the routed resource does not exceed the budget-feasible optimum
(the min-flow of the reduced requirements is at most the LP flow).
"""

from __future__ import annotations

import math
from typing import Dict, Hashable

from repro.core.arcdag import expand_to_two_tuples, node_to_arc_dag
from repro.core.dag import TradeoffDAG
from repro.core.flow import ResourceFlow
from repro.core.lp import solve_min_makespan_lp
from repro.core.minflow import min_flow_with_lower_bounds
from repro.core.problem import TradeoffSolution
from repro.core.rounding import round_lp_solution
from repro.utils.validation import check_non_negative

__all__ = ["solve_min_makespan_kway", "reduce_kway_allocation"]


def reduce_kway_allocation(rounded_resource: float, fractional_resource: float,
                           duration) -> float:
    """Reduce a job's rounded allocation per Lemmas 3.5-3.8.

    Parameters
    ----------
    rounded_resource:
        ``r_j`` -- the total integral resource the α=1/2 rounding committed
        to the job (sum over its parallel chains).
    fractional_resource:
        The LP's fractional resource for the job, used as a stand-in for the
        (unknown) optimal allocation when deciding the small cases of
        Lemma 3.8.
    duration:
        The job's duration function (used to snap to a meaningful
        breakpoint).

    Returns
    -------
    float
        The reduced allocation ``k`` (0 when no resource helps).
    """
    levels = [r for r, _ in duration.tuples()]
    max_useful = levels[-1]

    if rounded_resource > 3:
        k = math.floor(rounded_resource / 2)
    elif rounded_resource >= 2:
        # Lemma 3.8: allocate 2 exactly when the optimum plausibly used >= 2
        # units here; the LP's fractional resource is our certificate.
        k = 2 if fractional_resource >= 1.0 else 0
    else:
        k = 0

    k = min(k, max_useful)
    # Snap down to the largest breakpoint not exceeding k so the allocation
    # is never wasted between breakpoints.
    snapped = 0.0
    for level in levels:
        if level <= k:
            snapped = level
    return snapped


def solve_min_makespan_kway(dag: TradeoffDAG, budget: float,
                            transforms=None, lp_backend=None) -> TradeoffSolution:
    """5-approximation for the minimum-makespan problem with k-way splitting.

    Every job's duration function is expected to be a
    :class:`~repro.core.duration.KWaySplitDuration` (or a constant); other
    non-increasing functions are accepted but the 5x guarantee only holds
    for the k-way family.  ``transforms`` optionally supplies a precomputed
    ``(arc_dag, node_map, expansion)`` triple.
    """
    check_non_negative(budget, "budget")
    if transforms is not None:
        arc_dag, node_map, expansion = transforms
    else:
        arc_dag, node_map = node_to_arc_dag(dag)
        expansion = expand_to_two_tuples(arc_dag)
    expanded = expansion.arc_dag

    lp = (lp_backend.solve_min_makespan(expanded, budget) if lp_backend is not None
          else solve_min_makespan_lp(expanded, budget))
    if lp.status != "optimal":
        return TradeoffSolution(makespan=math.inf, budget_used=math.inf,
                                algorithm="kway-5approx",
                                metadata={"status": "infeasible"})
    rounded = round_lp_solution(expanded, lp, alpha=0.5)

    normalized = dag.ensure_single_source_sink()
    allocation: Dict[Hashable, float] = {}
    for job, orig_arc_id in node_map.job_arc.items():
        fn = normalized.duration_function(job)
        rounded_resource = expansion.original_resource(orig_arc_id, rounded.lower_bounds)
        fractional = expansion.original_resource(orig_arc_id, lp.flows)
        allocation[job] = reduce_kway_allocation(rounded_resource, fractional, fn)

    lower = {node_map.job_arc[job]: amount for job, amount in allocation.items() if amount > 0}
    result = min_flow_with_lower_bounds(arc_dag, lower)
    flow = ResourceFlow(arc_dag, result.flow)
    flow.validate()

    return TradeoffSolution(
        makespan=flow.makespan(),
        budget_used=result.value,
        allocation=allocation,
        algorithm="kway-5approx",
        lower_bound=lp.makespan,
        metadata={
            "lp_makespan": lp.makespan,
            "lp_budget_used": lp.budget_used,
            "budget": budget,
            "guarantee": 5.0,
        },
    )
