"""Linear-programming relaxation of the resource-time tradeoff problem.

This module implements LP (6)-(10) of Section 3.1: after the activity-on-arc
and two-tuple transformations, every job arc either has two resource-time
tuples ``{<0, t(0)>, <r_e, 0>}`` or a single tuple ``{<0, t(0)>}``.  The LP
relaxes the two-tuple arcs to the linear duration

    ``t_e(f) = t_e(0) * (1 - f / r_e)``   for ``f in [0, r_e]``

(the straight line through the two tuples), keeps single-tuple arcs at their
constant duration, models resource reuse over paths as a source-to-sink flow
with conservation at every internal vertex, and bounds the source outflow by
the budget ``B``.

Two objectives are supported, matching the two problems of Section 2:

* **min-makespan** -- minimise ``T_t`` subject to the budget (LP 6-10);
* **min-resource** -- minimise the source outflow subject to ``T_t <= T``.

The solver is ``scipy.optimize.linprog`` (HiGHS).  Infinite base durations
(used by the hardness gadgets) are replaced by a "big M" exceeding the sum
of all finite durations, which preserves optima for every instance in which
a finite-makespan solution exists.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import csr_matrix

from repro.core.arcdag import Arc, ArcDAG
from repro.utils.validation import check_non_negative, require

__all__ = ["LPSolution", "RelaxedArc", "build_relaxed_arcs", "solve_min_makespan_lp",
           "solve_min_resource_lp", "linear_relaxed_duration"]


@dataclass(frozen=True)
class RelaxedArc:
    """Per-arc data used by the LP: base time, full resource and big-M substitution."""

    arc: Arc
    base_time: float
    full_resource: float
    capped: bool  # True when f_e is bounded above by full_resource (two-tuple arcs)


def _big_m(arc_dag: ArcDAG) -> float:
    finite = arc_dag.total_finite_base_time()
    return max(finite * 4.0 + 16.0, 1024.0)


def build_relaxed_arcs(arc_dag: ArcDAG, big_m: Optional[float] = None) -> Dict[str, RelaxedArc]:
    """Compute the relaxed (linearised) view of every arc.

    Arcs must carry at most two resource-time tuples (run
    :func:`repro.core.arcdag.expand_to_two_tuples` first); a ``ValueError``
    is raised otherwise.
    """
    if big_m is None:
        big_m = _big_m(arc_dag)
    relaxed: Dict[str, RelaxedArc] = {}
    for arc in arc_dag.arcs:
        tuples = arc.duration.tuples()
        require(len(tuples) <= 2,
                f"arc {arc.arc_id} has {len(tuples)} tuples; expand_to_two_tuples first")
        t0 = tuples[0][1]
        if math.isinf(t0):
            t0 = big_m
        if len(tuples) == 2:
            # Relaxation interpolates linearly between <0, t(0)> and
            # <r_full, t(r_full)>; the canonical two-tuple form has
            # t(r_full) == 0 but a non-zero improved duration is supported.
            r_full = tuples[1][0]
            relaxed[arc.arc_id] = RelaxedArc(arc, t0, r_full, True)
        else:
            relaxed[arc.arc_id] = RelaxedArc(arc, t0, 0.0, False)
    return relaxed


def linear_relaxed_duration(relaxed: RelaxedArc, flow: float) -> float:
    """The LP's linearised duration of an arc carrying ``flow`` resource.

    Two-tuple arcs interpolate linearly between ``<0, t(0)>`` and
    ``<r_e, t(r_e)>``; other arcs are constant.
    """
    arc = relaxed.arc
    t0 = relaxed.base_time
    if not relaxed.capped or relaxed.full_resource <= 0:
        return t0
    t_full = arc.duration.tuples()[1][1]
    frac = min(max(flow / relaxed.full_resource, 0.0), 1.0)
    return t0 + (t_full - t0) * frac


@dataclass
class LPSolution:
    """Solution of the relaxed problem.

    Attributes
    ----------
    status:
        ``"optimal"`` or ``"infeasible"`` (other scipy statuses raise).
    objective:
        Objective value (makespan for min-makespan, budget for min-resource).
    flows:
        ``arc id -> fractional flow``.
    times:
        ``vertex -> event time`` in the relaxed schedule.
    makespan:
        Event time of the sink vertex.
    budget_used:
        Source outflow in the relaxed solution.
    relaxed_arcs:
        The per-arc relaxation data (handy for rounding).
    """

    status: str
    objective: float
    flows: Dict[str, float] = field(default_factory=dict)
    times: Dict[Hashable, float] = field(default_factory=dict)
    makespan: float = 0.0
    budget_used: float = 0.0
    relaxed_arcs: Dict[str, RelaxedArc] = field(default_factory=dict)

    def relaxed_duration(self, arc_id: str) -> float:
        """Linearised duration of ``arc_id`` under this solution's flow."""
        return linear_relaxed_duration(self.relaxed_arcs[arc_id], self.flows.get(arc_id, 0.0))


def _solve(arc_dag: ArcDAG, budget: Optional[float], makespan_cap: Optional[float],
           objective: str, big_m: Optional[float]) -> LPSolution:
    arc_dag.validate()
    relaxed = build_relaxed_arcs(arc_dag, big_m)
    arcs = arc_dag.arcs
    vertices = arc_dag.vertices
    arc_index = {a.arc_id: i for i, a in enumerate(arcs)}
    vertex_index = {v: len(arcs) + j for j, v in enumerate(vertices)}
    n_vars = len(arcs) + len(vertices)

    rows_ub: List[Tuple[Dict[int, float], float]] = []
    rows_eq: List[Tuple[Dict[int, float], float]] = []

    # Precedence constraints (constraint 7): the relaxed duration of arc e is
    # t0 - slope * f_e, so  T_tail + t0 - slope * f_e <= T_head, i.e.
    #   T_tail - T_head - slope * f_e <= -t0 .
    for arc in arcs:
        rel = relaxed[arc.arc_id]
        row: Dict[int, float] = {
            vertex_index[arc.tail]: 1.0,
            vertex_index[arc.head]: -1.0,
        }
        t0 = rel.base_time
        if rel.capped and rel.full_resource > 0:
            t_full = arc.duration.tuples()[1][1]
            slope = (t0 - t_full) / rel.full_resource
            row[arc_index[arc.arc_id]] = -slope
            rows_ub.append((row, -t0))
        else:
            rows_ub.append((row, -t0))

    # Flow conservation at internal vertices.
    for v in vertices:
        if v in (arc_dag.source, arc_dag.sink):
            continue
        row = {}
        for a in arc_dag.out_arcs(v):
            row[arc_index[a.arc_id]] = row.get(arc_index[a.arc_id], 0.0) + 1.0
        for a in arc_dag.in_arcs(v):
            row[arc_index[a.arc_id]] = row.get(arc_index[a.arc_id], 0.0) - 1.0
        rows_eq.append((row, 0.0))

    # Budget constraint on source outflow.
    source_arcs = [arc_index[a.arc_id] for a in arc_dag.out_arcs(arc_dag.source)]
    if budget is not None:
        row = {i: 1.0 for i in source_arcs}
        rows_ub.append((row, float(budget)))

    # Bounds.
    bounds: List[Tuple[float, Optional[float]]] = []
    for arc in arcs:
        rel = relaxed[arc.arc_id]
        if rel.capped:
            bounds.append((0.0, rel.full_resource))
        else:
            bounds.append((0.0, None))
    for v in vertices:
        if v == arc_dag.source:
            bounds.append((0.0, 0.0))
        elif v == arc_dag.sink and makespan_cap is not None:
            bounds.append((0.0, float(makespan_cap)))
        else:
            bounds.append((0.0, None))

    c = np.zeros(n_vars)
    if objective == "makespan":
        c[vertex_index[arc_dag.sink]] = 1.0
    elif objective == "resource":
        for i in source_arcs:
            c[i] = 1.0
    else:  # pragma: no cover - defensive
        raise ValueError(f"unknown objective {objective!r}")

    def to_sparse(rows):
        if not rows:
            return None, None
        data, indices, indptr, rhs = [], [], [0], []
        for row, b in rows:
            for idx, coeff in row.items():
                data.append(coeff)
                indices.append(idx)
            indptr.append(len(data))
            rhs.append(b)
        mat = csr_matrix((data, indices, indptr), shape=(len(rows), n_vars))
        return mat, np.array(rhs)

    A_ub, b_ub = to_sparse(rows_ub)
    A_eq, b_eq = to_sparse(rows_eq)

    res = linprog(c, A_ub=A_ub, b_ub=b_ub, A_eq=A_eq, b_eq=b_eq, bounds=bounds,
                  method="highs")
    if res.status == 2:
        return LPSolution(status="infeasible", objective=math.inf, relaxed_arcs=relaxed)
    if not res.success:  # pragma: no cover - defensive
        raise RuntimeError(f"LP solver failed: {res.message}")

    x = res.x
    flows = {a.arc_id: float(max(x[arc_index[a.arc_id]], 0.0)) for a in arcs}
    times = {v: float(x[vertex_index[v]]) for v in vertices}
    budget_used = float(sum(flows[a.arc_id] for a in arc_dag.out_arcs(arc_dag.source)))
    return LPSolution(
        status="optimal",
        objective=float(res.fun),
        flows=flows,
        times=times,
        makespan=times[arc_dag.sink],
        budget_used=budget_used,
        relaxed_arcs=relaxed,
    )


def solve_min_makespan_lp(arc_dag: ArcDAG, budget: float, big_m: Optional[float] = None) -> LPSolution:
    """Solve LP (6)-(10): minimise the sink event time under a resource budget."""
    check_non_negative(budget, "budget")
    return _solve(arc_dag, budget=budget, makespan_cap=None, objective="makespan", big_m=big_m)


def solve_min_resource_lp(arc_dag: ArcDAG, target_makespan: float,
                          big_m: Optional[float] = None) -> LPSolution:
    """Solve the min-resource variant: minimise source outflow with ``T_t <= target``."""
    check_non_negative(target_makespan, "target_makespan")
    return _solve(arc_dag, budget=None, makespan_cap=target_makespan,
                  objective="resource", big_m=big_m)
