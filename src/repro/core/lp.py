"""Linear-programming relaxation of the resource-time tradeoff problem.

This module implements LP (6)-(10) of Section 3.1: after the activity-on-arc
and two-tuple transformations, every job arc either has two resource-time
tuples ``{<0, t(0)>, <r_e, 0>}`` or a single tuple ``{<0, t(0)>}``.  The LP
relaxes the two-tuple arcs to the linear duration

    ``t_e(f) = t_e(0) * (1 - f / r_e)``   for ``f in [0, r_e]``

(the straight line through the two tuples), keeps single-tuple arcs at their
constant duration, models resource reuse over paths as a source-to-sink flow
with conservation at every internal vertex, and bounds the source outflow by
the budget ``B``.

Two objectives are supported, matching the two problems of Section 2:

* **min-makespan** -- minimise ``T_t`` subject to the budget (LP 6-10);
* **min-resource** -- minimise the source outflow subject to ``T_t <= T``.

The solver is ``scipy.optimize.linprog`` (HiGHS).  Infinite base durations
(used by the hardness gadgets) are replaced by a "big M" exceeding the sum
of all finite durations, which preserves optima for every instance in which
a finite-makespan solution exists.

**Batched solves.**  Everything about the LP except the budget / makespan
target is a function of the arc DAG alone: the relaxed arcs, the
variable-index maps, the sparse constraint matrices, the bounds and both
cost vectors.  :class:`LPModelSkeleton` precomputes all of it once; each
:meth:`~LPModelSkeleton.solve_min_makespan` /
:meth:`~LPModelSkeleton.solve_min_resource` call then only swaps the RHS of
the budget row (or the sink's upper bound) before handing the model to
HiGHS.  The one-shot :func:`solve_min_makespan_lp` /
:func:`solve_min_resource_lp` entry points build a fresh skeleton per call
(identical behaviour to the historical scalar path); sweeps over the same
DAG should reuse one skeleton -- the engine's batching layer
(:mod:`repro.engine.batch`) caches skeletons per arc-DAG fingerprint.
:func:`lp_kernel_counters` exposes machine-independent work counters
(skeleton builds vs. solves) so benchmarks can assert the elimination.

**Warm-started sweeps.**  Beyond skipping the model construction, an ordered
parameter sweep over one skeleton can reuse *solver* state between solves:
:meth:`LPModelSkeleton.solve_min_makespan_sweep` /
:meth:`~LPModelSkeleton.solve_min_resource_sweep` (and their per-call form,
:meth:`~LPModelSkeleton.warm_solve_min_makespan` /
:meth:`~LPModelSkeleton.warm_solve_min_resource`, which the engine's cached
LP backend routes every solve through) thread a per-skeleton *warm state*
across solves.  Two backends implement it:

* ``highspy`` (optional) -- the model is loaded into one persistent
  ``Highs`` instance per skeleton; each sweep step changes only the budget
  row's RHS (or the sink bound) and re-runs, so HiGHS warm-starts from the
  previous optimal basis.  Results are validated by the engine's
  certificate checks, not pinned bit-for-bit against scipy.
* ``scipy`` (always available, the default fallback) -- each distinct RHS
  is handed to ``scipy.optimize.linprog`` exactly as the scalar path would
  (results stay bit-for-bit identical to
  :meth:`~LPModelSkeleton.solve_min_makespan` /
  :meth:`~LPModelSkeleton.solve_min_resource`); the warm state still
  answers *repeated* RHS values from its memo without a solver call.

The warm-state counters (see :func:`lp_kernel_counters`):
``warm_start_hits`` counts solves that consumed warm context from a
previous solve on the same skeleton (every sweep solve after the first),
``warm_reuse_hits`` the subset answered from the memo with no solver call,
``sweep_solves`` the parameters routed through the warm kernel, and
``simplex_iterations`` the total simplex iteration count reported by the
backend -- the machine-independent "how much pivoting actually happened"
metric ``benchmarks/bench_warm_lp.py`` gates on.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import csr_matrix

from repro.core.arcdag import Arc, ArcDAG
from repro.utils.validation import check_non_negative, require

__all__ = ["LPSolution", "RelaxedArc", "LPModelSkeleton", "build_relaxed_arcs",
           "solve_min_makespan_lp", "solve_min_resource_lp", "linear_relaxed_duration",
           "solve_min_makespan_sweep", "solve_min_resource_sweep",
           "available_lp_backends", "lp_kernel_counters", "reset_lp_kernel_counters"]


#: Machine-independent work counters for the LP kernel: ``skeleton_builds``
#: counts full model constructions (relaxed arcs + index maps + CSR matrices
#: + bounds + cost vectors), ``skeleton_solves`` counts scipy/HiGHS
#: invocations.  A budget sweep that reuses one skeleton performs 1 build
#: and N solves; the per-scenario rebuild path performs N of each.  The
#: warm-state counters are documented in the module docstring.
_KERNEL_COUNTERS: Dict[str, int] = {
    "skeleton_builds": 0,
    "skeleton_solves": 0,
    "simplex_iterations": 0,
    "sweep_solves": 0,
    "warm_start_hits": 0,
    "warm_reuse_hits": 0,
    "highs_model_builds": 0,
    "highs_rhs_resolves": 0,
    "highs_fallbacks": 0,
}

#: Lazily-resolved optional highspy module (``False`` = probed and absent).
_HIGHSPY: Any = None


def _load_highspy() -> Any:
    """The ``highspy`` module, or ``None`` when it is not installed.

    The import is probed once per process; the container/CI images do not
    ship highspy by default, so every warm-sweep path must (and does) work
    on the scipy fallback alone.
    """
    global _HIGHSPY
    if _HIGHSPY is None:
        try:
            import highspy  # type: ignore[import-not-found]
            _HIGHSPY = highspy
        except ImportError:
            _HIGHSPY = False
    return _HIGHSPY or None


def available_lp_backends() -> Tuple[str, ...]:
    """The usable sweep backends, best first (``"highspy"`` only if installed)."""
    return ("highspy", "scipy") if _load_highspy() is not None else ("scipy",)


def lp_kernel_counters() -> Dict[str, int]:
    """A snapshot of the LP kernel's work counters (see module docstring)."""
    return dict(_KERNEL_COUNTERS)


def reset_lp_kernel_counters() -> None:
    """Zero the LP kernel work counters (used by benchmarks and tests)."""
    for key in _KERNEL_COUNTERS:
        _KERNEL_COUNTERS[key] = 0


@dataclass(frozen=True)
class RelaxedArc:
    """Per-arc data used by the LP: base time, full resource and big-M substitution."""

    arc: Arc
    base_time: float
    full_resource: float
    capped: bool  # True when f_e is bounded above by full_resource (two-tuple arcs)


def _big_m(arc_dag: ArcDAG) -> float:
    finite = arc_dag.total_finite_base_time()
    return max(finite * 4.0 + 16.0, 1024.0)


def build_relaxed_arcs(arc_dag: ArcDAG, big_m: Optional[float] = None) -> Dict[str, RelaxedArc]:
    """Compute the relaxed (linearised) view of every arc.

    Arcs must carry at most two resource-time tuples (run
    :func:`repro.core.arcdag.expand_to_two_tuples` first); a ``ValueError``
    is raised otherwise.
    """
    if big_m is None:
        big_m = _big_m(arc_dag)
    relaxed: Dict[str, RelaxedArc] = {}
    for arc in arc_dag.arcs:
        tuples = arc.duration.tuples()
        require(len(tuples) <= 2,
                f"arc {arc.arc_id} has {len(tuples)} tuples; expand_to_two_tuples first")
        t0 = tuples[0][1]
        if math.isinf(t0):
            t0 = big_m
        if len(tuples) == 2:
            # Relaxation interpolates linearly between <0, t(0)> and
            # <r_full, t(r_full)>; the canonical two-tuple form has
            # t(r_full) == 0 but a non-zero improved duration is supported.
            r_full = tuples[1][0]
            relaxed[arc.arc_id] = RelaxedArc(arc, t0, r_full, True)
        else:
            relaxed[arc.arc_id] = RelaxedArc(arc, t0, 0.0, False)
    return relaxed


def linear_relaxed_duration(relaxed: RelaxedArc, flow: float) -> float:
    """The LP's linearised duration of an arc carrying ``flow`` resource.

    Two-tuple arcs interpolate linearly between ``<0, t(0)>`` and
    ``<r_e, t(r_e)>``; other arcs are constant.
    """
    arc = relaxed.arc
    t0 = relaxed.base_time
    if not relaxed.capped or relaxed.full_resource <= 0:
        return t0
    t_full = arc.duration.tuples()[1][1]
    frac = min(max(flow / relaxed.full_resource, 0.0), 1.0)
    return t0 + (t_full - t0) * frac


@dataclass
class LPSolution:
    """Solution of the relaxed problem.

    Attributes
    ----------
    status:
        ``"optimal"`` or ``"infeasible"`` (other scipy statuses raise).
    objective:
        Objective value (makespan for min-makespan, budget for min-resource).
    flows:
        ``arc id -> fractional flow``.
    times:
        ``vertex -> event time`` in the relaxed schedule.
    makespan:
        Event time of the sink vertex.
    budget_used:
        Source outflow in the relaxed solution.
    relaxed_arcs:
        The per-arc relaxation data (handy for rounding).
    """

    status: str
    objective: float
    flows: Dict[str, float] = field(default_factory=dict)
    times: Dict[Hashable, float] = field(default_factory=dict)
    makespan: float = 0.0
    budget_used: float = 0.0
    relaxed_arcs: Dict[str, RelaxedArc] = field(default_factory=dict)

    def relaxed_duration(self, arc_id: str) -> float:
        """Linearised duration of ``arc_id`` under this solution's flow."""
        return linear_relaxed_duration(self.relaxed_arcs[arc_id], self.flows.get(arc_id, 0.0))


def _copy_solution(solution: LPSolution) -> LPSolution:
    """A defensive copy of ``solution`` (memo entries must never alias)."""
    return LPSolution(
        status=solution.status,
        objective=solution.objective,
        flows=dict(solution.flows),
        times=dict(solution.times),
        makespan=solution.makespan,
        budget_used=solution.budget_used,
        relaxed_arcs=solution.relaxed_arcs,
    )


class _WarmState:
    """Per-skeleton sweep state threaded across warm solves.

    Holds the RHS memo (``(objective, value) -> LPSolution``, bounded,
    insertion-evicted), the number of solves performed so far (a solve with
    ``solves > 0`` has warm context and counts as a warm-start hit), and --
    under the highspy backend -- the loaded ``Highs`` models whose basis
    carries over between RHS-only re-solves.
    """

    __slots__ = ("memo", "order", "solves", "highs_models")
    MEMO_CAP = 32

    def __init__(self) -> None:
        self.memo: Dict[Tuple[str, float], LPSolution] = {}
        self.order: List[Tuple[str, float]] = []
        self.solves = 0
        self.highs_models: Dict[str, Any] = {}

    def remember(self, key: Tuple[str, float], solution: LPSolution) -> None:
        if key not in self.memo:
            self.order.append(key)
            while len(self.order) > self.MEMO_CAP:
                self.memo.pop(self.order.pop(0), None)
        self.memo[key] = _copy_solution(solution)


RowSpec = Tuple[Dict[int, float], float]


def _to_sparse(rows: List[RowSpec], n_vars: int) -> Tuple[Optional[csr_matrix],
                                                          Optional[np.ndarray]]:
    """CSR matrix + RHS vector from ``(coefficient dict, rhs)`` rows."""
    if not rows:
        return None, None
    data: List[float] = []
    indices: List[int] = []
    indptr: List[int] = [0]
    rhs: List[float] = []
    for row, b in rows:
        for idx, coeff in row.items():
            data.append(coeff)
            indices.append(idx)
        indptr.append(len(data))
        rhs.append(b)
    mat = csr_matrix((data, indices, indptr), shape=(len(rows), n_vars))
    return mat, np.array(rhs)


class LPModelSkeleton:
    """The scenario-independent half of LP (6)-(10), built once per arc DAG.

    The skeleton validates the DAG and precomputes:

    * the relaxed arcs (:func:`build_relaxed_arcs`),
    * the variable-index maps (one flow variable per arc, one event-time
      variable per vertex),
    * the precedence-constraint CSR block and its RHS (constraint 7),
    * the flow-conservation CSR block (constraint 8),
    * the variable bounds template and both objective cost vectors.

    Per-scenario work is then limited to swapping the budget row's RHS
    (min-makespan) or the sink's upper bound (min-resource) and calling
    HiGHS -- the matrices handed to scipy are identical, entry for entry,
    to what the historical per-call construction produced, so a skeleton
    solve is bit-for-bit equivalent to :func:`solve_min_makespan_lp` /
    :func:`solve_min_resource_lp` on a fresh model.

    Skeletons assume the arc DAG is not mutated afterwards (arc DAGs
    produced by the Section 2 / 3.1 transformations never are); the
    engine's batching layer caches them per content fingerprint.
    """

    def __init__(self, arc_dag: ArcDAG, big_m: Optional[float] = None):
        arc_dag.validate()
        self.arc_dag = arc_dag
        self.relaxed: Dict[str, RelaxedArc] = build_relaxed_arcs(arc_dag, big_m)
        arcs = arc_dag.arcs
        vertices = arc_dag.vertices
        self.arc_index: Dict[str, int] = {a.arc_id: i for i, a in enumerate(arcs)}
        self.vertex_index: Dict[Hashable, int] = {v: len(arcs) + j
                                                  for j, v in enumerate(vertices)}
        self.n_vars: int = len(arcs) + len(vertices)
        self._arcs = arcs
        self._vertices = vertices

        # Precedence constraints (constraint 7): the relaxed duration of arc
        # e is t0 - slope * f_e, so  T_tail + t0 - slope * f_e <= T_head, i.e.
        #   T_tail - T_head - slope * f_e <= -t0 .
        rows_ub: List[RowSpec] = []
        for arc in arcs:
            rel = self.relaxed[arc.arc_id]
            row: Dict[int, float] = {
                self.vertex_index[arc.tail]: 1.0,
                self.vertex_index[arc.head]: -1.0,
            }
            t0 = rel.base_time
            if rel.capped and rel.full_resource > 0:
                t_full = arc.duration.tuples()[1][1]
                slope = (t0 - t_full) / rel.full_resource
                row[self.arc_index[arc.arc_id]] = -slope
            rows_ub.append((row, -t0))

        # Flow conservation at internal vertices (constraint 8).
        rows_eq: List[RowSpec] = []
        for v in vertices:
            if v in (arc_dag.source, arc_dag.sink):
                continue
            crow: Dict[int, float] = {}
            for a in arc_dag.out_arcs(v):
                crow[self.arc_index[a.arc_id]] = crow.get(self.arc_index[a.arc_id], 0.0) + 1.0
            for a in arc_dag.in_arcs(v):
                crow[self.arc_index[a.arc_id]] = crow.get(self.arc_index[a.arc_id], 0.0) - 1.0
            rows_eq.append((crow, 0.0))

        self.source_arc_indices: List[int] = [
            self.arc_index[a.arc_id] for a in arc_dag.out_arcs(arc_dag.source)]
        self._sink_var: int = self.vertex_index[arc_dag.sink]

        # min-makespan appends the budget row (constraint 9) last, so only
        # its RHS entry changes between scenarios.
        budget_row: Dict[int, float] = {i: 1.0 for i in self.source_arc_indices}
        self._A_ub_prec, self._b_ub_prec = _to_sparse(rows_ub, self.n_vars)
        self._A_ub_budget, b_with_budget = _to_sparse(rows_ub + [(budget_row, 0.0)],
                                                      self.n_vars)
        assert b_with_budget is not None
        self._b_ub_budget_template: np.ndarray = b_with_budget
        self._A_eq, self._b_eq = _to_sparse(rows_eq, self.n_vars)

        # Bounds template: per-arc flow caps, source pinned at time 0; the
        # sink's upper bound is patched per scenario for min-resource.
        bounds: List[Tuple[float, Optional[float]]] = []
        for arc in arcs:
            rel = self.relaxed[arc.arc_id]
            if rel.capped:
                bounds.append((0.0, rel.full_resource))
            else:
                bounds.append((0.0, None))
        for v in vertices:
            if v == arc_dag.source:
                bounds.append((0.0, 0.0))
            else:
                bounds.append((0.0, None))
        self._bounds_template: List[Tuple[float, Optional[float]]] = bounds

        self._c_makespan: np.ndarray = np.zeros(self.n_vars)
        self._c_makespan[self._sink_var] = 1.0
        self._c_resource: np.ndarray = np.zeros(self.n_vars)
        for i in self.source_arc_indices:
            self._c_resource[i] = 1.0

        #: Warm sweep state (memo + loaded highspy models), created lazily
        #: by the first warm solve; guarded by a lock because the engine's
        #: process-wide skeleton cache can hand one skeleton to several
        #: portfolio threads.
        self._warm: Optional[_WarmState] = None
        self._warm_lock = threading.Lock()

        _KERNEL_COUNTERS["skeleton_builds"] += 1

    # ------------------------------------------------------------------
    # per-scenario solves (RHS swap + HiGHS call only)
    # ------------------------------------------------------------------
    def solve_min_makespan(self, budget: float) -> LPSolution:
        """Solve LP (6)-(10) for one budget, reusing the prebuilt model."""
        check_non_negative(budget, "budget")
        b_ub = self._b_ub_budget_template.copy()
        b_ub[-1] = float(budget)
        return self._solve_highs(self._c_makespan, self._A_ub_budget, b_ub,
                                 self._bounds_template)

    def solve_min_resource(self, target_makespan: float) -> LPSolution:
        """Solve the min-resource variant for one target, reusing the model."""
        check_non_negative(target_makespan, "target_makespan")
        bounds = list(self._bounds_template)
        bounds[self._sink_var] = (0.0, float(target_makespan))
        return self._solve_highs(self._c_resource, self._A_ub_prec,
                                 self._b_ub_prec, bounds)

    # ------------------------------------------------------------------
    # warm-started sweeps (per-skeleton warm state threaded across solves)
    # ------------------------------------------------------------------
    def warm_solve_min_makespan(self, budget: float,
                                backend: str = "auto") -> LPSolution:
        """:meth:`solve_min_makespan` through the warm sweep kernel.

        The engine's cached LP backend routes every min-makespan solve
        here, so consecutive same-skeleton solves -- a sweep shard, a grid
        column -- automatically share warm state.  See the module
        docstring for the backend/bit-identity contract.
        """
        check_non_negative(budget, "budget")
        return self._warm_solve("makespan", float(budget), backend)

    def warm_solve_min_resource(self, target_makespan: float,
                                backend: str = "auto") -> LPSolution:
        """:meth:`solve_min_resource` through the warm sweep kernel."""
        check_non_negative(target_makespan, "target_makespan")
        return self._warm_solve("resource", float(target_makespan), backend)

    def solve_min_makespan_sweep(self, budgets: Sequence[float],
                                 backend: str = "auto") -> List[LPSolution]:
        """Solve an ordered budget sweep on this one skeleton, warm-started.

        Returns one :class:`LPSolution` per budget, in input order.  The
        first solve is cold; every later solve consumes the warm state
        (``warm_start_hits``), repeated budgets are answered from the memo
        without a solver call (``warm_reuse_hits``), and under the
        ``highspy`` backend the loaded model re-solves RHS-only from the
        previous optimal basis.  Under the default scipy backend every
        distinct budget produces exactly the scalar
        :meth:`solve_min_makespan` call, so results are bit-for-bit
        identical to solving each budget cold.
        """
        return [self.warm_solve_min_makespan(budget, backend=backend)
                for budget in budgets]

    def solve_min_resource_sweep(self, targets: Sequence[float],
                                 backend: str = "auto") -> List[LPSolution]:
        """Solve an ordered makespan-target sweep, warm-started (see
        :meth:`solve_min_makespan_sweep`)."""
        return [self.warm_solve_min_resource(target, backend=backend)
                for target in targets]

    def _warm_solve(self, objective: str, value: float, backend: str) -> LPSolution:
        require(backend in ("auto", "scipy", "highspy"),
                f"unknown LP sweep backend {backend!r}")
        if backend == "highspy":
            require(_load_highspy() is not None,
                    "backend='highspy' requested but highspy is not installed")
        use_highs = (backend == "highspy"
                     or (backend == "auto" and _load_highspy() is not None))
        with self._warm_lock:
            if self._warm is None:
                self._warm = _WarmState()
            state = self._warm
            _KERNEL_COUNTERS["sweep_solves"] += 1
            key = (objective, value)
            hit = state.memo.get(key)
            if hit is not None:
                _KERNEL_COUNTERS["warm_reuse_hits"] += 1
                _KERNEL_COUNTERS["warm_start_hits"] += 1
                return _copy_solution(hit)
            warm = state.solves > 0
            solution: Optional[LPSolution] = None
            if use_highs:
                try:
                    solution = self._solve_loaded_highs(state, objective, value)
                except Exception:  # noqa: BLE001 - optional backend, never fatal
                    _KERNEL_COUNTERS["highs_fallbacks"] += 1
                    state.highs_models.pop(objective, None)
                    solution = None
            if solution is None:
                if objective == "makespan":
                    solution = self.solve_min_makespan(value)
                else:
                    solution = self.solve_min_resource(value)
            if warm:
                _KERNEL_COUNTERS["warm_start_hits"] += 1
            state.solves += 1
            state.remember(key, solution)
            return solution

    def _solve_loaded_highs(self, state: _WarmState, objective: str,
                            value: float) -> LPSolution:
        """RHS-only re-solve on the persistent highspy model (basis reuse)."""
        model = state.highs_models.get(objective)
        if model is None:
            model = _LoadedHighsModel(self, objective)
            state.highs_models[objective] = model
        else:
            _KERNEL_COUNTERS["highs_rhs_resolves"] += 1
        return model.resolve(value)

    def _solve_highs(self, c: np.ndarray, A_ub: Optional[csr_matrix],
                     b_ub: Optional[np.ndarray],
                     bounds: List[Tuple[float, Optional[float]]]) -> LPSolution:
        _KERNEL_COUNTERS["skeleton_solves"] += 1
        res = linprog(c, A_ub=A_ub, b_ub=b_ub, A_eq=self._A_eq, b_eq=self._b_eq,
                      bounds=bounds, method="highs")
        _KERNEL_COUNTERS["simplex_iterations"] += max(int(getattr(res, "nit", 0)), 0)
        if res.status == 2:
            return LPSolution(status="infeasible", objective=math.inf,
                              relaxed_arcs=self.relaxed)
        if not res.success:  # pragma: no cover - defensive
            raise RuntimeError(f"LP solver failed: {res.message}")
        return self._extract_solution(float(res.fun), res.x)

    def _extract_solution(self, objective_value: float, x) -> LPSolution:
        """An :class:`LPSolution` from a raw variable vector (any backend)."""
        flows = {a.arc_id: float(max(x[self.arc_index[a.arc_id]], 0.0))
                 for a in self._arcs}
        times = {v: float(x[self.vertex_index[v]]) for v in self._vertices}
        budget_used = float(sum(flows[a.arc_id]
                                for a in self.arc_dag.out_arcs(self.arc_dag.source)))
        return LPSolution(
            status="optimal",
            objective=objective_value,
            flows=flows,
            times=times,
            makespan=times[self.arc_dag.sink],
            budget_used=budget_used,
            relaxed_arcs=self.relaxed,
        )


class _LoadedHighsModel:
    """One skeleton objective loaded into a persistent ``highspy.Highs``.

    The model is passed to HiGHS once; every :meth:`resolve` only patches
    the budget row's RHS (min-makespan) or the sink variable's upper bound
    (min-resource) and re-runs, so HiGHS keeps its factorization and
    warm-starts the dual simplex from the previous optimal basis --
    the true basis-reuse path the scipy fallback cannot offer.
    """

    def __init__(self, skeleton: "LPModelSkeleton", objective: str):
        highspy = _load_highspy()
        require(highspy is not None, "highspy is not installed")
        self.skeleton = skeleton
        self.objective = objective
        self._inf = float(highspy.kHighsInf)
        self._status_optimal = highspy.HighsModelStatus.kOptimal
        self._status_infeasible = highspy.HighsModelStatus.kInfeasible

        if objective == "makespan":
            cost = skeleton._c_makespan
            A_ub, b_ub = skeleton._A_ub_budget, skeleton._b_ub_budget_template
        else:
            cost = skeleton._c_resource
            A_ub, b_ub = skeleton._A_ub_prec, skeleton._b_ub_prec

        n_ub = 0 if A_ub is None else A_ub.shape[0]
        n_eq = 0 if skeleton._A_eq is None else skeleton._A_eq.shape[0]
        self._budget_row = n_ub - 1  # only meaningful for min-makespan

        lp = highspy.HighsLp()
        lp.num_col_ = skeleton.n_vars
        lp.num_row_ = n_ub + n_eq
        lp.col_cost_ = np.asarray(cost, dtype=float)
        lp.col_lower_ = np.array([lo for lo, _hi in skeleton._bounds_template])
        lp.col_upper_ = np.array([self._inf if hi is None else float(hi)
                                  for _lo, hi in skeleton._bounds_template])
        row_lower = np.full(n_ub + n_eq, -self._inf)
        row_upper = np.empty(n_ub + n_eq)
        row_upper[:n_ub] = b_ub if n_ub else []
        if n_eq:
            row_lower[n_ub:] = skeleton._b_eq
            row_upper[n_ub:] = skeleton._b_eq
        lp.row_lower_ = row_lower
        lp.row_upper_ = row_upper

        blocks = [m for m in (A_ub, skeleton._A_eq) if m is not None]
        if blocks:
            from scipy.sparse import vstack
            stacked = vstack(blocks, format="csr")
            lp.a_matrix_.format_ = highspy.MatrixFormat.kRowwise
            lp.a_matrix_.start_ = np.asarray(stacked.indptr, dtype=np.int32)
            lp.a_matrix_.index_ = np.asarray(stacked.indices, dtype=np.int32)
            lp.a_matrix_.value_ = np.asarray(stacked.data, dtype=float)

        h = highspy.Highs()
        h.setOptionValue("output_flag", False)
        status = h.passModel(lp)
        require(status == highspy.HighsStatus.kOk,
                f"highspy rejected the LP model: {status}")
        self.h = h
        _KERNEL_COUNTERS["highs_model_builds"] += 1

    def resolve(self, value: float) -> LPSolution:
        """Re-solve the loaded model for one new RHS value."""
        skeleton = self.skeleton
        if self.objective == "makespan":
            self.h.changeRowBounds(self._budget_row, -self._inf, float(value))
        else:
            self.h.changeColBounds(skeleton._sink_var, 0.0, float(value))
        self.h.run()
        _KERNEL_COUNTERS["skeleton_solves"] += 1
        iterations = int(getattr(self.h.getInfo(), "simplex_iteration_count", 0))
        _KERNEL_COUNTERS["simplex_iterations"] += max(iterations, 0)
        model_status = self.h.getModelStatus()
        if model_status == self._status_infeasible:
            return LPSolution(status="infeasible", objective=math.inf,
                              relaxed_arcs=skeleton.relaxed)
        require(model_status == self._status_optimal,
                f"highspy solve failed: {model_status}")
        solution = self.h.getSolution()
        x = np.asarray(solution.col_value, dtype=float)
        return skeleton._extract_solution(float(self.h.getObjectiveValue()), x)


def solve_min_makespan_sweep(arc_dag: ArcDAG, budgets: Sequence[float],
                             big_m: Optional[float] = None,
                             backend: str = "auto") -> List[LPSolution]:
    """Solve an ordered budget sweep on one shared, warm-started skeleton.

    Builds one :class:`LPModelSkeleton` and drives it across every budget
    via :meth:`LPModelSkeleton.solve_min_makespan_sweep` -- 1 model build,
    warm state threaded between solves.  See the module docstring for the
    backend contract (``highspy`` basis reuse vs. the bit-identical scipy
    fallback).
    """
    return LPModelSkeleton(arc_dag, big_m).solve_min_makespan_sweep(
        budgets, backend=backend)


def solve_min_resource_sweep(arc_dag: ArcDAG, targets: Sequence[float],
                             big_m: Optional[float] = None,
                             backend: str = "auto") -> List[LPSolution]:
    """Solve an ordered makespan-target sweep on one warm-started skeleton
    (the min-resource counterpart of :func:`solve_min_makespan_sweep`)."""
    return LPModelSkeleton(arc_dag, big_m).solve_min_resource_sweep(
        targets, backend=backend)


def solve_min_makespan_lp(arc_dag: ArcDAG, budget: float,
                          big_m: Optional[float] = None) -> LPSolution:
    """Solve LP (6)-(10): minimise the sink event time under a resource budget.

    Builds a fresh :class:`LPModelSkeleton` per call; sweeps over the same
    DAG should hold on to one skeleton (or go through
    :mod:`repro.engine.batch`, which caches them per fingerprint).
    """
    check_non_negative(budget, "budget")
    return LPModelSkeleton(arc_dag, big_m).solve_min_makespan(budget)


def solve_min_resource_lp(arc_dag: ArcDAG, target_makespan: float,
                          big_m: Optional[float] = None) -> LPSolution:
    """Solve the min-resource variant: minimise source outflow with ``T_t <= target``."""
    check_non_negative(target_makespan, "target_makespan")
    return LPModelSkeleton(arc_dag, big_m).solve_min_resource(target_makespan)
