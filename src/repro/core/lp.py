"""Linear-programming relaxation of the resource-time tradeoff problem.

This module implements LP (6)-(10) of Section 3.1: after the activity-on-arc
and two-tuple transformations, every job arc either has two resource-time
tuples ``{<0, t(0)>, <r_e, 0>}`` or a single tuple ``{<0, t(0)>}``.  The LP
relaxes the two-tuple arcs to the linear duration

    ``t_e(f) = t_e(0) * (1 - f / r_e)``   for ``f in [0, r_e]``

(the straight line through the two tuples), keeps single-tuple arcs at their
constant duration, models resource reuse over paths as a source-to-sink flow
with conservation at every internal vertex, and bounds the source outflow by
the budget ``B``.

Two objectives are supported, matching the two problems of Section 2:

* **min-makespan** -- minimise ``T_t`` subject to the budget (LP 6-10);
* **min-resource** -- minimise the source outflow subject to ``T_t <= T``.

The solver is ``scipy.optimize.linprog`` (HiGHS).  Infinite base durations
(used by the hardness gadgets) are replaced by a "big M" exceeding the sum
of all finite durations, which preserves optima for every instance in which
a finite-makespan solution exists.

**Batched solves.**  Everything about the LP except the budget / makespan
target is a function of the arc DAG alone: the relaxed arcs, the
variable-index maps, the sparse constraint matrices, the bounds and both
cost vectors.  :class:`LPModelSkeleton` precomputes all of it once; each
:meth:`~LPModelSkeleton.solve_min_makespan` /
:meth:`~LPModelSkeleton.solve_min_resource` call then only swaps the RHS of
the budget row (or the sink's upper bound) before handing the model to
HiGHS.  The one-shot :func:`solve_min_makespan_lp` /
:func:`solve_min_resource_lp` entry points build a fresh skeleton per call
(identical behaviour to the historical scalar path); sweeps over the same
DAG should reuse one skeleton -- the engine's batching layer
(:mod:`repro.engine.batch`) caches skeletons per arc-DAG fingerprint.
:func:`lp_kernel_counters` exposes machine-independent work counters
(skeleton builds vs. solves) so benchmarks can assert the elimination.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import csr_matrix

from repro.core.arcdag import Arc, ArcDAG
from repro.utils.validation import check_non_negative, require

__all__ = ["LPSolution", "RelaxedArc", "LPModelSkeleton", "build_relaxed_arcs",
           "solve_min_makespan_lp", "solve_min_resource_lp", "linear_relaxed_duration",
           "lp_kernel_counters", "reset_lp_kernel_counters"]


#: Machine-independent work counters for the LP kernel: ``skeleton_builds``
#: counts full model constructions (relaxed arcs + index maps + CSR matrices
#: + bounds + cost vectors), ``skeleton_solves`` counts HiGHS invocations.
#: A budget sweep that reuses one skeleton performs 1 build and N solves;
#: the per-scenario rebuild path performs N of each.
_KERNEL_COUNTERS: Dict[str, int] = {"skeleton_builds": 0, "skeleton_solves": 0}


def lp_kernel_counters() -> Dict[str, int]:
    """A snapshot of the LP kernel's work counters (see module docstring)."""
    return dict(_KERNEL_COUNTERS)


def reset_lp_kernel_counters() -> None:
    """Zero the LP kernel work counters (used by benchmarks and tests)."""
    for key in _KERNEL_COUNTERS:
        _KERNEL_COUNTERS[key] = 0


@dataclass(frozen=True)
class RelaxedArc:
    """Per-arc data used by the LP: base time, full resource and big-M substitution."""

    arc: Arc
    base_time: float
    full_resource: float
    capped: bool  # True when f_e is bounded above by full_resource (two-tuple arcs)


def _big_m(arc_dag: ArcDAG) -> float:
    finite = arc_dag.total_finite_base_time()
    return max(finite * 4.0 + 16.0, 1024.0)


def build_relaxed_arcs(arc_dag: ArcDAG, big_m: Optional[float] = None) -> Dict[str, RelaxedArc]:
    """Compute the relaxed (linearised) view of every arc.

    Arcs must carry at most two resource-time tuples (run
    :func:`repro.core.arcdag.expand_to_two_tuples` first); a ``ValueError``
    is raised otherwise.
    """
    if big_m is None:
        big_m = _big_m(arc_dag)
    relaxed: Dict[str, RelaxedArc] = {}
    for arc in arc_dag.arcs:
        tuples = arc.duration.tuples()
        require(len(tuples) <= 2,
                f"arc {arc.arc_id} has {len(tuples)} tuples; expand_to_two_tuples first")
        t0 = tuples[0][1]
        if math.isinf(t0):
            t0 = big_m
        if len(tuples) == 2:
            # Relaxation interpolates linearly between <0, t(0)> and
            # <r_full, t(r_full)>; the canonical two-tuple form has
            # t(r_full) == 0 but a non-zero improved duration is supported.
            r_full = tuples[1][0]
            relaxed[arc.arc_id] = RelaxedArc(arc, t0, r_full, True)
        else:
            relaxed[arc.arc_id] = RelaxedArc(arc, t0, 0.0, False)
    return relaxed


def linear_relaxed_duration(relaxed: RelaxedArc, flow: float) -> float:
    """The LP's linearised duration of an arc carrying ``flow`` resource.

    Two-tuple arcs interpolate linearly between ``<0, t(0)>`` and
    ``<r_e, t(r_e)>``; other arcs are constant.
    """
    arc = relaxed.arc
    t0 = relaxed.base_time
    if not relaxed.capped or relaxed.full_resource <= 0:
        return t0
    t_full = arc.duration.tuples()[1][1]
    frac = min(max(flow / relaxed.full_resource, 0.0), 1.0)
    return t0 + (t_full - t0) * frac


@dataclass
class LPSolution:
    """Solution of the relaxed problem.

    Attributes
    ----------
    status:
        ``"optimal"`` or ``"infeasible"`` (other scipy statuses raise).
    objective:
        Objective value (makespan for min-makespan, budget for min-resource).
    flows:
        ``arc id -> fractional flow``.
    times:
        ``vertex -> event time`` in the relaxed schedule.
    makespan:
        Event time of the sink vertex.
    budget_used:
        Source outflow in the relaxed solution.
    relaxed_arcs:
        The per-arc relaxation data (handy for rounding).
    """

    status: str
    objective: float
    flows: Dict[str, float] = field(default_factory=dict)
    times: Dict[Hashable, float] = field(default_factory=dict)
    makespan: float = 0.0
    budget_used: float = 0.0
    relaxed_arcs: Dict[str, RelaxedArc] = field(default_factory=dict)

    def relaxed_duration(self, arc_id: str) -> float:
        """Linearised duration of ``arc_id`` under this solution's flow."""
        return linear_relaxed_duration(self.relaxed_arcs[arc_id], self.flows.get(arc_id, 0.0))


RowSpec = Tuple[Dict[int, float], float]


def _to_sparse(rows: List[RowSpec], n_vars: int) -> Tuple[Optional[csr_matrix],
                                                          Optional[np.ndarray]]:
    """CSR matrix + RHS vector from ``(coefficient dict, rhs)`` rows."""
    if not rows:
        return None, None
    data: List[float] = []
    indices: List[int] = []
    indptr: List[int] = [0]
    rhs: List[float] = []
    for row, b in rows:
        for idx, coeff in row.items():
            data.append(coeff)
            indices.append(idx)
        indptr.append(len(data))
        rhs.append(b)
    mat = csr_matrix((data, indices, indptr), shape=(len(rows), n_vars))
    return mat, np.array(rhs)


class LPModelSkeleton:
    """The scenario-independent half of LP (6)-(10), built once per arc DAG.

    The skeleton validates the DAG and precomputes:

    * the relaxed arcs (:func:`build_relaxed_arcs`),
    * the variable-index maps (one flow variable per arc, one event-time
      variable per vertex),
    * the precedence-constraint CSR block and its RHS (constraint 7),
    * the flow-conservation CSR block (constraint 8),
    * the variable bounds template and both objective cost vectors.

    Per-scenario work is then limited to swapping the budget row's RHS
    (min-makespan) or the sink's upper bound (min-resource) and calling
    HiGHS -- the matrices handed to scipy are identical, entry for entry,
    to what the historical per-call construction produced, so a skeleton
    solve is bit-for-bit equivalent to :func:`solve_min_makespan_lp` /
    :func:`solve_min_resource_lp` on a fresh model.

    Skeletons assume the arc DAG is not mutated afterwards (arc DAGs
    produced by the Section 2 / 3.1 transformations never are); the
    engine's batching layer caches them per content fingerprint.
    """

    def __init__(self, arc_dag: ArcDAG, big_m: Optional[float] = None):
        arc_dag.validate()
        self.arc_dag = arc_dag
        self.relaxed: Dict[str, RelaxedArc] = build_relaxed_arcs(arc_dag, big_m)
        arcs = arc_dag.arcs
        vertices = arc_dag.vertices
        self.arc_index: Dict[str, int] = {a.arc_id: i for i, a in enumerate(arcs)}
        self.vertex_index: Dict[Hashable, int] = {v: len(arcs) + j
                                                  for j, v in enumerate(vertices)}
        self.n_vars: int = len(arcs) + len(vertices)
        self._arcs = arcs
        self._vertices = vertices

        # Precedence constraints (constraint 7): the relaxed duration of arc
        # e is t0 - slope * f_e, so  T_tail + t0 - slope * f_e <= T_head, i.e.
        #   T_tail - T_head - slope * f_e <= -t0 .
        rows_ub: List[RowSpec] = []
        for arc in arcs:
            rel = self.relaxed[arc.arc_id]
            row: Dict[int, float] = {
                self.vertex_index[arc.tail]: 1.0,
                self.vertex_index[arc.head]: -1.0,
            }
            t0 = rel.base_time
            if rel.capped and rel.full_resource > 0:
                t_full = arc.duration.tuples()[1][1]
                slope = (t0 - t_full) / rel.full_resource
                row[self.arc_index[arc.arc_id]] = -slope
            rows_ub.append((row, -t0))

        # Flow conservation at internal vertices (constraint 8).
        rows_eq: List[RowSpec] = []
        for v in vertices:
            if v in (arc_dag.source, arc_dag.sink):
                continue
            crow: Dict[int, float] = {}
            for a in arc_dag.out_arcs(v):
                crow[self.arc_index[a.arc_id]] = crow.get(self.arc_index[a.arc_id], 0.0) + 1.0
            for a in arc_dag.in_arcs(v):
                crow[self.arc_index[a.arc_id]] = crow.get(self.arc_index[a.arc_id], 0.0) - 1.0
            rows_eq.append((crow, 0.0))

        self.source_arc_indices: List[int] = [
            self.arc_index[a.arc_id] for a in arc_dag.out_arcs(arc_dag.source)]
        self._sink_var: int = self.vertex_index[arc_dag.sink]

        # min-makespan appends the budget row (constraint 9) last, so only
        # its RHS entry changes between scenarios.
        budget_row: Dict[int, float] = {i: 1.0 for i in self.source_arc_indices}
        self._A_ub_prec, self._b_ub_prec = _to_sparse(rows_ub, self.n_vars)
        self._A_ub_budget, b_with_budget = _to_sparse(rows_ub + [(budget_row, 0.0)],
                                                      self.n_vars)
        assert b_with_budget is not None
        self._b_ub_budget_template: np.ndarray = b_with_budget
        self._A_eq, self._b_eq = _to_sparse(rows_eq, self.n_vars)

        # Bounds template: per-arc flow caps, source pinned at time 0; the
        # sink's upper bound is patched per scenario for min-resource.
        bounds: List[Tuple[float, Optional[float]]] = []
        for arc in arcs:
            rel = self.relaxed[arc.arc_id]
            if rel.capped:
                bounds.append((0.0, rel.full_resource))
            else:
                bounds.append((0.0, None))
        for v in vertices:
            if v == arc_dag.source:
                bounds.append((0.0, 0.0))
            else:
                bounds.append((0.0, None))
        self._bounds_template: List[Tuple[float, Optional[float]]] = bounds

        self._c_makespan: np.ndarray = np.zeros(self.n_vars)
        self._c_makespan[self._sink_var] = 1.0
        self._c_resource: np.ndarray = np.zeros(self.n_vars)
        for i in self.source_arc_indices:
            self._c_resource[i] = 1.0

        _KERNEL_COUNTERS["skeleton_builds"] += 1

    # ------------------------------------------------------------------
    # per-scenario solves (RHS swap + HiGHS call only)
    # ------------------------------------------------------------------
    def solve_min_makespan(self, budget: float) -> LPSolution:
        """Solve LP (6)-(10) for one budget, reusing the prebuilt model."""
        check_non_negative(budget, "budget")
        b_ub = self._b_ub_budget_template.copy()
        b_ub[-1] = float(budget)
        return self._solve_highs(self._c_makespan, self._A_ub_budget, b_ub,
                                 self._bounds_template)

    def solve_min_resource(self, target_makespan: float) -> LPSolution:
        """Solve the min-resource variant for one target, reusing the model."""
        check_non_negative(target_makespan, "target_makespan")
        bounds = list(self._bounds_template)
        bounds[self._sink_var] = (0.0, float(target_makespan))
        return self._solve_highs(self._c_resource, self._A_ub_prec,
                                 self._b_ub_prec, bounds)

    def _solve_highs(self, c: np.ndarray, A_ub: Optional[csr_matrix],
                     b_ub: Optional[np.ndarray],
                     bounds: List[Tuple[float, Optional[float]]]) -> LPSolution:
        _KERNEL_COUNTERS["skeleton_solves"] += 1
        res = linprog(c, A_ub=A_ub, b_ub=b_ub, A_eq=self._A_eq, b_eq=self._b_eq,
                      bounds=bounds, method="highs")
        if res.status == 2:
            return LPSolution(status="infeasible", objective=math.inf,
                              relaxed_arcs=self.relaxed)
        if not res.success:  # pragma: no cover - defensive
            raise RuntimeError(f"LP solver failed: {res.message}")

        x = res.x
        flows = {a.arc_id: float(max(x[self.arc_index[a.arc_id]], 0.0))
                 for a in self._arcs}
        times = {v: float(x[self.vertex_index[v]]) for v in self._vertices}
        budget_used = float(sum(flows[a.arc_id]
                                for a in self.arc_dag.out_arcs(self.arc_dag.source)))
        return LPSolution(
            status="optimal",
            objective=float(res.fun),
            flows=flows,
            times=times,
            makespan=times[self.arc_dag.sink],
            budget_used=budget_used,
            relaxed_arcs=self.relaxed,
        )


def solve_min_makespan_lp(arc_dag: ArcDAG, budget: float,
                          big_m: Optional[float] = None) -> LPSolution:
    """Solve LP (6)-(10): minimise the sink event time under a resource budget.

    Builds a fresh :class:`LPModelSkeleton` per call; sweeps over the same
    DAG should hold on to one skeleton (or go through
    :mod:`repro.engine.batch`, which caches them per fingerprint).
    """
    check_non_negative(budget, "budget")
    return LPModelSkeleton(arc_dag, big_m).solve_min_makespan(budget)


def solve_min_resource_lp(arc_dag: ArcDAG, target_makespan: float,
                          big_m: Optional[float] = None) -> LPSolution:
    """Solve the min-resource variant: minimise source outflow with ``T_t <= target``."""
    check_non_negative(target_makespan, "target_makespan")
    return LPModelSkeleton(arc_dag, big_m).solve_min_resource(target_makespan)
