"""A self-contained Dinic maximum-flow implementation.

The rounding step of the bi-criteria algorithm (Section 3.1) finishes with a
*minimum flow with lower bounds* computation, which we reduce to two maximum
flow computations (:mod:`repro.core.minflow`).  This module provides the
underlying max-flow solver: Dinic's blocking-flow algorithm on an adjacency
list with explicit reverse arcs, which is exact for integer capacities and
well-behaved for the float capacities produced by the LP pipeline.

The implementation is deliberately dependency-free (no ``networkx``) so that
it can be unit- and property-tested in isolation and reused by the hardness
verifiers.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Dict, Hashable, List, Optional, Tuple

__all__ = ["DinicMaxFlow", "INFINITY"]

#: Capacity value treated as "unbounded".
INFINITY = float("inf")


class _Edge:
    __slots__ = ("to", "cap", "rev", "is_reverse")

    def __init__(self, to: int, cap: float, rev: int, is_reverse: bool):
        self.to = to
        self.cap = cap
        self.rev = rev
        self.is_reverse = is_reverse


class DinicMaxFlow:
    """Dinic's algorithm over an explicitly-built residual network.

    Vertices may be arbitrary hashable objects; they are interned to integer
    indices on first use.  Edges are added with :meth:`add_edge`, which
    returns a handle that can later be queried for the flow pushed through
    that edge (:meth:`flow_on`) or for its remaining residual capacity
    (:meth:`residual_capacity`).

    The residual network persists across calls to :meth:`max_flow`, which is
    exactly what the min-flow-with-lower-bounds reduction requires (it runs
    a second max-flow on the residual graph left by the first).
    """

    def __init__(self) -> None:
        self._index: Dict[Hashable, int] = {}
        self._names: List[Hashable] = []
        self._graph: List[List[_Edge]] = []
        self._handles: List[Tuple[int, int, float]] = []  # (vertex, edge pos, original cap)

    # ------------------------------------------------------------------
    # graph construction
    # ------------------------------------------------------------------
    def vertex(self, name: Hashable) -> int:
        """Intern ``name`` and return its integer index."""
        if name not in self._index:
            self._index[name] = len(self._names)
            self._names.append(name)
            self._graph.append([])
        return self._index[name]

    @property
    def num_vertices(self) -> int:
        return len(self._names)

    def add_edge(self, u: Hashable, v: Hashable, capacity: float) -> int:
        """Add a directed edge ``u -> v`` with the given capacity.

        Returns a handle usable with :meth:`flow_on` / :meth:`residual_capacity`
        / :meth:`set_capacity`.
        """
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity}")
        ui, vi = self.vertex(u), self.vertex(v)
        fwd = _Edge(vi, capacity, len(self._graph[vi]), False)
        bwd = _Edge(ui, 0.0, len(self._graph[ui]), True)
        self._graph[ui].append(fwd)
        self._graph[vi].append(bwd)
        handle = len(self._handles)
        self._handles.append((ui, len(self._graph[ui]) - 1, capacity))
        return handle

    def _edge(self, handle: int) -> _Edge:
        u, pos, _cap = self._handles[handle]
        return self._graph[u][pos]

    def flow_on(self, handle: int) -> float:
        """Flow currently pushed through the edge identified by ``handle``."""
        u, pos, cap = self._handles[handle]
        edge = self._graph[u][pos]
        if math.isinf(cap):
            # flow equals the reverse edge's residual capacity
            return self._graph[edge.to][edge.rev].cap
        return cap - edge.cap

    def residual_capacity(self, handle: int) -> float:
        """Remaining forward residual capacity of the edge."""
        return self._edge(handle).cap

    def set_capacity(self, handle: int, capacity: float) -> None:
        """Reset the *residual* forward capacity of an edge (used to disable arcs)."""
        self._edge(handle).cap = capacity

    def disable_edge(self, handle: int) -> None:
        """Remove an edge from further consideration (zero both residual directions)."""
        u, pos, _cap = self._handles[handle]
        edge = self._graph[u][pos]
        edge.cap = 0.0
        self._graph[edge.to][edge.rev].cap = 0.0

    # ------------------------------------------------------------------
    # Dinic
    # ------------------------------------------------------------------
    def _bfs_levels(self, s: int, t: int) -> Optional[List[int]]:
        level = [-1] * self.num_vertices
        level[s] = 0
        queue = deque([s])
        while queue:
            u = queue.popleft()
            for edge in self._graph[u]:
                if edge.cap > 1e-12 and level[edge.to] < 0:
                    level[edge.to] = level[u] + 1
                    queue.append(edge.to)
        return level if level[t] >= 0 else None

    def _dfs_blocking(self, u: int, t: int, pushed: float, level: List[int], it: List[int]) -> float:
        if u == t:
            return pushed
        while it[u] < len(self._graph[u]):
            edge = self._graph[u][it[u]]
            if edge.cap > 1e-12 and level[edge.to] == level[u] + 1:
                flow = self._dfs_blocking(edge.to, t, min(pushed, edge.cap), level, it)
                if flow > 1e-12:
                    edge.cap -= flow
                    self._graph[edge.to][edge.rev].cap += flow
                    return flow
            it[u] += 1
        return 0.0

    def max_flow(self, source: Hashable, sink: Hashable, limit: float = INFINITY) -> float:
        """Push as much flow as possible from ``source`` to ``sink``.

        Parameters
        ----------
        source, sink:
            Vertex names (interned on demand).
        limit:
            Optional cap on the amount of flow to push.

        Returns
        -------
        float
            The amount of flow pushed by *this call* (the residual network is
            updated in place, so repeated calls return incremental amounts).
        """
        s, t = self.vertex(source), self.vertex(sink)
        if s == t:
            return 0.0
        total = 0.0
        while total < limit:
            level = self._bfs_levels(s, t)
            if level is None:
                break
            it = [0] * self.num_vertices
            while True:
                pushed = self._dfs_blocking(s, t, limit - total, level, it)
                if pushed <= 1e-12:
                    break
                total += pushed
                if total >= limit:
                    break
        return total
