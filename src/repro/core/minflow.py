"""Minimum flow with lower bounds (the integral step of Section 3.1).

After the α-threshold rounding of the LP solution, every arc ``e`` of the
expanded DAG carries an integral resource *requirement* ``f'_e`` (either 0
or ``r_e``).  The final step of the bi-criteria algorithm computes a minimum
source-to-sink flow subject to ``f_e >= f'_e`` on every arc (LP 11-13 in the
paper); because the constraint matrix is a network matrix, the optimum is
integral whenever the lower bounds are -- this is exactly the integrality
argument invoked in Lemma 3.3.

The computation uses the classical reduction to two maximum flows:

1. find *any* feasible circulation respecting the lower bounds by adding a
   super-source/super-sink and an unbounded return arc ``t -> s``;
2. minimise the flow value by pushing as much flow as possible from ``t``
   back to ``s`` in the residual network (never violating the lower bounds,
   which are excluded from the residual capacities).

Both max-flow computations use :class:`repro.core.maxflow.DinicMaxFlow`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, Mapping, Optional, Tuple

from repro.core.arcdag import ArcDAG
from repro.core.flow import ResourceFlow
from repro.core.maxflow import INFINITY, DinicMaxFlow
from repro.utils.validation import check_non_negative

__all__ = ["MinFlowResult", "min_flow_with_lower_bounds", "allocation_min_budget"]


class InfeasibleFlowError(ValueError):
    """Raised when no flow satisfies the requested lower bounds."""


@dataclass
class MinFlowResult:
    """Outcome of :func:`min_flow_with_lower_bounds`.

    Attributes
    ----------
    value:
        The minimum feasible flow value (source outflow).
    flow:
        ``arc id -> flow`` achieving that value.
    """

    value: float
    flow: Dict[str, float]

    def as_resource_flow(self, arc_dag: ArcDAG) -> ResourceFlow:
        """Wrap the flow assignment in a :class:`ResourceFlow`."""
        rf = ResourceFlow(arc_dag, dict(self.flow))
        rf.validate()
        return rf


def min_flow_with_lower_bounds(
    arc_dag: ArcDAG,
    lower_bounds: Mapping[str, float],
    upper_bounds: Optional[Mapping[str, float]] = None,
) -> MinFlowResult:
    """Compute a minimum source-to-sink flow with per-arc lower bounds.

    Parameters
    ----------
    arc_dag:
        The DAG whose arcs the flow lives on.
    lower_bounds:
        ``arc id -> required minimum flow``; arcs not listed have lower
        bound 0.
    upper_bounds:
        Optional ``arc id -> capacity``; arcs not listed are uncapacitated.

    Returns
    -------
    MinFlowResult

    Raises
    ------
    InfeasibleFlowError
        If the lower/upper bounds admit no feasible flow (e.g. a lower bound
        exceeds an upper bound, or lower-bounded arcs cannot be routed).
    """
    lower: Dict[str, float] = {}
    for arc_id, lb in lower_bounds.items():
        check_non_negative(lb, f"lower bound for arc {arc_id}")
        lower[arc_id] = lb
    upper: Dict[str, float] = dict(upper_bounds or {})

    dinic = DinicMaxFlow()
    s, t = arc_dag.source, arc_dag.sink
    super_source = ("__minflow_super_source__",)
    super_sink = ("__minflow_super_sink__",)

    excess: Dict[Hashable, float] = {v: 0.0 for v in arc_dag.vertices}
    handles: Dict[str, int] = {}
    total_lower = 0.0
    for arc in arc_dag.arcs:
        lb = lower.get(arc.arc_id, 0.0)
        ub = upper.get(arc.arc_id, INFINITY)
        if ub < lb - 1e-12:
            raise InfeasibleFlowError(
                f"arc {arc.arc_id}: upper bound {ub} below lower bound {lb}")
        cap = ub - lb if not math.isinf(ub) else INFINITY
        handles[arc.arc_id] = dinic.add_edge(arc.tail, arc.head, cap)
        excess[arc.head] = excess.get(arc.head, 0.0) + lb
        excess[arc.tail] = excess.get(arc.tail, 0.0) - lb
        total_lower += lb

    return_arc = dinic.add_edge(t, s, INFINITY)

    demand_total = 0.0
    for v, ex in excess.items():
        if ex > 1e-12:
            dinic.add_edge(super_source, v, ex)
            demand_total += ex
        elif ex < -1e-12:
            dinic.add_edge(v, super_sink, -ex)

    pushed = dinic.max_flow(super_source, super_sink)
    if pushed + 1e-6 < demand_total:
        raise InfeasibleFlowError(
            f"lower bounds are infeasible: needed {demand_total}, satisfied {pushed}")

    # Feasible flow value currently routed around the t -> s return arc.
    feasible_value = dinic.flow_on(return_arc)

    # Remove the return arc and cancel as much circulation as possible by
    # pushing flow from t back to s in the residual network.
    dinic.disable_edge(return_arc)
    cancelled = dinic.max_flow(t, s)

    value = feasible_value - cancelled
    flow: Dict[str, float] = {}
    for arc in arc_dag.arcs:
        lb = lower.get(arc.arc_id, 0.0)
        flow[arc.arc_id] = lb + dinic.flow_on(handles[arc.arc_id])
    return MinFlowResult(value=value, flow=flow)


def allocation_min_budget(dag, allocation: Mapping[Hashable, float]) -> Tuple[float, Dict[Hashable, float]]:
    """Minimum budget needed to route ``allocation`` over paths of a node DAG.

    Given a per-job resource allocation on a :class:`~repro.core.dag.TradeoffDAG`,
    the minimum total budget that can realise it (with reuse over paths,
    Question 1.3) is the minimum flow through the node-split arc DAG where
    every job arc has lower bound equal to its allocated resource.

    Returns
    -------
    (budget, job_flow):
        The minimum budget and the realised flow through each job's arc
        (always >= the requested allocation).
    """
    from repro.core.arcdag import node_to_arc_dag

    arc_dag, mapping = node_to_arc_dag(dag)
    lower = {}
    for job, amount in allocation.items():
        check_non_negative(amount, f"allocation for job {job!r}")
        if amount > 0:
            lower[mapping.job_arc[job]] = amount
    result = min_flow_with_lower_bounds(arc_dag, lower)
    job_flow = {job: result.flow.get(arc_id, 0.0) for job, arc_id in mapping.job_arc.items()}
    return result.value, job_flow
