"""Problem statements and solution records.

The paper distinguishes two optimisation problems on the same input
(Section 2):

* **Minimum-Makespan** -- given a resource budget ``B``, route resources
  along source-to-sink paths so that the makespan is minimised.
* **Minimum-Resource** -- given a target makespan ``T``, minimise the amount
  of resource flowing out of the source.

The dataclasses below are used uniformly by the exact solvers, the
approximation algorithms and the baselines, so that experiments can compare
them without caring which algorithm produced a solution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Optional

from repro.core.dag import TradeoffDAG
from repro.utils.validation import check_non_negative

__all__ = ["MinMakespanProblem", "MinResourceProblem", "TradeoffSolution"]


@dataclass(frozen=True)
class MinMakespanProblem:
    """Minimise the makespan of ``dag`` under resource budget ``budget``."""

    dag: TradeoffDAG
    budget: float

    def __post_init__(self) -> None:
        check_non_negative(self.budget, "budget")
        self.dag.validate()


@dataclass(frozen=True)
class MinResourceProblem:
    """Minimise the routed resource subject to ``makespan <= target_makespan``."""

    dag: TradeoffDAG
    target_makespan: float

    def __post_init__(self) -> None:
        check_non_negative(self.target_makespan, "target_makespan")
        self.dag.validate()


@dataclass
class TradeoffSolution:
    """A solution to either problem, in the allocation view.

    Attributes
    ----------
    makespan:
        Realised makespan of the DAG under :attr:`allocation`.
    budget_used:
        Total resource leaving the source in the realising flow.
    allocation:
        ``job -> resource units available to that job`` (the amount of flow
        routed through its vertex).
    algorithm:
        Name of the algorithm that produced the solution.
    lower_bound:
        A valid lower bound on the optimal makespan (e.g. the LP optimum)
        when the producing algorithm knows one; ``None`` otherwise.
    resource_lower_bound:
        A valid lower bound on the optimal budget for min-resource runs.
    metadata:
        Free-form extra data (LP values, rounding threshold, timings, ...).
    """

    makespan: float
    budget_used: float
    allocation: Dict[Hashable, float] = field(default_factory=dict)
    algorithm: str = ""
    lower_bound: Optional[float] = None
    resource_lower_bound: Optional[float] = None
    metadata: Dict[str, Any] = field(default_factory=dict)

    def approximation_ratio(self, optimum: float) -> float:
        """Makespan ratio against a known optimum (inf if optimum is 0 and we are not)."""
        if optimum == 0:
            return 1.0 if self.makespan == 0 else math.inf
        return self.makespan / optimum

    def budget_ratio(self, budget: float) -> float:
        """Resource blow-up relative to the stated budget (bi-criteria view)."""
        if budget == 0:
            return 1.0 if self.budget_used == 0 else math.inf
        return self.budget_used / budget

    def summary(self) -> str:
        """One-line human-readable description used by examples."""
        lb = f", lower_bound={self.lower_bound:.3f}" if self.lower_bound is not None else ""
        return (f"{self.algorithm or 'solution'}: makespan={self.makespan:.3f}, "
                f"budget_used={self.budget_used:.3f}{lb}")
