"""α-threshold rounding of the fractional LP solution (Section 3.1).

After solving LP (6)-(10), every two-tuple arc ``e`` carries a fractional
flow ``f*_e`` and hence a fractional relaxed duration ``t_e(f*_e)`` in
``[0, t_e(0)]``.  The rounding rule splits this range at ``α * t_e(0)``:

* if ``t_e(f*_e) < α * t_e(0)`` the duration is rounded **down to 0**, which
  commits the arc to receiving its full resource requirement ``r_e``
  (resource inflated by at most ``1 / (1 - α)``);
* otherwise the duration is rounded **up to** ``t_e(0)`` and the arc needs no
  resource (duration inflated by at most ``1 / α``).

The resulting integral requirements ``f'_e ∈ {0, r_e}`` become the lower
bounds of the min-flow problem (LP 11-13), whose integral optimum is the
final bi-criteria solution (Lemmas 3.2-3.3, Theorem 3.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.core.arcdag import ArcDAG
from repro.core.lp import LPSolution, linear_relaxed_duration
from repro.utils.validation import require
from repro.utils.validation import check_open_unit_interval

__all__ = ["RoundedRequirements", "round_lp_solution"]


@dataclass
class RoundedRequirements:
    """Integral per-arc resource requirements produced by the α-rounding.

    Attributes
    ----------
    alpha:
        The threshold used.
    lower_bounds:
        ``arc id -> required resource`` (0 for arcs rounded up; ``r_e`` for
        arcs rounded down to duration 0).
    rounded_durations:
        ``arc id -> duration after rounding`` (``0`` or ``t_e(0)``), for all
        non-dummy arcs.
    """

    alpha: float
    lower_bounds: Dict[str, float] = field(default_factory=dict)
    rounded_durations: Dict[str, float] = field(default_factory=dict)

    def expedited_arcs(self) -> Dict[str, float]:
        """Arcs committed to full resource (requirement > 0)."""
        return {a: r for a, r in self.lower_bounds.items() if r > 0}

    def total_requirement(self) -> float:
        """Sum of all lower bounds (an upper bound on the min-flow value is
        not implied -- reuse over paths can satisfy several requirements with
        the same units -- but this is a useful diagnostic)."""
        return sum(self.lower_bounds.values())


def round_lp_solution(arc_dag: ArcDAG, lp_solution: LPSolution, alpha: float) -> RoundedRequirements:
    """Apply the α-threshold rounding of Section 3.1 to an LP solution.

    Parameters
    ----------
    arc_dag:
        The expanded DAG the LP was solved on (every job arc has <= 2 tuples).
    lp_solution:
        Result of :func:`repro.core.lp.solve_min_makespan_lp` (or the
        min-resource variant).
    alpha:
        Rounding threshold, strictly between 0 and 1.

    Returns
    -------
    RoundedRequirements
    """
    check_open_unit_interval(alpha, "alpha")
    require(lp_solution.status == "optimal", "cannot round an infeasible LP solution")
    result = RoundedRequirements(alpha=alpha)
    for arc in arc_dag.arcs:
        if arc.is_dummy:
            continue
        rel = lp_solution.relaxed_arcs[arc.arc_id]
        t0 = rel.base_time
        if not rel.capped or rel.full_resource <= 0 or t0 <= 0:
            result.lower_bounds[arc.arc_id] = 0.0
            result.rounded_durations[arc.arc_id] = t0
            continue
        t_lp = linear_relaxed_duration(rel, lp_solution.flows.get(arc.arc_id, 0.0))
        if t_lp < alpha * t0:
            result.lower_bounds[arc.arc_id] = rel.full_resource
            result.rounded_durations[arc.arc_id] = arc.duration.tuples()[1][1]
        else:
            result.lower_bounds[arc.arc_id] = 0.0
            result.rounded_durations[arc.arc_id] = t0
    return result
