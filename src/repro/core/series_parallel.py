"""Exact pseudo-polynomial algorithm for series-parallel DAGs (Section 3.4).

A two-terminal series-parallel DAG can be represented by a rooted binary
*decomposition tree* whose leaves are the jobs and whose internal nodes are
series ("s") or parallel ("p") compositions.  With a resource budget ``B``
and reuse over paths, the optimal makespan obeys the recurrence of
Section 3.4:

* leaf ``j``:             ``T(j, λ) = t_j(λ)``
* series node:            ``T(v, λ) = T(v1, λ) + T(v2, λ)``
  (the same λ units flow through both halves -- reuse over the path),
* parallel node:          ``T(v, λ) = min_{0<=i<=λ} max(T(v1, i), T(v2, λ-i))``
  (the λ units split between the two branches).

The dynamic program runs in ``O(m B^2)`` time (``O(m B)`` with the monotone
two-pointer merge implemented here, since every table is non-increasing).

The module provides:

* :class:`SPLeaf` / :class:`SPSeries` / :class:`SPParallel` -- decomposition
  tree nodes, with :meth:`~SPNode.to_dag` building the corresponding
  :class:`~repro.core.dag.TradeoffDAG`;
* :func:`sp_min_makespan_table` -- the DP table ``λ -> optimal makespan``;
* :func:`sp_exact_min_makespan` / :func:`sp_exact_min_resource` -- solution
  objects including the per-job allocation recovered from the DP;
* :func:`decompose_series_parallel` -- recognition of two-terminal
  series-parallel structure by repeated series/parallel reductions of the
  activity-on-arc form (returns ``None`` for non-SP DAGs).
"""

from __future__ import annotations

import itertools
import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np

from repro.core.dag import TradeoffDAG
from repro.core.duration import ConstantDuration, DurationFunction
from repro.core.problem import TradeoffSolution
from repro.utils.validation import check_non_negative, require

__all__ = [
    "SPNode",
    "SPLeaf",
    "SPSeries",
    "SPParallel",
    "series",
    "parallel",
    "sp_min_makespan_table",
    "sp_exact_min_makespan",
    "sp_exact_min_resource",
    "decompose_series_parallel",
]


# ----------------------------------------------------------------------
# decomposition trees
# ----------------------------------------------------------------------
class SPNode(ABC):
    """A node of a series-parallel decomposition tree."""

    @abstractmethod
    def leaves(self) -> List["SPLeaf"]:
        """All leaves (jobs) below this node, left to right."""

    @abstractmethod
    def size(self) -> int:
        """Number of tree nodes below (and including) this node."""

    def job_names(self) -> List[Hashable]:
        return [leaf.name for leaf in self.leaves()]

    def to_dag(self) -> TradeoffDAG:
        """Build the :class:`TradeoffDAG` realised by this decomposition.

        Series composition concatenates the two sub-DAGs (the sink of the
        first feeds the source of the second); parallel composition runs the
        two sub-DAGs between a shared zero-duration fork and join vertex.
        """
        dag = TradeoffDAG()
        counter = itertools.count()

        def build(node: "SPNode") -> Tuple[Hashable, Hashable]:
            if isinstance(node, SPLeaf):
                dag.add_job(node.name, node.duration)
                return node.name, node.name
            assert isinstance(node, (SPSeries, SPParallel))
            lo1, hi1 = build(node.left)
            lo2, hi2 = build(node.right)
            if isinstance(node, SPSeries):
                dag.add_edge(hi1, lo2)
                return lo1, hi2
            fork = f"__fork_{next(counter)}"
            join = f"__join_{next(counter)}"
            dag.add_job(fork, ConstantDuration(0.0))
            dag.add_job(join, ConstantDuration(0.0))
            dag.add_edge(fork, lo1)
            dag.add_edge(fork, lo2)
            dag.add_edge(hi1, join)
            dag.add_edge(hi2, join)
            return fork, join

        build(self)
        return dag.ensure_single_source_sink()


@dataclass(frozen=True)
class SPLeaf(SPNode):
    """A single job with a duration function."""

    name: Hashable
    duration: DurationFunction

    def leaves(self) -> List["SPLeaf"]:
        return [self]

    def size(self) -> int:
        return 1


@dataclass(frozen=True)
class SPSeries(SPNode):
    """Series composition: ``left`` entirely precedes ``right``."""

    left: SPNode
    right: SPNode

    def leaves(self) -> List[SPLeaf]:
        return self.left.leaves() + self.right.leaves()

    def size(self) -> int:
        return 1 + self.left.size() + self.right.size()


@dataclass(frozen=True)
class SPParallel(SPNode):
    """Parallel composition: ``left`` and ``right`` are independent."""

    left: SPNode
    right: SPNode

    def leaves(self) -> List[SPLeaf]:
        return self.left.leaves() + self.right.leaves()

    def size(self) -> int:
        return 1 + self.left.size() + self.right.size()


def series(*nodes: SPNode) -> SPNode:
    """Left-deep series composition of several nodes."""
    require(len(nodes) >= 1, "series() needs at least one node")
    result = nodes[0]
    for node in nodes[1:]:
        result = SPSeries(result, node)
    return result


def parallel(*nodes: SPNode) -> SPNode:
    """Left-deep parallel composition of several nodes."""
    require(len(nodes) >= 1, "parallel() needs at least one node")
    result = nodes[0]
    for node in nodes[1:]:
        result = SPParallel(result, node)
    return result


# ----------------------------------------------------------------------
# the dynamic program
# ----------------------------------------------------------------------
def _leaf_table_scalar(leaf: SPLeaf, budget: int) -> np.ndarray:
    """Reference scalar kernel: one ``duration()`` call per resource level."""
    return np.array([leaf.duration.duration(r) for r in range(budget + 1)], dtype=float)


def _leaf_table(leaf: SPLeaf, budget: int) -> np.ndarray:
    """``T(leaf, λ)`` for ``λ = 0 .. budget`` in one vectorized evaluation.

    Every duration family exposes its canonical breakpoint list (a
    non-increasing step function), so evaluating the whole λ-range is a
    single ``searchsorted`` of ``0..budget`` into the breakpoint resources:
    ``duration(λ)`` is the time of the last breakpoint at resource ``<= λ``.
    Bit-for-bit identical to :func:`_leaf_table_scalar` (the values are
    picked from the same stored floats).
    """
    tuples = leaf.duration.tuples()
    breakpoints = np.array([r for r, _t in tuples], dtype=float)
    times = np.array([t for _r, t in tuples], dtype=float)
    idx = np.searchsorted(breakpoints, np.arange(budget + 1), side="right") - 1
    return times[idx]


def _parallel_merge_scalar(t1: np.ndarray, t2: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Reference scalar kernel for the (min, max) merge: one λ per iteration."""
    budget = len(t1) - 1
    merged = np.empty(budget + 1, dtype=float)
    split = np.zeros(budget + 1, dtype=int)
    for lam in range(budget + 1):
        left = t1[: lam + 1]
        right = t2[lam::-1]
        values = np.maximum(left, right)
        idx = int(np.argmin(values))
        merged[lam] = values[idx]
        split[lam] = idx
    return merged, split


#: Rows (λ values) reduced per chunk by the vectorized parallel merge; bounds
#: the transient ``chunk x (budget+1)`` matrix to a few megabytes at the
#: engine's largest DP budget while keeping the reduction fully in numpy.
_MERGE_CHUNK_ROWS = 256


def _parallel_merge(t1: np.ndarray, t2: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """min-max merge of two non-increasing tables, vectorized over λ.

    ``merged[λ] = min_i max(t1[i], t2[λ-i])`` is the minimum over the λ-th
    anti-diagonal of the outer-max matrix of the two tables.  Instead of the
    historical per-λ Python loop (O(B²) interpreter iterations), the merge
    views every anti-diagonal as one row of a sliding window over the
    reversed (and +inf-padded) right table and reduces whole chunks of rows
    with a single ``np.maximum`` + ``argmin``.  The +inf padding marks the
    ``i > λ`` cells, which can never win the argmin unless the whole row is
    infinite -- in which case index 0 is returned, exactly like the scalar
    kernel.  Returns the merged table and, for each λ, the amount given to
    the left child by one optimal split (used to recover allocations);
    both match :func:`_parallel_merge_scalar` bit for bit, tie-breaking
    (first minimal index) included.
    """
    budget = len(t1) - 1
    n = budget + 1
    # t2pad[budget - λ + i] == t2[λ - i] for i <= λ, +inf beyond.
    t2pad = np.concatenate([t2[::-1], np.full(budget, np.inf)])
    windows = np.lib.stride_tricks.sliding_window_view(t2pad, n)
    merged = np.empty(n, dtype=float)
    split = np.zeros(n, dtype=int)
    for start in range(0, n, _MERGE_CHUNK_ROWS):
        stop = min(start + _MERGE_CHUNK_ROWS, n)
        # Row λ of the reduction is windows[budget - λ]; slicing the window
        # view keeps everything zero-copy until the chunk's maximum.
        block = np.maximum(t1[np.newaxis, :],
                           windows[budget - stop + 1: budget - start + 1][::-1])
        idx = np.argmin(block, axis=1)
        merged[start:stop] = block[np.arange(stop - start), idx]
        split[start:stop] = idx
    return merged, split


def sp_min_makespan_table(tree: SPNode, budget: int) -> np.ndarray:
    """Return the DP table ``T(root, λ)`` for ``λ = 0 .. budget``.

    The table is non-increasing in λ; ``T(root, budget)`` is the optimal
    makespan of the series-parallel instance with budget ``budget`` and
    resource reuse over paths.
    """
    require(isinstance(budget, int) and budget >= 0, "budget must be a non-negative integer")
    table, _ = _solve_tables(tree, budget)
    return table[id(tree)]


def _solve_tables(tree: SPNode, budget: int) -> Tuple[Dict[int, np.ndarray],
                                                      Dict[int, np.ndarray]]:
    tables: Dict[int, np.ndarray] = {}
    splits: Dict[int, np.ndarray] = {}

    def solve(node: SPNode) -> np.ndarray:
        if id(node) in tables:
            return tables[id(node)]
        if isinstance(node, SPLeaf):
            t = _leaf_table(node, budget)
        elif isinstance(node, SPSeries):
            t = solve(node.left) + solve(node.right)
        else:
            t1, t2 = solve(node.left), solve(node.right)
            t, split = _parallel_merge(t1, t2)
            splits[id(node)] = split
        tables[id(node)] = t
        return t

    solve(tree)
    return tables, splits


def _recover_allocation(tree: SPNode, budget: int,
                        tables: Dict[int, np.ndarray],
                        splits: Dict[int, np.ndarray]) -> Dict[Hashable, int]:
    allocation: Dict[Hashable, int] = {}

    def walk(node: SPNode, lam: int) -> None:
        if isinstance(node, SPLeaf):
            # the job can use every unit flowing through its branch
            allocation[node.name] = lam
            return
        if isinstance(node, SPSeries):
            walk(node.left, lam)
            walk(node.right, lam)
            return
        split = int(splits[id(node)][lam])
        walk(node.left, split)
        walk(node.right, lam - split)

    walk(tree, budget)
    return allocation


def sp_exact_min_makespan(tree: SPNode, budget: int) -> TradeoffSolution:
    """Exact minimum makespan of a series-parallel instance (Section 3.4).

    Returns a :class:`~repro.core.problem.TradeoffSolution` whose
    ``allocation`` maps every job to the resource flowing through its branch
    in one optimal split, and whose ``budget_used`` is the smallest budget
    achieving the same makespan (found by scanning the DP table).
    """
    require(isinstance(budget, int) and budget >= 0, "budget must be a non-negative integer")
    tables, splits = _solve_tables(tree, budget)
    table = tables[id(tree)]
    optimum = float(table[budget])
    # smallest budget achieving the optimum
    needed = int(np.argmax(table <= optimum + 1e-12))
    allocation = _recover_allocation(tree, needed, tables, splits) if needed <= budget else {}
    return TradeoffSolution(
        makespan=optimum,
        budget_used=float(needed),
        allocation={k: float(v) for k, v in allocation.items()},
        algorithm="series-parallel-dp",
        lower_bound=optimum,
        metadata={"budget": budget, "table": table},
    )


def sp_exact_min_resource(tree: SPNode, target_makespan: float,
                          budget_cap: Optional[int] = None) -> TradeoffSolution:
    """Exact minimum-resource solution: the smallest λ with ``T(root, λ) <= target``.

    ``budget_cap`` bounds the search (defaults to the sum of every job's
    largest useful breakpoint, which always suffices when the target is
    achievable at all).
    """
    check_non_negative(target_makespan, "target_makespan")
    if budget_cap is None:
        budget_cap = int(sum(leaf.duration.max_useful_resource() for leaf in tree.leaves()))
    tables, splits = _solve_tables(tree, budget_cap)
    table = tables[id(tree)]
    feasible = np.nonzero(table <= target_makespan + 1e-12)[0]
    if len(feasible) == 0:
        return TradeoffSolution(makespan=math.inf, budget_used=math.inf,
                                algorithm="series-parallel-dp-minresource",
                                metadata={"status": "infeasible", "target": target_makespan})
    needed = int(feasible[0])
    allocation = _recover_allocation(tree, needed, tables, splits)
    return TradeoffSolution(
        makespan=float(table[needed]),
        budget_used=float(needed),
        allocation={k: float(v) for k, v in allocation.items()},
        algorithm="series-parallel-dp-minresource",
        resource_lower_bound=float(needed),
        metadata={"target_makespan": target_makespan, "budget_cap": budget_cap},
    )


# ----------------------------------------------------------------------
# recognition / decomposition
# ----------------------------------------------------------------------
def decompose_series_parallel(dag: TradeoffDAG) -> Optional[SPNode]:
    """Try to recognise ``dag`` as a two-terminal series-parallel DAG.

    The DAG is first converted to its activity-on-arc form (each job becomes
    an arc carrying an :class:`SPLeaf`); then series reductions (internal
    vertex with in-degree 1 and out-degree 1) and parallel reductions (two
    arcs with identical endpoints) are applied until no rule fires.  If a
    single source-to-sink arc remains its accumulated tree is returned,
    otherwise ``None``.

    Zero-duration structural leaves (fork/join vertices and dummy arcs) are
    kept in the tree -- they do not change the DP since their duration is
    identically zero.
    """
    dag = dag.ensure_single_source_sink()
    dag.validate()

    # Build an arc multigraph where every job is an arc tail->head carrying a tree.
    arcs: List[Tuple[Hashable, Hashable, SPNode]] = []
    for job in dag.jobs:
        arcs.append((("in", job), ("out", job), SPLeaf(job, dag.duration_function(job))))
    for (u, v) in dag.edges:
        arcs.append((("out", u), ("in", v),
                     SPLeaf(("dummy", u, v), ConstantDuration(0.0))))
    source, sink = ("in", dag.source), ("out", dag.sink)

    changed = True
    while changed and len(arcs) > 1:
        changed = False
        # parallel reduction
        seen: Dict[Tuple[Hashable, Hashable], int] = {}
        for idx, (u, v, tree) in enumerate(arcs):
            key = (u, v)
            if key in seen:
                j = seen[key]
                arcs[j] = (u, v, SPParallel(arcs[j][2], tree))
                del arcs[idx]
                changed = True
                break
            seen[key] = idx
        if changed:
            continue
        # series reduction
        indeg: Dict[Hashable, List[int]] = {}
        outdeg: Dict[Hashable, List[int]] = {}
        for idx, (u, v, tree) in enumerate(arcs):
            outdeg.setdefault(u, []).append(idx)
            indeg.setdefault(v, []).append(idx)
        for vertex in set(indeg) | set(outdeg):
            if vertex in (source, sink):
                continue
            ins = indeg.get(vertex, [])
            outs = outdeg.get(vertex, [])
            if len(ins) == 1 and len(outs) == 1 and ins[0] != outs[0]:
                i, o = ins[0], outs[0]
                u, _, t1 = arcs[i]
                _, w, t2 = arcs[o]
                merged = (u, w, SPSeries(t1, t2))
                arcs = [a for idx, a in enumerate(arcs) if idx not in (i, o)]
                arcs.append(merged)
                changed = True
                break

    if len(arcs) == 1 and arcs[0][0] == source and arcs[0][1] == sink:
        return arcs[0][2]
    return None
