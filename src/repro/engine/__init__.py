"""The unified solver engine: registry, auto-dispatch, two-tier caching,
parallel portfolios and the batched sweep service.

The engine is the single entry point to every solver family of the
reproduction (exact enumeration, the series-parallel DP, the LP bi-criteria
pipeline, the k-way / recursive-binary single-criteria approximations and
the greedy baselines):

>>> import repro
>>> dag = repro.TradeoffDAG()
>>> _ = dag.add_job("s"); _ = dag.add_job("x", repro.RecursiveBinarySplitDuration(32))
>>> _ = dag.add_job("t"); dag.add_edge("s", "x"); dag.add_edge("x", "t")
>>> report = repro.solve(dag=dag, budget=12)               # auto-dispatch
>>> report.makespan <= 32
True
>>> repro.solve(dag=dag, budget=12, method="bicriteria-lp", alpha=0.75)  # doctest: +SKIP

Layers (each its own module; see ``docs/architecture.md`` for the diagram):

* :mod:`~repro.engine.fingerprint` -- content hashes of DAGs/problems/requests
  (cache keys) and the stable JSON serialization of solutions;
* :mod:`~repro.engine.structure`   -- one-shot structure probe with memoized
  activity-on-arc transforms;
* :mod:`~repro.engine.registry`    -- :class:`SolverSpec` capability records and
  the ``@register_solver`` decorator;
* :mod:`~repro.engine.solvers`     -- registration of the five solver families;
* :mod:`~repro.engine.certify`     -- independent certificate checks on solutions;
* :mod:`~repro.engine.core`        -- :func:`solve`, :class:`SolveReport`,
  :class:`SolveLimits` and the two-tier solution cache (LRU + store);
* :mod:`~repro.engine.store`       -- the persistent on-disk
  :class:`SolutionStore` (tier 2, sharded JSON);
* :mod:`~repro.engine.batch`       -- batched solve kernels: cached
  :class:`~repro.core.lp.LPModelSkeleton` per arc-DAG fingerprint and the
  :func:`~repro.engine.batch.solve_lp_batch` shard entry point;
* :mod:`~repro.engine.portfolio`   -- :class:`Portfolio` for racing solvers and
  sweeping scenarios concurrently (shard-aware ``map``);
* :mod:`~repro.engine.service`     -- :class:`SweepService`: deduplicated,
  store-backed, resumable batch sweeps with streaming results.
"""

from repro.engine.certify import Certificate, certify_solution
from repro.engine.core import (
    SolveLimits,
    SolveReport,
    cached_solution,
    clear_caches,
    exact_reference,
    get_solution_store,
    normalize_problem,
    request_key,
    set_solution_store,
    solution_cache_info,
    solve,
    warm_solution_cache,
)
from repro.engine.fingerprint import (
    UnserializableSolutionError,
    cached_spec_fingerprint,
    dag_fingerprint,
    problem_fingerprint,
    request_fingerprint,
    solution_from_payload,
    solution_to_payload,
    spec_alias_key,
    spec_fingerprint,
)
from repro.engine.store import STORE_SCHEMA_VERSION, SolutionStore, atomic_write_json
from repro.engine.registry import (
    MIN_MAKESPAN,
    MIN_RESOURCE,
    NoSolverError,
    SolverSpec,
    candidate_solvers,
    get_solver,
    register_solver,
    select_solver,
    solver_ids,
    solver_specs,
    unregister_solver,
)
from repro.engine.structure import ProblemStructure, analyze_dag, structure_cache_info

# Importing the module registers every built-in solver family.
import repro.engine.solvers  # noqa: F401  (side-effect import)

from repro.engine.batch import (
    CACHED_LP_BACKEND,
    batch_kernel_info,
    get_lp_skeleton,
    solve_lp_batch,
)

from repro.engine.plan import (
    PlannedCell,
    SweepPlan,
    build_sweep_plan,
    recommend_shard_size,
)
from repro.engine.portfolio import Portfolio, PortfolioReport
from repro.engine.service import SweepReport, SweepResult, SweepService, SweepStats
from repro.engine.async_service import AsyncSweepService, AsyncSweepStats, SubmitTicket

__all__ = [
    # entry points
    "solve", "exact_reference", "normalize_problem",
    "SolveReport", "SolveLimits",
    # registry
    "SolverSpec", "register_solver", "unregister_solver", "get_solver",
    "solver_ids", "solver_specs",
    "candidate_solvers", "select_solver", "NoSolverError",
    "MIN_MAKESPAN", "MIN_RESOURCE",
    # structure + fingerprints + serialization
    "ProblemStructure", "analyze_dag", "dag_fingerprint", "problem_fingerprint",
    "request_fingerprint", "request_key",
    "spec_fingerprint", "cached_spec_fingerprint", "spec_alias_key",
    "solution_to_payload", "solution_from_payload", "UnserializableSolutionError",
    # certificates
    "Certificate", "certify_solution",
    # planning tier
    "PlannedCell", "SweepPlan", "build_sweep_plan", "recommend_shard_size",
    # portfolio + sweep service (sync and async fronts)
    "Portfolio", "PortfolioReport",
    "SweepService", "SweepReport", "SweepResult", "SweepStats",
    "AsyncSweepService", "AsyncSweepStats", "SubmitTicket",
    # caches (two tiers)
    "clear_caches", "solution_cache_info", "structure_cache_info",
    "SolutionStore", "STORE_SCHEMA_VERSION", "atomic_write_json",
    "set_solution_store", "get_solution_store",
    "cached_solution", "warm_solution_cache",
]
