"""The unified solver engine: registry, auto-dispatch and parallel portfolios.

The engine is the single entry point to every solver family of the
reproduction (exact enumeration, the series-parallel DP, the LP bi-criteria
pipeline, the k-way / recursive-binary single-criteria approximations and
the greedy baselines):

>>> import repro
>>> report = repro.solve(dag=some_dag, budget=12)          # auto-dispatch
>>> report.solver_id, report.makespan                       # doctest: +SKIP
>>> repro.solve(dag=some_dag, budget=12, method="bicriteria-lp", alpha=0.75)  # doctest: +SKIP

Layers (each its own module):

* :mod:`~repro.engine.fingerprint` -- content hashes of DAGs/problems (cache keys);
* :mod:`~repro.engine.structure`   -- one-shot structure probe with memoized
  activity-on-arc transforms;
* :mod:`~repro.engine.registry`    -- :class:`SolverSpec` capability records and
  the ``@register_solver`` decorator;
* :mod:`~repro.engine.solvers`     -- registration of the five solver families;
* :mod:`~repro.engine.certify`     -- independent certificate checks on solutions;
* :mod:`~repro.engine.core`        -- :func:`solve`, :class:`SolveReport`,
  :class:`SolveLimits` and the solution LRU cache;
* :mod:`~repro.engine.portfolio`   -- :class:`Portfolio` for racing solvers and
  sweeping scenarios concurrently.
"""

from repro.engine.certify import Certificate, certify_solution
from repro.engine.core import (
    SolveLimits,
    SolveReport,
    clear_caches,
    exact_reference,
    normalize_problem,
    solution_cache_info,
    solve,
)
from repro.engine.fingerprint import dag_fingerprint, problem_fingerprint
from repro.engine.registry import (
    MIN_MAKESPAN,
    MIN_RESOURCE,
    NoSolverError,
    SolverSpec,
    candidate_solvers,
    get_solver,
    register_solver,
    select_solver,
    solver_ids,
    solver_specs,
    unregister_solver,
)
from repro.engine.structure import ProblemStructure, analyze_dag, structure_cache_info

# Importing the module registers every built-in solver family.
import repro.engine.solvers  # noqa: F401  (side-effect import)

from repro.engine.portfolio import Portfolio, PortfolioReport

__all__ = [
    # entry points
    "solve", "exact_reference", "normalize_problem",
    "SolveReport", "SolveLimits",
    # registry
    "SolverSpec", "register_solver", "unregister_solver", "get_solver",
    "solver_ids", "solver_specs",
    "candidate_solvers", "select_solver", "NoSolverError",
    "MIN_MAKESPAN", "MIN_RESOURCE",
    # structure + fingerprints
    "ProblemStructure", "analyze_dag", "dag_fingerprint", "problem_fingerprint",
    # certificates
    "Certificate", "certify_solution",
    # portfolio
    "Portfolio", "PortfolioReport",
    # caches
    "clear_caches", "solution_cache_info", "structure_cache_info",
]
