"""Asyncio serving front over the store + :class:`Portfolio` machinery.

:class:`~repro.engine.service.SweepService` serves one batch at a time;
:class:`AsyncSweepService` turns the same substrate (persistent
:class:`~repro.engine.store.SolutionStore`, warm
:class:`~repro.engine.portfolio.Portfolio` pools, request-key dedup) into a
**long-running concurrent server**: many clients ``await submit(...)``
scenario batches at once and the service

1. **deduplicates across requests, in flight** -- two concurrent clients
   asking for the same request fingerprint share one solve (tier 0 of the
   cache hierarchy: it answers before a result even exists);
2. **answers from the persistent store** (tier 2) without queueing;
3. **queues the rest with backpressure** -- a bounded :class:`asyncio.Queue`
   blocks producers at the bound, and an :class:`asyncio.Semaphore` caps how
   many shards are in flight on the warm pool at once
   (``loop.run_in_executor`` over :meth:`Portfolio.shard_task`);
4. **survives cancellation** -- a client cancelling its future never corrupts
   the store or the manifest: a shard already running completes, its results
   are persisted, and the other clients deduplicated onto it still get
   their answers;
5. **drains gracefully** -- :meth:`aclose` stops accepting work, waits for
   everything queued to finish, checkpoints the manifest and closes what it
   started.

Declarative scenario batches go through :meth:`AsyncSweepService.submit_specs`
(a :class:`~repro.scenarios.spec.ScenarioGrid` or
:class:`~repro.scenarios.spec.ScenarioSpec` records): dedup, in-flight
sharing and store lookups happen before any DAG exists, and pending cells
materialize lazily inside the worker shards -- the substrate of the
``sweep_spec`` wire op in :mod:`repro.serve`.

Clients receive plain :class:`asyncio.Future` objects (one per scenario
slot, shared per request key) resolving to
:class:`~repro.engine.service.SweepResult`; nothing in the public API
blocks the event loop longer than a store lookup.

Usage:

>>> import asyncio
>>> from repro.core.dag import TradeoffDAG
>>> from repro.core.duration import GeneralStepDuration
>>> from repro.core.problem import MinMakespanProblem
>>> from repro.engine.async_service import AsyncSweepService
>>> from repro.engine.portfolio import Portfolio
>>> dag = TradeoffDAG()
>>> for name in ("s", "x", "t"):
...     _ = dag.add_job(name, GeneralStepDuration([(0, 4), (2, 1)]))
>>> dag.add_edge("s", "x"); dag.add_edge("x", "t")
>>> async def tour():
...     async with AsyncSweepService(portfolio=Portfolio(executor="thread")) as service:
...         ticket = await service.submit(
...             [MinMakespanProblem(dag, b) for b in (2.0, 4.0, 2.0)])
...         results = await ticket.results()
...     return [r.source for r in results], service.stats.computed
>>> asyncio.run(tour())
(['computed', 'computed', 'computed'], 2)
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.engine.core import (
    Problem,
    SolveLimits,
    SolveReport,
    _clone_report,
    cached_solution,
    get_solution_store,
    normalize_problem,
    request_key,
    warm_solution_cache,
)
from repro.engine.fingerprint import record_spec_fingerprint, spec_alias_key
from repro.engine.plan import CELL_MANIFEST_DONE, build_sweep_plan
from repro.engine.portfolio import Portfolio
from repro.engine.service import SweepResult, load_manifest_state, write_manifest
from repro.engine.store import (SolutionStore, _is_alias_payload,
                                report_from_payload)
from repro.scenarios import ScenarioGrid, ScenarioSpec
from repro.utils.validation import ValidationError, require

__all__ = ["AsyncSweepService", "AsyncSweepStats", "SubmitTicket",
           "ASYNC_MANIFEST_METHOD"]

#: ``method`` recorded in the async service's manifest.  One async service
#: may serve mixed methods (each request key already encodes its own), so
#: the manifest is scoped to the service rather than to a single method.
ASYNC_MANIFEST_METHOD = "async-mixed"

#: Longest an async shard waits on another process's solve claim before
#: solving the cell itself anyway (correct either way, just duplicated).
CLAIM_WAIT_SECONDS = 30.0
_CLAIM_POLL_SECONDS = 0.05


@dataclass
class AsyncSweepStats:
    """Rolling counters of one :class:`AsyncSweepService` lifetime.

    Unlike :class:`~repro.engine.service.SweepStats` (one batch), these
    accumulate across every ``submit`` until the service closes.
    """

    #: Scenario slots submitted (duplicates included).
    requests: int = 0
    #: Submit calls served.
    batches: int = 0
    #: Slots answered by sharing an *in-flight* solve (tier-0 hits).
    deduped: int = 0
    #: Slots answered straight from the persistent store (tier-2 hits).
    store_hits: int = 0
    #: Store hits that the resume manifest had marked completed.
    resumed: int = 0
    computed: int = 0
    failed: int = 0
    #: Queued requests dropped because every waiter cancelled before dispatch.
    cancelled: int = 0
    #: Executor shards dispatched to the worker pool.
    shards: int = 0
    #: Solves short-circuited to a store read because another process
    #: solved (or was solving) the same cell concurrently.
    dup_solves_avoided: int = 0
    #: Manifest checkpoints that failed to land (write_manifest errors).
    manifest_write_errors: int = 0
    #: Reports bulk-loaded into the tier-1 LRU by :meth:`warm_cache`
    #: (elastic-resize prewarming), and alias mappings learned alongside.
    prewarmed: int = 0
    prewarmed_aliases: int = 0
    #: Slots answered straight from prewarmed memory (``source="memory"``)
    #: -- warm handoff working: a moved cell that never touched the store.
    prewarm_hits: int = 0

    def summary(self) -> str:
        """One-line human-readable description (used by the benchmarks)."""
        return (f"{self.requests} requests in {self.batches} batches: "
                f"{self.deduped} deduped in flight, {self.store_hits} from "
                f"store, {self.computed} computed in {self.shards} shards, "
                f"{self.failed} failed, {self.cancelled} cancelled")


@dataclass
class _Inflight:
    """One unique queued/solving request and everyone waiting on it.

    Spec-native submissions (:meth:`AsyncSweepService.submit_specs`) fill
    ``spec`` instead of ``problem``; their dedup/in-flight ``key`` is the
    true request fingerprint when already resolved, else the spec alias
    key -- the worker learns the true fingerprint while materializing and
    :meth:`resolve` passes it through to the waiters' results.
    """

    key: str
    problem: Optional[Problem]
    method: str
    options: Dict[str, Any]
    #: The declarative cell (spec-native submissions only).
    spec: Optional[ScenarioSpec] = None
    #: The cell's spec alias key (spec-native submissions only) -- the
    #: persistent dedup identity, kept so shard completion can write the
    #: alias entry and manifest cell without recomputing it.
    alias: Optional[str] = None
    #: ``(slot index, problem-as-submitted, spec-as-submitted, per-slot
    #: future)`` per waiter.  The spec is tracked per waiter, not taken
    #: from the entry: a spec-native waiter may deduplicate onto a
    #: problem-kind in-flight entry (same request fingerprint) and must
    #: still get its spec back on the result.
    waiters: List[Tuple[int, Optional[Problem], Optional[ScenarioSpec],
                        "asyncio.Future[SweepResult]"]] = \
        field(default_factory=list)

    def add_waiter(self, index: int, problem: Optional[Problem],
                   future: "asyncio.Future[SweepResult]",
                   spec: Optional[ScenarioSpec] = None) -> None:
        self.waiters.append((index, problem, spec, future))

    def abandoned(self) -> bool:
        """Has every waiter cancelled (nobody wants the answer anymore)?"""
        return all(future.cancelled() for _, _, _, future in self.waiters)

    def resolve(self, report: Optional[SolveReport], source: str,
                error: Optional[str], cache_tier: str = "",
                key: Optional[str] = None) -> None:
        """Deliver one outcome to every still-listening waiter.

        Each live waiter gets its own defensively-copied report (consumers
        may edit allocations in place; deduplicated slots must not alias).
        ``key`` overrides the recorded in-flight key in the delivered
        results (spec entries: the worker-reported request fingerprint).
        """
        for index, problem, spec, future in self.waiters:
            if future.done():  # cancelled (or already failed) waiters
                continue
            copy = None
            if report is not None:
                copy = _clone_report(report, from_cache=bool(cache_tier),
                                     cache_tier=cache_tier)
            future.set_result(SweepResult(index=index,
                                          key=key if key is not None else self.key,
                                          problem=problem, report=copy,
                                          source=source, error=error,
                                          spec=spec))


@dataclass
class SubmitTicket:
    """What one ``await submit(scenarios, ...)`` call hands back.

    ``futures`` has one :class:`asyncio.Future` per scenario slot (batch
    order), each resolving to a :class:`~repro.engine.service.SweepResult`;
    ``per_key`` maps each distinct request key to the future of its first
    slot (the "futures per request key" view -- duplicate slots share the
    same underlying solve).  Failures resolve the future with a
    ``source="failed"`` result; the only exception a waiter sees is its own
    cancellation.
    """

    keys: List[str]
    futures: List["asyncio.Future[SweepResult]"]

    @property
    def per_key(self) -> Dict[str, "asyncio.Future[SweepResult]"]:
        """First slot future per distinct request key."""
        mapping: Dict[str, asyncio.Future] = {}
        for key, future in zip(self.keys, self.futures):
            mapping.setdefault(key, future)
        return mapping

    async def results(self) -> List[SweepResult]:
        """Await every slot and return the results in batch order."""
        return list(await asyncio.gather(*self.futures))

    async def reports(self) -> List[Optional[SolveReport]]:
        """Await every slot; the per-scenario reports (``None`` on failure)."""
        return [result.report for result in await self.results()]

    def cancel(self) -> int:
        """Cancel every unresolved slot future; returns how many were."""
        return sum(1 for future in self.futures if future.cancel())


class AsyncSweepService:
    """Concurrent, deduplicating, store-backed asyncio solve service.

    Parameters
    ----------
    store:
        Persistent :class:`SolutionStore` (or a directory path), defaulting
        to the engine's globally installed store; ``None`` without one.
    portfolio:
        The :class:`Portfolio` whose *persistent* pool runs the shards.
        Defaults to a process-pool portfolio owned (started and closed) by
        the service.
    limits:
        :class:`SolveLimits` baked into every request key and solve.
    max_concurrency:
        Maximum shards in flight on the pool at once (the semaphore bound);
        defaults to the portfolio's worker count.
    queue_size:
        Bound of the internal request queue; ``submit`` blocks (awaits)
        when it is full -- the backpressure contract.
    shard_size:
        Maximum scenarios batched into one executor task.  1 (default)
        optimises latency; larger values amortise pickling on throughput
        workloads.
    validate:
        Run certificate checks on computed solutions (part of the key).
    manifest:
        Optional path checkpointing completed request keys after every
        shard (see :func:`~repro.engine.service.write_manifest`); the store
        stays the source of truth on resume, exactly as for
        :class:`~repro.engine.service.SweepService`.
    durable:
        Fsync manifest checkpoints and open a path-constructed store with
        ``durable=True`` (see :class:`~repro.engine.store.SolutionStore`).
    runner_id:
        Optional stable name of this service inside a multi-runner
        cluster (see :mod:`repro.cluster`); reported by :meth:`snapshot`
        under ``"runner"`` so an aggregating router can attribute
        counters per runner.

    Notes
    -----
    The service is bound to the event loop that first runs it and is not
    thread-safe; share it between coroutines, not between loops.  Request
    keys are computed synchronously on the loop (they run the memoized
    structure probe), as are store lookups -- both are designed to be
    cheap, but extremely large DAGs pay their first probe inline.
    """

    def __init__(self, store: Union[SolutionStore, str, None] = None, *,
                 portfolio: Optional[Portfolio] = None,
                 limits: Optional[SolveLimits] = None,
                 max_concurrency: Optional[int] = None,
                 queue_size: int = 64,
                 shard_size: int = 1,
                 validate: bool = True,
                 manifest: Optional[str] = None,
                 durable: bool = False,
                 runner_id: Optional[str] = None):
        require(queue_size > 0, "queue_size must be positive")
        require(shard_size > 0, "shard_size must be positive")
        require(max_concurrency is None or max_concurrency > 0,
                "max_concurrency must be positive")
        self.durable = durable
        if isinstance(store, str):
            store = SolutionStore(store, durable=durable)
        self._explicit_store = store
        self._owns_portfolio = portfolio is None
        self._portfolio = portfolio if portfolio is not None else Portfolio(executor="process")
        self._started_pool = False
        if limits is not None:
            self.limits = limits
            self._portfolio.limits = limits
        else:
            self.limits = self._portfolio.limits
        self.max_concurrency = max_concurrency
        self.queue_size = queue_size
        self.shard_size = shard_size
        self.validate = validate
        self.manifest = manifest
        self.runner_id = runner_id
        self.stats = AsyncSweepStats()

        self._queue: Optional[asyncio.Queue] = None
        self._semaphore: Optional[asyncio.Semaphore] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._shard_tasks: set = set()
        self._inflight: Dict[str, _Inflight] = {}
        self._manifest_keys: List[str] = []
        self._manifest_done: set = set()
        #: Expanded consultation tokens (done tokens + per-cell
        #: keys/digests); what resume checks match against.
        self._manifest_tokens: set = set()
        #: v2 per-cell identities (``{alias: {"cell", "key"}}``) of every
        #: completed spec cell -- what a restarted deployment resumes from.
        self._manifest_cells: Dict[str, Dict[str, str]] = {}
        #: Prewarm state (:meth:`warm_cache`): alias key -> request
        #: fingerprint mappings learned from warmed alias entries, and the
        #: fingerprints whose reports were streamed into the tier-1 LRU.
        #: Only keys in ``_prewarmed_keys`` are answered from memory at
        #: submission time -- ordinary traffic keeps its store-first
        #: contract (and its store counters) unchanged.
        self._warm_keys: Dict[str, str] = {}
        self._prewarmed_keys: set = set()
        self._closed = False
        self._started = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def store(self) -> Optional[SolutionStore]:
        """The store consulted and fed (explicit, else the global one)."""
        if self._explicit_store is not None:
            return self._explicit_store
        return get_solution_store()

    @property
    def portfolio(self) -> Portfolio:
        return self._portfolio

    @property
    def closed(self) -> bool:
        return self._closed

    def queue_depth(self) -> int:
        """Requests queued but not yet dispatched (0 before start)."""
        return self._queue.qsize() if self._queue is not None else 0

    def inflight_count(self) -> int:
        """Unique requests currently queued or solving."""
        return len(self._inflight)

    def snapshot(self) -> Dict[str, Any]:
        """One JSON-safe dict aggregating every counter a deployment has.

        The substrate of the ``metrics`` wire op in :mod:`repro.serve`
        (and of the load harness's before/after deltas in
        :mod:`repro.loadgen`): the service's rolling
        :class:`AsyncSweepStats` plus live queue/in-flight gauges under
        ``"service"``, the persistent store's work counters under
        ``"store"`` (``None`` without a store), the in-memory solution
        LRU under ``"lru"``, the batched-kernel counters (LP skeleton
        cache, warm-start totals, structure probes) under ``"kernels"``
        and the scenario DAG-build counters under ``"materializations"``.

        Every leaf is a number (or a short string), deliberately
        machine-independent: two runs doing the same work report the
        same snapshot deltas whatever the hardware, which is what lets
        the load report reconcile its client-side accounting against the
        server's own counters.
        """
        # Imported lazily: batch and core sit beside/below this module in
        # the engine layering and core's cache state is process-global.
        from repro.engine.batch import batch_kernel_info
        from repro.engine.core import solution_cache_info
        from repro.scenarios.spec import materialization_info

        service = vars(self.stats).copy()
        service["queue_depth"] = self.queue_depth()
        service["inflight"] = self.inflight_count()
        service["queue_size"] = self.queue_size
        lru = solution_cache_info()
        lru.pop("store", None)   # the service's own store is reported below
        lru.pop("lp", None)      # kernels carry the LP counters
        store = self.store
        return {
            "snapshot_schema": 1,
            "runner": self.runner_id,
            "service": service,
            "store": store.counters() if store is not None else None,
            "lru": lru,
            "kernels": batch_kernel_info(),
            "materializations": materialization_info(),
        }

    def warm_cache(self, ring: Any = None, owner: Optional[str] = None, *,
                   limit: Optional[int] = None) -> Dict[str, int]:
        """Bulk-load (part of) the store into the tier-1 LRU before traffic.

        The runner side of an elastic-resize warm handoff (the
        ``warm_cache`` wire op of :mod:`repro.serve`): with ``ring`` (any
        object with ``route(key) -> node``; the router ships a
        :class:`~repro.cluster.ring.HashRing` payload) and ``owner`` (this
        runner's name), only the entries whose route key lands on
        ``owner`` are streamed -- exactly the key range the runner is
        acquiring, via the decode-free
        :meth:`~repro.engine.store.SolutionStore.scan_routed` path.
        Without a ring the whole store is warmed (single-runner restarts).

        Report entries are decoded and installed in the LRU
        (:func:`~repro.engine.core.warm_solution_cache`); alias entries
        cost one dict insert each and let :meth:`submit_specs` resolve a
        spec straight to its warmed fingerprint.  Warmed keys are then
        answered with ``source="memory"`` at submission time, before any
        plan or store probe -- that is the "zero-recompute handoff": the
        first post-join sweep of a moved key range never leaves the
        process.  ``limit`` caps the number of reports installed (alias
        mappings are always collected; they are tiny).

        Synchronous and idempotent; call it before the runner takes
        traffic.  Returns ``{"warmed": installed, "aliases": learned}``.
        """
        store = self.store
        if store is None:
            return {"warmed": 0, "aliases": 0}
        if ring is not None:
            require(owner is not None,
                    "warm_cache(ring=...) needs the owner runner name")
            entries = store.scan_routed(ring, owner, include_aliases=True)
        else:
            entries = store.scan(include_aliases=True)
        reports: List[Tuple[str, SolveReport]] = []
        aliases = 0
        for key, payload in entries:
            if _is_alias_payload(payload):
                self._warm_keys[key] = payload["alias_of"]
                aliases += 1
                continue
            if limit is not None and len(reports) >= limit:
                continue
            try:
                report = report_from_payload(payload)
            except (KeyError, TypeError, ValueError):
                # A foreign/corrupt payload shape is a skip, not a fault:
                # the cell simply stays cold and the store still answers.
                continue
            reports.append((key, report))
        warmed = warm_solution_cache(reports)
        self._prewarmed_keys.update(key for key, _ in reports)
        self.stats.prewarmed += warmed
        self.stats.prewarmed_aliases += aliases
        return {"warmed": warmed, "aliases": aliases}

    async def start(self) -> "AsyncSweepService":
        """Warm the pool and start the dispatcher (idempotent)."""
        self._require_open()
        if self._started:
            return self
        if self._portfolio.pool is None:
            self._portfolio.start()
            self._started_pool = True
        concurrency = self.max_concurrency or self._portfolio.worker_count()
        self._queue = asyncio.Queue(maxsize=self.queue_size)
        self._semaphore = asyncio.Semaphore(concurrency)
        self._dispatcher = asyncio.create_task(self._dispatch_loop(),
                                               name="repro-async-sweep-dispatch")
        if self.manifest:
            state = load_manifest_state(self.manifest, ASYNC_MANIFEST_METHOD)
            self._manifest_done = state.done
            self._manifest_tokens = set(state.tokens)
            self._manifest_cells = dict(state.cells)
            self._manifest_keys = sorted(state.done)
        self._started = True
        return self

    @property
    def resume_cells(self) -> int:
        """Cells the loaded resume manifest already marks as completed.

        Zero until :meth:`start` reads the manifest (or when no manifest
        is configured); grows as further cells finish.
        """
        return len(self._manifest_done)

    async def __aenter__(self) -> "AsyncSweepService":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.aclose()

    def _require_open(self) -> None:
        if self._closed:
            raise RuntimeError(
                "AsyncSweepService is closed; create a new service to "
                "submit further scenarios")

    def _record_manifest_cell(self, alias: str, digest: str, key: str) -> None:
        """Mark a spec cell done in the in-memory resume state.

        Flushed to disk by the next shard checkpoint (or :meth:`aclose`);
        until then the store itself still answers a restart, so nothing
        is lost if the process dies first.
        """
        if not self.manifest:
            return
        if alias not in self._manifest_done:
            self._manifest_done.add(alias)
            self._manifest_keys.append(alias)
        self._manifest_cells[alias] = {"cell": digest, "key": key}
        self._manifest_tokens.add(alias)
        self._manifest_tokens.add(digest)
        if key:
            self._manifest_tokens.add(key)

    async def drain(self) -> None:
        """Wait until everything queued and in flight has resolved."""
        if self._queue is not None:
            await self._queue.join()
        if self._shard_tasks:
            await asyncio.gather(*list(self._shard_tasks), return_exceptions=True)

    async def aclose(self) -> None:
        """Graceful shutdown: refuse new work, drain, checkpoint, close.

        Every already-accepted future resolves before the pool the service
        started is shut down; calling :meth:`aclose` twice is harmless.
        """
        if self._closed:
            return
        self._closed = True
        dispatcher_error: Optional[BaseException] = None
        try:
            await self.drain()
        finally:
            if self._dispatcher is not None:
                self._dispatcher.cancel()
                try:
                    await self._dispatcher
                except asyncio.CancelledError:
                    pass
                except Exception as exc:  # noqa: BLE001 - re-raised below
                    # A crashed dispatcher is the one diagnostic of why
                    # futures hung; finish cleanup, then surface it.
                    dispatcher_error = exc
                self._dispatcher = None
            if self.manifest:
                ok = write_manifest(self.manifest, ASYNC_MANIFEST_METHOD,
                                    sorted(self._manifest_keys),
                                    self._manifest_done, completed=True,
                                    cells=self._manifest_cells,
                                    durable=self.durable)
                if not ok:
                    self.stats.manifest_write_errors += 1
            if self._owns_portfolio or self._started_pool:
                self._portfolio.close()
                self._started_pool = False
        if dispatcher_error is not None:
            raise dispatcher_error

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    async def submit(self, scenarios: Sequence[Problem], method: str = "auto",
                     **options: Any) -> SubmitTicket:
        """Enqueue a scenario batch; returns futures per slot/request key.

        Resolution order per slot: share an in-flight solve (tier 0), then
        the persistent store (tier 2), else the request is queued --
        awaiting here is the backpressure point when the queue is full.
        ``options`` must be literal values
        (:func:`~repro.engine.core.request_key` raises otherwise).
        """
        self._require_open()
        await self.start()
        loop = asyncio.get_running_loop()
        problems = [normalize_problem(p) for p in scenarios]
        keys = [request_key(p, method, limits=self.limits,
                            validate=self.validate, **options)
                for p in problems]
        self.stats.batches += 1
        store = self.store
        futures: List[asyncio.Future] = []
        # One store lookup per unique key per batch: duplicate slots of an
        # already-persisted scenario reuse the fetched report instead of
        # re-reading the shard from disk on the event loop.
        fetched: Dict[str, Optional[SolveReport]] = {}
        for index, (key, problem) in enumerate(zip(keys, problems)):
            self.stats.requests += 1
            slot: asyncio.Future = loop.create_future()
            futures.append(slot)
            entry = self._inflight.get(key)
            if entry is not None:
                self.stats.deduped += 1
                entry.add_waiter(index, problem, slot)
                continue
            if key in self._prewarmed_keys:
                report = cached_solution(key)
                if report is not None:
                    self.stats.prewarm_hits += 1
                    if key in self._manifest_tokens:
                        self.stats.resumed += 1
                    slot.set_result(SweepResult(
                        index=index, key=key, problem=problem,
                        report=report, source="memory"))
                    continue
            if key in fetched:
                report = fetched[key]
            else:
                report = store.get_report(key) if store is not None else None
                fetched[key] = report
            if report is not None:
                self.stats.store_hits += 1
                if key in self._manifest_tokens:
                    self.stats.resumed += 1
                slot.set_result(SweepResult(
                    index=index, key=key, problem=problem,
                    report=_clone_report(report, from_cache=True,
                                         cache_tier="store"),
                    source="store"))
                continue
            entry = _Inflight(key=key, problem=problem, method=method,
                              options=dict(options))
            entry.add_waiter(index, problem, slot)
            self._inflight[key] = entry
            try:
                # Backpressure: a full queue blocks the producer right here.
                await self._queue.put(entry)
            except asyncio.CancelledError:
                # The producer was cancelled at the backpressure point: the
                # entry never reached the queue, so nothing will ever
                # dispatch it.  Retract it -- leaving it in ``_inflight``
                # would dedup every future request for this key onto a dead
                # entry (a permanent hang).  Waiters that deduplicated onto
                # it while we blocked are failed, not hung.
                self._inflight.pop(key, None)
                entry.resolve(None, "failed",
                              "submission cancelled while waiting for queue space")
                raise
        return SubmitTicket(keys=keys, futures=futures)

    async def submit_specs(self, scenarios: Union[ScenarioGrid,
                                                  Sequence[ScenarioSpec]],
                           method: str = "auto",
                           **options: Any) -> SubmitTicket:
        """Enqueue declarative scenario cells; futures per slot, no DAGs.

        The spec-native counterpart of :meth:`submit`: ``scenarios`` is a
        :class:`~repro.scenarios.spec.ScenarioGrid` (expanded lazily) or a
        sequence of :class:`~repro.scenarios.spec.ScenarioSpec` records.
        Dedup, in-flight sharing and store lookups all happen **before
        materialization** -- a cell whose request fingerprint is already
        known (spec-key memo or persistent alias) is answered from the
        store without building its DAG; everything else is queued as a
        spec and materialized inside the worker shard that solves it.

        The ticket's ``keys`` carry each slot's request fingerprint when
        already resolved, else its spec alias key; delivered
        :class:`~repro.engine.service.SweepResult` objects always carry
        the true request fingerprint (learned from the worker), except for
        cells that failed before materializing.
        """
        self._require_open()
        await self.start()
        loop = asyncio.get_running_loop()
        if isinstance(scenarios, ScenarioGrid):
            scenarios = scenarios.expand()
        specs = list(scenarios)
        require(all(isinstance(s, ScenarioSpec) for s in specs),
                "submit_specs() wants ScenarioSpecs (or a ScenarioGrid); "
                "use submit() for materialized problems")
        self.stats.batches += 1
        store = self.store
        keys: List[str] = []
        futures: List[asyncio.Future] = []
        # The incremental planning tier: classify every unique cell of the
        # batch in one batched store pass (store-hit / alias-hit /
        # manifest-done / pending) before walking the slots.
        aliases = [spec_alias_key(spec, method, limits=self.limits,
                                  validate=self.validate, **options)
                   for spec in specs]
        # Prewarm tier: a cell whose alias was learned by warm_cache() and
        # whose report sits in the warmed LRU is answered from memory
        # before the plan is even built -- build_sweep_plan probes the
        # store per cell, so resolving here (not after) is what makes a
        # warm handoff skip the store round-trips too.
        warm_answers: Dict[str, Tuple[str, SolveReport]] = {}
        if self._warm_keys:
            for alias in aliases:
                if alias in warm_answers:
                    continue
                fingerprint = self._warm_keys.get(alias)
                if (fingerprint is None
                        or fingerprint not in self._prewarmed_keys):
                    continue
                report = cached_solution(fingerprint)
                if report is not None:
                    warm_answers[alias] = (fingerprint, report)
        unique: Dict[str, ScenarioSpec] = {}
        for alias, spec in zip(aliases, specs):
            if alias in warm_answers:
                continue
            unique.setdefault(alias, spec)
        plan = build_sweep_plan(list(unique.items()), method, store=store,
                                limits=self.limits, validate=self.validate,
                                manifest_done=self._manifest_tokens, **options)
        cell_by_alias = {cell.alias: cell for cell in plan.cells}
        for index, (alias, spec) in enumerate(zip(aliases, specs)):
            self.stats.requests += 1
            slot: asyncio.Future = loop.create_future()
            futures.append(slot)
            warm = warm_answers.get(alias)
            if warm is not None:
                fingerprint, warm_report = warm
                keys.append(fingerprint)
                self.stats.prewarm_hits += 1
                # The warmed answer carries everything a store hit would
                # have taught us: memoize spec -> fingerprint and mark the
                # manifest cell done, so restarts and grid diffs see it.
                record_spec_fingerprint(spec, fingerprint, method,
                                        limits=self.limits,
                                        validate=self.validate, **options)
                self._record_manifest_cell(alias, spec.cell_digest(),
                                           fingerprint)
                slot.set_result(SweepResult(
                    index=index, key=fingerprint, problem=None,
                    report=_clone_report(warm_report, from_cache=True,
                                         cache_tier="memory"),
                    source="memory", spec=spec))
                continue
            cell = cell_by_alias[alias]
            inflight_key = cell.key if cell.key is not None else alias
            keys.append(inflight_key)
            # Tier 0: share an in-flight solve -- under either identity
            # (an unresolved duplicate queued under its alias, or a
            # resolved one under its true fingerprint).
            entry_inflight = (self._inflight.get(inflight_key)
                              or self._inflight.get(alias))
            if entry_inflight is not None:
                self.stats.deduped += 1
                entry_inflight.add_waiter(index, None, slot, spec=spec)
                continue
            if cell.report is not None:
                self.stats.store_hits += 1
                if cell.status == CELL_MANIFEST_DONE:
                    self.stats.resumed += 1
                self._record_manifest_cell(alias, cell.digest, cell.key or "")
                slot.set_result(SweepResult(
                    index=index, key=cell.key, problem=None,
                    report=_clone_report(cell.report, from_cache=True,
                                         cache_tier="store"),
                    source="store", spec=spec))
                continue
            entry = _Inflight(key=inflight_key, problem=None, method=method,
                              options=dict(options), spec=spec, alias=alias)
            entry.add_waiter(index, None, slot, spec=spec)
            self._inflight[inflight_key] = entry
            try:
                # Backpressure: a full queue blocks the producer right here.
                await self._queue.put(entry)
            except asyncio.CancelledError:
                # Same retraction contract as submit(): an entry that never
                # reached the queue must not dedup future requests onto a
                # dead in-flight record.
                self._inflight.pop(inflight_key, None)
                entry.resolve(None, "failed",
                              "submission cancelled while waiting for queue space")
                raise
        return SubmitTicket(keys=keys, futures=futures)

    async def solve(self, problem: Problem, method: str = "auto",
                    **options: Any) -> SolveReport:
        """Submit one scenario and await its report (raises on failure)."""
        ticket = await self.submit([problem], method, **options)
        result = await ticket.futures[0]
        if result.report is None:
            raise ValidationError(f"async solve failed: {result.error}")
        return result.report

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _group_token(self, entry: _Inflight) -> str:
        # Spec entries and materialized entries never share a shard: the
        # executor task shapes differ (spec shards return key triples).
        kind = "spec" if entry.spec is not None else "problem"
        return f"{kind}|{entry.method}|{sorted(entry.options.items())!r}"

    async def _dispatch_loop(self) -> None:
        """Pop requests, batch compatible ones into shards, hand them to
        the pool.  Acquiring the semaphore *before* spawning the shard task
        stalls the popping itself, which fills the bounded queue, which
        blocks producers -- the backpressure chain end to end."""
        while True:
            entry = await self._queue.get()
            batch = [entry]
            while len(batch) < self.shard_size:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            groups: Dict[str, List[_Inflight]] = {}
            for item in batch:
                if item.abandoned():
                    self.stats.cancelled += 1
                    self._inflight.pop(item.key, None)
                    self._queue.task_done()
                    continue
                groups.setdefault(self._group_token(item), []).append(item)
            for shard in groups.values():
                await self._semaphore.acquire()
                task = asyncio.create_task(self._run_shard(shard))
                self._shard_tasks.add(task)
                task.add_done_callback(self._shard_tasks.discard)

    def _resolve_from_store(self, entry: _Inflight, key: str,
                            report: SolveReport) -> None:
        """Answer one queued entry from a concurrently-written store row."""
        self.stats.store_hits += 1
        self.stats.dup_solves_avoided += 1
        if entry.spec is not None:
            record_spec_fingerprint(entry.spec, key, entry.method,
                                    limits=self.limits,
                                    validate=self.validate, **entry.options)
            if entry.alias is not None:
                self._record_manifest_cell(entry.alias,
                                           entry.spec.cell_digest(), key)
        entry.resolve(report, "store", None, cache_tier="store", key=key)

    async def _run_shard(self, entries: List[_Inflight]) -> None:
        """Solve one shard in the pool, persist, then resolve waiters.

        Persistence (store + manifest) happens strictly *before* any waiter
        is resolved, so a client that cancels or crashes the moment its
        future fires can never leave a computed result unpersisted.

        Before dispatching, the shard rechecks the store (one batched
        pass) and claims each still-cold cell: a cell another process
        solved since submission short-circuits to its report, and a cell
        another *live* process is solving right now is waited on
        (bounded by :data:`CLAIM_WAIT_SECONDS`) then re-read -- the
        cross-runner duplicate-compute fix, counted as
        ``dup_solves_avoided``.
        """
        loop = asyncio.get_running_loop()
        store = self.store
        claimed: List[str] = []
        try:
            spec_shard = entries[0].spec is not None
            to_solve: List[_Inflight] = entries
            if store is not None:
                to_solve = []
                contended: List[_Inflight] = []
                recheck = store.get_reports_many([e.key for e in entries])
                for entry in entries:
                    true_key, report = recheck.get(entry.key, (None, None))
                    if report is not None:
                        self._resolve_from_store(entry, true_key or entry.key,
                                                 report)
                    elif store.claim_solve(entry.key):
                        claimed.append(entry.key)
                        to_solve.append(entry)
                    else:
                        contended.append(entry)
                if contended:
                    waited = 0.0
                    while (waited < CLAIM_WAIT_SECONDS
                           and any(store.solve_claim_holder(e.key) is not None
                                   for e in contended)):
                        await asyncio.sleep(_CLAIM_POLL_SECONDS)
                        waited += _CLAIM_POLL_SECONDS
                    recheck = store.get_reports_many(
                        [e.key for e in contended])
                    for entry in contended:
                        true_key, report = recheck.get(entry.key, (None, None))
                        if report is not None:
                            self._resolve_from_store(
                                entry, true_key or entry.key, report)
                        else:
                            # Claimant died or overran the wait: solve it
                            # ourselves (correct, just not deduplicated).
                            to_solve.append(entry)
            if not to_solve:
                return
            self.stats.shards += 1
            try:
                if spec_shard:
                    fn, args = self._portfolio.spec_shard_task(
                        [e.spec for e in to_solve], to_solve[0].method,
                        validate=self.validate, **to_solve[0].options)
                else:
                    fn, args = self._portfolio.shard_task(
                        [e.problem for e in to_solve], to_solve[0].method,
                        validate=self.validate, **to_solve[0].options)
                raw = await loop.run_in_executor(self._portfolio.pool,
                                                 fn, *args)
            except asyncio.CancelledError:
                # Shutdown mid-flight: the executor work itself cannot be
                # interrupted (it will finish or die with the pool), but
                # nothing gets recorded as done and waiters learn why.
                for entry in to_solve:
                    entry.resolve(None, "failed", "service shut down")
                raise
            except Exception as exc:  # noqa: BLE001 - reported per request
                raw = None
                error_text = f"{type(exc).__name__}: {exc}"
            # Normalize both shard shapes to (true_key, report, error):
            # spec workers report each cell's request fingerprint learned
            # while materializing; problem shards already know theirs.
            if raw is None:
                outcomes = [(None, None, error_text)] * len(to_solve)
            elif spec_shard:
                outcomes = list(raw)
            else:
                outcomes = [(entry.key, report, error)
                            for entry, (report, error) in zip(to_solve, raw)]

            if store is not None:
                store.put_reports([(key, report)
                                   for key, report, _err in outcomes
                                   if report is not None])
                if spec_shard:
                    # Persist the spec->fingerprint aliases so future spec
                    # submissions resolve store keys without a DAG build.
                    store.put_many(
                        [(entry.alias, {"alias_of": key})
                         for entry, (key, report, _err) in zip(to_solve, outcomes)
                         if report is not None and entry.alias is not None])
            if spec_shard:
                for entry, (key, _report, _err) in zip(to_solve, outcomes):
                    if key is not None:
                        record_spec_fingerprint(entry.spec, key, entry.method,
                                                limits=self.limits,
                                                validate=self.validate,
                                                **entry.options)
            if self.manifest:
                fresh = False
                for entry, (key, report, _err) in zip(to_solve, outcomes):
                    if report is None:
                        continue
                    fresh = True
                    if entry.spec is not None and entry.alias is not None:
                        self._record_manifest_cell(
                            entry.alias, entry.spec.cell_digest(), key or "")
                    elif key is not None and key not in self._manifest_done:
                        self._manifest_done.add(key)
                        self._manifest_tokens.add(key)
                        self._manifest_keys.append(key)
                if fresh:
                    ok = write_manifest(self.manifest, ASYNC_MANIFEST_METHOD,
                                        sorted(self._manifest_keys),
                                        self._manifest_done,
                                        completed=False,
                                        cells=self._manifest_cells,
                                        durable=self.durable)
                    if not ok:
                        self.stats.manifest_write_errors += 1
            for entry, (key, report, error) in zip(to_solve, outcomes):
                if report is not None:
                    self.stats.computed += 1
                    entry.resolve(report, "computed", None, key=key)
                else:
                    self.stats.failed += 1
                    entry.resolve(None, "failed", error, key=key)
        finally:
            if store is not None:
                for key in claimed:
                    store.release_solve_claim(key)
            for entry in entries:
                self._inflight.pop(entry.key, None)
                self._queue.task_done()
            self._semaphore.release()
