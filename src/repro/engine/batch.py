"""Batched solve kernels: shared LP skeletons across sweep shards.

Scenario sweeps funnel millions of requests through
:class:`~repro.engine.service.SweepService` into shards whose scenarios
overwhelmingly share one DAG and differ only in the budget / makespan
target.  The per-scenario cost of the LP-based solver family used to be
dominated by work that is a function of the DAG alone: rebuilding the
relaxed arcs, index maps and sparse constraint matrices for every scenario.
This module eliminates that work:

* :func:`get_lp_skeleton` -- a process-wide cache of
  :class:`~repro.core.lp.LPModelSkeleton` objects, keyed by arc-DAG content
  fingerprint (:func:`~repro.engine.fingerprint.arcdag_fingerprint`) with
  an object-identity fast path in front (the memoized two-tuple expansion
  hands every scenario of a group the *same* arc-DAG object, so the hot
  path does no hashing at all);
* :data:`CACHED_LP_BACKEND` -- the ``lp_backend`` implementation the engine
  injects into every registered LP pipeline (bi-criteria, k-way, binary),
  so each LP solve is an RHS swap on a prebuilt model;
* :func:`solve_lp_batch` -- the batched entry point
  :func:`~repro.engine.portfolio.Portfolio` shard workers dispatch to:
  group a shard's scenarios by DAG fingerprint inside the worker process,
  run the memoized structure probe once per group, and drive the group's
  scenarios consecutively so the skeleton and transform caches stay hot.

Work elimination is observable on machine-independent counters
(:func:`batch_kernel_info`): a same-DAG budget sweep of N scenarios
performs 1 skeleton build and N solves instead of N of each --
``benchmarks/bench_batched_lp.py`` asserts exactly that.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.arcdag import ArcDAG
from repro.core.lp import LPModelSkeleton, LPSolution, lp_kernel_counters, \
    reset_lp_kernel_counters
from repro.engine.cache import LRUCache
from repro.engine.fingerprint import arcdag_fingerprint
from repro.engine.structure import analyze_dag, structure_cache_info

__all__ = [
    "get_lp_skeleton",
    "CachedLPBackend",
    "CACHED_LP_BACKEND",
    "solve_lp_batch",
    "batch_kernel_info",
    "clear_lp_skeleton_cache",
]

#: Content-addressed skeleton cache: ``(arc-DAG fingerprint, big_m) -> skeleton``.
_SKELETON_CACHE = LRUCache(maxsize=64)

#: Identity fast path: ``id(arc_dag) -> (arc_dag, big_m, skeleton, shape)``.
#: Entries hold the arc DAG strongly so a cached id cannot be recycled while
#: the entry lives; the ``is`` + shape checks guard eviction races and
#: in-place mutation (arc DAGs from the Section 2 / 3.1 transforms are
#: never mutated, but a hand-built one could be).
_ID_CACHE = LRUCache(maxsize=128)


def get_lp_skeleton(arc_dag: ArcDAG, big_m: Optional[float] = None) -> LPModelSkeleton:
    """The (cached) prebuilt LP model for ``arc_dag``.

    Two tiers: an object-identity fast path (no hashing -- the in-process
    hot path, since the engine's memoized expansion reuses one arc-DAG
    object per structure) and a content-fingerprint LRU behind it (so the
    same workload rebuilt from its generator, or unpickled into a portfolio
    worker, still shares one model).
    """
    shape = (arc_dag.num_arcs, arc_dag.num_vertices)
    hit = _ID_CACHE.get(id(arc_dag))
    if (hit is not None and hit[0] is arc_dag and hit[1] == big_m
            and hit[3] == shape):
        return hit[2]
    key = (arcdag_fingerprint(arc_dag), big_m)
    skeleton = _SKELETON_CACHE.get(key)
    if skeleton is None:
        skeleton = LPModelSkeleton(arc_dag, big_m)
        _SKELETON_CACHE.put(key, skeleton)
    _ID_CACHE.put(id(arc_dag), (arc_dag, big_m, skeleton, shape))
    return skeleton


class CachedLPBackend:
    """``lp_backend`` implementation backed by :func:`get_lp_skeleton`.

    Injected by :mod:`repro.engine.solvers` into every registered LP
    pipeline.  Solves are routed through the skeleton's *warm* sweep
    kernel (:meth:`~repro.core.lp.LPModelSkeleton.warm_solve_min_makespan`),
    so consecutive same-skeleton solves -- a sweep shard, a grid column --
    share warm state automatically: repeated RHS values are answered from
    the sweep memo without a solver call, and with ``highspy`` installed
    the loaded model re-solves RHS-only from the previous optimal basis.
    Under the default scipy backend every distinct RHS produces exactly
    the scalar :func:`~repro.core.lp.solve_min_makespan_lp` /
    :func:`~repro.core.lp.solve_min_resource_lp` call, so results stay
    bit-for-bit identical to the historical per-call path (memo answers
    repeat inputs of a deterministic solver -- identical by construction).
    """

    def solve_min_makespan(self, arc_dag: ArcDAG, budget: float) -> LPSolution:
        return get_lp_skeleton(arc_dag).warm_solve_min_makespan(budget)

    def solve_min_resource(self, arc_dag: ArcDAG, target_makespan: float) -> LPSolution:
        return get_lp_skeleton(arc_dag).warm_solve_min_resource(target_makespan)


#: The shared backend instance the engine passes to LP-based solvers.
CACHED_LP_BACKEND = CachedLPBackend()


def solve_lp_batch(problems: Sequence[Any], method: str = "auto",
                   limits: Optional[Any] = None,
                   options: Optional[Dict[str, Any]] = None,
                   validate: bool = True) -> List[Tuple[Optional[Any], Optional[str]]]:
    """Solve a shard of scenarios through the engine, batched by DAG.

    The shard's scenarios are grouped by DAG content fingerprint inside the
    calling (worker) process; each group pays for normalization, the
    structure probe and -- via :data:`CACHED_LP_BACKEND` -- the LP skeleton
    *once*, and its scenarios are solved consecutively so every per-DAG
    cache stays hot.  Returns one ``(report, error_text)`` pair per
    scenario, in input order: per-scenario failures are captured as text
    instead of aborting the shard (the
    :meth:`~repro.engine.portfolio.Portfolio.map` shard contract).

    Results are identical to calling :func:`repro.engine.core.solve` per
    scenario -- including the :class:`~repro.engine.core.SolveReport`
    certificates and cache interplay -- because each scenario still goes
    through ``solve()``; only the redundant per-scenario work is gone.
    """
    from repro.engine.core import SolveLimits, normalize_problem, solve

    limits = limits if limits is not None else SolveLimits()
    options = dict(options or {})

    # Normalization failures are per-scenario errors (identical to what a
    # direct solve() would raise), never a shard abort.
    normalized: List[Optional[Any]] = []
    results: List[Tuple[Optional[Any], Optional[str]]] = []
    for problem in problems:
        try:
            normalized.append(normalize_problem(problem))
            results.append((None, None))
        except Exception as exc:  # noqa: BLE001 - reported per scenario
            normalized.append(None)
            results.append((None, f"{type(exc).__name__}: {exc}"))

    # Group scenario indices by DAG: first by object identity (free), then
    # by the content fingerprint the structure probe computes, so pickled
    # shard copies of one workload land in one group.  A DAG whose probe
    # fails (e.g. a cycle) falls back to ungrouped solving, where solve()
    # reports the same failure per scenario instead of losing the shard.
    by_object: Dict[int, List[int]] = {}
    for index, problem in enumerate(normalized):
        if problem is not None:
            by_object.setdefault(id(problem.dag), []).append(index)
    groups: Dict[str, List[int]] = {}
    ungrouped: List[int] = []
    for indices in by_object.values():
        try:
            structure = analyze_dag(normalized[indices[0]].dag)
        except Exception:  # noqa: BLE001 - solve() re-raises it per scenario
            ungrouped.extend(indices)
            continue
        groups.setdefault(structure.fingerprint, []).extend(indices)

    for indices in list(groups.values()) + [ungrouped]:
        for index in sorted(indices):
            try:
                results[index] = (solve(normalized[index], method=method,
                                        limits=limits, validate=validate,
                                        **options), None)
            except Exception as exc:  # noqa: BLE001 - reported per scenario
                results[index] = (None, f"{type(exc).__name__}: {exc}")
    return results


def clear_lp_skeleton_cache() -> None:
    """Drop every cached LP skeleton and zero the LP kernel counters."""
    _SKELETON_CACHE.clear()
    _ID_CACHE.clear()
    reset_lp_kernel_counters()


def batch_kernel_info() -> Dict[str, Any]:
    """Machine-independent work counters of the batched kernel layer.

    Keys: ``skeletons`` (content-cache size + hit/miss counts),
    ``skeleton_identity`` (identity fast-path counts), ``lp`` (skeleton
    builds vs. HiGHS solves, :func:`~repro.core.lp.lp_kernel_counters`) and
    ``structure`` (probe cache + identity fast-path counts).  Benchmarks
    gate on these instead of wall-clock times.
    """
    return {
        "skeletons": _SKELETON_CACHE.info(),
        "skeleton_identity": _ID_CACHE.info(),
        "lp": lp_kernel_counters(),
        "structure": structure_cache_info(),
    }
