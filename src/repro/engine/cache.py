"""A small thread-safe LRU cache shared by the engine's memoization layers.

Two caches are built on this: the structure-probe cache (keyed by DAG
fingerprint, :mod:`repro.engine.structure`) and the solution cache (keyed by
``(problem fingerprint, method, limits, options)``,
:mod:`repro.engine.core`).  ``functools.lru_cache`` is not usable here
because neither DAGs nor problems are hashable by content -- the engine
hashes them explicitly with :mod:`repro.engine.fingerprint`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable, Optional

__all__ = ["LRUCache"]


class LRUCache:
    """Least-recently-used mapping with hit/miss accounting.

    All operations take an internal lock, so one cache instance can be
    shared by portfolio worker threads.
    """

    def __init__(self, maxsize: int = 128):
        self.maxsize = maxsize
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: Hashable) -> Optional[Any]:
        """Return the cached value or ``None``, updating recency and stats."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self.hits += 1
                return self._data[key]
            self.misses += 1
            return None

    def put(self, key: Hashable, value: Any) -> None:
        """Insert ``value``, evicting the least recently used entries."""
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry and reset the statistics."""
        with self._lock:
            self._data.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def info(self) -> dict:
        """Size and hit/miss statistics (mirrors ``functools.lru_cache``)."""
        with self._lock:
            return {"size": len(self._data), "maxsize": self.maxsize,
                    "hits": self.hits, "misses": self.misses}
