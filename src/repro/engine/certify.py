"""Independent certificate checks for engine solutions.

Whatever solver produced a :class:`~repro.core.problem.TradeoffSolution`,
the engine re-derives its claims from first principles before reporting it:

* the allocation is non-negative and names only known jobs
  (:mod:`repro.utils.validation`);
* re-evaluating the DAG's makespan under the allocation reproduces the
  reported makespan;
* the reported budget does not *understate* the minimum flow needed to
  route the allocation over source-to-sink paths (Question 1.3 accounting;
  baselines that account conservatively, e.g. no-reuse sums, may overstate);
* problem feasibility -- budget respected for min-makespan, target met for
  min-resource.  Bi-criteria algorithms legitimately exceed the budget by
  their proven factor, so feasibility is *recorded*, not enforced; the
  portfolio runner uses it to prefer feasible solutions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict

from repro.core.minflow import InfeasibleFlowError, allocation_min_budget
from repro.core.problem import MinMakespanProblem, MinResourceProblem, TradeoffSolution
from repro.utils.validation import ValidationError, check_non_negative

__all__ = ["Certificate", "certify_solution"]

_TOL = 1e-6


@dataclass
class Certificate:
    """Outcome of the independent checks run on one solution.

    ``passed`` means the solution's *claims* are internally consistent;
    ``feasible`` additionally means it respects the problem's constraint
    (budget or makespan target).  ``checks`` records each individual check
    and ``notes`` any skipped ones.
    """

    passed: bool
    feasible: bool
    checks: Dict[str, bool] = field(default_factory=dict)
    notes: Dict[str, str] = field(default_factory=dict)

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.passed


def certify_solution(problem, solution: TradeoffSolution,
                     dag=None) -> Certificate:
    """Run the certificate checks of the module docstring.

    Parameters
    ----------
    problem:
        The :class:`MinMakespanProblem` / :class:`MinResourceProblem` solved.
    solution:
        The solution to certify.
    dag:
        The normalized DAG the solvers actually ran on (defaults to
        ``problem.dag``); passing it avoids re-normalizing terminals.
    """
    dag = dag if dag is not None else problem.dag.ensure_single_source_sink()
    checks: Dict[str, bool] = {}
    notes: Dict[str, str] = {}

    if math.isinf(solution.makespan):
        # Declared-infeasible solutions carry no allocation worth checking.
        checks["declared_infeasible"] = True
        return Certificate(passed=True, feasible=False, checks=checks,
                           notes={"status": "solver declared the instance infeasible"})

    # 1. allocation sanity
    allocation = {job: amount for job, amount in solution.allocation.items() if amount}
    try:
        for job, amount in allocation.items():
            check_non_negative(amount, f"allocation for job {job!r}")
        checks["allocation_non_negative"] = True
    except ValidationError as exc:
        checks["allocation_non_negative"] = False
        notes["allocation_non_negative"] = str(exc)

    # 2. makespan re-evaluation
    try:
        realised = dag.makespan_value(allocation)
        ok = abs(realised - solution.makespan) <= _TOL * max(1.0, realised)
        checks["makespan_consistent"] = ok
        if not ok:
            notes["makespan_consistent"] = (
                f"reported {solution.makespan}, re-evaluated {realised}")
    except ValidationError as exc:
        checks["makespan_consistent"] = False
        notes["makespan_consistent"] = str(exc)

    # 3. routing: the reported budget must cover the allocation's min-flow
    if allocation and checks.get("allocation_non_negative", False):
        try:
            min_budget, _ = allocation_min_budget(dag, allocation)
            ok = solution.budget_used >= min_budget - _TOL * max(1.0, min_budget)
            checks["budget_covers_routing"] = ok
            if not ok:
                notes["budget_covers_routing"] = (
                    f"reported budget {solution.budget_used} < minimum routing "
                    f"flow {min_budget}")
        except InfeasibleFlowError as exc:  # pragma: no cover - defensive
            checks["budget_covers_routing"] = False
            notes["budget_covers_routing"] = str(exc)
    else:
        checks["budget_covers_routing"] = True

    # 4. problem feasibility (recorded, not enforced)
    if isinstance(problem, MinMakespanProblem):
        feasible = solution.budget_used <= problem.budget + _TOL * max(1.0, problem.budget)
        checks["within_budget"] = feasible
    elif isinstance(problem, MinResourceProblem):
        feasible = solution.makespan <= problem.target_makespan + _TOL * max(
            1.0, problem.target_makespan)
        checks["meets_target_makespan"] = feasible
    else:  # pragma: no cover - defensive
        feasible = True

    passed = all(checks.get(name, False) for name in
                 ("allocation_non_negative", "makespan_consistent", "budget_covers_routing"))
    return Certificate(passed=passed, feasible=feasible, checks=checks, notes=notes)
