"""The unified solve entry point: normalize, probe, dispatch, certify, cache.

``repro.solve`` is the single front door to every solver family of the
reproduction::

    from repro import MinMakespanProblem, solve
    report = solve(MinMakespanProblem(dag, budget=12))          # auto-dispatch
    report = solve(dag=dag, budget=12, method="bicriteria-lp")  # named solver
    report = solve(dag=tree, target_makespan=90)                # SP tree input

The pipeline is:

1. **normalize** -- accept a :class:`~repro.core.problem.MinMakespanProblem`
   / :class:`~repro.core.problem.MinResourceProblem`, or raw
   ``dag``/``budget``/``target_makespan`` keywords where ``dag`` may also be
   a series-parallel decomposition tree (:class:`~repro.core.series_parallel.SPNode`);
   terminals are made unique once, up front;
2. **probe** -- structure detection (memoized by DAG fingerprint,
   :mod:`repro.engine.structure`);
3. **dispatch** -- pick a solver from the registry
   (:mod:`repro.engine.registry`): ``method="auto"`` selects the best
   capable candidate, a solver id invokes that solver directly;
4. **certify** -- re-derive the solution's claims independently
   (:mod:`repro.engine.certify`);
5. **cache** -- the :class:`SolveReport` is cached in **two tiers** keyed on
   the :func:`~repro.engine.fingerprint.request_fingerprint` of
   ``(problem fingerprint, method, limits, options, validate)``: an
   in-process LRU (tier 1) and, when installed with
   :func:`set_solution_store`, a persistent on-disk
   :class:`~repro.engine.store.SolutionStore` (tier 2) that survives the
   process and is shared across sweeps.  See ``docs/caching.md``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterable, Optional, Tuple, Union

from repro.core.dag import TradeoffDAG
from repro.core.problem import MinMakespanProblem, MinResourceProblem, TradeoffSolution
from repro.core.series_parallel import SPNode
from repro.engine.cache import LRUCache
from repro.engine.certify import Certificate, certify_solution
from repro.engine.fingerprint import problem_fingerprint, request_fingerprint
from repro.engine.registry import (
    MIN_MAKESPAN,
    MIN_RESOURCE,
    SolverSpec,
    get_solver,
    select_solver,
)
from repro.engine.store import SolutionStore
from repro.engine.structure import analyze_dag, clear_structure_cache
from repro.utils.validation import ValidationError, require

__all__ = [
    "SolveLimits",
    "SolveReport",
    "solve",
    "normalize_problem",
    "exact_reference",
    "request_key",
    "clear_caches",
    "solution_cache_info",
    "set_solution_store",
    "get_solution_store",
    "cached_solution",
    "warm_solution_cache",
]

Problem = Union[MinMakespanProblem, MinResourceProblem]


@dataclass(frozen=True)
class SolveLimits:
    """Resource limits steering dispatch and the exact solvers.

    Attributes
    ----------
    max_exact_combinations:
        Auto-dispatch only picks exhaustive enumeration when the instance's
        breakpoint-combination count is at most this.
    max_sp_budget:
        Auto-dispatch only picks the series-parallel DP when the (integral)
        budget is at most this (its table is ``O(m * budget)``).
    exact_node_limit:
        Node cap forwarded to the branch-and-bound arc solvers.
    time_limit:
        Soft wall-clock budget in seconds.  Python solvers cannot be
        preempted mid-run; the limit bounds the *portfolio* runner's wait
        and shrinks ``max_exact_combinations`` during auto-dispatch.
    """

    max_exact_combinations: int = 20_000
    max_sp_budget: int = 4096
    exact_node_limit: int = 2_000_000
    time_limit: Optional[float] = None

    def effective_exact_combinations(self) -> int:
        """Combination cap after applying a tight ``time_limit`` (heuristic)."""
        if self.time_limit is not None and self.time_limit < 1.0:
            return min(self.max_exact_combinations, 2_000)
        return self.max_exact_combinations

    def cache_key(self) -> Tuple:
        return (self.max_exact_combinations, self.max_sp_budget,
                self.exact_node_limit, self.time_limit)


@dataclass
class SolveReport:
    """The engine's uniform answer record.

    Wraps the produced :class:`~repro.core.problem.TradeoffSolution` with
    the dispatch decision, wall time, the independent certificate and the
    structure summary -- everything a benchmark or analysis script needs
    without re-deriving it.
    """

    solution: TradeoffSolution
    solver_id: str
    method: str
    objective: str
    wall_time: float
    problem_fingerprint: str
    structure: Dict[str, Any] = field(default_factory=dict)
    certificate: Optional[Certificate] = None
    from_cache: bool = False
    #: The problem's budget (min-makespan) or target makespan (min-resource).
    parameter: Optional[float] = None
    #: Which cache tier served the report: ``"memory"`` (LRU), ``"store"``
    #: (persistent store) or ``""`` for a fresh computation.
    cache_tier: str = ""

    @property
    def makespan(self) -> float:
        return self.solution.makespan

    @property
    def budget_used(self) -> float:
        return self.solution.budget_used

    @property
    def allocation(self) -> Dict:
        return self.solution.allocation

    @property
    def lower_bound(self) -> Optional[float]:
        return self.solution.lower_bound

    @property
    def feasible(self) -> bool:
        """Does the solution respect the problem's budget / target?

        Taken from the certificate when one was produced; with
        ``validate=False`` it is recomputed from the recorded problem
        parameter so skipping validation never misreports a
        budget-violating solution as feasible.
        """
        if self.certificate is not None:
            return bool(self.certificate.feasible)
        if self.parameter is None:
            return True
        tol = 1e-6 * max(1.0, self.parameter)
        if self.objective == MIN_RESOURCE:
            return self.makespan <= self.parameter + tol
        return self.budget_used <= self.parameter + tol

    def summary(self) -> str:
        """One-line human-readable description (used by examples)."""
        cert = ""
        if self.certificate is not None:
            cert = f", certified={self.certificate.passed}, feasible={self.certificate.feasible}"
        cached = f", cached[{self.cache_tier or 'memory'}]" if self.from_cache else ""
        return (f"[{self.solver_id}] makespan={self.makespan:.3f}, "
                f"budget_used={self.budget_used:.3f}, "
                f"wall_time={self.wall_time * 1000:.1f}ms{cert}{cached}")


_SOLUTION_CACHE = LRUCache(maxsize=512)

#: Tier-2 persistent store; ``None`` until installed via :func:`set_solution_store`.
_SOLUTION_STORE: Optional[SolutionStore] = None


def set_solution_store(store: Union[SolutionStore, str, None]) -> Optional[SolutionStore]:
    """Install (or remove) the persistent tier-2 solution store.

    ``store`` may be a ready :class:`~repro.engine.store.SolutionStore`, a
    directory path (a store is opened there) or ``None`` to disable the
    tier.  Returns the installed store.  ``solve()`` consults it on every
    LRU miss and persists every fresh cacheable result; see
    ``docs/caching.md`` for the invalidation story.
    """
    global _SOLUTION_STORE
    if isinstance(store, str):
        store = SolutionStore(store)
    require(store is None or isinstance(store, SolutionStore),
            f"store must be a SolutionStore, path or None, got {type(store).__name__}")
    _SOLUTION_STORE = store
    return store


def get_solution_store() -> Optional[SolutionStore]:
    """The currently installed tier-2 store (``None`` when disabled)."""
    return _SOLUTION_STORE


def cached_solution(cache_key: str) -> Optional[SolveReport]:
    """The tier-1 LRU entry for ``cache_key``, as a cache-hit report.

    Returns ``None`` on a miss; a hit comes back defensively copied with
    ``from_cache=True`` / ``cache_tier="memory"``, exactly like the LRU
    branch of :func:`solve`.  This is the read half of the elastic-resize
    prewarm tier (:meth:`AsyncSweepService.warm_cache
    <repro.engine.async_service.AsyncSweepService.warm_cache>` answers
    moved cells from it before any plan or store probe).
    """
    cached = _SOLUTION_CACHE.get(cache_key)
    if cached is None:
        return None
    return _clone_report(cached, from_cache=True, cache_tier="memory")


def warm_solution_cache(items: Iterable[Tuple[str, SolveReport]]) -> int:
    """Bulk-load ``(cache_key, report)`` pairs into the tier-1 LRU.

    The write half of resize prewarming: a joining runner streams its
    acquired key range out of the store (:meth:`SolutionStore.scan_routed
    <repro.engine.store.SolutionStore.scan_routed>`) and installs the
    decoded reports here so its first post-join sweep hits warm memory.
    Entries already cached are left untouched (their LRU recency
    included); each installed report is defensively copied the same way
    :func:`solve` stores its own results.  Returns the number of entries
    actually installed.
    """
    count = 0
    for key, report in items:
        if _SOLUTION_CACHE.get(key) is None:
            _SOLUTION_CACHE.put(key, _clone_report(report, from_cache=False))
            count += 1
    return count


def normalize_problem(problem: Optional[Problem] = None, *,
                      dag: Union[TradeoffDAG, SPNode, None] = None,
                      budget: Optional[float] = None,
                      target_makespan: Optional[float] = None) -> Problem:
    """Normalize the accepted input forms into a problem dataclass.

    Exactly one of ``problem`` or ``dag`` must be given.  With ``dag``,
    exactly one of ``budget`` (min-makespan) or ``target_makespan``
    (min-resource) selects the objective; an :class:`SPNode` decomposition
    tree is accepted in place of a DAG and converted via
    :meth:`~repro.core.series_parallel.SPNode.to_dag`.
    """
    if problem is not None:
        require(dag is None and budget is None and target_makespan is None,
                "pass either a problem object or dag/budget/target_makespan keywords, not both")
        require(isinstance(problem, (MinMakespanProblem, MinResourceProblem)),
                f"unsupported problem type {type(problem).__name__}")
        return problem
    require(dag is not None, "solve() needs a problem object or a dag= keyword")
    if isinstance(dag, SPNode):
        dag = dag.to_dag()
    require(isinstance(dag, TradeoffDAG),
            f"dag must be a TradeoffDAG or SPNode, got {type(dag).__name__}")
    require((budget is None) != (target_makespan is None),
            "pass exactly one of budget= (min-makespan) or target_makespan= (min-resource)")
    if budget is not None:
        return MinMakespanProblem(dag, budget)
    return MinResourceProblem(dag, target_makespan)


def _objective_of(problem: Problem) -> str:
    return MIN_MAKESPAN if isinstance(problem, MinMakespanProblem) else MIN_RESOURCE


def _parameter_of(problem: Problem) -> float:
    return problem.budget if isinstance(problem, MinMakespanProblem) else problem.target_makespan


def _plain_option(value: Any) -> bool:
    """Is ``value`` a literal whose ``repr`` is stable and value-defining?

    Cache keys are content hashes over ``repr(options)``; arbitrary
    objects have reprs that either omit state (``Config()``) or embed a
    reusable memory address, both of which could alias distinct requests.
    Only literals (and flat containers of literals) are key-safe.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return True
    if isinstance(value, (tuple, list)):
        return all(_plain_option(v) for v in value)
    return False


def _options_key(options: Dict[str, Any]) -> Tuple:
    if all(_plain_option(v) for v in options.values()):
        return tuple(sorted(options.items()))
    # Non-literal option values disable caching for this call entirely
    # (see `storable` in solve()): an id-based key could falsely hit
    # after the address is recycled, so no key is safe.
    return ("__uncacheable__",)


def _clone_report(report: SolveReport, from_cache: bool,
                  cache_tier: str = "") -> SolveReport:
    """A defensively-copied report, so cache entries stay immutable.

    Callers may edit ``report.allocation`` or metadata in place (some
    solvers do exactly that internally); both the stored entry and every
    cache hit get their own copies of the mutable containers.
    """
    solution = report.solution
    solution_copy = TradeoffSolution(
        makespan=solution.makespan,
        budget_used=solution.budget_used,
        allocation=dict(solution.allocation),
        algorithm=solution.algorithm,
        lower_bound=solution.lower_bound,
        resource_lower_bound=solution.resource_lower_bound,
        metadata=dict(solution.metadata),
    )
    certificate = report.certificate
    if certificate is not None:
        certificate = replace(certificate, checks=dict(certificate.checks),
                              notes=dict(certificate.notes))
    return replace(report, solution=solution_copy, structure=dict(report.structure),
                   certificate=certificate, from_cache=from_cache,
                   cache_tier=cache_tier if from_cache else "")


def _resolve_request(problem: Problem, method: str, limits: SolveLimits,
                     validate: bool, options: Dict[str, Any]):
    """Resolve one solve request into its dispatch decision and cache key.

    The single place where dispatch (including auto-mode option-hint
    filtering) and cache-key derivation happen, shared by :func:`solve`
    and :func:`request_key` so the two can never disagree on a key.

    Returns ``(problem, structure, spec, options, digest, cache_key,
    storable)`` where ``problem`` is rebuilt on the normalized DAG and
    ``options`` are the ones actually forwarded to the solver.
    """
    structure = analyze_dag(problem.dag)
    # Solvers and certificates run on the normalized DAG so virtual-terminal
    # allocations always resolve.
    if structure.dag is not problem.dag:
        problem = (MinMakespanProblem(structure.dag, problem.budget)
                   if isinstance(problem, MinMakespanProblem)
                   else MinResourceProblem(structure.dag, problem.target_makespan))

    objective = _objective_of(problem)
    if method == "auto":
        spec: SolverSpec = select_solver(problem, structure, limits, objective)
        # Under auto-dispatch, options are hints: only the ones the chosen
        # solver understands are forwarded (alpha= is meaningless to the DP).
        options = spec.supported_options(options)
    else:
        spec = get_solver(method)
        require(objective in spec.objectives,
                f"solver {spec.solver_id!r} does not support {objective}")
        unknown = set(options) - set(spec.option_names)
        require(not unknown,
                f"solver {spec.solver_id!r} does not accept options {sorted(unknown)}; "
                f"supported: {sorted(spec.option_names)}")

    digest = problem_fingerprint(structure.dag, objective, _parameter_of(problem),
                                 dag_digest=structure.fingerprint)
    options_key = _options_key(options)
    # Non-literal option values make the request unkeyable by content;
    # callers skip both cache tiers for such requests (a stale or aliased
    # key would return the wrong report).
    storable = not (options_key and options_key[0] == "__uncacheable__")
    cache_key = request_fingerprint(digest, method, limits.cache_key(),
                                    options_key, validate)
    return problem, structure, spec, options, digest, cache_key, storable


def solve(problem: Optional[Problem] = None, method: str = "auto", *,
          dag: Union[TradeoffDAG, SPNode, None] = None,
          budget: Optional[float] = None,
          target_makespan: Optional[float] = None,
          limits: Optional[SolveLimits] = None,
          time_limit: Optional[float] = None,
          use_cache: bool = True,
          validate: bool = True,
          **options: Any) -> SolveReport:
    """Solve a tradeoff problem through the engine (see module docstring).

    Parameters
    ----------
    problem:
        A :class:`MinMakespanProblem` or :class:`MinResourceProblem`
        (alternatively pass ``dag=`` plus ``budget=`` / ``target_makespan=``).
    method:
        ``"auto"`` (capability-based dispatch) or a registered solver id
        from :func:`repro.engine.registry.solver_ids`.
    limits, time_limit:
        Dispatch limits; ``time_limit`` is shorthand for
        ``replace(limits, time_limit=...)``.
    use_cache:
        Reuse (and populate) the LRU solution cache keyed on the problem
        fingerprint.
    validate:
        Run the independent certificate checks on the solution.
    options:
        Solver-specific keyword options (e.g. ``alpha=0.75`` for the
        LP-rounding pipelines).  With an explicit ``method`` unknown
        options raise; under ``method="auto"`` they are treated as hints
        and silently dropped when the dispatched solver does not declare
        them (see :attr:`~repro.engine.registry.SolverSpec.option_names`).

    Returns
    -------
    SolveReport
    """
    problem = normalize_problem(problem, dag=dag, budget=budget,
                                target_makespan=target_makespan)
    limits = limits if limits is not None else SolveLimits()
    if time_limit is not None:
        limits = replace(limits, time_limit=time_limit)

    (problem, structure, spec, options, digest,
     cache_key, storable) = _resolve_request(problem, method, limits,
                                             validate, options)
    objective = _objective_of(problem)
    use_cache = use_cache and storable
    store = _SOLUTION_STORE
    if use_cache:
        cached = _SOLUTION_CACHE.get(cache_key)
        if cached is not None:
            return _clone_report(cached, from_cache=True, cache_tier="memory")
        if store is not None:
            stored = store.get_report(cache_key)
            if stored is not None:
                _SOLUTION_CACHE.put(cache_key, _clone_report(stored, from_cache=False))
                return _clone_report(stored, from_cache=True, cache_tier="store")

    start = time.perf_counter()
    solution = spec.run(problem, structure, limits, **options)
    wall_time = time.perf_counter() - start

    certificate = certify_solution(problem, solution, structure.dag) if validate else None
    report = SolveReport(
        solution=solution,
        solver_id=spec.solver_id,
        method=method,
        objective=objective,
        wall_time=wall_time,
        problem_fingerprint=digest,
        structure=structure.summary(),
        certificate=certificate,
        parameter=_parameter_of(problem),
    )
    if use_cache:
        _SOLUTION_CACHE.put(cache_key, _clone_report(report, from_cache=False))
        if store is not None:
            store.put_report(cache_key, report)
    return report


def exact_reference(problem: Optional[Problem] = None, *,
                    dag: Union[TradeoffDAG, SPNode, None] = None,
                    budget: Optional[float] = None,
                    target_makespan: Optional[float] = None,
                    limits: Optional[SolveLimits] = None) -> Optional[SolveReport]:
    """Solve with an *exact* solver if any can handle the instance.

    Benchmarks measure true approximation ratios only where an exact
    optimum is computable; this helper returns the exact
    :class:`SolveReport` or ``None`` when every exact solver's
    precondition fails (instance too large, not series-parallel, ...).
    """
    from repro.core.exact import ExactSearchLimit
    from repro.engine.registry import candidate_solvers

    problem = normalize_problem(problem, dag=dag, budget=budget,
                                target_makespan=target_makespan)
    limits = limits if limits is not None else SolveLimits()
    structure = analyze_dag(problem.dag)
    objective = _objective_of(problem)
    for spec in candidate_solvers(problem, structure, limits, objective):
        if spec.kind != "exact":
            continue
        try:
            return solve(problem, method=spec.solver_id, limits=limits)
        except (ExactSearchLimit, ValidationError):
            continue
    return None


def request_key(problem: Optional[Problem] = None, method: str = "auto", *,
                dag: Union[TradeoffDAG, SPNode, None] = None,
                budget: Optional[float] = None,
                target_makespan: Optional[float] = None,
                limits: Optional[SolveLimits] = None,
                validate: bool = True,
                **options: Any) -> str:
    """The two-tier cache key :func:`solve` would use for this request.

    Lets batching layers (the sweep service) deduplicate scenarios and
    consult the persistent store without going through ``solve()`` itself.
    Accepts the same problem forms as :func:`solve` and shares its
    dispatch logic (:func:`_resolve_request`), so the key matches
    ``solve()``'s exactly -- including auto-mode option-hint filtering.

    Raises :class:`~repro.utils.validation.ValidationError` for requests
    with non-literal option values: those are exactly the requests
    ``solve()`` refuses to cache (their content cannot be keyed), so no
    valid key exists and pretending otherwise would alias distinct
    requests.
    """
    problem = normalize_problem(problem, dag=dag, budget=budget,
                                target_makespan=target_makespan)
    limits = limits if limits is not None else SolveLimits()
    _, _, _, _, _, cache_key, storable = _resolve_request(
        problem, method, limits, validate, options)
    require(storable,
            "request_key() needs content-keyable options; pass only literal "
            "option values (str/int/float/bool/None and lists/tuples thereof) "
            f"-- got {sorted(options)}")
    return cache_key


def clear_caches(store: bool = False) -> None:
    """Drop the in-process engine caches (structure probes, LP skeletons,
    spec-to-request-key memos and solutions).

    With ``store=True`` the installed persistent
    :class:`~repro.engine.store.SolutionStore` is cleared as well --
    tier-2 survives a plain ``clear_caches()`` on purpose, since outliving
    the process is its job.
    """
    # Imported lazily: batch sits above core in the layer diagram.
    from repro.engine.batch import clear_lp_skeleton_cache
    from repro.engine.fingerprint import clear_spec_key_cache

    _SOLUTION_CACHE.clear()
    clear_structure_cache()
    clear_lp_skeleton_cache()
    clear_spec_key_cache()
    if store and _SOLUTION_STORE is not None:
        _SOLUTION_STORE.clear()


def solution_cache_info() -> dict:
    """Hit/miss statistics of both solution-cache tiers.

    The in-memory LRU's counters stay at the top level (back-compat); the
    ``"store"`` key holds the persistent store's :meth:`~SolutionStore.info`
    dict (decode/scan counters included), or ``None`` when no store is
    installed, and the ``"lp"`` key holds the LP kernel counters
    (:func:`~repro.core.lp.lp_kernel_counters` -- skeleton reuse plus the
    warm-start / simplex-iteration totals), so one call surfaces every
    cache tier a metrics endpoint would export.
    """
    from repro.core.lp import lp_kernel_counters

    info = _SOLUTION_CACHE.info()
    info["store"] = _SOLUTION_STORE.info() if _SOLUTION_STORE is not None else None
    info["lp"] = lp_kernel_counters()
    return info
