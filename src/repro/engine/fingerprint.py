"""Stable fingerprints for DAGs and problems (the engine's cache keys).

Repeated scenario sweeps re-solve near-identical instances; the engine keys
its memoized structure probes and its solution cache on a content hash of
the instance rather than on object identity, so rebuilding a workload from
its generator (or unpickling it in a portfolio worker) still hits the cache.

The fingerprint covers everything a solver can observe: job names, the
canonical resource-time breakpoints of every duration function, and the
edge list.  Job insertion order is *not* part of the fingerprint -- two
DAGs with the same jobs, durations and edges hash identically regardless of
construction order.
"""

from __future__ import annotations

import hashlib
from typing import Optional

from repro.core.dag import TradeoffDAG

__all__ = ["dag_fingerprint", "problem_fingerprint"]


def _job_token(dag: TradeoffDAG, job) -> str:
    tuples = dag.duration_function(job).tuples()
    return f"{job!r}:{tuples!r}"


def dag_fingerprint(dag: TradeoffDAG) -> str:
    """Return a stable hex digest identifying ``dag`` by content.

    Two structurally identical DAGs (same job names, same canonical duration
    breakpoints, same edges) produce the same fingerprint, independent of
    the order in which jobs and edges were added.
    """
    hasher = hashlib.sha256()
    for token in sorted(_job_token(dag, job) for job in dag.jobs):
        hasher.update(token.encode())
        hasher.update(b"\x00")
    hasher.update(b"|edges|")
    for edge in sorted(f"{u!r}->{v!r}" for u, v in dag.edges):
        hasher.update(edge.encode())
        hasher.update(b"\x00")
    return hasher.hexdigest()


def problem_fingerprint(dag: TradeoffDAG, objective: str, parameter: float,
                        dag_digest: Optional[str] = None) -> str:
    """Fingerprint of a (dag, objective, budget-or-target) problem instance.

    ``dag_digest`` lets callers that already hold a :func:`dag_fingerprint`
    skip rehashing the DAG.
    """
    digest = dag_digest if dag_digest is not None else dag_fingerprint(dag)
    hasher = hashlib.sha256()
    hasher.update(digest.encode())
    hasher.update(f"|{objective}|{parameter!r}".encode())
    return hasher.hexdigest()
