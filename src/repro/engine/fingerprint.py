"""Stable fingerprints for DAGs, problems and solve requests, plus the
stable (JSON-safe) serialization of solutions that the persistent store
writes to disk.

Repeated scenario sweeps re-solve near-identical instances; the engine keys
its memoized structure probes and its solution cache on a content hash of
the instance rather than on object identity, so rebuilding a workload from
its generator (or unpickling it in a portfolio worker) still hits the cache.

The fingerprint covers everything a solver can observe: job names, the
canonical resource-time breakpoints of every duration function, and the
edge list.  Job insertion order is *not* part of the fingerprint -- two
DAGs with the same jobs, durations and edges hash identically regardless of
construction order.

Three fingerprint granularities build on each other:

* :func:`dag_fingerprint` -- the DAG's content (keys the structure cache);
* :func:`problem_fingerprint` -- DAG + objective + budget/target (identifies
  a problem instance);
* :func:`request_fingerprint` -- problem + method + limits + options +
  validation flag (identifies a *solve request*; keys both the in-memory
  LRU and the on-disk :class:`~repro.engine.store.SolutionStore`).

A fourth entry point serves the declarative scenario layer
(:mod:`repro.scenarios`): :func:`spec_fingerprint` resolves a
:class:`~repro.scenarios.spec.ScenarioSpec` to the *same* request
fingerprint its materialized problem would get.  Registered generators are
deterministic, so the mapping ``spec -> request fingerprint`` is a pure
function; it is resolved by materializing **at most once per process** and
memoized by the spec's content digest.  :func:`spec_alias_key` names the
persistent form of that memo: serving layers store
``{"alias_of": <request fingerprint>}`` under it, so a *warm* spec sweep
resolves store keys without building a single DAG
(:func:`cached_spec_fingerprint` + the alias is the no-DAG lookup path).

:func:`solution_to_payload` / :func:`solution_from_payload` round-trip a
:class:`~repro.core.problem.TradeoffSolution` through plain JSON types; see
``docs/caching.md`` for the stability guarantees this gives the store.
"""

from __future__ import annotations

import ast
import hashlib
import json
from typing import Any, Dict, Optional, Tuple

from repro.core.dag import TradeoffDAG
from repro.core.problem import TradeoffSolution
from repro.engine.cache import LRUCache

__all__ = [
    "dag_fingerprint",
    "arcdag_fingerprint",
    "problem_fingerprint",
    "request_fingerprint",
    "spec_fingerprint",
    "cached_spec_fingerprint",
    "record_spec_fingerprint",
    "spec_alias_key",
    "clear_spec_key_cache",
    "solution_to_payload",
    "solution_from_payload",
    "decode_payload_value",
    "UnserializableSolutionError",
]


class UnserializableSolutionError(ValueError):
    """A solution cannot be round-tripped through the stable JSON encoding.

    Raised by :func:`solution_to_payload` when an allocation key is not a
    Python literal (so it would not survive a disk round trip) or when a
    metadata value has no JSON representation.  The store treats this as
    "do not persist", never as a failure of the solve itself.
    """


def _job_token(dag: TradeoffDAG, job) -> str:
    tuples = dag.duration_function(job).tuples()
    return f"{job!r}:{tuples!r}"


def dag_fingerprint(dag: TradeoffDAG) -> str:
    """Return a stable hex digest identifying ``dag`` by content.

    Two structurally identical DAGs (same job names, same canonical duration
    breakpoints, same edges) produce the same fingerprint, independent of
    the order in which jobs and edges were added.
    """
    hasher = hashlib.sha256()
    for token in sorted(_job_token(dag, job) for job in dag.jobs):
        hasher.update(token.encode())
        hasher.update(b"\x00")
    hasher.update(b"|edges|")
    for edge in sorted(f"{u!r}->{v!r}" for u, v in dag.edges):
        hasher.update(edge.encode())
        hasher.update(b"\x00")
    return hasher.hexdigest()


def arcdag_fingerprint(arc_dag) -> str:
    """Return a stable hex digest identifying an :class:`~repro.core.arcdag.ArcDAG`.

    Covers everything the LP kernel can observe: source/sink, and for every
    arc its id, endpoints, canonical duration breakpoints and dummy flag.
    Keys the engine's :class:`~repro.core.lp.LPModelSkeleton` cache
    (:mod:`repro.engine.batch`), so two structurally identical expanded DAGs
    -- e.g. the same workload rebuilt from its generator in another process
    -- share one prebuilt LP model.
    """
    hasher = hashlib.sha256()
    hasher.update(f"{arc_dag.source!r}->{arc_dag.sink!r}".encode())
    for token in sorted(
            f"{arc.arc_id}|{arc.tail!r}->{arc.head!r}|"
            f"{arc.duration.tuples()!r}|{arc.is_dummy}"
            for arc in arc_dag.arcs):
        hasher.update(token.encode())
        hasher.update(b"\x00")
    return hasher.hexdigest()


def problem_fingerprint(dag: TradeoffDAG, objective: str, parameter: float,
                        dag_digest: Optional[str] = None) -> str:
    """Fingerprint of a (dag, objective, budget-or-target) problem instance.

    ``dag_digest`` lets callers that already hold a :func:`dag_fingerprint`
    skip rehashing the DAG.
    """
    digest = dag_digest if dag_digest is not None else dag_fingerprint(dag)
    hasher = hashlib.sha256()
    hasher.update(digest.encode())
    hasher.update(f"|{objective}|{parameter!r}".encode())
    return hasher.hexdigest()


def request_fingerprint(problem_digest: str, method: str, limits_key: Tuple,
                        options_key: Tuple, validate: bool) -> str:
    """Fingerprint of one full solve request (the two-tier cache key).

    Extends a :func:`problem_fingerprint` with everything else that can
    change the answer: the requested ``method`` (``"auto"`` is part of the
    key -- auto-dispatch on a grown registry may legitimately answer
    differently), the :meth:`~repro.engine.core.SolveLimits.cache_key`
    tuple, the sorted options tuple and the ``validate`` flag.  The digest
    is what the in-memory LRU and the persistent store agree on, so a
    report computed in one process is a hit in every other.
    """
    hasher = hashlib.sha256()
    hasher.update(problem_digest.encode())
    hasher.update(f"|{method}|{limits_key!r}|{options_key!r}|{validate!r}".encode())
    return hasher.hexdigest()


# ---------------------------------------------------------------------------
# spec fingerprints (the declarative scenario layer's key resolution)
# ---------------------------------------------------------------------------

#: ``spec request token -> request fingerprint``.  The token is pure spec
#: content (no DAG); the value is the materialized problem's request
#: fingerprint, learned by materializing once or seeded from a worker /
#: store alias via :func:`record_spec_fingerprint`.
_SPEC_KEY_CACHE = LRUCache(maxsize=4096)


def _spec_request_token(spec: Any, method: str, limits: Any, validate: bool,
                        options: Dict[str, Any]) -> str:
    """The no-DAG identity of one spec-native solve request."""
    from repro.engine.core import SolveLimits, _options_key
    from repro.utils.validation import require

    limits = limits if limits is not None else SolveLimits()
    options_key = _options_key(dict(options))
    require(not (options_key and options_key[0] == "__uncacheable__"),
            "spec-native requests need content-keyable options; pass only "
            "literal option values (str/int/float/bool/None and lists/tuples "
            f"thereof) -- got {sorted(options)}")
    return (f"{spec.cell_digest()}|{method}|{limits.cache_key()!r}|"
            f"{options_key!r}|{validate!r}")


def spec_fingerprint(spec: Any, method: str = "auto", *,
                     limits: Any = None, validate: bool = True,
                     **options: Any) -> str:
    """The request fingerprint ``materialize(spec)`` would be keyed under.

    Equal to ``request_key(spec.materialize(), method, ...)`` by
    construction -- generators are deterministic, so the mapping is
    resolved once (materializing the spec on first sight in this process)
    and memoized by spec content thereafter.  Serving layers avoid even
    the first materialization via :func:`cached_spec_fingerprint` plus the
    persistent :func:`spec_alias_key` entries they write.
    """
    token = _spec_request_token(spec, method, limits, validate, options)
    key = _SPEC_KEY_CACHE.get(token)
    if key is not None:
        return key
    from repro.engine.core import request_key

    key = request_key(spec.materialize(), method, limits=limits,
                      validate=validate, **options)
    _SPEC_KEY_CACHE.put(token, key)
    return key


def cached_spec_fingerprint(spec: Any, method: str = "auto", *,
                            limits: Any = None, validate: bool = True,
                            **options: Any) -> Optional[str]:
    """The memoized :func:`spec_fingerprint`, or ``None`` -- never builds
    a DAG."""
    return _SPEC_KEY_CACHE.get(
        _spec_request_token(spec, method, limits, validate, options))


def record_spec_fingerprint(spec: Any, key: str, method: str = "auto", *,
                            limits: Any = None, validate: bool = True,
                            **options: Any) -> None:
    """Seed the spec-key memo with an externally learned fingerprint.

    Serving layers call this with the request fingerprint a worker (which
    did materialize the spec) or a persistent alias entry reported, so
    subsequent :func:`cached_spec_fingerprint` calls resolve without a
    DAG build in this process either.
    """
    _SPEC_KEY_CACHE.put(
        _spec_request_token(spec, method, limits, validate, options), key)


def spec_alias_key(spec: Any, method: str = "auto", *,
                   limits: Any = None, validate: bool = True,
                   **options: Any) -> str:
    """Store key of the persistent ``spec -> request fingerprint`` alias.

    Distinct from the request fingerprint itself (aliases carry
    ``{"alias_of": ...}`` payloads, not reports) but just as stable:
    pure spec content, no DAG.  Also the pre-materialization dedup key of
    the spec-native sweep paths.
    """
    token = _spec_request_token(spec, method, limits, validate, options)
    return hashlib.sha256(f"spec-alias|{token}".encode()).hexdigest()


def clear_spec_key_cache() -> None:
    """Drop the in-process spec-to-request-key memo (tests, sweeps)."""
    _SPEC_KEY_CACHE.clear()


def _encode_key(key: Any) -> str:
    """Encode an allocation key as a ``repr`` that literal-evals back."""
    text = repr(key)
    try:
        round_tripped = ast.literal_eval(text)
    except (ValueError, SyntaxError) as exc:
        raise UnserializableSolutionError(
            f"allocation key {text} is not a Python literal") from exc
    if round_tripped != key:
        raise UnserializableSolutionError(
            f"allocation key {text} does not survive a repr round trip")
    return text


def _jsonify(value: Any, context: str) -> Any:
    """Coerce ``value`` to plain JSON types (tuples become lists)."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        # json rejects NaN/Infinity in strict mode; encode them as strings
        # understood by _unjsonify.
        if value != value or value in (float("inf"), float("-inf")):
            return {"__float__": repr(value)}
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonify(v, context) for v in value]
    if isinstance(value, dict):
        out = {}
        for k, v in value.items():
            if not isinstance(k, str):
                raise UnserializableSolutionError(
                    f"{context}: non-string dict key {k!r}")
            out[k] = _jsonify(v, context)
        # A user dict that happens to have exactly the shape of one of the
        # decoder's sentinels would be misread on load; escape it.
        if set(out) in ({"__float__"}, {"__escaped__"}):
            return {"__escaped__": out}
        return out
    # numpy arrays expose .tolist(), numpy scalars .item(); anything else
    # is rejected.
    tolist = getattr(value, "tolist", None)
    if callable(tolist):
        return _jsonify(tolist(), context)
    item = getattr(value, "item", None)
    if callable(item):
        return _jsonify(item(), context)
    raise UnserializableSolutionError(
        f"{context}: value {value!r} of type {type(value).__name__} "
        f"has no stable JSON form")


def _unjsonify(value: Any) -> Any:
    if isinstance(value, dict):
        if set(value) == {"__float__"}:
            return float(value["__float__"])  # 'inf' / '-inf' / 'nan'
        if set(value) == {"__escaped__"}:     # sentinel-shaped user dict
            return {k: _unjsonify(v) for k, v in value["__escaped__"].items()}
        return {k: _unjsonify(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_unjsonify(v) for v in value]
    return value


def decode_payload_value(value: Any) -> Any:
    """Decode one stored payload value (tagged floats, escaped dicts).

    The public counterpart of the encoder used by
    :func:`solution_to_payload`; analysis code reading raw store payloads
    (:mod:`repro.analysis.sweep`) uses this instead of re-implementing the
    encoding rules.
    """
    return _unjsonify(value)


def solution_to_payload(solution: TradeoffSolution) -> Dict[str, Any]:
    """Encode a solution as a stable, JSON-safe dict (the store's format).

    Allocation keys are stored as ``repr`` strings (restored with
    :func:`ast.literal_eval`) sorted for determinism.  The
    solution-defining fields (makespan, budget, allocation, bounds) must
    encode faithfully or :class:`UnserializableSolutionError` is raised --
    callers skip persistence then.  Metadata is free-form diagnostics and
    is encoded *best effort*: entries with no JSON form (e.g. the LP
    pipeline's full in-memory report) are dropped and their keys recorded
    under the payload's ``"dropped_metadata"`` so the loss is visible.
    """
    allocation = sorted(
        ([_encode_key(job), _jsonify(amount, "allocation amount")]
         for job, amount in solution.allocation.items()),
        key=lambda pair: pair[0])
    metadata: Dict[str, Any] = {}
    dropped = []
    for meta_key, meta_value in solution.metadata.items():
        if not isinstance(meta_key, str):
            dropped.append(repr(meta_key))
            continue
        try:
            metadata[meta_key] = _jsonify(meta_value, f"metadata[{meta_key!r}]")
        except UnserializableSolutionError:
            dropped.append(meta_key)
    # The hand-assembled top level needs the same sentinel escape _jsonify
    # applies to nested dicts, or a metadata dict shaped like a sentinel
    # would be misdecoded on load.
    if set(metadata) in ({"__float__"}, {"__escaped__"}):
        metadata = {"__escaped__": metadata}
    payload = {
        "makespan": _jsonify(solution.makespan, "makespan"),
        "budget_used": _jsonify(solution.budget_used, "budget_used"),
        "allocation": allocation,
        "algorithm": solution.algorithm,
        "lower_bound": _jsonify(solution.lower_bound, "lower_bound"),
        "resource_lower_bound": _jsonify(solution.resource_lower_bound,
                                         "resource_lower_bound"),
        "metadata": metadata,
        "dropped_metadata": sorted(dropped),
    }
    # Guarantee the payload is genuinely serializable before the store
    # commits to it (defensive: _jsonify should already have ensured this).
    json.dumps(payload)
    return payload


def solution_from_payload(payload: Dict[str, Any]) -> TradeoffSolution:
    """Inverse of :func:`solution_to_payload`."""
    allocation = {ast.literal_eval(key): _unjsonify(amount)
                  for key, amount in payload["allocation"]}
    return TradeoffSolution(
        makespan=_unjsonify(payload["makespan"]),
        budget_used=_unjsonify(payload["budget_used"]),
        allocation=allocation,
        algorithm=payload.get("algorithm", ""),
        lower_bound=_unjsonify(payload.get("lower_bound")),
        resource_lower_bound=_unjsonify(payload.get("resource_lower_bound")),
        metadata=_unjsonify(payload.get("metadata") or {}),
    )
