"""Incremental sweep planning: classify cells before any shard is formed.

The sweep services historically resolved each unique cell against the
store one key at a time, and sized shards from a static pool-width
heuristic that never looked at what the store had already answered.
This module is the planning tier that replaces both:

* :func:`build_sweep_plan` takes a sweep's unique cells (``(alias,
  spec)`` pairs -- the pre-materialization dedup the services already
  perform) and classifies **every** cell in one batched store pass
  (:meth:`SolutionStore.get_reports_many
  <repro.engine.store.SolutionStore.get_reports_many>`) into

  - ``store-hit`` -- the request fingerprint was memoized in-process and
    the store holds the report;
  - ``alias-hit`` -- the fingerprint came from the persistent
    ``{"alias_of": ...}`` entry a previous process wrote; still zero DAG
    builds;
  - ``manifest-done`` -- a resume manifest marked the cell completed
    *and* the store still holds the report (the store stays the source
    of truth: a manifest entry whose report was lost re-pends);
  - ``pending`` -- genuinely new work, the only cells a shard (or the
    cluster wire) should ever carry.

* :func:`recommend_shard_size` picks the shard size from the *plan*
  (pending-cell count, measured hit rate, cluster runner count) instead
  of the submitted batch size, so a warm 10k-cell grid with three cold
  cells forms three one-cell shards instead of pool-width monsters.

No DAG is ever materialized here: classification runs on spec content
(:meth:`~repro.scenarios.spec.ScenarioSpec.cell_digest`), the spec-key
memo (:func:`~repro.engine.fingerprint.cached_spec_fingerprint`) and
store payloads.  Pair with :func:`repro.scenarios.grid_diff` to know the
gained/lost cells of an edited grid before even planning it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.engine.fingerprint import (
    cached_spec_fingerprint,
    record_spec_fingerprint,
)

__all__ = [
    "CELL_ALIAS_HIT",
    "CELL_MANIFEST_DONE",
    "CELL_PENDING",
    "CELL_STORE_HIT",
    "PlannedCell",
    "SweepPlan",
    "build_sweep_plan",
    "recommend_shard_size",
]

#: Cell classifications, in the order the tiers are consulted.
CELL_STORE_HIT = "store-hit"
CELL_ALIAS_HIT = "alias-hit"
CELL_MANIFEST_DONE = "manifest-done"
CELL_PENDING = "pending"


@dataclass
class PlannedCell:
    """One unique cell's classification (see :func:`build_sweep_plan`)."""

    #: Pre-materialization dedup identity (``spec_alias_key``).
    alias: str
    #: The declarative cell itself.
    spec: Any
    #: Content digest of the spec (``spec.cell_digest()``).
    digest: str
    #: One of the ``CELL_*`` constants.
    status: str
    #: Resolved request fingerprint (``None`` for never-seen cells).
    key: Optional[str] = None
    #: The store's report for done cells (``None`` when pending).
    report: Any = None

    @property
    def done(self) -> bool:
        """Answered without solving (any non-pending status)."""
        return self.status != CELL_PENDING


@dataclass
class SweepPlan:
    """A classified sweep: what the caches answer, what actually runs.

    ``cells`` holds one :class:`PlannedCell` per unique alias in
    submission order.  The plan is *advice plus evidence*: the services
    yield the carried reports for done cells and shard only
    :attr:`pending`; the cluster router ships only :attr:`pending` over
    the wire.
    """

    cells: List[PlannedCell] = field(default_factory=list)
    method: str = "auto"

    # ------------------------------------------------------------------
    @property
    def pending(self) -> List[PlannedCell]:
        """Cells that need a solver, in submission order."""
        return [cell for cell in self.cells if cell.status == CELL_PENDING]

    @property
    def done(self) -> List[PlannedCell]:
        """Cells the caches answered, in submission order."""
        return [cell for cell in self.cells if cell.done]

    def count(self, status: str) -> int:
        return sum(1 for cell in self.cells if cell.status == status)

    @property
    def hit_rate(self) -> float:
        """Fraction of unique cells answered without solving."""
        return len(self.done) / len(self.cells) if self.cells else 0.0

    def shard_size(self, worker_count: int, *, oversubscription: int = 4,
                   runner_count: int = 1) -> int:
        """Adaptive shard size for this plan's pending cells."""
        return recommend_shard_size(
            len(self.pending), worker_count,
            oversubscription=oversubscription,
            runner_count=runner_count, hit_rate=self.hit_rate)

    def counts(self) -> Dict[str, int]:
        """Classification histogram plus totals (for logs and metrics)."""
        return {
            "cells": len(self.cells),
            "store_hit": self.count(CELL_STORE_HIT),
            "alias_hit": self.count(CELL_ALIAS_HIT),
            "manifest_done": self.count(CELL_MANIFEST_DONE),
            "pending": len(self.pending),
        }

    def summary(self) -> str:
        counts = self.counts()
        return (f"{counts['cells']} cells: {counts['store_hit']} store-hit, "
                f"{counts['alias_hit']} alias-hit, "
                f"{counts['manifest_done']} manifest-done, "
                f"{counts['pending']} pending "
                f"({self.hit_rate:.0%} answered)")


def recommend_shard_size(pending: int, worker_count: int, *,
                         oversubscription: int = 4, runner_count: int = 1,
                         hit_rate: float = 0.0) -> int:
    """Shard size from the plan, not the submitted batch size.

    Three inputs replace the static pool-width heuristic:

    * only **pending** cells count -- cache-answered cells never reach a
      shard, so they must not inflate shard sizes either;
    * ``runner_count`` spreads the fan-out across every cluster runner's
      pool, not just the local one;
    * the measured ``hit_rate`` biases warm sweeps toward finer shards:
      a mostly-answered sweep is latency-bound, and its few cold cells
      should spread across the whole pool instead of queueing behind one
      straggler shard.

    With ``hit_rate=0`` and ``runner_count=1`` this reproduces the
    historical :meth:`Portfolio.shard_plan
    <repro.engine.portfolio.Portfolio.shard_plan>` sizing exactly, so
    cold sweeps keep their pinned shard counts.
    """
    if pending <= 0:
        return 1
    lanes = max(1, worker_count) * max(1, runner_count)
    # hit_rate scales oversubscription up smoothly, capped at 16x so a
    # 100%-warm plan cannot divide by zero.
    effective = max(1.0, oversubscription / max(1.0 - hit_rate, 1.0 / 16.0))
    return max(1, math.ceil(pending / (lanes * effective)))


def build_sweep_plan(cells: Sequence[Tuple[str, Any]], method: str = "auto", *,
                     store: Any = None,
                     limits: Any = None,
                     validate: bool = True,
                     manifest_done: Optional[Iterable[str]] = None,
                     **options: Any) -> SweepPlan:
    """Classify a sweep's unique cells in one batched store pass.

    Parameters
    ----------
    cells:
        ``(alias, spec)`` pairs, one per unique cell in submission order
        (the services' existing pre-materialization dedup).
    store:
        The :class:`~repro.engine.store.SolutionStore` to consult; with
        ``None`` every cell whose fingerprint is not memoized is simply
        pending.
    manifest_done:
        Tokens a resume manifest recorded as completed.  Any of a cell's
        identities may match -- its alias, its resolved request
        fingerprint or its cell digest -- which is what lets v2
        (digest-keyed) and legacy v1 (request-keyed) manifests both
        drive resume.
    method / limits / validate / options:
        The sweep's solve context (part of every fingerprint).

    Cells resolved through a persistent alias entry are recorded into
    the in-process spec-key memo as a side effect, exactly as the
    per-cell path did -- the next sweep in this process skips the store
    round-trip for them.
    """
    marked: Set[str] = set(manifest_done or ())
    planned: List[PlannedCell] = []
    memo_keys: Dict[str, Optional[str]] = {}
    for alias, spec in cells:
        memo_keys[alias] = cached_spec_fingerprint(
            spec, method, limits=limits, validate=validate, **options)
        planned.append(PlannedCell(alias=alias, spec=spec,
                                   digest=spec.cell_digest(),
                                   status=CELL_PENDING,
                                   key=memo_keys[alias]))

    if store is not None and planned:
        # One batched pass: cells with a memoized fingerprint probe it
        # directly, the rest probe their alias entry (followed to its
        # target inside the store, still batched per shard).
        probes = [cell.key if cell.key is not None else cell.alias
                  for cell in planned]
        resolved = store.get_reports_many(probes)
        for cell, probe in zip(planned, probes):
            true_key, report = resolved.get(probe, (None, None))
            via_alias = cell.key is None and true_key is not None
            if via_alias:
                cell.key = true_key
                record_spec_fingerprint(cell.spec, true_key, method,
                                        limits=limits, validate=validate,
                                        **options)
            if report is None:
                continue
            cell.report = report
            if marked and not marked.isdisjoint(
                    (cell.alias, cell.digest, cell.key or "")):
                cell.status = CELL_MANIFEST_DONE
            elif via_alias:
                cell.status = CELL_ALIAS_HIT
            else:
                cell.status = CELL_STORE_HIT

    return SweepPlan(cells=planned, method=method)
