"""Parallel solver portfolios and multi-scenario sweeps.

Two concurrency patterns cover the experiment workloads:

* :meth:`Portfolio.solve` -- run *several solvers on one problem*
  concurrently and return the best feasible solution found (an algorithm
  portfolio: exact solvers race the approximations, whichever finishes with
  the best certified-feasible makespan wins);
* :meth:`Portfolio.map` -- run *one auto-dispatched solve per scenario*
  concurrently over a list of problems (the scenario-sweep pattern used by
  the benchmarks; with the process executor this parallelises the CPU-bound
  exact searches across cores).

:meth:`Portfolio.map` additionally supports **sharded** execution
(``shard_size=``): consecutive scenarios are grouped into one task per
shard, amortising inter-process pickling over many scenarios -- the
batching substrate of :class:`~repro.engine.service.SweepService`.

Workers go through :func:`repro.engine.core.solve`, so every result carries
the usual :class:`~repro.engine.core.SolveReport` certificate, and the
process executor requires only that problems are picklable (they are plain
dataclasses over dict-based DAGs).

Usage (thread executor keeps the example light):

>>> from repro.core.dag import TradeoffDAG
>>> from repro.core.duration import GeneralStepDuration
>>> from repro.core.problem import MinMakespanProblem
>>> from repro.engine.portfolio import Portfolio
>>> dag = TradeoffDAG()
>>> for name in ("s", "x", "t"):
...     _ = dag.add_job(name, GeneralStepDuration([(0, 4), (2, 1)]))
>>> dag.add_edge("s", "x"); dag.add_edge("x", "t")
>>> problems = [MinMakespanProblem(dag, budget) for budget in (2.0, 4.0, 6.0)]
>>> reports = Portfolio(executor="thread").map(problems, shard_size=2)
>>> [round(r.makespan, 1) <= 12.0 for r in reports]
[True, True, True]
"""

from __future__ import annotations

import math
import os
import time
from concurrent.futures import (
    Executor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.problem import MinResourceProblem
from repro.engine.core import Problem, SolveLimits, SolveReport, normalize_problem, solve
from repro.engine.registry import MIN_RESOURCE, candidate_solvers, get_solver
from repro.engine.structure import analyze_dag
from repro.utils.validation import ValidationError, require

__all__ = ["Portfolio", "PortfolioReport"]


def _solve_task(problem: Problem, method: str, limits: SolveLimits,
                options: Dict[str, Any]) -> SolveReport:
    """Top-level worker (must be module-level so process pools can pickle it)."""
    return solve(problem, method=method, limits=limits, **options)


def _solve_shard_task(problems: Sequence[Problem], method: str, limits: SolveLimits,
                      options: Dict[str, Any], validate: bool = True,
                      ) -> List[Tuple[Optional[SolveReport], Optional[str]]]:
    """Batch worker: one ``(report, error)`` pair per scenario in the shard.

    Dispatches to :func:`repro.engine.batch.solve_lp_batch`, which groups
    the shard's scenarios by DAG fingerprint inside the worker process so
    the structure probe and the LP model skeleton are paid once per group
    instead of once per scenario.  Per-scenario failures are captured as
    text instead of aborting the shard, so one bad scenario cannot lose
    its shard-mates' results.
    """
    from repro.engine.batch import solve_lp_batch

    return solve_lp_batch(problems, method=method, limits=limits,
                          options=options, validate=validate)


def _solve_spec_shard_task(spec_payloads: Sequence[Dict[str, Any]], method: str,
                           limits: SolveLimits, options: Dict[str, Any],
                           validate: bool = True,
                           ) -> List[Tuple[Optional[str], Optional[SolveReport],
                                           Optional[str]]]:
    """Spec-native batch worker: materialize lazily, solve, report keys.

    The shard arrives as plain :class:`~repro.scenarios.spec.ScenarioSpec`
    payloads (a few hundred bytes each); the DAGs are built **here**, in
    the worker, so a sweep's peak memory is one shard of DAGs regardless
    of grid size.  Returns one ``(request_key, report, error)`` triple per
    spec, in order: the worker learns each cell's true request fingerprint
    as a by-product of materializing it, and the serving layers use it to
    persist results and seed their spec-key memos/aliases.  Failures
    (unknown generator, bad params, solve errors) are captured as text.
    """
    from repro.engine.batch import solve_lp_batch
    from repro.engine.core import request_key
    from repro.scenarios import ScenarioSpec

    keys: List[Optional[str]] = []
    problems: List[Optional[Problem]] = []
    failures: List[Optional[str]] = []
    for payload in spec_payloads:
        try:
            spec = ScenarioSpec.from_payload(payload)
            problem = spec.materialize()
            key = request_key(problem, method, limits=limits,
                              validate=validate, **options)
        except Exception as exc:  # noqa: BLE001 - reported per scenario
            keys.append(None)
            problems.append(None)
            failures.append(f"{type(exc).__name__}: {exc}")
            continue
        keys.append(key)
        problems.append(problem)
        failures.append(None)
    live = [p for p in problems if p is not None]
    solved = iter(solve_lp_batch(live, method=method, limits=limits,
                                 options=options, validate=validate))
    results: List[Tuple[Optional[str], Optional[SolveReport], Optional[str]]] = []
    for key, problem, failure in zip(keys, problems, failures):
        if problem is None:
            results.append((None, None, failure))
            continue
        report, error = next(solved)
        results.append((key, report, error))
    return results


@dataclass
class PortfolioReport:
    """Outcome of one portfolio race over a single problem.

    ``best`` is the winning :class:`SolveReport` (best certified-feasible
    solution, falling back to the best overall when no run is feasible);
    ``runs`` holds every finished report and ``errors`` maps solver ids to
    the exception text of failed runs.
    """

    best: SolveReport
    runs: List[SolveReport] = field(default_factory=list)
    errors: Dict[str, str] = field(default_factory=dict)
    wall_time: float = 0.0

    # passthrough conveniences mirroring SolveReport
    @property
    def solution(self):
        return self.best.solution

    @property
    def makespan(self) -> float:
        return self.best.makespan

    @property
    def budget_used(self) -> float:
        return self.best.budget_used

    @property
    def solver_id(self) -> str:
        return self.best.solver_id

    def summary(self) -> str:
        """One-line description of the race outcome."""
        tried = ", ".join(sorted(r.solver_id for r in self.runs))
        return (f"portfolio winner {self.best.solver_id} "
                f"(makespan={self.makespan:.3f}, budget={self.budget_used:.3f}) "
                f"out of [{tried}] in {self.wall_time * 1000:.1f}ms")


def _pick_best(objective: str, reports: Sequence[SolveReport]) -> SolveReport:
    require(len(reports) > 0, "portfolio produced no finished run")

    def makespan_key(r: SolveReport):
        return (r.makespan, r.budget_used)

    def budget_key(r: SolveReport):
        return (r.budget_used, r.makespan)

    key = budget_key if objective == MIN_RESOURCE else makespan_key
    feasible = [r for r in reports
                if r.certificate is not None and r.certificate.passed and r.feasible
                and not math.isinf(r.makespan)]
    pool = feasible if feasible else [r for r in reports if not math.isinf(r.makespan)]
    if not pool:
        pool = list(reports)
    return min(pool, key=key)


class Portfolio:
    """A configurable parallel solver portfolio.

    Parameters
    ----------
    methods:
        Solver ids to race in :meth:`solve`.  ``None`` picks every capable
        exact and approximation solver (plus the greedy path-reuse
        baseline) from the registry at call time.
    executor:
        ``"process"`` (default; true parallelism for the CPU-bound exact
        searches) or ``"thread"`` (lower overhead, useful when solvers
        spend their time in scipy).
    max_workers:
        Worker count; defaults to ``min(#tasks, cpu_count)``.
    limits:
        :class:`SolveLimits` forwarded to every worker; its ``time_limit``
        bounds how long :meth:`solve` waits before declaring the best
        finished run the winner (runs still executing keep their worker
        busy but are not waited for).

    A portfolio can also hold a **persistent pool** for serving many
    requests without paying worker start-up per call::

        with Portfolio(executor="process").start() as portfolio:
            portfolio.map(problems)   # reuses warm workers + their caches
    """

    def __init__(self, methods: Optional[Sequence[str]] = None, *,
                 executor: str = "process", max_workers: Optional[int] = None,
                 limits: Optional[SolveLimits] = None):
        require(executor in ("process", "thread"),
                f"executor must be 'process' or 'thread', got {executor!r}")
        self.methods = list(methods) if methods is not None else None
        self.executor = executor
        self.max_workers = max_workers
        self.limits = limits if limits is not None else SolveLimits()
        self._pool: Optional[Executor] = None
        self._closed = False

    # ------------------------------------------------------------------
    # executor lifecycle
    # ------------------------------------------------------------------
    def _new_executor(self, workers: int) -> Executor:
        if self.executor == "process":
            return ProcessPoolExecutor(max_workers=workers)
        return ThreadPoolExecutor(max_workers=workers)

    def start(self) -> "Portfolio":
        """Open a persistent worker pool reused by every solve/map call.

        Worker processes keep their per-process solution caches between
        calls, so repeated scenarios in a sweep are served from memory.
        Pair with :meth:`close` (or use the portfolio as a context
        manager).  Starting a closed portfolio reopens it.
        """
        if self._pool is None:
            self._pool = self._new_executor(self.max_workers or os.cpu_count() or 2)
        self._closed = False
        return self

    def close(self) -> None:
        """Shut the persistent pool down and mark the portfolio closed.

        A closed portfolio raises :class:`RuntimeError` from every
        solve/map/submit entry point (instead of failing deep inside a
        shut-down executor); :meth:`start` reopens it.
        """
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        self._closed = True

    @property
    def closed(self) -> bool:
        """Has :meth:`close` been called (without a :meth:`start` since)?"""
        return self._closed

    def _require_open(self, operation: str) -> None:
        if self._closed:
            raise RuntimeError(
                f"Portfolio is closed; {operation} needs a live portfolio "
                "(call start() to reopen it)")

    @property
    def pool(self) -> Optional[Executor]:
        """The persistent executor opened by :meth:`start` (else ``None``).

        Exposed for non-blocking front-ends (the asyncio serving layer)
        that submit shard work through
        ``loop.run_in_executor(portfolio.pool, *portfolio.shard_task(...))``
        instead of blocking on :meth:`submit_shard` futures.
        """
        return self._pool

    def __enter__(self) -> "Portfolio":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _acquire_executor(self, n_tasks: int):
        """Return ``(executor, transient)``; transient pools are per-call."""
        if self._pool is not None:
            return self._pool, False
        workers = self.max_workers or min(n_tasks, os.cpu_count() or 2)
        workers = max(1, min(workers, n_tasks))
        return self._new_executor(workers), True

    def worker_count(self) -> int:
        """Workers a started pool has (or an unbounded call would get)."""
        return self.max_workers or os.cpu_count() or 2

    @staticmethod
    def shard_plan(n_tasks: int, workers: int, oversubscription: int = 4) -> int:
        """A shard size giving every worker ~``oversubscription`` shards.

        Small shards keep the pool load-balanced; large shards amortise
        pickling.  ``oversubscription`` trades between the two.
        """
        require(workers > 0 and oversubscription > 0,
                "workers and oversubscription must be positive")
        if n_tasks <= 0:
            return 1
        return max(1, math.ceil(n_tasks / (workers * oversubscription)))

    def _methods_for(self, problem: Problem) -> List[str]:
        if self.methods is not None:
            return self.methods
        structure = analyze_dag(problem.dag)
        objective = (MIN_RESOURCE if isinstance(problem, MinResourceProblem)
                     else "min_makespan")
        ids = [spec.solver_id
               for spec in candidate_solvers(problem, structure, self.limits, objective)
               if spec.kind in ("exact", "approximation")]
        if objective != MIN_RESOURCE and "greedy-path-reuse" not in ids:
            ids.append("greedy-path-reuse")
        return ids

    # ------------------------------------------------------------------
    def solve(self, problem: Optional[Problem] = None, *,
              dag=None, budget: Optional[float] = None,
              target_makespan: Optional[float] = None,
              **options: Any) -> PortfolioReport:
        """Race the portfolio's solvers on one problem; return the best run.

        Accepts the same problem forms as :func:`repro.engine.core.solve`.
        Solvers that raise (e.g. :class:`~repro.core.exact.ExactSearchLimit`)
        are recorded in ``errors`` and do not fail the race as long as one
        run finishes.  ``options`` are race-wide hints: each raced solver
        only receives the options it declares (so ``alpha=`` reaches the
        LP pipeline without crashing the DP next to it).  When
        ``limits.time_limit`` elapses, the best *finished* run wins and
        unfinished runs are abandoned (their workers are not waited for).
        """
        self._require_open("solve()")
        problem = normalize_problem(problem, dag=dag, budget=budget,
                                    target_makespan=target_makespan)
        methods = self._methods_for(problem)
        require(len(methods) > 0, "portfolio has no solver to run")
        objective = (MIN_RESOURCE if isinstance(problem, MinResourceProblem)
                     else "min_makespan")

        start = time.perf_counter()
        reports: List[SolveReport] = []
        errors: Dict[str, str] = {}
        pool, transient = self._acquire_executor(len(methods))
        try:
            futures: Dict[Future, str] = {
                pool.submit(_solve_task, problem, method, self.limits,
                            get_solver(method).supported_options(options)): method
                for method in methods
            }
            done, not_done = wait(futures, timeout=self.limits.time_limit)
            for future in done:
                method = futures[future]
                try:
                    reports.append(future.result())
                except Exception as exc:  # noqa: BLE001 - race keeps going
                    errors[method] = f"{type(exc).__name__}: {exc}"
            for future in not_done:
                future.cancel()
                errors.setdefault(futures[future],
                                  f"unfinished at time_limit={self.limits.time_limit}s")
        finally:
            if transient:
                pool.shutdown(wait=False, cancel_futures=True)
        wall_time = time.perf_counter() - start

        if not reports:
            raise ValidationError(
                f"portfolio produced no finished run (errors: {errors})")
        best = _pick_best(objective, reports)
        return PortfolioReport(best=best, runs=reports, errors=errors, wall_time=wall_time)

    # ------------------------------------------------------------------
    def map(self, problems: Sequence[Problem], method: str = "auto",
            skip_errors: bool = False, shard_size: Optional[int] = None,
            **options: Any) -> List[Optional[SolveReport]]:
        """Solve many scenarios concurrently (order-preserving).

        Each problem goes through :func:`repro.engine.core.solve` with the
        given ``method`` (default: auto-dispatch per scenario).  With the
        process executor this is the multi-core scenario sweep used by the
        benchmarks.  A failing scenario raises by default (remaining tasks
        are cancelled); with ``skip_errors=True`` it yields ``None`` in its
        slot and the rest of the sweep completes.

        ``shard_size=k`` groups consecutive scenarios into one task per
        ``k`` scenarios (see :meth:`shard_plan` for a pool-sized choice):
        fewer, larger tasks amortise inter-process pickling on big sweeps.
        Successful results are identical to the unsharded path, and a
        failing scenario in a shard does not lose its shard-mates'
        results.  Error semantics differ in one way: without
        ``skip_errors``, a sharded failure raises
        :class:`~repro.utils.validation.ValidationError` carrying the
        original error as text (the original exception object stays in the
        worker), not the original exception type.
        """
        self._require_open("map()")
        problems = [normalize_problem(p) for p in problems]
        if not problems:
            return []
        if shard_size is not None:
            require(shard_size > 0, "shard_size must be positive")
            shards = [problems[i:i + shard_size]
                      for i in range(0, len(problems), shard_size)]
            pool, transient = self._acquire_executor(len(shards))
            try:
                futures = [pool.submit(_solve_shard_task, shard, method,
                                       self.limits, options)
                           for shard in shards]
                results: List[Optional[SolveReport]] = []
                for future in futures:
                    for report, error in future.result():
                        if error is not None and not skip_errors:
                            raise ValidationError(f"sharded map scenario failed: {error}")
                        results.append(report)
                return results
            finally:
                if transient:
                    pool.shutdown(wait=False, cancel_futures=True)
        pool, transient = self._acquire_executor(len(problems))
        try:
            futures = [pool.submit(_solve_task, p, method, self.limits, options)
                       for p in problems]
            results = []
            for future in futures:
                try:
                    results.append(future.result())
                except Exception:  # noqa: BLE001 - per-scenario tolerance
                    if not skip_errors:
                        raise
                    results.append(None)
            return results
        finally:
            if transient:
                pool.shutdown(wait=False, cancel_futures=True)

    def shard_task(self, problems: Sequence[Problem], method: str = "auto",
                   validate: bool = True, **options: Any) -> Tuple[Any, Tuple]:
        """Return ``(callable, args)`` solving one scenario shard.

        The returned pair is executor-agnostic: pass it to any submission
        primitive (``pool.submit(fn, *args)``,
        ``loop.run_in_executor(pool, fn, *args)``).  This is the
        non-blocking hook the asyncio serving layer
        (:class:`~repro.engine.async_service.AsyncSweepService`) builds on;
        the callable returns a list of ``(report, error_text)`` pairs, one
        per scenario, in order.
        """
        self._require_open("shard_task()")
        problems = [normalize_problem(p) for p in problems]
        require(len(problems) > 0, "shard_task() needs at least one problem")
        return _solve_shard_task, (problems, method, self.limits, options, validate)

    def submit_shard(self, problems: Sequence[Problem], method: str = "auto",
                     validate: bool = True, **options: Any) -> Future:
        """Submit one scenario shard to the *persistent* pool (see start()).

        Returns the :class:`~concurrent.futures.Future` of a list of
        ``(report, error_text)`` pairs, one per scenario, in order.  This is
        the streaming building block used by
        :class:`~repro.engine.service.SweepService`, which consumes shard
        futures as they complete rather than in submission order.
        """
        self._require_open("submit_shard()")
        require(self._pool is not None,
                "submit_shard() needs a persistent pool; call start() first "
                "(or use the portfolio as a context manager)")
        fn, args = self.shard_task(problems, method, validate, **options)
        return self._pool.submit(fn, *args)

    def spec_shard_task(self, specs: Sequence[Any], method: str = "auto",
                        validate: bool = True, **options: Any) -> Tuple[Any, Tuple]:
        """Return ``(callable, args)`` solving one *spec* shard lazily.

        The spec-native counterpart of :meth:`shard_task`:  ``specs`` are
        :class:`~repro.scenarios.spec.ScenarioSpec` objects (or their
        payload dicts), shipped to the worker as plain JSON-able dicts --
        DAGs are materialized inside the worker, never pickled across.
        The callable returns ``(request_key, report, error_text)`` triples,
        one per spec, in order.
        """
        self._require_open("spec_shard_task()")
        require(len(specs) > 0, "spec_shard_task() needs at least one spec")
        payloads = [spec if isinstance(spec, dict) else spec.to_payload()
                    for spec in specs]
        return _solve_spec_shard_task, (payloads, method, self.limits,
                                        options, validate)

    def submit_spec_shard(self, specs: Sequence[Any], method: str = "auto",
                          validate: bool = True, **options: Any) -> Future:
        """Submit one spec shard to the *persistent* pool (see start()).

        Returns the :class:`~concurrent.futures.Future` of the
        ``(request_key, report, error_text)`` triples of
        :meth:`spec_shard_task` -- the building block of the spec-native
        :meth:`~repro.engine.service.SweepService.sweep` path.
        """
        self._require_open("submit_spec_shard()")
        require(self._pool is not None,
                "submit_spec_shard() needs a persistent pool; call start() "
                "first (or use the portfolio as a context manager)")
        fn, args = self.spec_shard_task(specs, method, validate, **options)
        return self._pool.submit(fn, *args)
