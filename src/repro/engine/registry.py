"""The solver registry: capability declarations and auto-dispatch.

Every solver family of the reproduction registers itself here with a
:class:`SolverSpec`: a stable ``solver_id``, the objectives it supports
(min-makespan / min-resource), an exactness *kind* (``exact`` /
``approximation`` / ``baseline``), the paper result it implements, a
``can_solve`` capability predicate over the probed
:class:`~repro.engine.structure.ProblemStructure`, and the run callable.

``repro.solve(problem, method="auto")`` filters the registry by objective
and capability and picks the first candidate in ``(rank, priority)`` order:
exact solvers are preferred whenever their preconditions hold, then
single-criteria approximations specialised to the instance's duration
family, then the always-applicable LP bi-criteria pipeline, then greedy
baselines.  ``method="<solver-id>"`` bypasses capability filtering and
invokes the named solver directly (raising if it cannot run).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.engine.structure import ProblemStructure
from repro.utils.validation import ValidationError, require

__all__ = [
    "SolverSpec",
    "register_solver",
    "unregister_solver",
    "get_solver",
    "solver_ids",
    "solver_specs",
    "candidate_solvers",
    "select_solver",
    "NoSolverError",
    "MIN_MAKESPAN",
    "MIN_RESOURCE",
]

#: Objective identifiers (the two problems of Section 2).
MIN_MAKESPAN = "min_makespan"
MIN_RESOURCE = "min_resource"

_KIND_RANK = {"exact": 0, "approximation": 1, "baseline": 2}


class NoSolverError(ValidationError):
    """Raised when no registered solver can handle a problem."""


@dataclass(frozen=True)
class SolverSpec:
    """Capability record of one registered solver.

    Attributes
    ----------
    solver_id:
        Stable identifier used by ``solve(method=...)``, reports and docs.
    summary:
        One-line human-readable description.
    objectives:
        Subset of ``{"min_makespan", "min_resource"}``.
    kind:
        ``"exact"``, ``"approximation"`` or ``"baseline"`` -- the dispatch
        rank (exact first).
    theorem:
        The paper result implemented (free-form, e.g. ``"Theorem 3.4"``).
    guarantee:
        Human-readable statement of the proven bound (``"optimal"`` for
        exact solvers, ``"none"`` for baselines).
    priority:
        Tie-break within a kind; lower runs first in auto-dispatch.
    can_solve:
        ``(problem, structure, limits) -> bool`` capability predicate.
    run:
        ``(problem, structure, limits, **options) -> TradeoffSolution``.
    option_names:
        Keyword options the solver understands (e.g. ``{"alpha"}``).
        Explicitly-invoked solvers reject unknown options; auto-dispatch
        and portfolio races *filter* the caller's options down to this set
        so one solver's option cannot crash another solver in the race.
    """

    solver_id: str
    summary: str
    objectives: frozenset
    kind: str
    theorem: str
    guarantee: str
    priority: int
    can_solve: Callable = field(repr=False)
    run: Callable = field(repr=False)
    option_names: frozenset = frozenset()

    def supported_options(self, options):
        """Filter an options mapping down to the keys this solver accepts."""
        return {key: value for key, value in options.items() if key in self.option_names}


_REGISTRY: Dict[str, SolverSpec] = {}


def register_solver(solver_id: str, *, summary: str, objectives: Sequence[str],
                    kind: str, theorem: str, guarantee: str, priority: int,
                    can_solve: Callable, option_names: Sequence[str] = ()) -> Callable:
    """Decorator registering a solver run-callable under ``solver_id``.

    Usage::

        @register_solver("bicriteria-lp", summary=..., objectives=(MIN_MAKESPAN,),
                         kind="approximation", theorem="Theorem 3.4",
                         guarantee="(1/alpha, 1/(1-alpha))", priority=40,
                         can_solve=lambda problem, structure, limits: True)
        def _run(problem, structure, limits, **options): ...
    """
    require(kind in _KIND_RANK, f"unknown solver kind {kind!r}")
    objs = frozenset(objectives)
    require(objs <= {MIN_MAKESPAN, MIN_RESOURCE} and objs,
            f"objectives must be a non-empty subset of the two problems, got {objectives!r}")

    def decorator(func: Callable) -> Callable:
        require(solver_id not in _REGISTRY, f"solver id {solver_id!r} already registered")
        _REGISTRY[solver_id] = SolverSpec(
            solver_id=solver_id, summary=summary, objectives=objs, kind=kind,
            theorem=theorem, guarantee=guarantee, priority=priority,
            can_solve=can_solve, run=func, option_names=frozenset(option_names),
        )
        return func

    return decorator


def unregister_solver(solver_id: str) -> Optional[SolverSpec]:
    """Remove (and return) a registered solver; ``None`` if absent.

    Exists for tests and for applications replacing a built-in solver with
    a custom implementation under the same id.
    """
    return _REGISTRY.pop(solver_id, None)


def get_solver(solver_id: str) -> SolverSpec:
    """Look up a registered solver by id (raises on unknown ids)."""
    require(solver_id in _REGISTRY,
            f"unknown solver {solver_id!r}; registered: {sorted(_REGISTRY)}")
    return _REGISTRY[solver_id]


def solver_ids() -> List[str]:
    """All registered solver ids, in dispatch order."""
    return [spec.solver_id for spec in _sorted_specs()]


def solver_specs() -> List[SolverSpec]:
    """All registered specs, in dispatch order."""
    return list(_sorted_specs())


def _sorted_specs() -> List[SolverSpec]:
    return sorted(_REGISTRY.values(),
                  key=lambda s: (_KIND_RANK[s.kind], s.priority, s.solver_id))


def candidate_solvers(problem, structure: ProblemStructure, limits,
                      objective: str) -> List[SolverSpec]:
    """Registered solvers able to handle ``problem``, in dispatch order."""
    out: List[SolverSpec] = []
    for spec in _sorted_specs():
        if objective not in spec.objectives:
            continue
        if spec.can_solve(problem, structure, limits):
            out.append(spec)
    return out


def select_solver(problem, structure: ProblemStructure, limits,
                  objective: str) -> SolverSpec:
    """Pick the auto-dispatch solver for ``problem`` (best capable candidate)."""
    candidates = candidate_solvers(problem, structure, limits, objective)
    if not candidates:
        raise NoSolverError(
            f"no registered solver can handle this {objective} instance "
            f"({structure.num_jobs} jobs, families {sorted(structure.duration_families)})")
    return candidates[0]
