"""Batched scenario-sweep serving on top of the engine's two cache tiers.

:class:`SweepService` turns the one-shot :func:`repro.solve` into a system
for *repeated heavy workloads*: a batch of scenarios -- materialized
problems, declarative :class:`~repro.scenarios.spec.ScenarioSpec` records
or a lazily-expanded :class:`~repro.scenarios.spec.ScenarioGrid` -- comes
in, and the service

1. **deduplicates** it by :func:`~repro.engine.core.request_key` (spec
   batches: by spec content, before any DAG exists) -- every distinct
   request is solved (or fetched) exactly once, however often it repeats
   in the batch;
2. **consults the persistent store** -- scenarios already solved by any
   previous run, process or machine sharing the store are answered from
   disk without touching a solver;
3. **shards the rest** -- pending scenarios are partitioned into shards
   sized to the portfolio's worker pool
   (:meth:`~repro.engine.portfolio.Portfolio.shard_plan`) and submitted to
   its *warm* executors; inside each worker the shard is solved through
   :func:`repro.engine.batch.solve_lp_batch`, which groups scenarios by
   DAG fingerprint so the structure probe and the LP model skeleton are
   paid once per group, not once per scenario (see
   ``docs/performance.md``);
4. **streams results** -- :meth:`SweepService.sweep` is a generator
   yielding a :class:`SweepResult` per scenario as soon as its shard
   finishes (store hits first); :meth:`SweepService.run` collects them and
   also drives an optional callback;
5. **records a resumable manifest** -- with ``manifest=path`` the service
   checkpoints completed request keys after every shard, so an interrupted
   sweep restarts from the store instead of recomputing.

Usage:

>>> import tempfile
>>> from repro.core.dag import TradeoffDAG
>>> from repro.core.duration import GeneralStepDuration
>>> from repro.core.problem import MinMakespanProblem
>>> from repro.engine.portfolio import Portfolio
>>> from repro.engine.service import SweepService
>>> from repro.engine.store import SolutionStore
>>> dag = TradeoffDAG()
>>> for name in ("s", "x", "t"):
...     _ = dag.add_job(name, GeneralStepDuration([(0, 4), (2, 1)]))
>>> dag.add_edge("s", "x"); dag.add_edge("x", "t")
>>> scenarios = [MinMakespanProblem(dag, b) for b in (2.0, 4.0, 2.0, 2.0)]
>>> with SweepService(store=SolutionStore(tempfile.mkdtemp()),
...                   portfolio=Portfolio(executor="thread")) as service:
...     cold = service.run(scenarios)
...     warm = service.run(scenarios)
>>> (cold.stats.scenarios, cold.stats.unique, cold.stats.computed)
(4, 2, 2)
>>> (warm.stats.store_hits, warm.stats.computed)
(2, 0)
>>> cold.reports()[0].makespan == warm.reports()[0].makespan
True
"""

from __future__ import annotations

import json
import logging
import os
import time
from concurrent.futures import as_completed
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Union

from repro.engine.core import (
    Problem,
    SolveLimits,
    SolveReport,
    _clone_report,
    get_solution_store,
    normalize_problem,
    request_key,
)
from repro.engine.fingerprint import record_spec_fingerprint, spec_alias_key
from repro.engine.plan import (
    CELL_MANIFEST_DONE,
    build_sweep_plan,
    recommend_shard_size,
)
from repro.engine.portfolio import Portfolio
from repro.engine.store import SolutionStore, atomic_write_json
from repro.scenarios import ScenarioGrid, ScenarioSpec
from repro.utils.validation import require

__all__ = ["SweepService", "SweepResult", "SweepStats", "SweepReport",
           "ManifestState", "MANIFEST_SCHEMA_VERSION",
           "load_manifest_done", "load_manifest_state", "write_manifest"]

logger = logging.getLogger(__name__)

#: Version of the manifest file layout.  v2 manifests record, next to the
#: v1-compatible ``done`` token list, a ``cells`` map from each completed
#: cell's spec alias to its content digest and resolved request
#: fingerprint -- the digest-keyed identities that let *any* restarted
#: process (sync service, async service, a killed ``serve`` deployment)
#: resume the same grid payload.  v1 manifests are still readable;
#: unknown future schemas are ignored (the sweep starts fresh), never
#: misread.
MANIFEST_SCHEMA_VERSION = 2

#: Log the first failed manifest checkpoint only (the counter on
#: :class:`SweepStats` / ``AsyncSweepStats`` carries the full tally).
_manifest_write_warned = False


@dataclass
class ManifestState:
    """What a resume manifest knows, normalized across schema versions.

    ``done`` holds the canonical completion tokens exactly as recorded
    (request keys for materialized sweeps, spec alias keys for spec
    sweeps -- both encode the solve context).  ``tokens`` is the expanded
    consultation set: ``done`` plus, from v2 ``cells`` entries, each done
    cell's resolved request fingerprint and -- only when the manifest's
    ``method`` matches, since a bare digest does not encode the method --
    its content digest.  The planning tier matches a cell against *any*
    of its identities (see :func:`repro.engine.plan.build_sweep_plan`);
    writers persist ``done``, never ``tokens``.
    """

    done: set = field(default_factory=set)
    #: Expanded matching tokens (``done`` + per-cell keys/digests).
    tokens: set = field(default_factory=set)
    #: ``{alias: {"cell": digest, "key": request_key}}`` from v2 manifests.
    cells: Dict[str, Dict[str, str]] = field(default_factory=dict)
    completed: bool = False
    schema: int = 0

    def __post_init__(self) -> None:
        self.tokens |= self.done


def load_manifest_state(path: str, method: str) -> ManifestState:
    """Read a v1 or v2 manifest at ``path`` into a :class:`ManifestState`.

    Shared by :class:`SweepService` and the asyncio serving layer
    (:mod:`repro.engine.async_service`).  A missing, torn or incompatible
    manifest contributes nothing -- it must never kill a sweep.  v1
    manifests keep their historical gate (tokens trusted only when the
    ``method`` matches); v2 ``done`` tokens are method-encoded keys or
    aliases and are always trusted, while digest tokens from ``cells``
    are added only same-method.
    """
    if not os.path.exists(path):
        return ManifestState()
    try:
        with open(path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return ManifestState()
    if not isinstance(manifest, dict):
        return ManifestState()
    schema = manifest.get("schema")
    done_list = manifest.get("done", [])
    if not isinstance(done_list, list):
        return ManifestState()
    completed = bool(manifest.get("completed", False))
    if schema == 1:
        if manifest.get("method") != method:
            return ManifestState()
        return ManifestState(done=set(done_list), completed=completed,
                             schema=1)
    if schema == MANIFEST_SCHEMA_VERSION:
        done = set(done_list)
        tokens = set(done)
        cells = manifest.get("cells", {})
        if not isinstance(cells, dict):
            cells = {}
        state_cells: Dict[str, Dict[str, str]] = {}
        same_method = manifest.get("method") == method
        for alias, entry in cells.items():
            if not isinstance(entry, dict) or alias not in done:
                continue
            state_cells[alias] = {str(k): str(v) for k, v in entry.items()}
            key = entry.get("key")
            if isinstance(key, str) and key:
                tokens.add(key)
            digest = entry.get("cell")
            if same_method and isinstance(digest, str):
                tokens.add(digest)
        return ManifestState(done=done, tokens=tokens, cells=state_cells,
                             completed=completed,
                             schema=MANIFEST_SCHEMA_VERSION)
    return ManifestState()


def load_manifest_done(path: str, method: str) -> set:
    """Completion tokens of a compatible manifest (compat wrapper)."""
    return load_manifest_state(path, method).tokens


def write_manifest(path: str, method: str, keys: List[str],
                   done: set, completed: bool, *,
                   cells: Optional[Dict[str, Dict[str, str]]] = None,
                   durable: bool = False) -> bool:
    """Atomically checkpoint a sweep manifest (best effort, never raises).

    ``cells`` carries the v2 per-cell identity map (spec sweeps only --
    materialized-problem sweeps have no spec aliases to record).  Returns
    whether the checkpoint landed; a failed write is logged once per
    process and counted by the caller (``manifest_write_errors``), never
    raised.  ``durable=True`` fsyncs the manifest through the rename
    (matching a ``durable`` store), so a crash right after a shard
    completes cannot roll the resume point back past that shard.
    """
    global _manifest_write_warned
    payload: Dict[str, Any] = {
        "schema": MANIFEST_SCHEMA_VERSION,
        "method": method,
        "keys": keys,
        "done": sorted(done),
        "completed": completed,
    }
    if cells:
        payload["cells"] = {alias: dict(entry)
                            for alias, entry in sorted(cells.items())}
    try:
        atomic_write_json(path, payload, fsync=durable)
        return True
    except OSError as exc:
        if not _manifest_write_warned:
            _manifest_write_warned = True
            logger.warning(
                "sweep manifest checkpoint failed (%s: %s); resume state "
                "is stale until a later checkpoint lands -- further "
                "failures are counted, not logged", path, exc)
        return False


@dataclass
class SweepResult:
    """Outcome of one scenario slot in a sweep batch.

    ``index`` is the scenario's position in the submitted batch; duplicate
    scenarios get one result each (sharing the underlying report).
    ``source`` is ``"store"`` (answered from the persistent store),
    ``"computed"`` (solved this sweep) or ``"failed"``.

    Spec-native sweeps fill ``spec`` instead of ``problem``: a store-hit
    cell was never materialized, so there is no problem object to carry
    (``key`` is still the true request fingerprint -- the one the
    materialized path would use -- except for cells that failed before
    their fingerprint could be learned, which carry their spec alias key).
    """

    index: int
    key: str
    problem: Optional[Problem]
    report: Optional[SolveReport]
    source: str
    error: Optional[str] = None
    #: The declarative cell this result answers (spec-native sweeps only).
    spec: Optional[ScenarioSpec] = None


@dataclass
class SweepStats:
    """Aggregate accounting of one sweep (see :class:`SweepReport`)."""

    scenarios: int = 0
    unique: int = 0
    duplicates: int = 0
    #: Unique requests answered from the persistent store.
    store_hits: int = 0
    #: Store hits that a resume manifest had marked completed.
    resumed: int = 0
    computed: int = 0
    failed: int = 0
    shards: int = 0
    shard_size: int = 0
    #: Solves short-circuited to a store read because another process
    #: held (or had just released) the solve claim for the same cell.
    dup_solves_avoided: int = 0
    #: Manifest checkpoints that failed to land (write_manifest errors).
    manifest_write_errors: int = 0
    wall_time: float = 0.0

    @property
    def hit_rate(self) -> float:
        """Fraction of unique requests served from the store."""
        return self.store_hits / self.unique if self.unique else 0.0

    def summary(self) -> str:
        """One-line human-readable description (used by the benchmarks)."""
        return (f"{self.scenarios} scenarios ({self.unique} unique): "
                f"{self.store_hits} from store ({self.hit_rate:.0%}), "
                f"{self.computed} computed in {self.shards} shards, "
                f"{self.failed} failed, {self.wall_time * 1000:.1f}ms")


@dataclass
class SweepReport:
    """Everything :meth:`SweepService.run` produced, in batch order."""

    results: List[SweepResult] = field(default_factory=list)
    stats: SweepStats = field(default_factory=SweepStats)

    def reports(self) -> List[Optional[SolveReport]]:
        """The per-scenario :class:`SolveReport` list (``None`` on failure)."""
        return [r.report for r in self.results]

    def summary(self) -> str:
        return self.stats.summary()


def _chunk(items: List, size: int) -> List[List]:
    return [items[i:i + size] for i in range(0, len(items), size)]


class SweepService:
    """Deduplicating, store-backed, sharded scenario-sweep runner.

    Parameters
    ----------
    store:
        The persistent :class:`~repro.engine.store.SolutionStore` (or a
        directory path to open one at).  Defaults to the engine's globally
        installed store (:func:`~repro.engine.core.get_solution_store`);
        without one, the service still deduplicates and shards but nothing
        survives the process.
    portfolio:
        The :class:`~repro.engine.portfolio.Portfolio` whose (persistent)
        executor runs the pending shards.  Defaults to a process-pool
        portfolio; the service starts it lazily and closes what it started.
    limits:
        :class:`~repro.engine.core.SolveLimits` forwarded to every solve
        and baked into the request keys.
    oversubscription:
        Target shards per worker when auto-sizing shards
        (:meth:`Portfolio.shard_plan`).
    validate:
        Run certificate checks on computed solutions (part of the key).
    durable:
        Fsync the resume manifest through its atomic rename, and open a
        path-constructed store with ``durable=True`` -- crash-consistent
        checkpoints for deployments that resume sweeps after power loss.
        (A store passed as an object keeps whatever durability it was
        built with.)
    """

    def __init__(self, store: Union[SolutionStore, str, None] = None, *,
                 portfolio: Optional[Portfolio] = None,
                 limits: Optional[SolveLimits] = None,
                 oversubscription: int = 4,
                 validate: bool = True,
                 durable: bool = False):
        require(oversubscription > 0, "oversubscription must be positive")
        self.durable = durable
        if isinstance(store, str):
            store = SolutionStore(store, durable=durable)
        self._explicit_store = store
        self._owns_portfolio = portfolio is None
        self._portfolio = portfolio if portfolio is not None else Portfolio(executor="process")
        self._started_pool = False
        # Request keys and shard execution must agree on the limits: an
        # explicit ``limits`` is pushed into the portfolio, otherwise the
        # portfolio's own limits are adopted.
        if limits is not None:
            self.limits = limits
            self._portfolio.limits = limits
        else:
            self.limits = self._portfolio.limits
        self.oversubscription = oversubscription
        self.validate = validate
        self.last_stats: Optional[SweepStats] = None
        #: The classification of the most recent spec-native sweep
        #: (:class:`~repro.engine.plan.SweepPlan`), for observability.
        self.last_plan = None
        self._closed = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def store(self) -> Optional[SolutionStore]:
        """The store consulted by sweeps (explicit, else the global one)."""
        if self._explicit_store is not None:
            return self._explicit_store
        return get_solution_store()

    @property
    def portfolio(self) -> Portfolio:
        return self._portfolio

    @staticmethod
    def kernel_info() -> dict:
        """Work counters of the batched kernel layer (``docs/performance.md``).

        Counters are per process: with a thread-executor portfolio they
        reflect this service's sweeps directly; with the (default)
        process-executor portfolio the shard work happens in the worker
        processes, so the calling process only sees the skeletons and
        probes it built itself (dedup, store lookups).
        """
        from repro.engine.batch import batch_kernel_info

        return batch_kernel_info()

    def _warm_pool(self) -> Portfolio:
        if self._portfolio.pool is None:
            self._portfolio.start()
            self._started_pool = True
        return self._portfolio

    def close(self) -> None:
        """Shut down the worker pool the service started (if any).

        A closed service raises :class:`RuntimeError` from
        :meth:`sweep`/:meth:`run` instead of failing deep inside (or
        silently restarting) the executor.
        """
        if self._owns_portfolio or self._started_pool:
            self._portfolio.close()
            self._started_pool = False
        self._closed = True

    @property
    def closed(self) -> bool:
        """Has :meth:`close` been called on this service?"""
        return self._closed

    def _require_open(self) -> None:
        if self._closed:
            raise RuntimeError(
                "SweepService is closed; create a new service (or a new "
                "context manager block) to run further sweeps")

    def __enter__(self) -> "SweepService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # manifest
    # ------------------------------------------------------------------
    def _load_manifest_state(self, path: str, method: str) -> ManifestState:
        """Resume state recorded by a compatible (v1 or v2) manifest."""
        return load_manifest_state(path, method)

    def _write_manifest(self, path: str, method: str, keys: List[str],
                        done: set, completed: bool, *,
                        cells: Optional[Dict[str, Dict[str, str]]] = None,
                        stats: Optional[SweepStats] = None) -> None:
        ok = write_manifest(path, method, keys, done, completed,
                            cells=cells, durable=self.durable)
        if not ok and stats is not None:
            stats.manifest_write_errors += 1

    # ------------------------------------------------------------------
    # sweeping
    # ------------------------------------------------------------------
    def sweep(self, scenarios: Union[Sequence[Problem], Sequence[ScenarioSpec],
                                     ScenarioGrid],
              method: str = "auto", *,
              manifest: Optional[str] = None,
              shard_size: Optional[int] = None,
              **options: Any) -> Iterator[SweepResult]:
        """Stream :class:`SweepResult` objects for a scenario batch.

        ``scenarios`` may be materialized problems, declarative
        :class:`~repro.scenarios.spec.ScenarioSpec` records, or a whole
        :class:`~repro.scenarios.spec.ScenarioGrid` (expanded lazily).
        The spec-native forms deduplicate and consult the store **before
        materialization** -- a store-hit cell never builds its DAG, and
        pending cells are built lazily inside the worker shards, so peak
        memory is one shard of DAGs regardless of grid size.

        Store-served scenarios are yielded first (in batch order), then
        computed ones as their shards finish (shard completion order).
        Closing the generator early cancels unstarted shards and -- with
        ``manifest=`` -- leaves a checkpoint from which the next sweep
        resumes.  The generator's return value is the :class:`SweepStats`
        (collected by :meth:`run`).

        Sweeps are content-addressed, so ``options`` must be literal
        values (:func:`~repro.engine.core.request_key` raises otherwise).
        """
        self._require_open()
        if isinstance(scenarios, ScenarioGrid):
            scenarios = scenarios.expand()
        scenarios = list(scenarios)
        if scenarios and isinstance(scenarios[0], ScenarioSpec):
            require(all(isinstance(s, ScenarioSpec) for s in scenarios),
                    "do not mix ScenarioSpecs and materialized problems in "
                    "one sweep")
            return self._sweep_specs_iter(scenarios, method,
                                          manifest=manifest,
                                          shard_size=shard_size, **options)
        return self._sweep_iter(scenarios, method, manifest=manifest,
                                shard_size=shard_size, **options)

    def _sweep_iter(self, scenarios: Sequence[Problem], method: str, *,
                    manifest: Optional[str], shard_size: Optional[int],
                    **options: Any) -> Iterator[SweepResult]:
        """The generator behind :meth:`sweep` (which checks closed-ness
        eagerly, at call time rather than on first ``next()``)."""
        start_time = time.perf_counter()
        problems = [normalize_problem(p) for p in scenarios]
        stats = SweepStats(scenarios=len(problems))
        self.last_stats = stats

        # -- dedup by request key ---------------------------------------
        keys: List[str] = [
            request_key(p, method, limits=self.limits, validate=self.validate,
                        **options)
            for p in problems
        ]
        groups: Dict[str, List[int]] = {}
        unique_keys: List[str] = []
        for index, key in enumerate(keys):
            if key not in groups:
                groups[key] = []
                unique_keys.append(key)
            groups[key].append(index)
        stats.unique = len(unique_keys)
        stats.duplicates = stats.scenarios - stats.unique

        manifest_done = (self._load_manifest_state(manifest, method).tokens
                         if manifest else set())
        done: set = set()
        store = self.store

        # -- tier-2 lookup (one batched store pass) ---------------------
        pending: List[str] = []
        found = (store.get_reports_many(unique_keys)
                 if store is not None else {})
        try:
            for key in unique_keys:
                _resolved, report = found.get(key, (None, None))
                if report is None:
                    pending.append(key)
                    continue
                stats.store_hits += 1
                if key in manifest_done:
                    stats.resumed += 1
                done.add(key)
                for index in groups[key]:
                    # Each slot gets its own defensive copy (consumers may
                    # edit allocations in place; duplicates must not alias).
                    yield SweepResult(index=index, key=key,
                                      problem=problems[index],
                                      report=_clone_report(report, from_cache=True,
                                                           cache_tier="store"),
                                      source="store")

            # -- shard + compute ------------------------------------------
            if pending:
                portfolio = self._warm_pool()
                size = shard_size or recommend_shard_size(
                    len(pending), portfolio.worker_count(),
                    oversubscription=self.oversubscription,
                    hit_rate=stats.store_hits / stats.unique if stats.unique else 0.0)
                stats.shard_size = size
                shard_keys = _chunk(pending, size)
                futures = {}
                for shard in shard_keys:
                    shard_problems = [problems[groups[key][0]] for key in shard]
                    future = portfolio.submit_shard(shard_problems, method,
                                                    validate=self.validate,
                                                    **options)
                    futures[future] = shard
                stats.shards = len(futures)
                try:
                    for future in as_completed(futures):
                        shard = futures.pop(future)
                        outcomes = list(zip(shard, future.result()))
                        # One bulk store write per completed shard, before
                        # any result is yielded (a consumer closing the
                        # generator must not lose this shard's persistence).
                        if store is not None:
                            store.put_reports([(key, report)
                                               for key, (report, _err) in outcomes
                                               if report is not None])
                        for key, (report, error) in outcomes:
                            problem = problems[groups[key][0]]
                            if report is not None:
                                stats.computed += 1
                                done.add(key)
                                source, err = "computed", None
                            else:
                                stats.failed += 1
                                source, err = "failed", error
                            for index in groups[key]:
                                copy = (_clone_report(report, from_cache=False)
                                        if report is not None else None)
                                yield SweepResult(index=index, key=key,
                                                  problem=problem,
                                                  report=copy, source=source,
                                                  error=err)
                        if manifest:
                            self._write_manifest(manifest, method, unique_keys,
                                                 done, completed=False,
                                                 stats=stats)
                finally:
                    for future in futures:
                        future.cancel()
        finally:
            stats.wall_time = time.perf_counter() - start_time
            if manifest:
                completed = len(done) + stats.failed >= stats.unique
                self._write_manifest(manifest, method, unique_keys, done,
                                     completed=completed, stats=stats)
        return stats

    def _sweep_specs_iter(self, specs: List[ScenarioSpec], method: str, *,
                          manifest: Optional[str], shard_size: Optional[int],
                          **options: Any) -> Iterator[SweepResult]:
        """The spec-native sweep generator (see :meth:`sweep`).

        Phases:

        1. **dedup, no DAGs** -- cells are grouped by
           :func:`~repro.engine.fingerprint.spec_alias_key` (pure spec
           content);
        2. **plan, no DAGs** -- every unique cell is classified in one
           batched store pass (:func:`~repro.engine.plan.build_sweep_plan`)
           into store-hit / alias-hit / manifest-done / pending; done
           cells are yielded immediately, and pending cells are claimed
           against concurrent processes (a contended cell gets one more
           store look -- ``dup_solves_avoided``);
        3. **lazy compute** -- pending cells are sharded *as specs*
           (:meth:`Portfolio.submit_spec_shard`) with a shard size picked
           from the plan's pending count and measured hit rate; workers
           materialize inside their shard and report each cell's request
           fingerprint back, which is persisted as the alias the next
           sweep's plan will hit.
        """
        start_time = time.perf_counter()
        stats = SweepStats(scenarios=len(specs))
        self.last_stats = stats

        aliases: List[str] = [
            spec_alias_key(spec, method, limits=self.limits,
                           validate=self.validate, **options)
            for spec in specs
        ]
        groups: Dict[str, List[int]] = {}
        unique_aliases: List[str] = []
        for index, alias in enumerate(aliases):
            if alias not in groups:
                groups[alias] = []
                unique_aliases.append(alias)
            groups[alias].append(index)
        stats.unique = len(unique_aliases)
        stats.duplicates = stats.scenarios - stats.unique

        manifest_state = (self._load_manifest_state(manifest, method)
                          if manifest else ManifestState())
        done: set = set()
        done_cells: Dict[str, Dict[str, str]] = {}
        store = self.store

        # -- the incremental planning tier: classify every unique cell in
        #    one batched store pass before any shard is formed.
        plan = build_sweep_plan(
            [(alias, specs[groups[alias][0]]) for alias in unique_aliases],
            method, store=store, limits=self.limits, validate=self.validate,
            manifest_done=manifest_state.tokens, **options)
        self.last_plan = plan
        cell_by_alias = {cell.alias: cell for cell in plan.cells}
        claimed: List[str] = []
        try:
            for cell in plan.done:
                stats.store_hits += 1
                if cell.status == CELL_MANIFEST_DONE:
                    stats.resumed += 1
                done.add(cell.alias)
                done_cells[cell.alias] = {"cell": cell.digest,
                                          "key": cell.key or ""}
                for index in groups[cell.alias]:
                    yield SweepResult(index=index, key=cell.key, problem=None,
                                      report=_clone_report(cell.report,
                                                           from_cache=True,
                                                           cache_tier="store"),
                                      source="store", spec=specs[index])

            pending = [cell.alias for cell in plan.pending]

            # -- cross-process dedup: claim each pending cell; a cell some
            #    live process already claimed gets one more (batched) store
            #    look before we solve it ourselves -- if the claimant
            #    finished, this sweep short-circuits to its report.
            if store is not None and pending:
                contended = {alias for alias in pending
                             if not store.claim_solve(alias)}
                claimed = [alias for alias in pending
                           if alias not in contended]
                if contended:
                    recheck = store.get_reports_many(list(contended))
                    still_pending: List[str] = []
                    for alias in pending:
                        if alias not in contended:
                            still_pending.append(alias)
                            continue
                        true_key, report = recheck.get(alias, (None, None))
                        if report is None:
                            # Claimant still running (or died mid-solve):
                            # solving it ourselves stays correct, just not
                            # deduplicated.
                            still_pending.append(alias)
                            continue
                        cell = cell_by_alias[alias]
                        if true_key is not None:
                            record_spec_fingerprint(
                                cell.spec, true_key, method,
                                limits=self.limits, validate=self.validate,
                                **options)
                        stats.store_hits += 1
                        stats.dup_solves_avoided += 1
                        done.add(alias)
                        done_cells[alias] = {"cell": cell.digest,
                                             "key": true_key or ""}
                        for index in groups[alias]:
                            yield SweepResult(
                                index=index, key=true_key or alias,
                                problem=None,
                                report=_clone_report(report, from_cache=True,
                                                     cache_tier="store"),
                                source="store", spec=specs[index])
                    pending = still_pending

            if pending:
                portfolio = self._warm_pool()
                size = shard_size or recommend_shard_size(
                    len(pending), portfolio.worker_count(),
                    oversubscription=self.oversubscription,
                    hit_rate=stats.store_hits / stats.unique if stats.unique else 0.0)
                stats.shard_size = size
                futures = {}
                for shard in _chunk(pending, size):
                    shard_specs = [specs[groups[alias][0]] for alias in shard]
                    future = portfolio.submit_spec_shard(shard_specs, method,
                                                         validate=self.validate,
                                                         **options)
                    futures[future] = shard
                stats.shards = len(futures)
                try:
                    for future in as_completed(futures):
                        shard = futures.pop(future)
                        outcomes = list(zip(shard, future.result()))
                        # Persist reports AND the spec->key aliases before
                        # yielding: the aliases are what make the *next*
                        # sweep's store lookups DAG-free.
                        if store is not None:
                            store.put_reports(
                                [(key, report)
                                 for _alias, (key, report, _err) in outcomes
                                 if report is not None])
                            store.put_many(
                                [(alias, {"alias_of": key})
                                 for alias, (key, report, _err) in outcomes
                                 if report is not None])
                        for alias, (key, report, error) in outcomes:
                            spec = specs[groups[alias][0]]
                            if key is not None:
                                record_spec_fingerprint(
                                    spec, key, method, limits=self.limits,
                                    validate=self.validate, **options)
                            if report is not None:
                                stats.computed += 1
                                done.add(alias)
                                done_cells[alias] = {
                                    "cell": cell_by_alias[alias].digest,
                                    "key": key or ""}
                                source, err = "computed", None
                            else:
                                stats.failed += 1
                                source, err = "failed", error
                            for index in groups[alias]:
                                copy = (_clone_report(report, from_cache=False)
                                        if report is not None else None)
                                yield SweepResult(index=index,
                                                  key=key if key is not None else alias,
                                                  problem=None, report=copy,
                                                  source=source, error=err,
                                                  spec=specs[index])
                        if manifest:
                            self._write_manifest(manifest, method,
                                                 unique_aliases, done,
                                                 completed=False,
                                                 cells=done_cells,
                                                 stats=stats)
                finally:
                    for future in futures:
                        future.cancel()
        finally:
            stats.wall_time = time.perf_counter() - start_time
            if store is not None:
                for alias in claimed:
                    store.release_solve_claim(alias)
            if manifest:
                completed = len(done) + stats.failed >= stats.unique
                self._write_manifest(manifest, method, unique_aliases, done,
                                     completed=completed, cells=done_cells,
                                     stats=stats)
        return stats

    def run(self, scenarios: Union[Sequence[Problem], Sequence[ScenarioSpec],
                                   ScenarioGrid],
            method: str = "auto", *,
            manifest: Optional[str] = None,
            shard_size: Optional[int] = None,
            on_result: Optional[Callable[[SweepResult], None]] = None,
            **options: Any) -> SweepReport:
        """Run a full sweep and collect every result (batch order).

        Accepts the same scenario forms as :meth:`sweep` (problems, specs
        or a :class:`~repro.scenarios.spec.ScenarioGrid`).  ``on_result``
        is invoked on each :class:`SweepResult` as it streams in -- the
        callback API for progress reporting or incremental consumers that
        still want the final report.
        """
        results: List[SweepResult] = []
        generator = self.sweep(scenarios, method, manifest=manifest,
                               shard_size=shard_size, **options)
        while True:
            try:
                result = next(generator)
            except StopIteration as stop:
                stats = stop.value if stop.value is not None else self.last_stats
                break
            results.append(result)
            if on_result is not None:
                on_result(result)
        results.sort(key=lambda r: r.index)
        return SweepReport(results=results, stats=stats)
