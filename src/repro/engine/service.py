"""Batched scenario-sweep serving on top of the engine's two cache tiers.

:class:`SweepService` turns the one-shot :func:`repro.solve` into a system
for *repeated heavy workloads*: a batch of scenarios -- materialized
problems, declarative :class:`~repro.scenarios.spec.ScenarioSpec` records
or a lazily-expanded :class:`~repro.scenarios.spec.ScenarioGrid` -- comes
in, and the service

1. **deduplicates** it by :func:`~repro.engine.core.request_key` (spec
   batches: by spec content, before any DAG exists) -- every distinct
   request is solved (or fetched) exactly once, however often it repeats
   in the batch;
2. **consults the persistent store** -- scenarios already solved by any
   previous run, process or machine sharing the store are answered from
   disk without touching a solver;
3. **shards the rest** -- pending scenarios are partitioned into shards
   sized to the portfolio's worker pool
   (:meth:`~repro.engine.portfolio.Portfolio.shard_plan`) and submitted to
   its *warm* executors; inside each worker the shard is solved through
   :func:`repro.engine.batch.solve_lp_batch`, which groups scenarios by
   DAG fingerprint so the structure probe and the LP model skeleton are
   paid once per group, not once per scenario (see
   ``docs/performance.md``);
4. **streams results** -- :meth:`SweepService.sweep` is a generator
   yielding a :class:`SweepResult` per scenario as soon as its shard
   finishes (store hits first); :meth:`SweepService.run` collects them and
   also drives an optional callback;
5. **records a resumable manifest** -- with ``manifest=path`` the service
   checkpoints completed request keys after every shard, so an interrupted
   sweep restarts from the store instead of recomputing.

Usage:

>>> import tempfile
>>> from repro.core.dag import TradeoffDAG
>>> from repro.core.duration import GeneralStepDuration
>>> from repro.core.problem import MinMakespanProblem
>>> from repro.engine.portfolio import Portfolio
>>> from repro.engine.service import SweepService
>>> from repro.engine.store import SolutionStore
>>> dag = TradeoffDAG()
>>> for name in ("s", "x", "t"):
...     _ = dag.add_job(name, GeneralStepDuration([(0, 4), (2, 1)]))
>>> dag.add_edge("s", "x"); dag.add_edge("x", "t")
>>> scenarios = [MinMakespanProblem(dag, b) for b in (2.0, 4.0, 2.0, 2.0)]
>>> with SweepService(store=SolutionStore(tempfile.mkdtemp()),
...                   portfolio=Portfolio(executor="thread")) as service:
...     cold = service.run(scenarios)
...     warm = service.run(scenarios)
>>> (cold.stats.scenarios, cold.stats.unique, cold.stats.computed)
(4, 2, 2)
>>> (warm.stats.store_hits, warm.stats.computed)
(2, 0)
>>> cold.reports()[0].makespan == warm.reports()[0].makespan
True
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import as_completed
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Union

from repro.engine.core import (
    Problem,
    SolveLimits,
    SolveReport,
    _clone_report,
    get_solution_store,
    normalize_problem,
    request_key,
)
from repro.engine.fingerprint import (
    cached_spec_fingerprint,
    record_spec_fingerprint,
    spec_alias_key,
)
from repro.engine.portfolio import Portfolio
from repro.engine.store import SolutionStore, atomic_write_json
from repro.scenarios import ScenarioGrid, ScenarioSpec
from repro.utils.validation import require

__all__ = ["SweepService", "SweepResult", "SweepStats", "SweepReport",
           "MANIFEST_SCHEMA_VERSION", "load_manifest_done", "write_manifest"]

#: Version of the manifest file layout; mismatching manifests are ignored
#: (the sweep starts fresh), never misread.
MANIFEST_SCHEMA_VERSION = 1


def load_manifest_done(path: str, method: str) -> set:
    """Completed request keys recorded by a compatible manifest at ``path``.

    Shared by :class:`SweepService` and the asyncio serving layer
    (:mod:`repro.engine.async_service`).  A missing, torn or incompatible
    manifest (different schema or ``method``) contributes nothing -- it
    must never kill a sweep.
    """
    if not os.path.exists(path):
        return set()
    try:
        with open(path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        if (not isinstance(manifest, dict)
                or manifest.get("schema") != MANIFEST_SCHEMA_VERSION
                or manifest.get("method") != method):
            return set()
        return set(manifest.get("done", []))
    except (OSError, json.JSONDecodeError):
        return set()


def write_manifest(path: str, method: str, keys: List[str],
                   done: set, completed: bool, *,
                   durable: bool = False) -> None:
    """Atomically checkpoint a sweep manifest (best effort, never raises).

    ``durable=True`` fsyncs the manifest through the rename (matching a
    ``durable`` store), so a crash right after a shard completes cannot
    roll the resume point back past that shard.
    """
    try:
        atomic_write_json(path, {
            "schema": MANIFEST_SCHEMA_VERSION,
            "method": method,
            "keys": keys,
            "done": sorted(done),
            "completed": completed,
        }, fsync=durable)
    except OSError:  # pragma: no cover - manifest IO is best-effort
        pass


@dataclass
class SweepResult:
    """Outcome of one scenario slot in a sweep batch.

    ``index`` is the scenario's position in the submitted batch; duplicate
    scenarios get one result each (sharing the underlying report).
    ``source`` is ``"store"`` (answered from the persistent store),
    ``"computed"`` (solved this sweep) or ``"failed"``.

    Spec-native sweeps fill ``spec`` instead of ``problem``: a store-hit
    cell was never materialized, so there is no problem object to carry
    (``key`` is still the true request fingerprint -- the one the
    materialized path would use -- except for cells that failed before
    their fingerprint could be learned, which carry their spec alias key).
    """

    index: int
    key: str
    problem: Optional[Problem]
    report: Optional[SolveReport]
    source: str
    error: Optional[str] = None
    #: The declarative cell this result answers (spec-native sweeps only).
    spec: Optional[ScenarioSpec] = None


@dataclass
class SweepStats:
    """Aggregate accounting of one sweep (see :class:`SweepReport`)."""

    scenarios: int = 0
    unique: int = 0
    duplicates: int = 0
    #: Unique requests answered from the persistent store.
    store_hits: int = 0
    #: Store hits that a resume manifest had marked completed.
    resumed: int = 0
    computed: int = 0
    failed: int = 0
    shards: int = 0
    shard_size: int = 0
    wall_time: float = 0.0

    @property
    def hit_rate(self) -> float:
        """Fraction of unique requests served from the store."""
        return self.store_hits / self.unique if self.unique else 0.0

    def summary(self) -> str:
        """One-line human-readable description (used by the benchmarks)."""
        return (f"{self.scenarios} scenarios ({self.unique} unique): "
                f"{self.store_hits} from store ({self.hit_rate:.0%}), "
                f"{self.computed} computed in {self.shards} shards, "
                f"{self.failed} failed, {self.wall_time * 1000:.1f}ms")


@dataclass
class SweepReport:
    """Everything :meth:`SweepService.run` produced, in batch order."""

    results: List[SweepResult] = field(default_factory=list)
    stats: SweepStats = field(default_factory=SweepStats)

    def reports(self) -> List[Optional[SolveReport]]:
        """The per-scenario :class:`SolveReport` list (``None`` on failure)."""
        return [r.report for r in self.results]

    def summary(self) -> str:
        return self.stats.summary()


def _chunk(items: List, size: int) -> List[List]:
    return [items[i:i + size] for i in range(0, len(items), size)]


class SweepService:
    """Deduplicating, store-backed, sharded scenario-sweep runner.

    Parameters
    ----------
    store:
        The persistent :class:`~repro.engine.store.SolutionStore` (or a
        directory path to open one at).  Defaults to the engine's globally
        installed store (:func:`~repro.engine.core.get_solution_store`);
        without one, the service still deduplicates and shards but nothing
        survives the process.
    portfolio:
        The :class:`~repro.engine.portfolio.Portfolio` whose (persistent)
        executor runs the pending shards.  Defaults to a process-pool
        portfolio; the service starts it lazily and closes what it started.
    limits:
        :class:`~repro.engine.core.SolveLimits` forwarded to every solve
        and baked into the request keys.
    oversubscription:
        Target shards per worker when auto-sizing shards
        (:meth:`Portfolio.shard_plan`).
    validate:
        Run certificate checks on computed solutions (part of the key).
    durable:
        Fsync the resume manifest through its atomic rename, and open a
        path-constructed store with ``durable=True`` -- crash-consistent
        checkpoints for deployments that resume sweeps after power loss.
        (A store passed as an object keeps whatever durability it was
        built with.)
    """

    def __init__(self, store: Union[SolutionStore, str, None] = None, *,
                 portfolio: Optional[Portfolio] = None,
                 limits: Optional[SolveLimits] = None,
                 oversubscription: int = 4,
                 validate: bool = True,
                 durable: bool = False):
        require(oversubscription > 0, "oversubscription must be positive")
        self.durable = durable
        if isinstance(store, str):
            store = SolutionStore(store, durable=durable)
        self._explicit_store = store
        self._owns_portfolio = portfolio is None
        self._portfolio = portfolio if portfolio is not None else Portfolio(executor="process")
        self._started_pool = False
        # Request keys and shard execution must agree on the limits: an
        # explicit ``limits`` is pushed into the portfolio, otherwise the
        # portfolio's own limits are adopted.
        if limits is not None:
            self.limits = limits
            self._portfolio.limits = limits
        else:
            self.limits = self._portfolio.limits
        self.oversubscription = oversubscription
        self.validate = validate
        self.last_stats: Optional[SweepStats] = None
        self._closed = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def store(self) -> Optional[SolutionStore]:
        """The store consulted by sweeps (explicit, else the global one)."""
        if self._explicit_store is not None:
            return self._explicit_store
        return get_solution_store()

    @property
    def portfolio(self) -> Portfolio:
        return self._portfolio

    @staticmethod
    def kernel_info() -> dict:
        """Work counters of the batched kernel layer (``docs/performance.md``).

        Counters are per process: with a thread-executor portfolio they
        reflect this service's sweeps directly; with the (default)
        process-executor portfolio the shard work happens in the worker
        processes, so the calling process only sees the skeletons and
        probes it built itself (dedup, store lookups).
        """
        from repro.engine.batch import batch_kernel_info

        return batch_kernel_info()

    def _warm_pool(self) -> Portfolio:
        if self._portfolio.pool is None:
            self._portfolio.start()
            self._started_pool = True
        return self._portfolio

    def close(self) -> None:
        """Shut down the worker pool the service started (if any).

        A closed service raises :class:`RuntimeError` from
        :meth:`sweep`/:meth:`run` instead of failing deep inside (or
        silently restarting) the executor.
        """
        if self._owns_portfolio or self._started_pool:
            self._portfolio.close()
            self._started_pool = False
        self._closed = True

    @property
    def closed(self) -> bool:
        """Has :meth:`close` been called on this service?"""
        return self._closed

    def _require_open(self) -> None:
        if self._closed:
            raise RuntimeError(
                "SweepService is closed; create a new service (or a new "
                "context manager block) to run further sweeps")

    def __enter__(self) -> "SweepService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # manifest
    # ------------------------------------------------------------------
    def _load_manifest_done(self, path: str, method: str) -> set:
        """Completed request keys recorded by a compatible manifest."""
        return load_manifest_done(path, method)

    def _write_manifest(self, path: str, method: str, keys: List[str],
                        done: set, completed: bool) -> None:
        write_manifest(path, method, keys, done, completed,
                       durable=self.durable)

    # ------------------------------------------------------------------
    # sweeping
    # ------------------------------------------------------------------
    def sweep(self, scenarios: Union[Sequence[Problem], Sequence[ScenarioSpec],
                                     ScenarioGrid],
              method: str = "auto", *,
              manifest: Optional[str] = None,
              shard_size: Optional[int] = None,
              **options: Any) -> Iterator[SweepResult]:
        """Stream :class:`SweepResult` objects for a scenario batch.

        ``scenarios`` may be materialized problems, declarative
        :class:`~repro.scenarios.spec.ScenarioSpec` records, or a whole
        :class:`~repro.scenarios.spec.ScenarioGrid` (expanded lazily).
        The spec-native forms deduplicate and consult the store **before
        materialization** -- a store-hit cell never builds its DAG, and
        pending cells are built lazily inside the worker shards, so peak
        memory is one shard of DAGs regardless of grid size.

        Store-served scenarios are yielded first (in batch order), then
        computed ones as their shards finish (shard completion order).
        Closing the generator early cancels unstarted shards and -- with
        ``manifest=`` -- leaves a checkpoint from which the next sweep
        resumes.  The generator's return value is the :class:`SweepStats`
        (collected by :meth:`run`).

        Sweeps are content-addressed, so ``options`` must be literal
        values (:func:`~repro.engine.core.request_key` raises otherwise).
        """
        self._require_open()
        if isinstance(scenarios, ScenarioGrid):
            scenarios = scenarios.expand()
        scenarios = list(scenarios)
        if scenarios and isinstance(scenarios[0], ScenarioSpec):
            require(all(isinstance(s, ScenarioSpec) for s in scenarios),
                    "do not mix ScenarioSpecs and materialized problems in "
                    "one sweep")
            return self._sweep_specs_iter(scenarios, method,
                                          manifest=manifest,
                                          shard_size=shard_size, **options)
        return self._sweep_iter(scenarios, method, manifest=manifest,
                                shard_size=shard_size, **options)

    def _sweep_iter(self, scenarios: Sequence[Problem], method: str, *,
                    manifest: Optional[str], shard_size: Optional[int],
                    **options: Any) -> Iterator[SweepResult]:
        """The generator behind :meth:`sweep` (which checks closed-ness
        eagerly, at call time rather than on first ``next()``)."""
        start_time = time.perf_counter()
        problems = [normalize_problem(p) for p in scenarios]
        stats = SweepStats(scenarios=len(problems))
        self.last_stats = stats

        # -- dedup by request key ---------------------------------------
        keys: List[str] = [
            request_key(p, method, limits=self.limits, validate=self.validate,
                        **options)
            for p in problems
        ]
        groups: Dict[str, List[int]] = {}
        unique_keys: List[str] = []
        for index, key in enumerate(keys):
            if key not in groups:
                groups[key] = []
                unique_keys.append(key)
            groups[key].append(index)
        stats.unique = len(unique_keys)
        stats.duplicates = stats.scenarios - stats.unique

        manifest_done = (self._load_manifest_done(manifest, method)
                         if manifest else set())
        done: set = set()
        store = self.store

        # -- tier-2 lookup ----------------------------------------------
        pending: List[str] = []
        try:
            for key in unique_keys:
                report = store.get_report(key) if store is not None else None
                if report is None:
                    pending.append(key)
                    continue
                stats.store_hits += 1
                if key in manifest_done:
                    stats.resumed += 1
                done.add(key)
                for index in groups[key]:
                    # Each slot gets its own defensive copy (consumers may
                    # edit allocations in place; duplicates must not alias).
                    yield SweepResult(index=index, key=key,
                                      problem=problems[index],
                                      report=_clone_report(report, from_cache=True,
                                                           cache_tier="store"),
                                      source="store")

            # -- shard + compute ------------------------------------------
            if pending:
                portfolio = self._warm_pool()
                size = shard_size or Portfolio.shard_plan(
                    len(pending), portfolio.worker_count(), self.oversubscription)
                stats.shard_size = size
                shard_keys = _chunk(pending, size)
                futures = {}
                for shard in shard_keys:
                    shard_problems = [problems[groups[key][0]] for key in shard]
                    future = portfolio.submit_shard(shard_problems, method,
                                                    validate=self.validate,
                                                    **options)
                    futures[future] = shard
                stats.shards = len(futures)
                try:
                    for future in as_completed(futures):
                        shard = futures.pop(future)
                        outcomes = list(zip(shard, future.result()))
                        # One bulk store write per completed shard, before
                        # any result is yielded (a consumer closing the
                        # generator must not lose this shard's persistence).
                        if store is not None:
                            store.put_reports([(key, report)
                                               for key, (report, _err) in outcomes
                                               if report is not None])
                        for key, (report, error) in outcomes:
                            problem = problems[groups[key][0]]
                            if report is not None:
                                stats.computed += 1
                                done.add(key)
                                source, err = "computed", None
                            else:
                                stats.failed += 1
                                source, err = "failed", error
                            for index in groups[key]:
                                copy = (_clone_report(report, from_cache=False)
                                        if report is not None else None)
                                yield SweepResult(index=index, key=key,
                                                  problem=problem,
                                                  report=copy, source=source,
                                                  error=err)
                        if manifest:
                            self._write_manifest(manifest, method, unique_keys,
                                                 done, completed=False)
                finally:
                    for future in futures:
                        future.cancel()
        finally:
            stats.wall_time = time.perf_counter() - start_time
            if manifest:
                completed = len(done) + stats.failed >= stats.unique
                self._write_manifest(manifest, method, unique_keys, done,
                                     completed=completed)
        return stats

    def _sweep_specs_iter(self, specs: List[ScenarioSpec], method: str, *,
                          manifest: Optional[str], shard_size: Optional[int],
                          **options: Any) -> Iterator[SweepResult]:
        """The spec-native sweep generator (see :meth:`sweep`).

        Phases:

        1. **dedup, no DAGs** -- cells are grouped by
           :func:`~repro.engine.fingerprint.spec_alias_key` (pure spec
           content);
        2. **store lookup, no DAGs** -- each unique cell resolves its true
           request fingerprint through the in-process spec-key memo or the
           persistent ``{"alias_of": ...}`` entry written by any previous
           sweep, then probes the store; hits are yielded immediately;
        3. **lazy compute** -- pending cells are sharded *as specs*
           (:meth:`Portfolio.submit_spec_shard`); workers materialize
           inside their shard and report each cell's request fingerprint
           back, which is persisted as the alias the next sweep's phase 2
           will hit.
        """
        start_time = time.perf_counter()
        stats = SweepStats(scenarios=len(specs))
        self.last_stats = stats

        aliases: List[str] = [
            spec_alias_key(spec, method, limits=self.limits,
                           validate=self.validate, **options)
            for spec in specs
        ]
        groups: Dict[str, List[int]] = {}
        unique_aliases: List[str] = []
        for index, alias in enumerate(aliases):
            if alias not in groups:
                groups[alias] = []
                unique_aliases.append(alias)
            groups[alias].append(index)
        stats.unique = len(unique_aliases)
        stats.duplicates = stats.scenarios - stats.unique

        manifest_done = (self._load_manifest_done(manifest, method)
                         if manifest else set())
        done: set = set()
        store = self.store

        pending: List[str] = []
        try:
            for alias in unique_aliases:
                spec = specs[groups[alias][0]]
                key = cached_spec_fingerprint(spec, method, limits=self.limits,
                                              validate=self.validate, **options)
                if key is None and store is not None:
                    entry = store.get(alias)
                    if entry is not None and isinstance(entry.get("alias_of"), str):
                        key = entry["alias_of"]
                        record_spec_fingerprint(spec, key, method,
                                                limits=self.limits,
                                                validate=self.validate,
                                                **options)
                report = (store.get_report(key)
                          if key is not None and store is not None else None)
                if report is None:
                    pending.append(alias)
                    continue
                stats.store_hits += 1
                if alias in manifest_done:
                    stats.resumed += 1
                done.add(alias)
                for index in groups[alias]:
                    yield SweepResult(index=index, key=key, problem=None,
                                      report=_clone_report(report, from_cache=True,
                                                           cache_tier="store"),
                                      source="store", spec=specs[index])

            if pending:
                portfolio = self._warm_pool()
                size = shard_size or Portfolio.shard_plan(
                    len(pending), portfolio.worker_count(), self.oversubscription)
                stats.shard_size = size
                futures = {}
                for shard in _chunk(pending, size):
                    shard_specs = [specs[groups[alias][0]] for alias in shard]
                    future = portfolio.submit_spec_shard(shard_specs, method,
                                                         validate=self.validate,
                                                         **options)
                    futures[future] = shard
                stats.shards = len(futures)
                try:
                    for future in as_completed(futures):
                        shard = futures.pop(future)
                        outcomes = list(zip(shard, future.result()))
                        # Persist reports AND the spec->key aliases before
                        # yielding: the aliases are what make the *next*
                        # sweep's store lookups DAG-free.
                        if store is not None:
                            store.put_reports(
                                [(key, report)
                                 for _alias, (key, report, _err) in outcomes
                                 if report is not None])
                            store.put_many(
                                [(alias, {"alias_of": key})
                                 for alias, (key, report, _err) in outcomes
                                 if report is not None])
                        for alias, (key, report, error) in outcomes:
                            spec = specs[groups[alias][0]]
                            if key is not None:
                                record_spec_fingerprint(
                                    spec, key, method, limits=self.limits,
                                    validate=self.validate, **options)
                            if report is not None:
                                stats.computed += 1
                                done.add(alias)
                                source, err = "computed", None
                            else:
                                stats.failed += 1
                                source, err = "failed", error
                            for index in groups[alias]:
                                copy = (_clone_report(report, from_cache=False)
                                        if report is not None else None)
                                yield SweepResult(index=index,
                                                  key=key if key is not None else alias,
                                                  problem=None, report=copy,
                                                  source=source, error=err,
                                                  spec=specs[index])
                        if manifest:
                            self._write_manifest(manifest, method,
                                                 unique_aliases, done,
                                                 completed=False)
                finally:
                    for future in futures:
                        future.cancel()
        finally:
            stats.wall_time = time.perf_counter() - start_time
            if manifest:
                completed = len(done) + stats.failed >= stats.unique
                self._write_manifest(manifest, method, unique_aliases, done,
                                     completed=completed)
        return stats

    def run(self, scenarios: Union[Sequence[Problem], Sequence[ScenarioSpec],
                                   ScenarioGrid],
            method: str = "auto", *,
            manifest: Optional[str] = None,
            shard_size: Optional[int] = None,
            on_result: Optional[Callable[[SweepResult], None]] = None,
            **options: Any) -> SweepReport:
        """Run a full sweep and collect every result (batch order).

        Accepts the same scenario forms as :meth:`sweep` (problems, specs
        or a :class:`~repro.scenarios.spec.ScenarioGrid`).  ``on_result``
        is invoked on each :class:`SweepResult` as it streams in -- the
        callback API for progress reporting or incremental consumers that
        still want the final report.
        """
        results: List[SweepResult] = []
        generator = self.sweep(scenarios, method, manifest=manifest,
                               shard_size=shard_size, **options)
        while True:
            try:
                result = next(generator)
            except StopIteration as stop:
                stats = stop.value if stop.value is not None else self.last_stats
                break
            results.append(result)
            if on_result is not None:
                on_result(result)
        results.sort(key=lambda r: r.index)
        return SweepReport(results=results, stats=stats)
