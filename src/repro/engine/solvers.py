"""Registration of every solver family with the engine registry.

Importing this module (done by ``repro.engine``) populates the registry
with the five families of the reproduction:

===========================  =========================  ======================
solver id                    paper result               preconditions
===========================  =========================  ======================
``series-parallel-dp``       Section 3.4 DP             SP decomposition found,
                                                        integral breakpoints,
                                                        integral budget within
                                                        the table limit
``exact-enumeration``        exhaustive + min-flow      breakpoint-combination
                                                        count within the limit
``kway-5approx``             Theorem 3.9                k-way durations only
``binary-4approx``           Theorem 3.10               recursive-binary only
``binary-improved``          Theorem 3.16               recursive-binary only
``bicriteria-lp``            Theorem 3.4                always applicable
``greedy-path-reuse`` etc.   baselines (Q1.1-1.3)       always applicable
===========================  =========================  ======================

Auto-dispatch prefers exact solvers, then family-specialised single-
criteria approximations, then the LP bi-criteria pipeline, then baselines
(see :func:`repro.engine.registry.select_solver`).
"""

from __future__ import annotations


from repro.core.baselines import (
    greedy_global_reuse,
    greedy_no_reuse,
    greedy_path_reuse,
    no_resource_solution,
    uniform_split_solution,
)
from repro.core.bicriteria import solve_min_makespan_bicriteria, solve_min_resource_bicriteria
from repro.core.binary_approx import solve_min_makespan_binary, solve_min_makespan_binary_improved
from repro.core.exact import exact_min_makespan, exact_min_resource
from repro.core.kway_approx import solve_min_makespan_kway
from repro.core.problem import MinMakespanProblem
from repro.core.series_parallel import sp_exact_min_makespan, sp_exact_min_resource
from repro.engine.batch import CACHED_LP_BACKEND
from repro.engine.registry import MIN_MAKESPAN, MIN_RESOURCE, register_solver
from repro.utils.validation import require

__all__ = []  # everything here registers by side effect


def _budget(problem) -> float:
    return problem.budget


def _target(problem) -> float:
    return problem.target_makespan


def _transforms(structure):
    arc_dag, node_map = structure.arc_form()
    return arc_dag, node_map, structure.expansion()


def _job_allocation(structure, solution):
    """Restrict an SP-tree allocation to jobs that exist in the DAG.

    :func:`~repro.core.series_parallel.decompose_series_parallel` introduces
    zero-duration ``("dummy", u, v)`` leaves for precedence edges; they need
    no resource, so dropping them preserves makespan and routability.
    """
    known = set(structure.dag.jobs)
    solution.allocation = {job: amount for job, amount in solution.allocation.items()
                           if job in known}
    return solution


# ----------------------------------------------------------------------
# exact solvers
# ----------------------------------------------------------------------
def _sp_budget_cap(structure) -> float:
    return sum(leaf.duration.max_useful_resource() for leaf in structure.sp_tree.leaves())


def _can_solve_sp(problem, structure, limits) -> bool:
    if structure.sp_tree is None or not structure.integral_breakpoints:
        return False
    if isinstance(problem, MinMakespanProblem):
        budget = problem.budget
        return float(budget).is_integer() and budget <= limits.max_sp_budget
    return _sp_budget_cap(structure) <= limits.max_sp_budget


@register_solver(
    "series-parallel-dp",
    summary="Exact pseudo-polynomial DP on the series-parallel decomposition",
    objectives=(MIN_MAKESPAN, MIN_RESOURCE),
    kind="exact", theorem="Section 3.4", guarantee="optimal", priority=10,
    can_solve=_can_solve_sp, option_names=("budget_cap",),
)
def _run_sp_dp(problem, structure, limits, **options):
    require(structure.sp_tree is not None,
            "series-parallel-dp requires a series-parallel instance")
    require(structure.integral_breakpoints,
            "series-parallel-dp requires integral resource breakpoints")
    if isinstance(problem, MinMakespanProblem):
        budget = _budget(problem)
        require(float(budget).is_integer(),
                f"series-parallel-dp needs an integral budget, got {budget}")
        solution = sp_exact_min_makespan(structure.sp_tree, int(budget))
    else:
        solution = sp_exact_min_resource(structure.sp_tree, _target(problem), **options)
    return _job_allocation(structure, solution)


def _can_solve_exact(problem, structure, limits) -> bool:
    return structure.exact_combinations <= limits.effective_exact_combinations()


@register_solver(
    "exact-enumeration",
    summary="Exhaustive breakpoint enumeration with min-flow feasibility checks",
    objectives=(MIN_MAKESPAN, MIN_RESOURCE),
    kind="exact", theorem="Section 4 (verification solver)", guarantee="optimal",
    priority=20,
    can_solve=_can_solve_exact, option_names=("max_combinations",),
)
def _run_exact(problem, structure, limits, **options):
    options.setdefault("max_combinations", limits.effective_exact_combinations())
    if isinstance(problem, MinMakespanProblem):
        return exact_min_makespan(structure.dag, _budget(problem), **options)
    return exact_min_resource(structure.dag, _target(problem), **options)


# ----------------------------------------------------------------------
# approximation algorithms
# ----------------------------------------------------------------------
@register_solver(
    "kway-5approx",
    summary="Single-criteria 5-approximation for k-way splitting",
    objectives=(MIN_MAKESPAN,),
    kind="approximation", theorem="Theorem 3.9", guarantee="makespan <= 5 OPT",
    priority=30,
    can_solve=lambda problem, structure, limits:
        structure.improvable_families() <= {"kway"},
)
def _run_kway(problem, structure, limits, **options):
    return solve_min_makespan_kway(structure.dag, _budget(problem),
                                   transforms=_transforms(structure),
                                   lp_backend=CACHED_LP_BACKEND, **options)


@register_solver(
    "binary-4approx",
    summary="Single-criteria 4-approximation for recursive binary splitting",
    objectives=(MIN_MAKESPAN,),
    kind="approximation", theorem="Theorem 3.10", guarantee="makespan <= 4 OPT",
    priority=30,
    can_solve=lambda problem, structure, limits:
        structure.improvable_families() <= {"binary"},
)
def _run_binary(problem, structure, limits, **options):
    return solve_min_makespan_binary(structure.dag, _budget(problem),
                                     transforms=_transforms(structure),
                                     lp_backend=CACHED_LP_BACKEND, **options)


@register_solver(
    "binary-improved",
    summary="(4/3, 14/5) bi-criteria algorithm for recursive binary splitting",
    objectives=(MIN_MAKESPAN,),
    kind="approximation", theorem="Theorem 3.16",
    guarantee="makespan <= 14/5 LP, budget <= 4/3 LP", priority=35,
    can_solve=lambda problem, structure, limits:
        structure.improvable_families() <= {"binary"},
)
def _run_binary_improved(problem, structure, limits, **options):
    return solve_min_makespan_binary_improved(structure.dag, _budget(problem),
                                              transforms=_transforms(structure),
                                              lp_backend=CACHED_LP_BACKEND, **options)


@register_solver(
    "bicriteria-lp",
    summary="LP-rounding bi-criteria pipeline (works on every duration class)",
    objectives=(MIN_MAKESPAN, MIN_RESOURCE),
    kind="approximation", theorem="Theorem 3.4",
    guarantee="(1/alpha, 1/(1-alpha)) bi-criteria", priority=40,
    can_solve=lambda problem, structure, limits: True, option_names=("alpha",),
)
def _run_bicriteria(problem, structure, limits, alpha: float = 0.5, **options):
    transforms = _transforms(structure)
    if isinstance(problem, MinMakespanProblem):
        return solve_min_makespan_bicriteria(structure.dag, _budget(problem), alpha,
                                             transforms=transforms,
                                             lp_backend=CACHED_LP_BACKEND, **options)
    return solve_min_resource_bicriteria(structure.dag, _target(problem), alpha,
                                         transforms=transforms,
                                         lp_backend=CACHED_LP_BACKEND, **options)


# ----------------------------------------------------------------------
# baselines (greedy heuristics and trivial reference points)
# ----------------------------------------------------------------------
@register_solver(
    "greedy-path-reuse",
    summary="Greedy critical-path heuristic under the paper's path-reuse model",
    objectives=(MIN_MAKESPAN,),
    kind="baseline", theorem="Question 1.3 baseline", guarantee="none", priority=50,
    can_solve=lambda problem, structure, limits: True,
)
def _run_greedy_path(problem, structure, limits, **options):
    return greedy_path_reuse(structure.dag, _budget(problem))


@register_solver(
    "greedy-global-reuse",
    summary="Greedy critical-path heuristic with global resource reuse",
    objectives=(MIN_MAKESPAN,),
    kind="baseline", theorem="Question 1.2 baseline", guarantee="none", priority=55,
    can_solve=lambda problem, structure, limits: True,
)
def _run_greedy_global(problem, structure, limits, **options):
    return greedy_global_reuse(structure.dag, _budget(problem))


@register_solver(
    "greedy-no-reuse",
    summary="Greedy critical-path heuristic without resource reuse",
    objectives=(MIN_MAKESPAN,),
    kind="baseline", theorem="Question 1.1 baseline", guarantee="none", priority=56,
    can_solve=lambda problem, structure, limits: True,
)
def _run_greedy_no_reuse(problem, structure, limits, **options):
    return greedy_no_reuse(structure.dag, _budget(problem))


@register_solver(
    "uniform-split",
    summary="Even split of the budget across improvable jobs (no-reuse accounting)",
    objectives=(MIN_MAKESPAN,),
    kind="baseline", theorem="reference point", guarantee="none", priority=58,
    can_solve=lambda problem, structure, limits: True,
)
def _run_uniform(problem, structure, limits, **options):
    return uniform_split_solution(structure.dag, _budget(problem))


@register_solver(
    "no-resource",
    summary="Trivial solution using no extra resource anywhere",
    objectives=(MIN_MAKESPAN,),
    kind="baseline", theorem="reference point", guarantee="none", priority=59,
    can_solve=lambda problem, structure, limits: True,
)
def _run_no_resource(problem, structure, limits, **options):
    return no_resource_solution(structure.dag)
