"""Persistent on-disk solution store -- tier 2 of the engine's cache.

The in-memory LRU of :mod:`repro.engine.core` dies with the process; the
:class:`SolutionStore` persists solved reports as **sharded JSON blobs** so
repeated sweeps -- across runs, processes and machines sharing a filesystem
-- are served from disk instead of recomputed.  ``repro.solve`` consults it
automatically once installed with
:func:`repro.engine.core.set_solution_store`; the
:class:`~repro.engine.service.SweepService` uses it as its system of record.

On-disk format (see ``docs/caching.md`` for the full specification):

* ``<root>/meta.json`` -- store-level metadata (schema version, creator);
* ``<root>/shards/<prefix>.json`` -- one blob per key prefix, each
  ``{"schema": N, "entries": {request_key: payload}}``.

Guarantees:

* **atomic writes** -- every blob is written to a temp file in the same
  directory and ``os.replace``d into place, so readers never observe a
  half-written shard;
* **corruption tolerance** -- a truncated/unparseable shard or a schema
  mismatch is counted (``info()``) and treated as empty: the affected
  requests recompute and the next write repairs the shard; nothing crashes;
* **bounded shards** -- each shard keeps at most ``max_entries_per_shard``
  entries, evicting the oldest (smallest insertion sequence) first;
* **bounded stores** -- with ``max_total_entries`` set, any write pushing
  the store past the cap triggers :meth:`SolutionStore.compact`, the GC
  hook for long-lived deployments (oldest entries evicted first, counted
  in ``info()["evictions"]`` / ``info()["compactions"]``).

Usage:

>>> import tempfile
>>> from repro.engine.store import SolutionStore
>>> store = SolutionStore(tempfile.mkdtemp())
>>> store.put("a" * 64, {"answer": 42})
True
>>> store.get("a" * 64)["answer"]
42
>>> store.get("b" * 64) is None        # a miss, counted in info()
True
>>> info = store.info()
>>> info["hits"], info["misses"], info["entries"]
(1, 1, 1)
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.engine.fingerprint import (
    UnserializableSolutionError,
    solution_from_payload,
    solution_to_payload,
)
from repro.utils.validation import require

__all__ = [
    "STORE_SCHEMA_VERSION",
    "SolutionStore",
    "report_to_payload",
    "report_from_payload",
    "atomic_write_json",
]

#: Version of the on-disk payload layout.  Bump on incompatible changes;
#: entries written under another version are ignored (recomputed), never
#: misread.
STORE_SCHEMA_VERSION = 1


def atomic_write_json(path: str, payload: Any) -> None:
    """Serialize ``payload`` to ``path`` atomically (temp file + rename)."""
    directory = os.path.dirname(path) or "."
    fd, tmp_path = tempfile.mkstemp(prefix=".tmp-", dir=directory)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True, separators=(",", ":"))
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def report_to_payload(report, key: str) -> Dict[str, Any]:
    """Encode a :class:`~repro.engine.core.SolveReport` as a store entry.

    Raises :class:`~repro.engine.fingerprint.UnserializableSolutionError`
    when the wrapped solution has no stable JSON form; callers treat that
    as "skip persistence".
    """
    certificate = None
    if report.certificate is not None:
        certificate = {
            "passed": bool(report.certificate.passed),
            "feasible": bool(report.certificate.feasible),
            "checks": {str(k): bool(v) for k, v in report.certificate.checks.items()},
            "notes": {str(k): str(v) for k, v in report.certificate.notes.items()},
        }
    return {
        "key": key,
        "solver_id": report.solver_id,
        "method": report.method,
        "objective": report.objective,
        "wall_time": float(report.wall_time),
        "problem_fingerprint": report.problem_fingerprint,
        "parameter": report.parameter,
        "structure": report.structure,
        "certificate": certificate,
        "solution": solution_to_payload(report.solution),
    }


def report_from_payload(payload: Dict[str, Any]):
    """Inverse of :func:`report_to_payload` (returns a ``SolveReport``)."""
    # Imported lazily: core imports this module at load time (tier-2 wiring).
    from repro.engine.certify import Certificate
    from repro.engine.core import SolveReport

    certificate = None
    if payload.get("certificate") is not None:
        cert = payload["certificate"]
        certificate = Certificate(passed=cert["passed"], feasible=cert["feasible"],
                                  checks=dict(cert.get("checks", {})),
                                  notes=dict(cert.get("notes", {})))
    return SolveReport(
        solution=solution_from_payload(payload["solution"]),
        solver_id=payload["solver_id"],
        method=payload["method"],
        objective=payload["objective"],
        wall_time=float(payload.get("wall_time", 0.0)),
        problem_fingerprint=payload["problem_fingerprint"],
        structure=dict(payload.get("structure", {})),
        certificate=certificate,
        parameter=payload.get("parameter"),
    )


class SolutionStore:
    """Sharded-JSON persistent key/payload store with cache accounting.

    Parameters
    ----------
    root:
        Directory holding the store (created on demand).
    max_entries_per_shard:
        Per-shard entry cap; the oldest entries are evicted beyond it.
    shard_width:
        Number of leading key characters selecting a shard (2 -> up to 256
        shards for hex keys).
    cache_shards:
        Keep decoded shards in memory after first access.  Leave on for a
        single-writer process; call :meth:`refresh` to observe writes made
        by other processes.
    max_total_entries:
        Optional store-wide entry cap for long-lived deployments.  When
        set, every write that pushes the store past the cap triggers
        :meth:`compact`, which evicts the oldest entries (smallest
        insertion sequence first) until the cap holds again.  ``None``
        (the default) disables the GC; :meth:`compact` can still be called
        manually with an explicit target.
    """

    def __init__(self, root: str, *, max_entries_per_shard: int = 4096,
                 shard_width: int = 2, cache_shards: bool = True,
                 max_total_entries: Optional[int] = None):
        require(max_entries_per_shard > 0, "max_entries_per_shard must be positive")
        require(1 <= shard_width <= 8, "shard_width must be in [1, 8]")
        require(max_total_entries is None or max_total_entries > 0,
                "max_total_entries must be positive (or None to disable the GC)")
        self.root = os.path.abspath(root)
        self.max_entries_per_shard = max_entries_per_shard
        self.shard_width = shard_width
        self.cache_shards = cache_shards
        self.max_total_entries = max_total_entries
        self._shards: Dict[str, Dict[str, Any]] = {}
        #: Global insertion sequence (next value to assign) and cached total
        #: entry count; both are established lazily by one full-store scan
        #: (:meth:`_seq_floor_scan`) and kept incrementally afterwards, so
        #: writes stay O(one shard).  ``None`` means "rescan before use".
        self._next_seq: Optional[int] = None
        self._entry_total: Optional[int] = None
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.evictions = 0
        self.compactions = 0
        self.corrupt_shards = 0
        self.schema_mismatches = 0
        self.skipped_writes = 0
        os.makedirs(self._shard_dir, exist_ok=True)
        self._write_meta_if_absent()

    # ------------------------------------------------------------------
    # layout helpers
    # ------------------------------------------------------------------
    @property
    def _shard_dir(self) -> str:
        return os.path.join(self.root, "shards")

    @property
    def _meta_path(self) -> str:
        return os.path.join(self.root, "meta.json")

    def _shard_id(self, key: str) -> str:
        require(isinstance(key, str) and len(key) >= self.shard_width,
                f"store keys must be strings of >= {self.shard_width} chars")
        return key[:self.shard_width]

    def _shard_path(self, shard_id: str) -> str:
        return os.path.join(self._shard_dir, f"{shard_id}.json")

    def _write_meta_if_absent(self) -> None:
        if os.path.exists(self._meta_path):
            try:
                with open(self._meta_path, "r", encoding="utf-8") as handle:
                    meta = json.load(handle)
                if meta.get("schema") != STORE_SCHEMA_VERSION:
                    self.schema_mismatches += 1
                # The layout on disk wins: reopening with a different
                # shard_width must not orphan the existing shards.
                stored_width = meta.get("shard_width")
                if isinstance(stored_width, int) and 1 <= stored_width <= 8:
                    self.shard_width = stored_width
            except (OSError, json.JSONDecodeError, AttributeError):
                self.corrupt_shards += 1
            return
        atomic_write_json(self._meta_path, {
            "schema": STORE_SCHEMA_VERSION,
            "format": "repro-solution-store/sharded-json",
            "shard_width": self.shard_width,
        })

    # ------------------------------------------------------------------
    # shard IO
    # ------------------------------------------------------------------
    def _load_shard(self, shard_id: str) -> Dict[str, Any]:
        """Entries of one shard; corruption / schema drift decays to empty."""
        if self.cache_shards and shard_id in self._shards:
            return self._shards[shard_id]
        path = self._shard_path(shard_id)
        entries: Dict[str, Any] = {}
        if os.path.exists(path):
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    blob = json.load(handle)
                if not isinstance(blob, dict) or not isinstance(blob.get("entries"), dict):
                    raise ValueError("malformed shard blob")
                if blob.get("schema") != STORE_SCHEMA_VERSION:
                    self.schema_mismatches += 1
                else:
                    # Entry values must be payload dicts; anything else is
                    # per-entry corruption (counted, skipped, repaired on
                    # the shard's next write).
                    entries = {k: v for k, v in blob["entries"].items()
                               if isinstance(v, dict)}
                    if len(entries) != len(blob["entries"]):
                        self.corrupt_shards += 1
            except (OSError, json.JSONDecodeError, ValueError):
                self.corrupt_shards += 1
        if self.cache_shards:
            self._shards[shard_id] = entries
        return entries

    def _write_shard(self, shard_id: str, entries: Dict[str, Any]) -> None:
        atomic_write_json(self._shard_path(shard_id),
                          {"schema": STORE_SCHEMA_VERSION, "entries": entries})
        if self.cache_shards:
            self._shards[shard_id] = entries

    def _evict(self, entries: Dict[str, Any]) -> int:
        evicted = 0
        while len(entries) > self.max_entries_per_shard:
            oldest = min(entries, key=lambda k: entries[k].get("__seq__", 0))
            del entries[oldest]
            self.evictions += 1
            evicted += 1
        return evicted

    # ------------------------------------------------------------------
    # global insertion sequence + entry accounting
    # ------------------------------------------------------------------
    def _seq_floor_scan(self) -> None:
        """One full-store scan establishing the sequence floor and count.

        The insertion sequence is *store-global* (not per shard): eviction
        order under :meth:`compact` follows true insertion order across
        shards.  Reopening a store resumes above every persisted sequence,
        so insertion order survives restarts.  Concurrent writer processes
        allocate from independent counters seeded by the same floor, so
        cross-process ordering is approximate (exactly like the shared
        read-modify-write window documented in ``docs/caching.md``).
        """
        floor = 0
        total = 0
        for shard_id in self._shard_ids():
            entries = self._load_shard(shard_id)
            total += len(entries)
            floor = max(floor, max((entry.get("__seq__", 0)
                                    for entry in entries.values()), default=0))
        if self._next_seq is None or self._next_seq <= floor:
            self._next_seq = floor + 1
        self._entry_total = total

    def _allocate_seq(self) -> int:
        if self._next_seq is None:
            self._seq_floor_scan()
        seq = self._next_seq
        self._next_seq += 1
        return seq

    def _total_entries(self) -> int:
        """The (cached) store-wide entry count -- O(1) after the first scan."""
        if self._entry_total is None:
            self._seq_floor_scan()
        return self._entry_total

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored payload for ``key``, or ``None`` (counted as a miss)."""
        with self._lock:
            entries = self._load_shard(self._shard_id(key))
            entry = entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self.hits += 1
            return {k: v for k, v in entry.items() if k != "__seq__"}

    def put(self, key: str, payload: Dict[str, Any]) -> bool:
        """Persist ``payload`` under ``key`` (atomic); returns ``True``.

        Failed writes never raise: an unserializable payload *and* IO
        errors (disk full, read-only store) are counted in
        ``skipped_writes`` and the method returns ``False`` -- a store
        write must not fail the solve that produced the payload.
        """
        with self._lock:
            shard_id = self._shard_id(key)
            # Merge against the shard on disk, not a possibly-stale memory
            # copy, so entries another process wrote since our first read
            # are kept (the remaining read-modify-write window is
            # documented in docs/caching.md).
            if self.cache_shards:
                self._shards.pop(shard_id, None)
            entries = dict(self._load_shard(shard_id))
            fresh = key not in entries
            entry = dict(payload)
            entry["__seq__"] = self._allocate_seq()
            entries[key] = entry
            evicted = self._evict(entries)
            try:
                self._write_shard(shard_id, entries)
            except (OSError, TypeError, ValueError):
                self.skipped_writes += 1
                if self.cache_shards:
                    self._shards.pop(shard_id, None)
                self._entry_total = None  # count is uncertain; rescan lazily
                return False
            self.writes += 1
            if self._entry_total is not None:
                self._entry_total += (1 if fresh else 0) - evicted
            self._maybe_gc()
            return True

    def put_many(self, items: Sequence[Tuple[str, Dict[str, Any]]]) -> int:
        """Persist many ``(key, payload)`` pairs; returns how many stuck.

        Pairs are grouped by shard so each shard pays one read-modify-write
        regardless of how many entries land in it -- the bulk-write path
        the sweep service uses after each completed shard.  Same failure
        semantics as :meth:`put` (never raises; failed shards are counted
        in ``skipped_writes`` per entry).
        """
        by_shard: Dict[str, List[Tuple[str, Dict[str, Any]]]] = {}
        for key, payload in items:
            by_shard.setdefault(self._shard_id(key), []).append((key, payload))
        written = 0
        with self._lock:
            for shard_id, pairs in by_shard.items():
                if self.cache_shards:
                    self._shards.pop(shard_id, None)
                entries = dict(self._load_shard(shard_id))
                fresh = 0
                for key, payload in pairs:
                    fresh += key not in entries
                    entry = dict(payload)
                    entry["__seq__"] = self._allocate_seq()
                    entries[key] = entry
                evicted = self._evict(entries)
                try:
                    self._write_shard(shard_id, entries)
                except (OSError, TypeError, ValueError):
                    self.skipped_writes += len(pairs)
                    if self.cache_shards:
                        self._shards.pop(shard_id, None)
                    self._entry_total = None  # count is uncertain; rescan lazily
                    continue
                self.writes += len(pairs)
                written += len(pairs)
                if self._entry_total is not None:
                    self._entry_total += fresh - evicted
            if written:
                self._maybe_gc()
        return written

    def put_reports(self, pairs) -> int:
        """Persist many ``(key, SolveReport)`` pairs (see :meth:`put_many`).

        Reports whose solutions have no stable JSON form are skipped and
        counted, exactly like :meth:`put_report`.
        """
        encoded = []
        for key, report in pairs:
            try:
                encoded.append((key, report_to_payload(report, key)))
            except UnserializableSolutionError:
                with self._lock:
                    self.skipped_writes += 1
        return self.put_many(encoded)

    def put_report(self, key: str, report) -> bool:
        """Persist a :class:`~repro.engine.core.SolveReport` under ``key``.

        Unserializable solutions (exotic allocation keys / metadata) are
        skipped gracefully -- the solve still succeeded, it just is not
        persisted.
        """
        try:
            payload = report_to_payload(report, key)
        except UnserializableSolutionError:
            with self._lock:
                self.skipped_writes += 1
            return False
        return self.put(key, payload)

    def get_report(self, key: str):
        """The stored ``SolveReport`` for ``key``, or ``None``.

        A payload that no longer decodes (e.g. hand-edited) counts as
        corruption and returns ``None`` -- the caller recomputes.
        """
        payload = self.get(key)
        if payload is None:
            return None
        try:
            return report_from_payload(payload)
        except (KeyError, TypeError, ValueError, SyntaxError):
            with self._lock:
                self.corrupt_shards += 1
            return None

    def _maybe_gc(self) -> None:
        """Run :meth:`compact` if the configured entry cap is exceeded.

        Uses the incrementally-maintained entry count, so the per-write
        overhead is O(1) after the store's first full scan.
        """
        if (self.max_total_entries is not None
                and self._total_entries() > self.max_total_entries):
            self.compact(self.max_total_entries)

    def compact(self, max_entries: Optional[int] = None) -> int:
        """Evict the oldest entries until at most ``max_entries`` remain.

        The GC hook for long-lived deployments: entries are evicted in
        insertion order (oldest first) following the store-global
        insertion sequence, which is seeded above every persisted entry on
        reopen -- so the order holds across shards and across restarts
        (concurrent writer processes interleave approximately; see
        :meth:`_seq_floor_scan`).  Touched shards are rewritten
        atomically; a shard whose rewrite fails keeps its old blob (the
        failure is counted in ``skipped_writes``, never raised).  Returns
        the number of entries evicted and increments the ``compactions``
        counter once per run.

        ``max_entries`` defaults to the store's configured
        ``max_total_entries`` (one of the two must be set).
        """
        cap = max_entries if max_entries is not None else self.max_total_entries
        require(cap is not None and cap >= 0,
                "compact() needs max_entries= or a store-level max_total_entries")
        with self._lock:
            shard_entries = {shard_id: dict(self._load_shard(shard_id))
                             for shard_id in self._shard_ids()}
            total = sum(len(entries) for entries in shard_entries.values())
            self.compactions += 1
            excess = total - cap
            if excess <= 0:
                return 0
            oldest_first = sorted(
                (entry.get("__seq__", 0), shard_id, key)
                for shard_id, entries in shard_entries.items()
                for key, entry in entries.items())
            touched = set()
            for _seq, shard_id, key in oldest_first[:excess]:
                del shard_entries[shard_id][key]
                touched.add(shard_id)
            written_ok = set()
            for shard_id in sorted(touched):
                try:
                    self._write_shard(shard_id, shard_entries[shard_id])
                    written_ok.add(shard_id)
                except (OSError, TypeError, ValueError):
                    self.skipped_writes += 1
                    if self.cache_shards:
                        self._shards.pop(shard_id, None)
            evicted = 0
            for _seq, shard_id, _key in oldest_first[:excess]:
                if shard_id in written_ok:
                    self.evictions += 1
                    evicted += 1
            if written_ok == touched:
                self._entry_total = total - evicted
            else:
                self._entry_total = None  # partial rewrite; rescan lazily
            return evicted

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._load_shard(self._shard_id(key))

    def __len__(self) -> int:
        return self.entry_count()

    def entry_count(self) -> int:
        """Total entries across every shard on disk (exact; refreshes the
        cached count the GC trigger uses)."""
        with self._lock:
            total = sum(len(self._load_shard(s)) for s in self._shard_ids())
            self._entry_total = total
            return total

    def _shard_ids(self):
        try:
            names = os.listdir(self._shard_dir)
        except OSError:
            return []
        return sorted(name[:-5] for name in names
                      if name.endswith(".json") and not name.startswith(".tmp-"))

    def payloads(self) -> Iterator[Tuple[str, Dict[str, Any]]]:
        """Iterate ``(key, payload)`` over every stored entry (all shards)."""
        with self._lock:
            for shard_id in self._shard_ids():
                for key, entry in sorted(self._load_shard(shard_id).items()):
                    yield key, {k: v for k, v in entry.items() if k != "__seq__"}

    def refresh(self) -> None:
        """Drop the in-memory shard cache (re-read other processes' writes)."""
        with self._lock:
            self._shards.clear()
            # Another process may have added entries (and higher sequence
            # numbers); rescan both lazily on next use.
            self._entry_total = None
            self._next_seq = None

    def clear(self) -> None:
        """Delete every shard blob and reset the statistics."""
        with self._lock:
            for shard_id in self._shard_ids():
                try:
                    os.unlink(self._shard_path(shard_id))
                except OSError:
                    pass
            self._shards.clear()
            self._entry_total = 0
            self._next_seq = None
            self.hits = self.misses = self.writes = 0
            self.evictions = self.compactions = self.corrupt_shards = 0
            self.schema_mismatches = self.skipped_writes = 0

    def info(self) -> dict:
        """Statistics dict mirroring :meth:`LRUCache.info` plus store extras."""
        with self._lock:
            return {
                "root": self.root,
                "schema": STORE_SCHEMA_VERSION,
                "entries": self.entry_count(),
                "shards": len(self._shard_ids()),
                "max_entries_per_shard": self.max_entries_per_shard,
                "max_total_entries": self.max_total_entries,
                "hits": self.hits,
                "misses": self.misses,
                "writes": self.writes,
                "evictions": self.evictions,
                "compactions": self.compactions,
                "corrupt_shards": self.corrupt_shards,
                "schema_mismatches": self.schema_mismatches,
                "skipped_writes": self.skipped_writes,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SolutionStore(root={self.root!r}, entries={self.entry_count()}, "
                f"hits={self.hits}, misses={self.misses})")
