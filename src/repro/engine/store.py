"""Persistent on-disk solution store -- tier 2 of the engine's cache.

The in-memory LRU of :mod:`repro.engine.core` dies with the process; the
:class:`SolutionStore` persists solved reports so repeated sweeps -- across
runs, processes and machines sharing a filesystem -- are served from disk
instead of recomputed.  ``repro.solve`` consults it automatically once
installed with :func:`repro.engine.core.set_solution_store`; the
:class:`~repro.engine.service.SweepService` uses it as its system of record.

On-disk format (see ``docs/caching.md`` for the full specification):

* ``<root>/meta.json`` -- store-level metadata (schema version, creator);
* ``<root>/shards/<prefix>.rps`` -- the **packed binary v2** shard format
  (the default): a fixed-width, key-sorted record table (key bytes +
  insertion sequence + payload offset/length + flags) followed by a
  payload region of per-entry JSON blobs.  A ``get()`` binary-searches the
  record table and decodes *one* payload; alias entries
  (``{"alias_of": key}``) keep their target in the payload region as raw
  key bytes and resolve without any JSON decode; :meth:`SolutionStore.scan`
  streams every entry in one pass, skipping alias payloads untouched.
* ``<root>/shards/<prefix>.json`` -- the legacy sharded-JSON v1 format,
  still fully readable *and* writable (``shard_format="json"``); each blob
  is ``{"schema": 1, "entries": {request_key: payload}}``.  The format is
  negotiated per shard file, so mixed stores work; a write rewrites its
  shard in the store's configured format and :meth:`SolutionStore.migrate`
  converts a whole store at once.

Guarantees:

* **atomic writes** -- every blob is written to a temp file in the same
  directory and ``os.replace``d into place, so readers never observe a
  half-written shard; with ``durable=True`` the temp file is fsynced
  before the rename and the shard directory after it (crash-consistent,
  covering ``meta.json`` too);
* **corruption tolerance** -- a truncated/unparseable shard (either
  format) or a schema mismatch is counted (``info()``) and treated as
  empty: the affected requests recompute and the next write repairs the
  shard; nothing crashes;
* **bounded shards** -- each shard keeps at most ``max_entries_per_shard``
  entries, evicting the oldest (smallest insertion sequence) first;
* **bounded stores** -- with ``max_total_entries`` set, any write pushing
  the store past the cap triggers :meth:`SolutionStore.compact`, the GC
  hook for long-lived deployments (oldest entries evicted first, counted
  in ``info()["evictions"]`` / ``info()["compactions"]``).

Usage:

>>> import tempfile
>>> from repro.engine.store import SolutionStore
>>> store = SolutionStore(tempfile.mkdtemp())
>>> store.put("a" * 64, {"answer": 42})
True
>>> store.get("a" * 64)["answer"]
42
>>> store.get("b" * 64) is None        # a miss, counted in info()
True
>>> info = store.info()
>>> info["hits"], info["misses"], info["entries"]
(1, 1, 1)
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import tempfile
import threading
from bisect import bisect_left
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.engine.fingerprint import (
    UnserializableSolutionError,
    solution_from_payload,
    solution_to_payload,
)
from repro.utils.validation import require

__all__ = [
    "STORE_SCHEMA_VERSION",
    "STORE_SCHEMA_V1",
    "SolutionStore",
    "report_to_payload",
    "report_from_payload",
    "atomic_write_json",
]

#: Version of the on-disk payload layout.  ``2`` is the packed binary shard
#: format; ``1`` (legacy sharded JSON) stays fully readable and writable.
#: Entries written under an *unknown* version are ignored (recomputed),
#: never misread.
STORE_SCHEMA_VERSION = 2

#: The legacy sharded-JSON schema (the only schema JSON shard blobs carry).
STORE_SCHEMA_V1 = 1

#: Schema versions this code can read; anything else is a mismatch.
_KNOWN_SCHEMAS = (STORE_SCHEMA_V1, STORE_SCHEMA_VERSION)

# ---------------------------------------------------------------------------
# packed binary shard format (v2)
# ---------------------------------------------------------------------------
#
#   header   <8sHHIIQ>  magic  b"RPSHARD2", version (2), flags, entry count,
#                       key slot width, payload-region offset
#   records  count x (key_width bytes, NUL-padded key)  +  <QQII>
#                       insertion seq, payload offset (relative to the
#                       region), payload length, flags (bit 0 = alias)
#   payloads concatenated blobs: raw UTF-8 target-key bytes for alias
#            entries, compact JSON for everything else
#
# Records are sorted by (padded) key bytes, so a lookup is a binary search
# over fixed-width slots on the mmapped file -- no parsing beyond the
# 28-byte header, and exactly one JSON decode per payload actually read.

_SHARD_MAGIC = b"RPSHARD2"
_HEADER = struct.Struct("<8sHHIIQ")
_RECORD_FIXED = struct.Struct("<QQII")
_FLAG_ALIAS = 1


class _ShardCorrupt(Exception):
    """A binary shard that cannot be trusted (bad magic, bounds, struct)."""


class _ShardSchemaMismatch(Exception):
    """A binary shard written under an unknown format version."""


def _is_alias_payload(payload: Dict[str, Any]) -> bool:
    return len(payload) == 1 and isinstance(payload.get("alias_of"), str)


def _pack_shard(entries: Dict[str, Dict[str, Any]]) -> bytes:
    """Serialize ``entries`` (values carry ``__seq__``) into a v2 shard.

    Raises ``TypeError``/``ValueError`` for unpackable keys or payloads --
    the same failure class the JSON writer raises, which callers already
    count as skipped writes.
    """
    encoded: List[Tuple[bytes, int, bytes, int]] = []
    for key in sorted(entries):
        entry = entries[key]
        key_bytes = key.encode("utf-8")
        if not key_bytes or b"\x00" in key_bytes:
            raise ValueError(f"store key not packable: {key!r}")
        seq = int(entry.get("__seq__", 0))
        payload = {k: v for k, v in entry.items() if k != "__seq__"}
        if _is_alias_payload(payload):
            blob, flags = payload["alias_of"].encode("utf-8"), _FLAG_ALIAS
        else:
            blob = json.dumps(payload, sort_keys=True,
                              separators=(",", ":")).encode("utf-8")
            flags = 0
        encoded.append((key_bytes, seq, blob, flags))

    key_width = max((len(k) for k, _s, _b, _f in encoded), default=1)
    record_size = key_width + _RECORD_FIXED.size
    payload_offset = _HEADER.size + record_size * len(encoded)
    parts = [_HEADER.pack(_SHARD_MAGIC, STORE_SCHEMA_VERSION, 0,
                          len(encoded), key_width, payload_offset)]
    blobs: List[bytes] = []
    offset = 0
    for key_bytes, seq, blob, flags in encoded:
        parts.append(key_bytes.ljust(key_width, b"\x00"))
        parts.append(_RECORD_FIXED.pack(seq, offset, len(blob), flags))
        blobs.append(blob)
        offset += len(blob)
    return b"".join(parts + blobs)


class _PackedShardReader:
    """Lazy, mmap-backed view of one packed binary shard.

    Parses only the 28-byte header eagerly; key lookups binary-search the
    fixed-width record table directly on the mapped buffer and payloads
    are decoded one at a time, on demand (memoized per key).  Every offset
    is bounds-checked -- a mangled file raises :class:`_ShardCorrupt`
    (whole-file distrust) which the store decays to "empty shard".
    """

    __slots__ = ("path", "buf", "count", "key_width", "payload_offset",
                 "_record_size", "_records_off", "decoded")

    def __init__(self, path: str):
        self.path = path
        with open(path, "rb") as handle:
            try:
                self.buf: Any = mmap.mmap(handle.fileno(), 0,
                                          access=mmap.ACCESS_READ)
            except (ValueError, OSError):  # empty file / mmap-hostile fs
                handle.seek(0)
                self.buf = handle.read()
        try:
            magic, version, _flags, count, key_width, payload_offset = \
                _HEADER.unpack_from(self.buf, 0)
        except struct.error as exc:
            raise _ShardCorrupt(str(exc)) from exc
        if magic != _SHARD_MAGIC:
            raise _ShardCorrupt("bad magic")
        if version != STORE_SCHEMA_VERSION:
            raise _ShardSchemaMismatch(f"shard version {version}")
        self.count = count
        self.key_width = key_width
        self.payload_offset = payload_offset
        self._record_size = key_width + _RECORD_FIXED.size
        self._records_off = _HEADER.size
        if (key_width < 1
                or self._records_off + self._record_size * count > payload_offset
                or payload_offset > len(self.buf)):
            raise _ShardCorrupt("record table out of bounds")
        self.decoded: Dict[str, Dict[str, Any]] = {}

    # -- record access ---------------------------------------------------
    def _key_bytes_at(self, index: int) -> bytes:
        start = self._records_off + index * self._record_size
        return bytes(self.buf[start:start + self.key_width])

    def record(self, index: int) -> Tuple[str, int, int, int, int]:
        """``(key, seq, offset, length, flags)`` of record ``index``."""
        start = self._records_off + index * self._record_size
        key = self._key_bytes_at(index).rstrip(b"\x00").decode("utf-8")
        seq, offset, length, flags = _RECORD_FIXED.unpack_from(
            self.buf, start + self.key_width)
        return key, seq, offset, length, flags

    def find(self, key: str) -> Optional[int]:
        """Record index of ``key`` via binary search, or ``None``."""
        key_bytes = key.encode("utf-8")
        if len(key_bytes) > self.key_width:
            return None
        probe = key_bytes.ljust(self.key_width, b"\x00")
        lo = bisect_left(range(self.count), probe,
                         key=self._key_bytes_at)  # type: ignore[call-overload]
        if lo < self.count and self._key_bytes_at(lo) == probe:
            return lo
        return None

    def blob(self, offset: int, length: int) -> bytes:
        start = self.payload_offset + offset
        end = start + length
        if offset < 0 or length < 0 or end > len(self.buf):
            raise _ShardCorrupt("payload out of bounds")
        return bytes(self.buf[start:end])

    def seq_stats(self) -> Tuple[int, int]:
        """``(count, max_seq)`` straight from the record table -- no
        payload decode."""
        max_seq = 0
        for index in range(self.count):
            start = (self._records_off + index * self._record_size
                     + self.key_width)
            seq = _RECORD_FIXED.unpack_from(self.buf, start)[0]
            max_seq = max(max_seq, seq)
        return self.count, max_seq


# ---------------------------------------------------------------------------
# durable atomic writers
# ---------------------------------------------------------------------------

def _fsync_dir(directory: str) -> None:
    """Flush a directory entry (rename durability); best effort."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_json(path: str, payload: Any, *, fsync: bool = False) -> None:
    """Serialize ``payload`` to ``path`` atomically (temp file + rename).

    With ``fsync=True`` the temp file is flushed to disk *before* the
    rename and the containing directory *after* it, so a crash between
    rename and the kernel's next writeback cannot lose the file.
    """
    directory = os.path.dirname(path) or "."
    fd, tmp_path = tempfile.mkstemp(prefix=".tmp-", dir=directory)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True, separators=(",", ":"))
            if fsync:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp_path, path)
        if fsync:
            _fsync_dir(directory)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def _atomic_write_bytes(path: str, data: bytes, *, fsync: bool = False) -> None:
    """The binary-shard counterpart of :func:`atomic_write_json`."""
    directory = os.path.dirname(path) or "."
    fd, tmp_path = tempfile.mkstemp(prefix=".tmp-", dir=directory)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            if fsync:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp_path, path)
        if fsync:
            _fsync_dir(directory)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def report_to_payload(report, key: str) -> Dict[str, Any]:
    """Encode a :class:`~repro.engine.core.SolveReport` as a store entry.

    Raises :class:`~repro.engine.fingerprint.UnserializableSolutionError`
    when the wrapped solution has no stable JSON form; callers treat that
    as "skip persistence".
    """
    certificate = None
    if report.certificate is not None:
        certificate = {
            "passed": bool(report.certificate.passed),
            "feasible": bool(report.certificate.feasible),
            "checks": {str(k): bool(v) for k, v in report.certificate.checks.items()},
            "notes": {str(k): str(v) for k, v in report.certificate.notes.items()},
        }
    return {
        "key": key,
        "solver_id": report.solver_id,
        "method": report.method,
        "objective": report.objective,
        "wall_time": float(report.wall_time),
        "problem_fingerprint": report.problem_fingerprint,
        "parameter": report.parameter,
        "structure": report.structure,
        "certificate": certificate,
        "solution": solution_to_payload(report.solution),
    }


def report_from_payload(payload: Dict[str, Any]):
    """Inverse of :func:`report_to_payload` (returns a ``SolveReport``)."""
    # Imported lazily: core imports this module at load time (tier-2 wiring).
    from repro.engine.certify import Certificate
    from repro.engine.core import SolveReport

    certificate = None
    if payload.get("certificate") is not None:
        cert = payload["certificate"]
        certificate = Certificate(passed=cert["passed"], feasible=cert["feasible"],
                                  checks=dict(cert.get("checks", {})),
                                  notes=dict(cert.get("notes", {})))
    return SolveReport(
        solution=solution_from_payload(payload["solution"]),
        solver_id=payload["solver_id"],
        method=payload["method"],
        objective=payload["objective"],
        wall_time=float(payload.get("wall_time", 0.0)),
        problem_fingerprint=payload["problem_fingerprint"],
        structure=dict(payload.get("structure", {})),
        certificate=certificate,
        parameter=payload.get("parameter"),
    )


class SolutionStore:
    """Sharded persistent key/payload store with cache accounting.

    Parameters
    ----------
    root:
        Directory holding the store (created on demand).
    max_entries_per_shard:
        Per-shard entry cap; the oldest entries are evicted beyond it.
    shard_width:
        Number of leading key characters selecting a shard (2 -> up to 256
        shards for hex keys).
    cache_shards:
        Keep decoded shards in memory after first access.  Leave on for a
        single-writer process; call :meth:`refresh` to observe writes made
        by other processes.
    max_total_entries:
        Optional store-wide entry cap for long-lived deployments.  When
        set, every write that pushes the store past the cap triggers
        :meth:`compact`, which evicts the oldest entries (smallest
        insertion sequence first) until the cap holds again.  ``None``
        (the default) disables the GC; :meth:`compact` can still be called
        manually with an explicit target.
    shard_format:
        ``"binary"`` (default) writes the packed v2 shard format;
        ``"json"`` writes the legacy v1 sharded JSON.  *Reads* always
        negotiate per shard file, so either handle serves a mixed store.
    durable:
        Fsync shard and meta writes (temp file before the rename, shard
        directory after it).  Off by default -- atomicity alone already
        guarantees readers never see torn blobs; ``durable=True`` adds
        power-loss durability at the cost of one fsync pair per write.
    """

    def __init__(self, root: str, *, max_entries_per_shard: int = 4096,
                 shard_width: int = 2, cache_shards: bool = True,
                 max_total_entries: Optional[int] = None,
                 shard_format: str = "binary", durable: bool = False):
        require(max_entries_per_shard > 0, "max_entries_per_shard must be positive")
        require(1 <= shard_width <= 8, "shard_width must be in [1, 8]")
        require(max_total_entries is None or max_total_entries > 0,
                "max_total_entries must be positive (or None to disable the GC)")
        require(shard_format in ("binary", "json"),
                "shard_format must be 'binary' or 'json'")
        self.root = os.path.abspath(root)
        self.max_entries_per_shard = max_entries_per_shard
        self.shard_width = shard_width
        self.cache_shards = cache_shards
        self.max_total_entries = max_total_entries
        self.shard_format = shard_format
        self.durable = durable
        self._shards: Dict[str, Dict[str, Any]] = {}
        #: Lazy binary readers: shard id -> reader (only shards whose sole
        #: on-disk form is packed v2; anything mixed falls back to a full
        #: decode).  Invalidated together with ``_shards``.
        self._readers: Dict[str, _PackedShardReader] = {}
        #: Shards whose packed blob failed to open (corrupt / unknown
        #: version): remembered so the failure is counted once, not on
        #: every lookup.  Cleared when the shard is rewritten.
        self._failed_readers: set = set()
        #: Global insertion sequence (next value to assign) and cached total
        #: entry count; both are established lazily by one full-store scan
        #: (:meth:`_seq_floor_scan`) and kept incrementally afterwards, so
        #: writes stay O(one shard).  ``None`` means "rescan before use".
        self._next_seq: Optional[int] = None
        self._entry_total: Optional[int] = None
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.evictions = 0
        self.compactions = 0
        self.corrupt_shards = 0
        self.schema_mismatches = 0
        self.skipped_writes = 0
        # Decode/scan accounting (the raw-speed counters benchmarks gate
        # on): how many JSON *shard files* were fully parsed, how many
        # individual payload blobs were JSON-decoded, how many alias
        # entries resolved straight from the record table, and the bulk
        # scan traffic.
        self.full_shard_parses = 0
        self.payload_decodes = 0
        self.alias_fast_hits = 0
        self.binary_shard_opens = 0
        self.scans = 0
        self.scan_entries = 0
        self.scan_alias_skips = 0
        self.migrated_shards = 0
        os.makedirs(self._shard_dir, exist_ok=True)
        self._write_meta_if_absent()

    # ------------------------------------------------------------------
    # layout helpers
    # ------------------------------------------------------------------
    @property
    def _shard_dir(self) -> str:
        return os.path.join(self.root, "shards")

    @property
    def _meta_path(self) -> str:
        return os.path.join(self.root, "meta.json")

    def _shard_id(self, key: str) -> str:
        require(isinstance(key, str) and len(key) >= self.shard_width,
                f"store keys must be strings of >= {self.shard_width} chars")
        return key[:self.shard_width]

    def _json_path(self, shard_id: str) -> str:
        return os.path.join(self._shard_dir, f"{shard_id}.json")

    def _binary_path(self, shard_id: str) -> str:
        return os.path.join(self._shard_dir, f"{shard_id}.rps")

    def _shard_files(self, shard_id: str) -> Tuple[bool, bool]:
        """``(has_json, has_binary)`` for one shard id."""
        return (os.path.exists(self._json_path(shard_id)),
                os.path.exists(self._binary_path(shard_id)))

    def _write_meta_if_absent(self) -> None:
        if os.path.exists(self._meta_path):
            try:
                with open(self._meta_path, "r", encoding="utf-8") as handle:
                    meta = json.load(handle)
                # Version negotiation: v1 and v2 stores are both first-class
                # (shard formats are negotiated per file); only an *unknown*
                # schema counts as a mismatch.
                if meta.get("schema") not in _KNOWN_SCHEMAS:
                    self.schema_mismatches += 1
                # The layout on disk wins: reopening with a different
                # shard_width must not orphan the existing shards.
                stored_width = meta.get("shard_width")
                if isinstance(stored_width, int) and 1 <= stored_width <= 8:
                    self.shard_width = stored_width
            except (OSError, json.JSONDecodeError, AttributeError):
                self.corrupt_shards += 1
            return
        atomic_write_json(self._meta_path, {
            "schema": STORE_SCHEMA_VERSION,
            "format": "repro-solution-store/packed-v2",
            "shard_width": self.shard_width,
            "shard_format": self.shard_format,
        }, fsync=self.durable)

    # ------------------------------------------------------------------
    # shard IO
    # ------------------------------------------------------------------
    def _load_json_entries(self, shard_id: str) -> Dict[str, Any]:
        """Fully parse one v1 JSON shard blob (corruption decays to empty)."""
        path = self._json_path(shard_id)
        entries: Dict[str, Any] = {}
        try:
            with open(path, "r", encoding="utf-8") as handle:
                blob = json.load(handle)
            self.full_shard_parses += 1
            if not isinstance(blob, dict) or not isinstance(blob.get("entries"), dict):
                raise ValueError("malformed shard blob")
            if blob.get("schema") != STORE_SCHEMA_V1:
                self.schema_mismatches += 1
            else:
                # Entry values must be payload dicts; anything else is
                # per-entry corruption (counted, skipped, repaired on
                # the shard's next write).
                entries = {k: v for k, v in blob["entries"].items()
                           if isinstance(v, dict)}
                if len(entries) != len(blob["entries"]):
                    self.corrupt_shards += 1
        except (OSError, json.JSONDecodeError, ValueError):
            self.corrupt_shards += 1
        return entries

    def _reader(self, shard_id: str) -> Optional[_PackedShardReader]:
        """The (cached) packed reader for one v2 shard, or ``None``."""
        reader = self._readers.get(shard_id)
        if reader is not None:
            return reader
        if shard_id in self._failed_readers:
            return None
        path = self._binary_path(shard_id)
        if not os.path.exists(path):
            return None
        try:
            reader = _PackedShardReader(path)
            self.binary_shard_opens += 1
        except _ShardSchemaMismatch:
            self.schema_mismatches += 1
            self._failed_readers.add(shard_id)
            return None
        except (_ShardCorrupt, OSError, UnicodeDecodeError):
            self.corrupt_shards += 1
            self._failed_readers.add(shard_id)
            return None
        if self.cache_shards:
            self._readers[shard_id] = reader
        return reader

    def _decode_record(self, reader: _PackedShardReader,
                       index: int) -> Optional[Tuple[str, Dict[str, Any]]]:
        """``(key, entry-with-__seq__)`` for one record; ``None`` on
        per-entry corruption (counted)."""
        try:
            key, seq, offset, length, flags = reader.record(index)
            blob = reader.blob(offset, length)
            if flags & _FLAG_ALIAS:
                payload: Dict[str, Any] = {"alias_of": blob.decode("utf-8")}
            else:
                payload = json.loads(blob.decode("utf-8"))
                self.payload_decodes += 1
                if not isinstance(payload, dict):
                    raise ValueError("payload is not an object")
        except (_ShardCorrupt, struct.error, UnicodeDecodeError,
                json.JSONDecodeError, ValueError):
            self.corrupt_shards += 1
            return None
        entry = dict(payload)
        entry["__seq__"] = seq
        return key, entry

    def _load_binary_entries(self, shard_id: str) -> Dict[str, Any]:
        """Fully decode one packed shard (the write/compact/migrate path)."""
        reader = self._reader(shard_id)
        entries: Dict[str, Any] = {}
        if reader is None:
            return entries
        for index in range(reader.count):
            decoded = self._decode_record(reader, index)
            if decoded is not None:
                entries[decoded[0]] = decoded[1]
        return entries

    def _load_shard(self, shard_id: str) -> Dict[str, Any]:
        """Entries of one shard, fully decoded; corruption decays to empty.

        Negotiates the format per file.  When both a ``.json`` and a
        ``.rps`` blob exist (a crash between a format-converting rewrite
        and the old file's unlink), the two are merged with the higher
        insertion sequence winning per key.
        """
        if self.cache_shards and shard_id in self._shards:
            return self._shards[shard_id]
        has_json, has_binary = self._shard_files(shard_id)
        entries: Dict[str, Any] = {}
        if has_json:
            entries = self._load_json_entries(shard_id)
        if has_binary:
            for key, entry in self._load_binary_entries(shard_id).items():
                current = entries.get(key)
                if (current is None or current.get("__seq__", 0)
                        <= entry.get("__seq__", 0)):
                    entries[key] = entry
        if self.cache_shards:
            self._shards[shard_id] = entries
        return entries

    def _write_shard(self, shard_id: str, entries: Dict[str, Any]) -> None:
        """Rewrite one shard in the store's configured format (atomic).

        The other-format file, if any, is removed *after* the new blob is
        in place -- a crash in between leaves both, which reads merge by
        sequence number.
        """
        if self.shard_format == "binary":
            _atomic_write_bytes(self._binary_path(shard_id),
                                _pack_shard(entries), fsync=self.durable)
            stale = self._json_path(shard_id)
        else:
            atomic_write_json(self._json_path(shard_id),
                              {"schema": STORE_SCHEMA_V1, "entries": entries},
                              fsync=self.durable)
            stale = self._binary_path(shard_id)
        try:
            os.unlink(stale)
        except OSError:
            pass
        self._readers.pop(shard_id, None)
        self._failed_readers.discard(shard_id)
        if self.cache_shards:
            self._shards[shard_id] = entries

    def _invalidate_shard(self, shard_id: str) -> None:
        self._shards.pop(shard_id, None)
        self._readers.pop(shard_id, None)
        self._failed_readers.discard(shard_id)

    def _evict(self, entries: Dict[str, Any]) -> int:
        evicted = 0
        while len(entries) > self.max_entries_per_shard:
            oldest = min(entries, key=lambda k: entries[k].get("__seq__", 0))
            del entries[oldest]
            self.evictions += 1
            evicted += 1
        return evicted

    # ------------------------------------------------------------------
    # global insertion sequence + entry accounting
    # ------------------------------------------------------------------
    def _shard_stats(self, shard_id: str) -> Tuple[int, int]:
        """``(entry count, max seq)`` of one shard, as cheaply as possible.

        Pure-binary shards answer from the record table without a single
        payload decode; JSON (or mixed) shards pay the full parse they
        would pay anyway.
        """
        if self.cache_shards and shard_id in self._shards:
            entries = self._shards[shard_id]
            return len(entries), max((e.get("__seq__", 0)
                                      for e in entries.values()), default=0)
        has_json, has_binary = self._shard_files(shard_id)
        if has_binary and not has_json:
            reader = self._reader(shard_id)
            return reader.seq_stats() if reader is not None else (0, 0)
        entries = self._load_shard(shard_id)
        return len(entries), max((e.get("__seq__", 0)
                                  for e in entries.values()), default=0)

    def _seq_floor_scan(self) -> None:
        """One full-store scan establishing the sequence floor and count.

        The insertion sequence is *store-global* (not per shard): eviction
        order under :meth:`compact` follows true insertion order across
        shards.  Reopening a store resumes above every persisted sequence,
        so insertion order survives restarts.  Concurrent writer processes
        allocate from independent counters seeded by the same floor, so
        cross-process ordering is approximate (exactly like the shared
        read-modify-write window documented in ``docs/caching.md``).
        """
        floor = 0
        total = 0
        for shard_id in self._shard_ids():
            count, max_seq = self._shard_stats(shard_id)
            total += count
            floor = max(floor, max_seq)
        if self._next_seq is None or self._next_seq <= floor:
            self._next_seq = floor + 1
        self._entry_total = total

    def _allocate_seq(self) -> int:
        if self._next_seq is None:
            self._seq_floor_scan()
        seq = self._next_seq
        self._next_seq += 1
        return seq

    def _total_entries(self) -> int:
        """The (cached) store-wide entry count -- O(1) after the first scan."""
        if self._entry_total is None:
            self._seq_floor_scan()
        return self._entry_total

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def _lookup(self, key: str) -> Optional[Dict[str, Any]]:
        """The entry for ``key`` (``__seq__`` included), or ``None``.

        The fast path: a pure-binary shard resolves through the packed
        record table -- a binary search plus at most one payload decode
        (none at all for alias entries).  JSON or mixed shards fall back
        to the full decode they always required.
        """
        shard_id = self._shard_id(key)
        if self.cache_shards and shard_id in self._shards:
            return self._shards[shard_id].get(key)
        has_json, has_binary = self._shard_files(shard_id)
        if has_binary and not has_json:
            reader = self._reader(shard_id)
            if reader is None:
                return None
            cached = reader.decoded.get(key)
            if cached is not None:
                return cached
            index = reader.find(key)
            if index is None:
                return None
            decoded = self._decode_record(reader, index)
            if decoded is None:
                return None
            if decoded[1].keys() == {"alias_of", "__seq__"}:
                self.alias_fast_hits += 1
            reader.decoded[key] = decoded[1]
            return decoded[1]
        return self._load_shard(shard_id).get(key)

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored payload for ``key``, or ``None`` (counted as a miss)."""
        with self._lock:
            entry = self._lookup(key)
            if entry is None:
                self.misses += 1
                return None
            self.hits += 1
            return {k: v for k, v in entry.items() if k != "__seq__"}

    def put(self, key: str, payload: Dict[str, Any]) -> bool:
        """Persist ``payload`` under ``key`` (atomic); returns ``True``.

        Failed writes never raise: an unserializable payload *and* IO
        errors (disk full, read-only store) are counted in
        ``skipped_writes`` and the method returns ``False`` -- a store
        write must not fail the solve that produced the payload.
        """
        with self._lock:
            shard_id = self._shard_id(key)
            # Merge against the shard on disk, not a possibly-stale memory
            # copy, so entries another process wrote since our first read
            # are kept (the remaining read-modify-write window is
            # documented in docs/caching.md).
            self._invalidate_shard(shard_id)
            entries = dict(self._load_shard(shard_id))
            fresh = key not in entries
            entry = dict(payload)
            entry["__seq__"] = self._allocate_seq()
            entries[key] = entry
            evicted = self._evict(entries)
            try:
                self._write_shard(shard_id, entries)
            except (OSError, TypeError, ValueError):
                self.skipped_writes += 1
                self._invalidate_shard(shard_id)
                self._entry_total = None  # count is uncertain; rescan lazily
                return False
            self.writes += 1
            if self._entry_total is not None:
                self._entry_total += (1 if fresh else 0) - evicted
            self._maybe_gc()
            return True

    def put_many(self, items: Sequence[Tuple[str, Dict[str, Any]]]) -> int:
        """Persist many ``(key, payload)`` pairs; returns how many stuck.

        Pairs are grouped by shard so each shard pays one read-modify-write
        regardless of how many entries land in it -- the bulk-write path
        the sweep service uses after each completed shard.  Same failure
        semantics as :meth:`put` (never raises; failed shards are counted
        in ``skipped_writes`` per entry).
        """
        by_shard: Dict[str, List[Tuple[str, Dict[str, Any]]]] = {}
        for key, payload in items:
            by_shard.setdefault(self._shard_id(key), []).append((key, payload))
        written = 0
        with self._lock:
            for shard_id, pairs in by_shard.items():
                self._invalidate_shard(shard_id)
                entries = dict(self._load_shard(shard_id))
                fresh = 0
                for key, payload in pairs:
                    fresh += key not in entries
                    entry = dict(payload)
                    entry["__seq__"] = self._allocate_seq()
                    entries[key] = entry
                evicted = self._evict(entries)
                try:
                    self._write_shard(shard_id, entries)
                except (OSError, TypeError, ValueError):
                    self.skipped_writes += len(pairs)
                    self._invalidate_shard(shard_id)
                    self._entry_total = None  # count is uncertain; rescan lazily
                    continue
                self.writes += len(pairs)
                written += len(pairs)
                if self._entry_total is not None:
                    self._entry_total += fresh - evicted
            if written:
                self._maybe_gc()
        return written

    def put_reports(self, pairs) -> int:
        """Persist many ``(key, SolveReport)`` pairs (see :meth:`put_many`).

        Reports whose solutions have no stable JSON form are skipped and
        counted, exactly like :meth:`put_report`.
        """
        encoded = []
        for key, report in pairs:
            try:
                encoded.append((key, report_to_payload(report, key)))
            except UnserializableSolutionError:
                with self._lock:
                    self.skipped_writes += 1
        return self.put_many(encoded)

    def put_report(self, key: str, report) -> bool:
        """Persist a :class:`~repro.engine.core.SolveReport` under ``key``.

        Unserializable solutions (exotic allocation keys / metadata) are
        skipped gracefully -- the solve still succeeded, it just is not
        persisted.
        """
        try:
            payload = report_to_payload(report, key)
        except UnserializableSolutionError:
            with self._lock:
                self.skipped_writes += 1
            return False
        return self.put(key, payload)

    def get_report(self, key: str):
        """The stored ``SolveReport`` for ``key``, or ``None``.

        A payload that no longer decodes (e.g. hand-edited) counts as
        corruption and returns ``None`` -- the caller recomputes.
        """
        payload = self.get(key)
        if payload is None:
            return None
        try:
            return report_from_payload(payload)
        except (KeyError, TypeError, ValueError, SyntaxError):
            with self._lock:
                self.corrupt_shards += 1
            return None

    def _maybe_gc(self) -> None:
        """Run :meth:`compact` if the configured entry cap is exceeded.

        Uses the incrementally-maintained entry count, so the per-write
        overhead is O(1) after the store's first full scan.
        """
        if (self.max_total_entries is not None
                and self._total_entries() > self.max_total_entries):
            self.compact(self.max_total_entries)

    def compact(self, max_entries: Optional[int] = None) -> int:
        """Evict the oldest entries until at most ``max_entries`` remain.

        The GC hook for long-lived deployments: entries are evicted in
        insertion order (oldest first) following the store-global
        insertion sequence, which is seeded above every persisted entry on
        reopen -- so the order holds across shards and across restarts
        (concurrent writer processes interleave approximately; see
        :meth:`_seq_floor_scan`).  Touched shards are rewritten
        atomically; a shard whose rewrite fails keeps its old blob (the
        failure is counted in ``skipped_writes``, never raised).  Returns
        the number of entries evicted and increments the ``compactions``
        counter once per run.

        ``max_entries`` defaults to the store's configured
        ``max_total_entries`` (one of the two must be set).
        """
        cap = max_entries if max_entries is not None else self.max_total_entries
        require(cap is not None and cap >= 0,
                "compact() needs max_entries= or a store-level max_total_entries")
        with self._lock:
            shard_entries = {shard_id: dict(self._load_shard(shard_id))
                             for shard_id in self._shard_ids()}
            total = sum(len(entries) for entries in shard_entries.values())
            self.compactions += 1
            excess = total - cap
            if excess <= 0:
                return 0
            oldest_first = sorted(
                (entry.get("__seq__", 0), shard_id, key)
                for shard_id, entries in shard_entries.items()
                for key, entry in entries.items())
            touched = set()
            for _seq, shard_id, key in oldest_first[:excess]:
                del shard_entries[shard_id][key]
                touched.add(shard_id)
            written_ok = set()
            for shard_id in sorted(touched):
                try:
                    self._write_shard(shard_id, shard_entries[shard_id])
                    written_ok.add(shard_id)
                except (OSError, TypeError, ValueError):
                    self.skipped_writes += 1
                    self._invalidate_shard(shard_id)
            evicted = 0
            for _seq, shard_id, _key in oldest_first[:excess]:
                if shard_id in written_ok:
                    self.evictions += 1
                    evicted += 1
            if written_ok == touched:
                self._entry_total = total - evicted
            else:
                self._entry_total = None  # partial rewrite; rescan lazily
            return evicted

    def migrate(self, target_format: Optional[str] = None) -> Dict[str, int]:
        """Rewrite every shard into ``target_format`` (default: the store's
        configured ``shard_format``).

        The v1 -> v2 upgrade path (and, symmetrically, the v2 -> v1
        escape hatch): each shard is fully decoded -- whatever format it
        is in -- and rewritten atomically in the target format, preserving
        every payload and the global insertion sequence bit for bit.
        ``meta.json`` is refreshed afterwards.  Returns
        ``{"shards": rewritten, "entries": carried, "failed": skipped}``;
        failed shard rewrites keep their old blob (counted in
        ``skipped_writes`` as usual) so a partial migration is still a
        fully readable mixed-format store.
        """
        target = target_format if target_format is not None else self.shard_format
        require(target in ("binary", "json"),
                "target_format must be 'binary' or 'json'")
        with self._lock:
            previous_format = self.shard_format
            self.shard_format = target
            shards = entries_carried = failed = 0
            try:
                for shard_id in self._shard_ids():
                    entries = dict(self._load_shard(shard_id))
                    try:
                        self._write_shard(shard_id, entries)
                    except (OSError, TypeError, ValueError):
                        self.skipped_writes += 1
                        self._invalidate_shard(shard_id)
                        failed += 1
                        continue
                    shards += 1
                    entries_carried += len(entries)
                    self.migrated_shards += 1
            except BaseException:
                self.shard_format = previous_format
                raise
            try:
                atomic_write_json(self._meta_path, {
                    "schema": STORE_SCHEMA_VERSION,
                    "format": "repro-solution-store/packed-v2",
                    "shard_width": self.shard_width,
                    "shard_format": self.shard_format,
                }, fsync=self.durable)
            except OSError:
                self.skipped_writes += 1
            return {"shards": shards, "entries": entries_carried,
                    "failed": failed}

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return self._lookup(key) is not None

    def __len__(self) -> int:
        return self.entry_count()

    def entry_count(self) -> int:
        """Total entries across every shard on disk (exact; refreshes the
        cached count the GC trigger uses)."""
        with self._lock:
            total = sum(self._shard_stats(shard_id)[0]
                        for shard_id in self._shard_ids())
            self._entry_total = total
            return total

    def _shard_ids(self):
        try:
            names = os.listdir(self._shard_dir)
        except OSError:
            return []
        ids = {name[:-5] for name in names
               if name.endswith(".json") and not name.startswith(".tmp-")}
        ids.update(name[:-4] for name in names
                   if name.endswith(".rps") and not name.startswith(".tmp-"))
        return sorted(ids)

    def payloads(self) -> Iterator[Tuple[str, Dict[str, Any]]]:
        """Iterate ``(key, payload)`` over every stored entry (all shards).

        Fully decodes every entry (alias payloads included); use
        :meth:`scan` for the bulk path that skips alias entries without
        decoding them.
        """
        with self._lock:
            for shard_id in self._shard_ids():
                for key, entry in sorted(self._load_shard(shard_id).items()):
                    yield key, {k: v for k, v in entry.items() if k != "__seq__"}

    def scan(self, *, include_aliases: bool = False) -> Iterator[Tuple[str, Dict[str, Any]]]:
        """Bulk-iterate ``(key, payload)`` across the whole store, lazily.

        The one-pass feeder for table regeneration
        (:func:`repro.analysis.sweep.sweep_records`): packed v2 shards
        stream straight off the record table -- one JSON decode per
        non-alias payload, **zero** full-shard parses and **zero** decodes
        for alias entries, which are skipped from the record flags alone
        (counted in ``scan_alias_skips``).  With ``include_aliases=True``
        alias entries are yielded as ``{"alias_of": key}``, still without
        touching JSON.  Legacy JSON shards fall back to the full parse
        they always required.  ``scans`` / ``scan_entries`` count the
        traffic.
        """
        with self._lock:
            self.scans += 1
            for shard_id in self._shard_ids():
                if self.cache_shards and shard_id in self._shards:
                    source = self._shards[shard_id]
                elif self._shard_files(shard_id) == (False, True):
                    yield from self._scan_binary(shard_id,
                                                 include_aliases=include_aliases)
                    continue
                else:
                    source = self._load_shard(shard_id)
                for key, entry in sorted(source.items()):
                    payload = {k: v for k, v in entry.items() if k != "__seq__"}
                    if _is_alias_payload(payload) and not include_aliases:
                        self.scan_alias_skips += 1
                        continue
                    self.scan_entries += 1
                    yield key, payload

    def _scan_binary(self, shard_id: str, *,
                     include_aliases: bool) -> Iterator[Tuple[str, Dict[str, Any]]]:
        """One packed shard's slice of :meth:`scan` (no full decode)."""
        reader = self._reader(shard_id)
        if reader is None:
            return
        for index in range(reader.count):
            try:
                key, _seq, offset, length, flags = reader.record(index)
            except (struct.error, UnicodeDecodeError):
                self.corrupt_shards += 1
                continue
            if flags & _FLAG_ALIAS:
                if not include_aliases:
                    self.scan_alias_skips += 1
                    continue
                try:
                    payload = {"alias_of":
                               reader.blob(offset, length).decode("utf-8")}
                except (_ShardCorrupt, UnicodeDecodeError):
                    self.corrupt_shards += 1
                    continue
            else:
                try:
                    payload = json.loads(reader.blob(offset, length).decode("utf-8"))
                    self.payload_decodes += 1
                    if not isinstance(payload, dict):
                        raise ValueError("payload is not an object")
                except (_ShardCorrupt, UnicodeDecodeError,
                        json.JSONDecodeError, ValueError):
                    self.corrupt_shards += 1
                    continue
            self.scan_entries += 1
            yield key, payload

    def refresh(self) -> None:
        """Drop the in-memory shard cache (re-read other processes' writes)."""
        with self._lock:
            self._shards.clear()
            self._readers.clear()
            self._failed_readers.clear()
            # Another process may have added entries (and higher sequence
            # numbers); rescan both lazily on next use.
            self._entry_total = None
            self._next_seq = None

    def clear(self) -> None:
        """Delete every shard blob and reset the statistics."""
        with self._lock:
            for shard_id in self._shard_ids():
                for path in (self._json_path(shard_id),
                             self._binary_path(shard_id)):
                    try:
                        os.unlink(path)
                    except OSError:
                        pass
            self._shards.clear()
            self._readers.clear()
            self._failed_readers.clear()
            self._entry_total = 0
            self._next_seq = None
            self.hits = self.misses = self.writes = 0
            self.evictions = self.compactions = self.corrupt_shards = 0
            self.schema_mismatches = self.skipped_writes = 0
            self.full_shard_parses = self.payload_decodes = 0
            self.alias_fast_hits = self.binary_shard_opens = 0
            self.scans = self.scan_entries = self.scan_alias_skips = 0
            self.migrated_shards = 0

    def info(self) -> dict:
        """Statistics dict mirroring :meth:`LRUCache.info` plus store extras."""
        with self._lock:
            return {
                "root": self.root,
                "schema": STORE_SCHEMA_VERSION,
                "shard_format": self.shard_format,
                "durable": self.durable,
                "entries": self.entry_count(),
                "shards": len(self._shard_ids()),
                "max_entries_per_shard": self.max_entries_per_shard,
                "max_total_entries": self.max_total_entries,
                "hits": self.hits,
                "misses": self.misses,
                "writes": self.writes,
                "evictions": self.evictions,
                "compactions": self.compactions,
                "corrupt_shards": self.corrupt_shards,
                "schema_mismatches": self.schema_mismatches,
                "skipped_writes": self.skipped_writes,
                "full_shard_parses": self.full_shard_parses,
                "payload_decodes": self.payload_decodes,
                "alias_fast_hits": self.alias_fast_hits,
                "binary_shard_opens": self.binary_shard_opens,
                "scans": self.scans,
                "scan_entries": self.scan_entries,
                "scan_alias_skips": self.scan_alias_skips,
                "migrated_shards": self.migrated_shards,
            }

    #: The numeric-counter subset of :meth:`info` exported to metrics
    #: snapshots: machine-independent work counts plus the two gauges a
    #: dashboard wants next to them (``entries``, ``shards``).  No paths,
    #: formats or configuration -- the snapshot stays comparable across
    #: hosts and deployments.
    COUNTER_FIELDS = (
        "entries", "shards", "hits", "misses", "writes", "evictions",
        "compactions", "corrupt_shards", "schema_mismatches",
        "skipped_writes", "full_shard_parses", "payload_decodes",
        "alias_fast_hits", "binary_shard_opens", "scans", "scan_entries",
        "scan_alias_skips", "migrated_shards",
    )

    def counters(self) -> Dict[str, int]:
        """Just the counters of :meth:`info` (see :data:`COUNTER_FIELDS`).

        This is what :meth:`AsyncSweepService.snapshot
        <repro.engine.async_service.AsyncSweepService.snapshot>` embeds
        under ``"store"`` and what the ``metrics`` wire op therefore
        exports -- keep it JSON-safe and host-independent.
        """
        info = self.info()
        return {name: info[name] for name in self.COUNTER_FIELDS}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SolutionStore(root={self.root!r}, entries={self.entry_count()}, "
                f"hits={self.hits}, misses={self.misses})")
