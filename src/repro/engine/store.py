"""Persistent on-disk solution store -- tier 2 of the engine's cache.

The in-memory LRU of :mod:`repro.engine.core` dies with the process; the
:class:`SolutionStore` persists solved reports so repeated sweeps -- across
runs, processes and machines sharing a filesystem -- are served from disk
instead of recomputed.  ``repro.solve`` consults it automatically once
installed with :func:`repro.engine.core.set_solution_store`; the
:class:`~repro.engine.service.SweepService` uses it as its system of record.

On-disk format (see ``docs/caching.md`` for the full specification):

* ``<root>/meta.json`` -- store-level metadata (schema version, creator);
* ``<root>/shards/<prefix>.rps`` -- the **packed binary v2** shard format
  (the default): a fixed-width, key-sorted record table (key bytes +
  insertion sequence + payload offset/length + flags) followed by a
  payload region of per-entry JSON blobs.  A ``get()`` binary-searches the
  record table and decodes *one* payload; alias entries
  (``{"alias_of": key}``) keep their target in the payload region as raw
  key bytes and resolve without any JSON decode; :meth:`SolutionStore.scan`
  streams every entry in one pass, skipping alias payloads untouched.
* ``<root>/shards/<prefix>.json`` -- the legacy sharded-JSON v1 format,
  still fully readable *and* writable (``shard_format="json"``); each blob
  is ``{"schema": 1, "entries": {request_key: payload}}``.  The format is
  negotiated per shard file, so mixed stores work; a write rewrites its
  shard in the store's configured format and :meth:`SolutionStore.migrate`
  converts a whole store at once.

Guarantees:

* **atomic writes** -- every blob is written to a temp file in the same
  directory and ``os.replace``d into place, so readers never observe a
  half-written shard; with ``durable=True`` the temp file is fsynced
  before the rename and the shard directory after it (crash-consistent,
  covering ``meta.json`` too);
* **cross-process write safety** -- with ``locking=True`` (the default)
  every shard's read-modify-write cycle runs under a per-shard advisory
  file lock (``fcntl.lockf`` with a timeout, plus a process-wide thread
  lock because POSIX record locks do not exclude threads of one
  process), so concurrent writer processes -- the multi-runner cluster
  in :mod:`repro.cluster` -- never lose each other's entries; a holder
  killed mid-write is taken over via its pid breadcrumb
  (``stale_locks_recovered``), and a lock that cannot be acquired within
  ``lock_timeout`` falls back to the lock-free atomic write (counted in
  ``lock_timeouts``, availability over strictness);
* **single-writer GC** -- :meth:`SolutionStore.compact` first wins a
  store-wide compaction election (the same lock machinery); a store
  that loses the election skips the run (``compactions_skipped``) so
  only one runner compacts a shared store at a time;
* **corruption tolerance** -- a truncated/unparseable shard (either
  format) or a schema mismatch is counted (``info()``) and treated as
  empty: the affected requests recompute and the next write repairs the
  shard; nothing crashes;
* **bounded shards** -- each shard keeps at most ``max_entries_per_shard``
  entries, evicting the oldest (smallest insertion sequence) first;
* **bounded stores** -- with ``max_total_entries`` set, any write pushing
  the store past the cap triggers :meth:`SolutionStore.compact`, the GC
  hook for long-lived deployments (oldest entries evicted first, counted
  in ``info()["evictions"]`` / ``info()["compactions"]``).

Usage:

>>> import tempfile
>>> from repro.engine.store import SolutionStore
>>> store = SolutionStore(tempfile.mkdtemp())
>>> store.put("a" * 64, {"answer": 42})
True
>>> store.get("a" * 64)["answer"]
42
>>> store.get("b" * 64) is None        # a miss, counted in info()
True
>>> info = store.info()
>>> info["hits"], info["misses"], info["entries"]
(1, 1, 1)
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import tempfile
import threading
import time
from bisect import bisect_left
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

try:  # POSIX advisory record locks; gated so non-posix hosts still import
    import fcntl
    _HAS_FCNTL = True
except ImportError:  # pragma: no cover - non-posix platform
    fcntl = None  # type: ignore[assignment]
    _HAS_FCNTL = False

from repro.engine.fingerprint import (
    UnserializableSolutionError,
    solution_from_payload,
    solution_to_payload,
)
from repro.utils.validation import require

__all__ = [
    "STORE_SCHEMA_VERSION",
    "STORE_SCHEMA_V1",
    "SolutionStore",
    "report_to_payload",
    "report_from_payload",
    "atomic_write_json",
]

#: Version of the on-disk payload layout.  ``2`` is the packed binary shard
#: format; ``1`` (legacy sharded JSON) stays fully readable and writable.
#: Entries written under an *unknown* version are ignored (recomputed),
#: never misread.
STORE_SCHEMA_VERSION = 2

#: The legacy sharded-JSON schema (the only schema JSON shard blobs carry).
STORE_SCHEMA_V1 = 1

#: Schema versions this code can read; anything else is a mismatch.
_KNOWN_SCHEMAS = (STORE_SCHEMA_V1, STORE_SCHEMA_VERSION)

# ---------------------------------------------------------------------------
# packed binary shard format (v2)
# ---------------------------------------------------------------------------
#
#   header   <8sHHIIQ>  magic  b"RPSHARD2", version (2), flags, entry count,
#                       key slot width, payload-region offset
#   records  count x (key_width bytes, NUL-padded key)  +  <QQII>
#                       insertion seq, payload offset (relative to the
#                       region), payload length, flags (bit 0 = alias)
#   payloads concatenated blobs: raw UTF-8 target-key bytes for alias
#            entries, compact JSON for everything else
#
# Records are sorted by (padded) key bytes, so a lookup is a binary search
# over fixed-width slots on the mmapped file -- no parsing beyond the
# 28-byte header, and exactly one JSON decode per payload actually read.

_SHARD_MAGIC = b"RPSHARD2"
_HEADER = struct.Struct("<8sHHIIQ")
_RECORD_FIXED = struct.Struct("<QQII")
_FLAG_ALIAS = 1


class _ShardCorrupt(Exception):
    """A binary shard that cannot be trusted (bad magic, bounds, struct)."""


class _ShardSchemaMismatch(Exception):
    """A binary shard written under an unknown format version."""


def _is_alias_payload(payload: Dict[str, Any]) -> bool:
    return len(payload) == 1 and isinstance(payload.get("alias_of"), str)


def _pack_shard(entries: Dict[str, Dict[str, Any]]) -> bytes:
    """Serialize ``entries`` (values carry ``__seq__``) into a v2 shard.

    Raises ``TypeError``/``ValueError`` for unpackable keys or payloads --
    the same failure class the JSON writer raises, which callers already
    count as skipped writes.
    """
    encoded: List[Tuple[bytes, int, bytes, int]] = []
    for key in sorted(entries):
        entry = entries[key]
        key_bytes = key.encode("utf-8")
        if not key_bytes or b"\x00" in key_bytes:
            raise ValueError(f"store key not packable: {key!r}")
        seq = int(entry.get("__seq__", 0))
        payload = {k: v for k, v in entry.items() if k != "__seq__"}
        if _is_alias_payload(payload):
            blob, flags = payload["alias_of"].encode("utf-8"), _FLAG_ALIAS
        else:
            blob = json.dumps(payload, sort_keys=True,
                              separators=(",", ":")).encode("utf-8")
            flags = 0
        encoded.append((key_bytes, seq, blob, flags))

    key_width = max((len(k) for k, _s, _b, _f in encoded), default=1)
    record_size = key_width + _RECORD_FIXED.size
    payload_offset = _HEADER.size + record_size * len(encoded)
    parts = [_HEADER.pack(_SHARD_MAGIC, STORE_SCHEMA_VERSION, 0,
                          len(encoded), key_width, payload_offset)]
    blobs: List[bytes] = []
    offset = 0
    for key_bytes, seq, blob, flags in encoded:
        parts.append(key_bytes.ljust(key_width, b"\x00"))
        parts.append(_RECORD_FIXED.pack(seq, offset, len(blob), flags))
        blobs.append(blob)
        offset += len(blob)
    return b"".join(parts + blobs)


class _PackedShardReader:
    """Lazy, mmap-backed view of one packed binary shard.

    Parses only the 28-byte header eagerly; key lookups binary-search the
    fixed-width record table directly on the mapped buffer and payloads
    are decoded one at a time, on demand (memoized per key).  Every offset
    is bounds-checked -- a mangled file raises :class:`_ShardCorrupt`
    (whole-file distrust) which the store decays to "empty shard".
    """

    __slots__ = ("path", "buf", "count", "key_width", "payload_offset",
                 "_record_size", "_records_off", "decoded")

    def __init__(self, path: str):
        self.path = path
        with open(path, "rb") as handle:
            try:
                self.buf: Any = mmap.mmap(handle.fileno(), 0,
                                          access=mmap.ACCESS_READ)
            except (ValueError, OSError):  # empty file / mmap-hostile fs
                handle.seek(0)
                self.buf = handle.read()
        try:
            magic, version, _flags, count, key_width, payload_offset = \
                _HEADER.unpack_from(self.buf, 0)
        except struct.error as exc:
            raise _ShardCorrupt(str(exc)) from exc
        if magic != _SHARD_MAGIC:
            raise _ShardCorrupt("bad magic")
        if version != STORE_SCHEMA_VERSION:
            raise _ShardSchemaMismatch(f"shard version {version}")
        self.count = count
        self.key_width = key_width
        self.payload_offset = payload_offset
        self._record_size = key_width + _RECORD_FIXED.size
        self._records_off = _HEADER.size
        if (key_width < 1
                or self._records_off + self._record_size * count > payload_offset
                or payload_offset > len(self.buf)):
            raise _ShardCorrupt("record table out of bounds")
        self.decoded: Dict[str, Dict[str, Any]] = {}

    # -- record access ---------------------------------------------------
    def _key_bytes_at(self, index: int) -> bytes:
        start = self._records_off + index * self._record_size
        return bytes(self.buf[start:start + self.key_width])

    def record(self, index: int) -> Tuple[str, int, int, int, int]:
        """``(key, seq, offset, length, flags)`` of record ``index``."""
        start = self._records_off + index * self._record_size
        key = self._key_bytes_at(index).rstrip(b"\x00").decode("utf-8")
        seq, offset, length, flags = _RECORD_FIXED.unpack_from(
            self.buf, start + self.key_width)
        return key, seq, offset, length, flags

    def find(self, key: str) -> Optional[int]:
        """Record index of ``key`` via binary search, or ``None``."""
        key_bytes = key.encode("utf-8")
        if len(key_bytes) > self.key_width:
            return None
        probe = key_bytes.ljust(self.key_width, b"\x00")
        lo = bisect_left(range(self.count), probe,
                         key=self._key_bytes_at)  # type: ignore[call-overload]
        if lo < self.count and self._key_bytes_at(lo) == probe:
            return lo
        return None

    def blob(self, offset: int, length: int) -> bytes:
        start = self.payload_offset + offset
        end = start + length
        if offset < 0 or length < 0 or end > len(self.buf):
            raise _ShardCorrupt("payload out of bounds")
        return bytes(self.buf[start:end])

    def seq_stats(self) -> Tuple[int, int]:
        """``(count, max_seq)`` straight from the record table -- no
        payload decode."""
        max_seq = 0
        for index in range(self.count):
            start = (self._records_off + index * self._record_size
                     + self.key_width)
            seq = _RECORD_FIXED.unpack_from(self.buf, start)[0]
            max_seq = max(max_seq, seq)
        return self.count, max_seq


# ---------------------------------------------------------------------------
# durable atomic writers
# ---------------------------------------------------------------------------

def _fsync_dir(directory: str) -> None:
    """Flush a directory entry (rename durability); best effort."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_json(path: str, payload: Any, *, fsync: bool = False) -> None:
    """Serialize ``payload`` to ``path`` atomically (temp file + rename).

    With ``fsync=True`` the temp file is flushed to disk *before* the
    rename and the containing directory *after* it, so a crash between
    rename and the kernel's next writeback cannot lose the file.
    """
    directory = os.path.dirname(path) or "."
    fd, tmp_path = tempfile.mkstemp(prefix=".tmp-", dir=directory)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True, separators=(",", ":"))
            if fsync:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp_path, path)
        if fsync:
            _fsync_dir(directory)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def _atomic_write_bytes(path: str, data: bytes, *, fsync: bool = False) -> None:
    """The binary-shard counterpart of :func:`atomic_write_json`."""
    directory = os.path.dirname(path) or "."
    fd, tmp_path = tempfile.mkstemp(prefix=".tmp-", dir=directory)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            if fsync:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp_path, path)
        if fsync:
            _fsync_dir(directory)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


# ---------------------------------------------------------------------------
# cross-process advisory locking
# ---------------------------------------------------------------------------
#
# Two layers, because POSIX record locks are *per process*: a process-wide
# ``threading.Lock`` keyed by (store root, lock name) serialises store
# instances inside one process (a second ``lockf`` from the same process
# would succeed, and closing any fd to the file drops the process's
# locks), and an ``fcntl.lockf`` on ``<root>/locks/<name>.lock``
# serialises across processes.  The lock file carries the holder's pid as
# a breadcrumb, truncated away on clean release -- so a new holder that
# finds a dead pid knows it took over from a killed writer (with fcntl
# the kernel already freed the lock at death; on the O_EXCL fallback for
# hosts without fcntl the breadcrumb is what makes takeover possible at
# all).  Lock files are never unlinked (unlink + recreate races two
# acquirers onto different inodes).

_LOCK_POLL_INTERVAL = 0.005

_PROCESS_LOCKS: Dict[Tuple[str, str], threading.Lock] = {}
_PROCESS_LOCKS_GUARD = threading.Lock()


def _process_lock(root: str, name: str) -> threading.Lock:
    """The process-wide thread lock for one (store root, lock name)."""
    key = (root, name)
    with _PROCESS_LOCKS_GUARD:
        lock = _PROCESS_LOCKS.get(key)
        if lock is None:
            lock = _PROCESS_LOCKS[key] = threading.Lock()
        return lock


def _pid_alive(pid: int) -> bool:
    """Is a process with this pid still running (best effort)?"""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - other-user process
        return True
    except OSError:  # pragma: no cover - exotic platforms
        return False
    return True


class _HeldLock:
    """One successfully acquired advisory lock; call :meth:`release`."""

    __slots__ = ("_fd", "_owner_path", "_thread_lock", "contended",
                 "stale_takeover")

    def __init__(self, fd: Optional[int], owner_path: Optional[str],
                 thread_lock: threading.Lock, *, contended: bool,
                 stale_takeover: bool):
        self._fd = fd
        self._owner_path = owner_path
        self._thread_lock = thread_lock
        #: Another holder was seen while acquiring (lock contention).
        self.contended = contended
        #: The previous holder died without releasing (pid breadcrumb).
        self.stale_takeover = stale_takeover

    def release(self) -> None:
        if self._fd is not None:
            try:
                os.ftruncate(self._fd, 0)
                fcntl.lockf(self._fd, fcntl.LOCK_UN)
            except OSError:  # pragma: no cover - fs teardown race
                pass
            try:
                os.close(self._fd)
            except OSError:  # pragma: no cover - fs teardown race
                pass
            self._fd = None
        elif self._owner_path is not None:
            try:
                os.unlink(self._owner_path)
            except OSError:  # pragma: no cover - fs teardown race
                pass
            self._owner_path = None
        self._thread_lock.release()


def _read_breadcrumb(source) -> Optional[int]:
    """The pid recorded in a lock file (fd or path), or ``None``."""
    try:
        if isinstance(source, int):
            raw = os.pread(source, 32, 0)
        else:
            with open(source, "rb") as handle:
                raw = handle.read(32)
    except OSError:
        return None
    text = raw.decode("ascii", "replace").strip()
    return int(text) if text.isdigit() else None


def _acquire_file_lock(path: str, thread_lock: threading.Lock,
                       timeout: float) -> Optional[_HeldLock]:
    """Acquire the advisory lock at ``path``; ``None`` on timeout.

    Polls non-blocking acquisitions until ``timeout`` seconds have
    passed -- a timeout releases everything it touched, so the caller
    can degrade to a lock-free write instead of wedging.
    """
    deadline = time.monotonic() + timeout
    if not thread_lock.acquire(timeout=timeout):
        return None
    contended = False
    stale = False
    try:
        if _HAS_FCNTL:
            fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o644)
            try:
                while True:
                    try:
                        fcntl.lockf(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                        break
                    except (BlockingIOError, PermissionError):
                        contended = True
                        if time.monotonic() >= deadline:
                            os.close(fd)
                            thread_lock.release()
                            return None
                        time.sleep(_LOCK_POLL_INTERVAL)
            except BaseException:
                os.close(fd)
                raise
            previous = _read_breadcrumb(fd)
            if previous is not None and previous != os.getpid() \
                    and not _pid_alive(previous):
                stale = True
            try:
                os.ftruncate(fd, 0)
                os.pwrite(fd, str(os.getpid()).encode("ascii"), 0)
            except OSError:  # pragma: no cover - breadcrumb is best effort
                pass
            return _HeldLock(fd, None, thread_lock, contended=contended,
                             stale_takeover=stale)
        # Fallback without fcntl: an O_EXCL owner file IS the lock; a dead
        # holder's file is removed (stale takeover) instead of waited on.
        owner_path = path + ".owner"
        while True:
            try:
                fd = os.open(owner_path,
                             os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
                os.write(fd, str(os.getpid()).encode("ascii"))
                os.close(fd)
                return _HeldLock(None, owner_path, thread_lock,
                                 contended=contended, stale_takeover=stale)
            except FileExistsError:
                contended = True
                previous = _read_breadcrumb(owner_path)
                if previous is not None and not _pid_alive(previous):
                    try:
                        os.unlink(owner_path)
                    except OSError:  # pragma: no cover - lost the race
                        pass
                    stale = True
                    continue
                if time.monotonic() >= deadline:
                    thread_lock.release()
                    return None
                time.sleep(_LOCK_POLL_INTERVAL)
    except BaseException:  # pragma: no cover - unexpected OS failure
        thread_lock.release()
        raise


def report_to_payload(report, key: str) -> Dict[str, Any]:
    """Encode a :class:`~repro.engine.core.SolveReport` as a store entry.

    Raises :class:`~repro.engine.fingerprint.UnserializableSolutionError`
    when the wrapped solution has no stable JSON form; callers treat that
    as "skip persistence".
    """
    certificate = None
    if report.certificate is not None:
        certificate = {
            "passed": bool(report.certificate.passed),
            "feasible": bool(report.certificate.feasible),
            "checks": {str(k): bool(v) for k, v in report.certificate.checks.items()},
            "notes": {str(k): str(v) for k, v in report.certificate.notes.items()},
        }
    return {
        "key": key,
        "solver_id": report.solver_id,
        "method": report.method,
        "objective": report.objective,
        "wall_time": float(report.wall_time),
        "problem_fingerprint": report.problem_fingerprint,
        "parameter": report.parameter,
        "structure": report.structure,
        "certificate": certificate,
        "solution": solution_to_payload(report.solution),
    }


def report_from_payload(payload: Dict[str, Any]):
    """Inverse of :func:`report_to_payload` (returns a ``SolveReport``)."""
    # Imported lazily: core imports this module at load time (tier-2 wiring).
    from repro.engine.certify import Certificate
    from repro.engine.core import SolveReport

    certificate = None
    if payload.get("certificate") is not None:
        cert = payload["certificate"]
        certificate = Certificate(passed=cert["passed"], feasible=cert["feasible"],
                                  checks=dict(cert.get("checks", {})),
                                  notes=dict(cert.get("notes", {})))
    return SolveReport(
        solution=solution_from_payload(payload["solution"]),
        solver_id=payload["solver_id"],
        method=payload["method"],
        objective=payload["objective"],
        wall_time=float(payload.get("wall_time", 0.0)),
        problem_fingerprint=payload["problem_fingerprint"],
        structure=dict(payload.get("structure", {})),
        certificate=certificate,
        parameter=payload.get("parameter"),
    )


class SolutionStore:
    """Sharded persistent key/payload store with cache accounting.

    Parameters
    ----------
    root:
        Directory holding the store (created on demand).
    max_entries_per_shard:
        Per-shard entry cap; the oldest entries are evicted beyond it.
    shard_width:
        Number of leading key characters selecting a shard (2 -> up to 256
        shards for hex keys).
    cache_shards:
        Keep decoded shards in memory after first access.  Leave on for a
        single-writer process; call :meth:`refresh` to observe writes made
        by other processes.
    max_total_entries:
        Optional store-wide entry cap for long-lived deployments.  When
        set, every write that pushes the store past the cap triggers
        :meth:`compact`, which evicts the oldest entries (smallest
        insertion sequence first) until the cap holds again.  ``None``
        (the default) disables the GC; :meth:`compact` can still be called
        manually with an explicit target.
    shard_format:
        ``"binary"`` (default) writes the packed v2 shard format;
        ``"json"`` writes the legacy v1 sharded JSON.  *Reads* always
        negotiate per shard file, so either handle serves a mixed store.
    durable:
        Fsync shard and meta writes (temp file before the rename, shard
        directory after it).  Off by default -- atomicity alone already
        guarantees readers never see torn blobs; ``durable=True`` adds
        power-loss durability at the cost of one fsync pair per write.
    locking:
        Serialise each shard's read-modify-write cycle (and the
        compaction election) under per-shard advisory file locks, so
        concurrent writer *processes* sharing the store never lose each
        other's entries.  On by default; the lock directory lives at
        ``<root>/locks`` beside the shards.
    lock_timeout:
        Seconds to wait for an advisory lock before degrading to the
        lock-free atomic write (counted in ``lock_timeouts``); also the
        compaction-election patience.
    """

    def __init__(self, root: str, *, max_entries_per_shard: int = 4096,
                 shard_width: int = 2, cache_shards: bool = True,
                 max_total_entries: Optional[int] = None,
                 shard_format: str = "binary", durable: bool = False,
                 locking: bool = True, lock_timeout: float = 10.0):
        require(max_entries_per_shard > 0, "max_entries_per_shard must be positive")
        require(1 <= shard_width <= 8, "shard_width must be in [1, 8]")
        require(max_total_entries is None or max_total_entries > 0,
                "max_total_entries must be positive (or None to disable the GC)")
        require(shard_format in ("binary", "json"),
                "shard_format must be 'binary' or 'json'")
        require(lock_timeout > 0, "lock_timeout must be positive")
        self.root = os.path.abspath(root)
        self.max_entries_per_shard = max_entries_per_shard
        self.shard_width = shard_width
        self.cache_shards = cache_shards
        self.max_total_entries = max_total_entries
        self.shard_format = shard_format
        self.durable = durable
        self.locking = locking
        self.lock_timeout = lock_timeout
        #: Key of the process-wide lock registry: symlink-stable so two
        #: instances opened through different paths still serialise.
        self._lock_root = os.path.realpath(self.root)
        self._shards: Dict[str, Dict[str, Any]] = {}
        #: Lazy binary readers: shard id -> reader (only shards whose sole
        #: on-disk form is packed v2; anything mixed falls back to a full
        #: decode).  Invalidated together with ``_shards``.
        self._readers: Dict[str, _PackedShardReader] = {}
        #: Shards whose packed blob failed to open (corrupt / unknown
        #: version): remembered so the failure is counted once, not on
        #: every lookup.  Cleared when the shard is rewritten.
        self._failed_readers: set = set()
        #: On-disk identity of each cached shard at the moment it was
        #: read (see :meth:`_shard_signature`).  A lookup that misses in
        #: the cache compares against this to detect rewrites by *other*
        #: processes sharing the root (atomic renames always change the
        #: inode) and reloads once instead of reporting a stale miss.
        self._shard_sigs: Dict[str, Tuple] = {}
        #: Global insertion sequence (next value to assign) and cached total
        #: entry count; both are established lazily by one full-store scan
        #: (:meth:`_seq_floor_scan`) and kept incrementally afterwards, so
        #: writes stay O(one shard).  ``None`` means "rescan before use".
        self._next_seq: Optional[int] = None
        self._entry_total: Optional[int] = None
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.evictions = 0
        self.compactions = 0
        self.corrupt_shards = 0
        self.schema_mismatches = 0
        self.skipped_writes = 0
        # Decode/scan accounting (the raw-speed counters benchmarks gate
        # on): how many JSON *shard files* were fully parsed, how many
        # individual payload blobs were JSON-decoded, how many alias
        # entries resolved straight from the record table, and the bulk
        # scan traffic.
        self.full_shard_parses = 0
        self.payload_decodes = 0
        self.alias_fast_hits = 0
        self.binary_shard_opens = 0
        self.scans = 0
        self.scan_entries = 0
        self.scan_alias_skips = 0
        self.migrated_shards = 0
        # Ring-filtered scan traffic (elastic prewarming): scan_routed
        # calls, entries yielded because their route key landed on the
        # requested owner, and entries filtered out without being
        # decoded further.
        self.routed_scans = 0
        self.routed_entries = 0
        self.routed_skips = 0
        # Cross-process locking accounting (the cluster bench gates on
        # these): acquisitions, contended acquisitions, acquisitions that
        # timed out (degraded to a lock-free write), takeovers from a
        # killed holder, and compaction runs skipped because another
        # writer holds the election.
        self.lock_acquires = 0
        self.lock_waits = 0
        self.lock_timeouts = 0
        self.stale_locks_recovered = 0
        self.compactions_skipped = 0
        # Read-side cross-process coherence: cached shards found stale
        # against their on-disk signature and reloaded mid-lookup.
        self.stale_shard_reloads = 0
        # Batched planning reads: keys resolved through get_many (one
        # shard resolution per distinct shard instead of per key).
        self.batched_lookups = 0
        # Cross-runner solve claims (the duplicate-compute guard): claims
        # this handle acquired, claim attempts that found a live foreign
        # holder, and claims taken over from a dead holder.
        self.claims_acquired = 0
        self.claims_contended = 0
        self.stale_claims_recovered = 0
        os.makedirs(self._shard_dir, exist_ok=True)
        if self.locking:
            os.makedirs(self._lock_dir, exist_ok=True)
        self._write_meta_if_absent()

    # ------------------------------------------------------------------
    # layout helpers
    # ------------------------------------------------------------------
    @property
    def _shard_dir(self) -> str:
        return os.path.join(self.root, "shards")

    @property
    def _meta_path(self) -> str:
        return os.path.join(self.root, "meta.json")

    @property
    def _lock_dir(self) -> str:
        return os.path.join(self.root, "locks")

    def _lock_path(self, name: str) -> str:
        return os.path.join(self._lock_dir, f"{name}.lock")

    def _guard(self, name: str, *, timeout: Optional[float] = None,
               count_timeout: bool = True) -> Optional[_HeldLock]:
        """Acquire one named advisory lock, with counter accounting.

        Returns ``None`` when locking is disabled *or* the acquisition
        timed out -- the caller proceeds either way (a shard write
        degrades to the plain atomic-rename path, which is merely
        last-writer-wins, never corrupt).  ``count_timeout=False`` keeps
        an *expected* loss -- the compaction election -- out of the
        ``lock_timeouts`` counter the benchmarks gate at zero.
        """
        if not self.locking:
            return None
        try:
            os.makedirs(self._lock_dir, exist_ok=True)
            held = _acquire_file_lock(
                self._lock_path(name),
                _process_lock(self._lock_root, name),
                self.lock_timeout if timeout is None else timeout)
        except OSError:  # pragma: no cover - unlockable filesystem
            if count_timeout:
                self.lock_timeouts += 1
            return None
        if held is None:
            if count_timeout:
                self.lock_timeouts += 1
            return None
        self.lock_acquires += 1
        if held.contended:
            self.lock_waits += 1
        if held.stale_takeover:
            self.stale_locks_recovered += 1
        return held

    def _shard_id(self, key: str) -> str:
        require(isinstance(key, str) and len(key) >= self.shard_width,
                f"store keys must be strings of >= {self.shard_width} chars")
        return key[:self.shard_width]

    def _json_path(self, shard_id: str) -> str:
        return os.path.join(self._shard_dir, f"{shard_id}.json")

    def _binary_path(self, shard_id: str) -> str:
        return os.path.join(self._shard_dir, f"{shard_id}.rps")

    def _shard_files(self, shard_id: str) -> Tuple[bool, bool]:
        """``(has_json, has_binary)`` for one shard id."""
        return (os.path.exists(self._json_path(shard_id)),
                os.path.exists(self._binary_path(shard_id)))

    @staticmethod
    def _stat_sig(path: str) -> Optional[Tuple[int, int, int]]:
        try:
            stat = os.stat(path)
        except OSError:
            return None
        return (stat.st_ino, stat.st_size, stat.st_mtime_ns)

    def _shard_signature(self, shard_id: str) -> Tuple[Optional[Tuple[int, int, int]],
                                                       Optional[Tuple[int, int, int]]]:
        """On-disk identity of one shard: ``(json_sig, binary_sig)``.

        Each side is ``(st_ino, st_size, st_mtime_ns)`` or ``None`` for
        an absent file.  Every store write goes through an atomic
        temp-file + rename, which allocates a fresh inode, so a rewrite
        by any process -- including same-size, same-mtime ones -- always
        changes the signature.
        """
        return (self._stat_sig(self._json_path(shard_id)),
                self._stat_sig(self._binary_path(shard_id)))

    def _write_meta_if_absent(self) -> None:
        if os.path.exists(self._meta_path):
            try:
                with open(self._meta_path, "r", encoding="utf-8") as handle:
                    meta = json.load(handle)
                # Version negotiation: v1 and v2 stores are both first-class
                # (shard formats are negotiated per file); only an *unknown*
                # schema counts as a mismatch.
                if meta.get("schema") not in _KNOWN_SCHEMAS:
                    self.schema_mismatches += 1
                # The layout on disk wins: reopening with a different
                # shard_width must not orphan the existing shards.
                stored_width = meta.get("shard_width")
                if isinstance(stored_width, int) and 1 <= stored_width <= 8:
                    self.shard_width = stored_width
            except (OSError, json.JSONDecodeError, AttributeError):
                self.corrupt_shards += 1
            return
        atomic_write_json(self._meta_path, {
            "schema": STORE_SCHEMA_VERSION,
            "format": "repro-solution-store/packed-v2",
            "shard_width": self.shard_width,
            "shard_format": self.shard_format,
        }, fsync=self.durable)

    # ------------------------------------------------------------------
    # shard IO
    # ------------------------------------------------------------------
    def _load_json_entries(self, shard_id: str) -> Dict[str, Any]:
        """Fully parse one v1 JSON shard blob (corruption decays to empty)."""
        path = self._json_path(shard_id)
        entries: Dict[str, Any] = {}
        try:
            with open(path, "r", encoding="utf-8") as handle:
                blob = json.load(handle)
            self.full_shard_parses += 1
            if not isinstance(blob, dict) or not isinstance(blob.get("entries"), dict):
                raise ValueError("malformed shard blob")
            if blob.get("schema") != STORE_SCHEMA_V1:
                self.schema_mismatches += 1
            else:
                # Entry values must be payload dicts; anything else is
                # per-entry corruption (counted, skipped, repaired on
                # the shard's next write).
                entries = {k: v for k, v in blob["entries"].items()
                           if isinstance(v, dict)}
                if len(entries) != len(blob["entries"]):
                    self.corrupt_shards += 1
        except (OSError, json.JSONDecodeError, ValueError):
            self.corrupt_shards += 1
        return entries

    def _reader(self, shard_id: str) -> Optional[_PackedShardReader]:
        """The (cached) packed reader for one v2 shard, or ``None``."""
        reader = self._readers.get(shard_id)
        if reader is not None:
            return reader
        if shard_id in self._failed_readers:
            return None
        path = self._binary_path(shard_id)
        if not os.path.exists(path):
            return None
        # Signature taken *before* the open: if the file is swapped
        # mid-open we record the older identity and the next miss simply
        # revalidates again (conservative, never stale-forever).
        signature = self._shard_signature(shard_id)
        try:
            reader = _PackedShardReader(path)
            self.binary_shard_opens += 1
        except _ShardSchemaMismatch:
            self.schema_mismatches += 1
            self._failed_readers.add(shard_id)
            return None
        except (_ShardCorrupt, OSError, UnicodeDecodeError):
            self.corrupt_shards += 1
            self._failed_readers.add(shard_id)
            return None
        if self.cache_shards:
            self._readers[shard_id] = reader
            self._shard_sigs[shard_id] = signature
        return reader

    def _decode_record(self, reader: _PackedShardReader,
                       index: int) -> Optional[Tuple[str, Dict[str, Any]]]:
        """``(key, entry-with-__seq__)`` for one record; ``None`` on
        per-entry corruption (counted)."""
        try:
            key, seq, offset, length, flags = reader.record(index)
            blob = reader.blob(offset, length)
            if flags & _FLAG_ALIAS:
                payload: Dict[str, Any] = {"alias_of": blob.decode("utf-8")}
            else:
                payload = json.loads(blob.decode("utf-8"))
                self.payload_decodes += 1
                if not isinstance(payload, dict):
                    raise ValueError("payload is not an object")
        except (_ShardCorrupt, struct.error, UnicodeDecodeError,
                json.JSONDecodeError, ValueError):
            self.corrupt_shards += 1
            return None
        entry = dict(payload)
        entry["__seq__"] = seq
        return key, entry

    def _load_binary_entries(self, shard_id: str) -> Dict[str, Any]:
        """Fully decode one packed shard (the write/compact/migrate path)."""
        reader = self._reader(shard_id)
        entries: Dict[str, Any] = {}
        if reader is None:
            return entries
        for index in range(reader.count):
            decoded = self._decode_record(reader, index)
            if decoded is not None:
                entries[decoded[0]] = decoded[1]
        return entries

    def _load_shard(self, shard_id: str) -> Dict[str, Any]:
        """Entries of one shard, fully decoded; corruption decays to empty.

        Negotiates the format per file.  When both a ``.json`` and a
        ``.rps`` blob exist (a crash between a format-converting rewrite
        and the old file's unlink), the two are merged with the higher
        insertion sequence winning per key.
        """
        if self.cache_shards and shard_id in self._shards:
            return self._shards[shard_id]
        # Signature before the read, so a concurrent rewrite makes the
        # cached copy look stale (and reload) rather than current.
        signature = self._shard_signature(shard_id)
        has_json, has_binary = self._shard_files(shard_id)
        entries: Dict[str, Any] = {}
        if has_json:
            entries = self._load_json_entries(shard_id)
        if has_binary:
            for key, entry in self._load_binary_entries(shard_id).items():
                current = entries.get(key)
                if (current is None or current.get("__seq__", 0)
                        <= entry.get("__seq__", 0)):
                    entries[key] = entry
        if self.cache_shards:
            self._shards[shard_id] = entries
            self._shard_sigs[shard_id] = signature
        return entries

    def _write_shard(self, shard_id: str, entries: Dict[str, Any]) -> None:
        """Rewrite one shard in the store's configured format (atomic).

        The other-format file, if any, is removed *after* the new blob is
        in place -- a crash in between leaves both, which reads merge by
        sequence number.
        """
        if self.shard_format == "binary":
            _atomic_write_bytes(self._binary_path(shard_id),
                                _pack_shard(entries), fsync=self.durable)
            stale = self._json_path(shard_id)
        else:
            atomic_write_json(self._json_path(shard_id),
                              {"schema": STORE_SCHEMA_V1, "entries": entries},
                              fsync=self.durable)
            stale = self._binary_path(shard_id)
        try:
            os.unlink(stale)
        except OSError:
            pass
        self._readers.pop(shard_id, None)
        self._failed_readers.discard(shard_id)
        if self.cache_shards:
            self._shards[shard_id] = entries
            self._shard_sigs[shard_id] = self._shard_signature(shard_id)

    def _invalidate_shard(self, shard_id: str) -> None:
        self._shards.pop(shard_id, None)
        self._readers.pop(shard_id, None)
        self._failed_readers.discard(shard_id)
        self._shard_sigs.pop(shard_id, None)

    def _evict(self, entries: Dict[str, Any]) -> int:
        evicted = 0
        while len(entries) > self.max_entries_per_shard:
            oldest = min(entries, key=lambda k: entries[k].get("__seq__", 0))
            del entries[oldest]
            self.evictions += 1
            evicted += 1
        return evicted

    # ------------------------------------------------------------------
    # global insertion sequence + entry accounting
    # ------------------------------------------------------------------
    def _shard_stats(self, shard_id: str) -> Tuple[int, int]:
        """``(entry count, max seq)`` of one shard, as cheaply as possible.

        Pure-binary shards answer from the record table without a single
        payload decode; JSON (or mixed) shards pay the full parse they
        would pay anyway.
        """
        if self.cache_shards and shard_id in self._shards:
            entries = self._shards[shard_id]
            return len(entries), max((e.get("__seq__", 0)
                                      for e in entries.values()), default=0)
        has_json, has_binary = self._shard_files(shard_id)
        if has_binary and not has_json:
            reader = self._reader(shard_id)
            return reader.seq_stats() if reader is not None else (0, 0)
        entries = self._load_shard(shard_id)
        return len(entries), max((e.get("__seq__", 0)
                                  for e in entries.values()), default=0)

    def _seq_floor_scan(self) -> None:
        """One full-store scan establishing the sequence floor and count.

        The insertion sequence is *store-global* (not per shard): eviction
        order under :meth:`compact` follows true insertion order across
        shards.  Reopening a store resumes above every persisted sequence,
        so insertion order survives restarts.  Concurrent writer processes
        allocate from independent counters seeded by the same floor, so
        cross-process ordering is approximate (exactly like the shared
        read-modify-write window documented in ``docs/caching.md``).
        """
        floor = 0
        total = 0
        for shard_id in self._shard_ids():
            count, max_seq = self._shard_stats(shard_id)
            total += count
            floor = max(floor, max_seq)
        if self._next_seq is None or self._next_seq <= floor:
            self._next_seq = floor + 1
        self._entry_total = total

    def _allocate_seq(self) -> int:
        if self._next_seq is None:
            self._seq_floor_scan()
        seq = self._next_seq
        self._next_seq += 1
        return seq

    def _total_entries(self) -> int:
        """The (cached) store-wide entry count -- O(1) after the first scan."""
        if self._entry_total is None:
            self._seq_floor_scan()
        return self._entry_total

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def _lookup(self, key: str) -> Optional[Dict[str, Any]]:
        """The entry for ``key`` (``__seq__`` included), or ``None``.

        A miss against *cached* shard state is revalidated against the
        on-disk signature before it is believed: when another process
        sharing the root rewrote the shard since we cached it, the shard
        is reloaded and the lookup retried once
        (``stale_shard_reloads``).  Hits are served straight from the
        cache -- entries are immutable once written, so a cached hit can
        never be wrong, and the hot path stays stat-free.
        """
        shard_id = self._shard_id(key)
        entry = self._lookup_once(shard_id, key)
        if entry is not None or not self.cache_shards:
            return entry
        recorded = self._shard_sigs.get(shard_id)
        if recorded is None:
            # Nothing cached for this shard -- the miss came straight
            # from disk and is genuine.
            return None
        if self._shard_signature(shard_id) == recorded:
            return None
        self._invalidate_shard(shard_id)
        entry = self._lookup_once(shard_id, key)
        if entry is not None:
            self.stale_shard_reloads += 1
        return entry

    def _lookup_once(self, shard_id: str, key: str) -> Optional[Dict[str, Any]]:
        """One lookup pass, trusting whatever shard state is cached.

        The fast path: a pure-binary shard resolves through the packed
        record table -- a binary search plus at most one payload decode
        (none at all for alias entries).  JSON or mixed shards fall back
        to the full decode they always required.
        """
        if self.cache_shards and shard_id in self._shards:
            return self._shards[shard_id].get(key)
        has_json, has_binary = self._shard_files(shard_id)
        if has_binary and not has_json:
            reader = self._reader(shard_id)
            if reader is None:
                return None
            cached = reader.decoded.get(key)
            if cached is not None:
                return cached
            index = reader.find(key)
            if index is None:
                return None
            decoded = self._decode_record(reader, index)
            if decoded is None:
                return None
            if decoded[1].keys() == {"alias_of", "__seq__"}:
                self.alias_fast_hits += 1
            reader.decoded[key] = decoded[1]
            return decoded[1]
        return self._load_shard(shard_id).get(key)

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored payload for ``key``, or ``None`` (counted as a miss)."""
        with self._lock:
            entry = self._lookup(key)
            if entry is None:
                self.misses += 1
                return None
            self.hits += 1
            return {k: v for k, v in entry.items() if k != "__seq__"}

    def get_many(self, keys) -> Dict[str, Optional[Dict[str, Any]]]:
        """Batched :meth:`get`: one shard resolution per distinct shard.

        Looking keys up one by one pays the cross-process staleness
        check (a ``stat`` against the shard's on-disk signature) once
        per *missing key*; the batched pass pays it once per *shard*,
        which is what makes whole-grid planning affordable.  Duplicate
        keys are resolved once.  Returns ``{key: payload-or-None}`` with
        the same hit/miss accounting as :meth:`get`.
        """
        results: Dict[str, Optional[Dict[str, Any]]] = {}
        with self._lock:
            by_shard: Dict[str, List[str]] = {}
            for key in keys:
                if key not in results:
                    results[key] = None
                    by_shard.setdefault(self._shard_id(key), []).append(key)
            for shard_id, shard_keys in by_shard.items():
                revalidated = not self.cache_shards
                for key in shard_keys:
                    entry = self._lookup_once(shard_id, key)
                    if entry is None and not revalidated:
                        # One signature check per shard: the first miss
                        # revalidates against disk; later misses in the
                        # same shard trust the (now fresh) cache.
                        revalidated = True
                        recorded = self._shard_sigs.get(shard_id)
                        if recorded is not None and \
                                self._shard_signature(shard_id) != recorded:
                            self._invalidate_shard(shard_id)
                            entry = self._lookup_once(shard_id, key)
                            if entry is not None:
                                self.stale_shard_reloads += 1
                    self.batched_lookups += 1
                    if entry is None:
                        self.misses += 1
                    else:
                        self.hits += 1
                        results[key] = {k: v for k, v in entry.items()
                                        if k != "__seq__"}
        return results

    def get_reports_many(self, keys):
        """Batched report fetch following alias indirection.

        Returns ``{key: (resolved_key, report)}`` for every requested
        key: ``resolved_key`` is the fingerprint the report lives under
        (the alias target when the entry was a spec-alias), and
        ``report`` is the decoded :class:`SolveReport` or ``None`` on a
        miss (including an alias whose target has been lost).  Both
        levels resolve through :meth:`get_many`, so a whole sweep plan
        costs one pass over each touched shard.
        """
        entries = self.get_many(keys)
        targets: Dict[str, str] = {}
        for key, entry in entries.items():
            if entry is not None and isinstance(entry.get("alias_of"), str):
                targets[key] = entry["alias_of"]
        resolved = self.get_many(set(targets.values())) if targets else {}
        results = {}
        for key, entry in entries.items():
            if key in targets:
                true_key = targets[key]
                payload = resolved.get(true_key)
            else:
                true_key, payload = key, entry
            if payload is None:
                results[key] = (true_key if key in targets else None, None)
                continue
            try:
                results[key] = (true_key, report_from_payload(payload))
            except (KeyError, TypeError, ValueError, SyntaxError):
                with self._lock:
                    self.corrupt_shards += 1
                results[key] = (true_key, None)
        return results

    def put(self, key: str, payload: Dict[str, Any]) -> bool:
        """Persist ``payload`` under ``key`` (atomic); returns ``True``.

        Failed writes never raise: an unserializable payload *and* IO
        errors (disk full, read-only store) are counted in
        ``skipped_writes`` and the method returns ``False`` -- a store
        write must not fail the solve that produced the payload.
        """
        with self._lock:
            shard_id = self._shard_id(key)
            # Merge against the shard on disk, not a possibly-stale memory
            # copy, so entries another process wrote since our first read
            # are kept; the per-shard advisory lock holds the whole
            # read-modify-write cycle, closing the cross-process window
            # (a timed-out lock degrades to the old last-writer-wins
            # atomic write, counted in ``lock_timeouts``).
            held = self._guard(shard_id)
            try:
                self._invalidate_shard(shard_id)
                entries = dict(self._load_shard(shard_id))
                fresh = key not in entries
                entry = dict(payload)
                entry["__seq__"] = self._allocate_seq()
                entries[key] = entry
                evicted = self._evict(entries)
                try:
                    self._write_shard(shard_id, entries)
                except (OSError, TypeError, ValueError):
                    self.skipped_writes += 1
                    self._invalidate_shard(shard_id)
                    self._entry_total = None  # count uncertain; rescan lazily
                    return False
            finally:
                if held is not None:
                    held.release()
            self.writes += 1
            if self._entry_total is not None:
                self._entry_total += (1 if fresh else 0) - evicted
            self._maybe_gc()
            return True

    def put_many(self, items: Sequence[Tuple[str, Dict[str, Any]]]) -> int:
        """Persist many ``(key, payload)`` pairs; returns how many stuck.

        Pairs are grouped by shard so each shard pays one read-modify-write
        regardless of how many entries land in it -- the bulk-write path
        the sweep service uses after each completed shard.  Same failure
        semantics as :meth:`put` (never raises; failed shards are counted
        in ``skipped_writes`` per entry).
        """
        by_shard: Dict[str, List[Tuple[str, Dict[str, Any]]]] = {}
        for key, payload in items:
            by_shard.setdefault(self._shard_id(key), []).append((key, payload))
        written = 0
        with self._lock:
            for shard_id, pairs in by_shard.items():
                held = self._guard(shard_id)
                try:
                    self._invalidate_shard(shard_id)
                    entries = dict(self._load_shard(shard_id))
                    fresh = 0
                    for key, payload in pairs:
                        fresh += key not in entries
                        entry = dict(payload)
                        entry["__seq__"] = self._allocate_seq()
                        entries[key] = entry
                    evicted = self._evict(entries)
                    try:
                        self._write_shard(shard_id, entries)
                    except (OSError, TypeError, ValueError):
                        self.skipped_writes += len(pairs)
                        self._invalidate_shard(shard_id)
                        self._entry_total = None  # uncertain; rescan lazily
                        continue
                finally:
                    if held is not None:
                        held.release()
                self.writes += len(pairs)
                written += len(pairs)
                if self._entry_total is not None:
                    self._entry_total += fresh - evicted
            if written:
                self._maybe_gc()
        return written

    def put_reports(self, pairs) -> int:
        """Persist many ``(key, SolveReport)`` pairs (see :meth:`put_many`).

        Reports whose solutions have no stable JSON form are skipped and
        counted, exactly like :meth:`put_report`.
        """
        encoded = []
        for key, report in pairs:
            try:
                encoded.append((key, report_to_payload(report, key)))
            except UnserializableSolutionError:
                with self._lock:
                    self.skipped_writes += 1
        return self.put_many(encoded)

    def put_report(self, key: str, report) -> bool:
        """Persist a :class:`~repro.engine.core.SolveReport` under ``key``.

        Unserializable solutions (exotic allocation keys / metadata) are
        skipped gracefully -- the solve still succeeded, it just is not
        persisted.
        """
        try:
            payload = report_to_payload(report, key)
        except UnserializableSolutionError:
            with self._lock:
                self.skipped_writes += 1
            return False
        return self.put(key, payload)

    def get_report(self, key: str):
        """The stored ``SolveReport`` for ``key``, or ``None``.

        A payload that no longer decodes (e.g. hand-edited) counts as
        corruption and returns ``None`` -- the caller recomputes.
        """
        payload = self.get(key)
        if payload is None:
            return None
        try:
            return report_from_payload(payload)
        except (KeyError, TypeError, ValueError, SyntaxError):
            with self._lock:
                self.corrupt_shards += 1
            return None

    # ------------------------------------------------------------------
    # solve claims (cross-runner duplicate-compute guard)
    # ------------------------------------------------------------------
    @property
    def _claim_dir(self) -> str:
        return os.path.join(self.root, "claims")

    def _claim_path(self, key: str) -> str:
        return os.path.join(self._claim_dir, f"{key}.claim")

    def claim_solve(self, key: str) -> bool:
        """Advisory claim on *computing* ``key``; ``True`` if acquired.

        The duplicate-compute guard for re-routes racing a live primary:
        a runner claims a pending cell before solving it, so a second
        runner handed the same cell sees the live claim, waits for it
        (:meth:`solve_claim_holder`) and then answers from the store
        instead of solving again.  Claims are an O_EXCL pid-breadcrumb
        file per key; a claim whose holder died is taken over
        (``stale_claims_recovered``), and any filesystem trouble makes
        the method return ``True`` -- claims only ever *avoid* work,
        they must never block a solve.  No-op (always ``True``) when
        ``locking=False``.
        """
        if not self.locking:
            return True
        path = self._claim_path(key)
        for _attempt in range(2):
            try:
                os.makedirs(self._claim_dir, exist_ok=True)
                fd = os.open(path,
                             os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
            except FileExistsError:
                holder = _read_breadcrumb(path)
                if holder is not None and not _pid_alive(holder):
                    try:
                        os.unlink(path)
                    except OSError:  # pragma: no cover - lost the race
                        pass
                    with self._lock:
                        self.stale_claims_recovered += 1
                    continue
                with self._lock:
                    self.claims_contended += 1
                return False
            except OSError:  # pragma: no cover - unclaimable filesystem
                return True
            try:
                os.write(fd, str(os.getpid()).encode("ascii"))
            except OSError:  # pragma: no cover - breadcrumb best effort
                pass
            finally:
                os.close(fd)
            with self._lock:
                self.claims_acquired += 1
            return True
        return True  # lost two takeover races: just solve

    def release_solve_claim(self, key: str) -> None:
        """Drop the claim on ``key`` (idempotent, never raises)."""
        try:
            os.unlink(self._claim_path(key))
        except OSError:
            pass

    def solve_claim_holder(self, key: str) -> Optional[int]:
        """The pid of a *live* claim holder for ``key``, else ``None``.

        A recorded holder that is no longer running reads as no claim --
        waiters poll this, and a SIGKILLed primary must not wedge them.
        """
        holder = _read_breadcrumb(self._claim_path(key))
        if holder is not None and _pid_alive(holder):
            return holder
        return None

    def _maybe_gc(self) -> None:
        """Run :meth:`compact` if the configured entry cap is exceeded.

        Uses the incrementally-maintained entry count, so the per-write
        overhead is O(1) after the store's first full scan.
        """
        if (self.max_total_entries is not None
                and self._total_entries() > self.max_total_entries):
            self.compact(self.max_total_entries)

    def compact(self, max_entries: Optional[int] = None) -> int:
        """Evict the oldest entries until at most ``max_entries`` remain.

        The GC hook for long-lived deployments: entries are evicted in
        insertion order (oldest first) following the store-global
        insertion sequence, which is seeded above every persisted entry on
        reopen -- so the order holds across shards and across restarts
        (concurrent writer processes interleave approximately; see
        :meth:`_seq_floor_scan`).  Touched shards are rewritten
        atomically; a shard whose rewrite fails keeps its old blob (the
        failure is counted in ``skipped_writes``, never raised).  Returns
        the number of entries evicted and increments the ``compactions``
        counter once per run.

        ``max_entries`` defaults to the store's configured
        ``max_total_entries`` (one of the two must be set).
        """
        cap = max_entries if max_entries is not None else self.max_total_entries
        require(cap is not None and cap >= 0,
                "compact() needs max_entries= or a store-level max_total_entries")
        with self._lock:
            election = None
            if self.locking:
                # Single-writer election: exactly one runner compacts a
                # shared store at a time.  Losing is normal under a
                # cluster (counted, never an error) -- the cap re-checks
                # on this store's next write.
                election = self._guard(
                    "compaction", timeout=min(self.lock_timeout, 0.1),
                    count_timeout=False)
                if election is None:
                    self.compactions_skipped += 1
                    return 0
            try:
                shard_entries = {shard_id: dict(self._load_shard(shard_id))
                                 for shard_id in self._shard_ids()}
                total = sum(len(entries)
                            for entries in shard_entries.values())
                self.compactions += 1
                excess = total - cap
                if excess <= 0:
                    return 0
                oldest_first = sorted(
                    (entry.get("__seq__", 0), shard_id, key)
                    for shard_id, entries in shard_entries.items()
                    for key, entry in entries.items())
                victims: Dict[str, List[str]] = {}
                for _seq, shard_id, key in oldest_first[:excess]:
                    victims.setdefault(shard_id, []).append(key)
                evicted = 0
                clean = True
                for shard_id in sorted(victims):
                    # Each touched shard is re-read fresh under its own
                    # advisory lock before the rewrite: entries a
                    # concurrent writer added since victim selection are
                    # carried, never clobbered.
                    held = self._guard(shard_id)
                    try:
                        self._invalidate_shard(shard_id)
                        entries = dict(self._load_shard(shard_id))
                        removed = [key for key in victims[shard_id]
                                   if key in entries]
                        for key in removed:
                            del entries[key]
                        try:
                            self._write_shard(shard_id, entries)
                        except (OSError, TypeError, ValueError):
                            self.skipped_writes += 1
                            self._invalidate_shard(shard_id)
                            clean = False
                            continue
                    finally:
                        if held is not None:
                            held.release()
                    self.evictions += len(removed)
                    evicted += len(removed)
                if clean and not self.locking:
                    self._entry_total = total - evicted
                else:
                    # Concurrent writers may have moved the count while we
                    # compacted (or a rewrite failed); rescan lazily.
                    self._entry_total = None
                return evicted
            finally:
                if election is not None:
                    election.release()

    def migrate(self, target_format: Optional[str] = None) -> Dict[str, int]:
        """Rewrite every shard into ``target_format`` (default: the store's
        configured ``shard_format``).

        The v1 -> v2 upgrade path (and, symmetrically, the v2 -> v1
        escape hatch): each shard is fully decoded -- whatever format it
        is in -- and rewritten atomically in the target format, preserving
        every payload and the global insertion sequence bit for bit.
        ``meta.json`` is refreshed afterwards.  Returns
        ``{"shards": rewritten, "entries": carried, "failed": skipped}``;
        failed shard rewrites keep their old blob (counted in
        ``skipped_writes`` as usual) so a partial migration is still a
        fully readable mixed-format store.
        """
        target = target_format if target_format is not None else self.shard_format
        require(target in ("binary", "json"),
                "target_format must be 'binary' or 'json'")
        with self._lock:
            previous_format = self.shard_format
            self.shard_format = target
            shards = entries_carried = failed = 0
            try:
                for shard_id in self._shard_ids():
                    entries = dict(self._load_shard(shard_id))
                    try:
                        self._write_shard(shard_id, entries)
                    except (OSError, TypeError, ValueError):
                        self.skipped_writes += 1
                        self._invalidate_shard(shard_id)
                        failed += 1
                        continue
                    shards += 1
                    entries_carried += len(entries)
                    self.migrated_shards += 1
            except BaseException:
                self.shard_format = previous_format
                raise
            try:
                atomic_write_json(self._meta_path, {
                    "schema": STORE_SCHEMA_VERSION,
                    "format": "repro-solution-store/packed-v2",
                    "shard_width": self.shard_width,
                    "shard_format": self.shard_format,
                }, fsync=self.durable)
            except OSError:
                self.skipped_writes += 1
            return {"shards": shards, "entries": entries_carried,
                    "failed": failed}

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return self._lookup(key) is not None

    def __len__(self) -> int:
        return self.entry_count()

    def entry_count(self) -> int:
        """Total entries across every shard on disk (exact; refreshes the
        cached count the GC trigger uses)."""
        with self._lock:
            total = sum(self._shard_stats(shard_id)[0]
                        for shard_id in self._shard_ids())
            self._entry_total = total
            return total

    def _shard_ids(self):
        try:
            names = os.listdir(self._shard_dir)
        except OSError:
            return []
        ids = {name[:-5] for name in names
               if name.endswith(".json") and not name.startswith(".tmp-")}
        ids.update(name[:-4] for name in names
                   if name.endswith(".rps") and not name.startswith(".tmp-"))
        return sorted(ids)

    def payloads(self) -> Iterator[Tuple[str, Dict[str, Any]]]:
        """Iterate ``(key, payload)`` over every stored entry (all shards).

        Fully decodes every entry (alias payloads included); use
        :meth:`scan` for the bulk path that skips alias entries without
        decoding them.
        """
        with self._lock:
            for shard_id in self._shard_ids():
                for key, entry in sorted(self._load_shard(shard_id).items()):
                    yield key, {k: v for k, v in entry.items() if k != "__seq__"}

    def scan(self, *, include_aliases: bool = False) -> Iterator[Tuple[str, Dict[str, Any]]]:
        """Bulk-iterate ``(key, payload)`` across the whole store, lazily.

        The one-pass feeder for table regeneration
        (:func:`repro.analysis.sweep.sweep_records`): packed v2 shards
        stream straight off the record table -- one JSON decode per
        non-alias payload, **zero** full-shard parses and **zero** decodes
        for alias entries, which are skipped from the record flags alone
        (counted in ``scan_alias_skips``).  With ``include_aliases=True``
        alias entries are yielded as ``{"alias_of": key}``, still without
        touching JSON.  Legacy JSON shards fall back to the full parse
        they always required.  ``scans`` / ``scan_entries`` count the
        traffic.
        """
        with self._lock:
            self.scans += 1
            for shard_id in self._shard_ids():
                if self.cache_shards and shard_id in self._shards:
                    source = self._shards[shard_id]
                elif self._shard_files(shard_id) == (False, True):
                    yield from self._scan_binary(shard_id,
                                                 include_aliases=include_aliases)
                    continue
                else:
                    source = self._load_shard(shard_id)
                for key, entry in sorted(source.items()):
                    payload = {k: v for k, v in entry.items() if k != "__seq__"}
                    if _is_alias_payload(payload) and not include_aliases:
                        self.scan_alias_skips += 1
                        continue
                    self.scan_entries += 1
                    yield key, payload

    def _scan_binary(self, shard_id: str, *,
                     include_aliases: bool) -> Iterator[Tuple[str, Dict[str, Any]]]:
        """One packed shard's slice of :meth:`scan` (no full decode)."""
        reader = self._reader(shard_id)
        if reader is None:
            return
        for index in range(reader.count):
            try:
                key, _seq, offset, length, flags = reader.record(index)
            except (struct.error, UnicodeDecodeError):
                self.corrupt_shards += 1
                continue
            if flags & _FLAG_ALIAS:
                if not include_aliases:
                    self.scan_alias_skips += 1
                    continue
                try:
                    payload = {"alias_of":
                               reader.blob(offset, length).decode("utf-8")}
                except (_ShardCorrupt, UnicodeDecodeError):
                    self.corrupt_shards += 1
                    continue
            else:
                try:
                    payload = json.loads(reader.blob(offset, length).decode("utf-8"))
                    self.payload_decodes += 1
                    if not isinstance(payload, dict):
                        raise ValueError("payload is not an object")
                except (_ShardCorrupt, UnicodeDecodeError,
                        json.JSONDecodeError, ValueError):
                    self.corrupt_shards += 1
                    continue
            self.scan_entries += 1
            yield key, payload

    def scan_routed(self, ring: Any, owner: str, *,
                    include_aliases: bool = True) -> Iterator[Tuple[str, Dict[str, Any]]]:
        """Stream only the entries whose route key lands on ``owner``.

        The prewarm feeder for an elastic resize: a joining runner calls
        this (via the ``warm_cache`` wire op) to bulk-load exactly its
        acquired key range into the tier-1 LRU before taking traffic.
        ``ring`` is anything with a ``route(key) -> node`` method --
        typically :class:`repro.cluster.ring.HashRing`, duck-typed so the
        engine never imports the cluster package.

        Routing keys: a report entry routes by its own store key (the
        request fingerprint); an **alias** entry routes by its *target*
        fingerprint, so an alias and the report it points at always land
        on -- and prewarm into -- the same runner.  On packed v2 shards
        the filter is decode-free for rejected report entries (the route
        key is the record-table key; only accepted payloads are JSON-
        decoded) and alias targets come straight off the blob, exactly the
        :meth:`scan` fast path.  Alias payloads are yielded as
        ``{"alias_of": target}``.

        ``routed_scans`` / ``routed_entries`` / ``routed_skips`` count the
        traffic; skips are entries owned by someone else.
        """
        with self._lock:
            self.routed_scans += 1
            for shard_id in self._shard_ids():
                if (not (self.cache_shards and shard_id in self._shards)
                        and self._shard_files(shard_id) == (False, True)):
                    yield from self._scan_binary_routed(
                        shard_id, ring, owner,
                        include_aliases=include_aliases)
                    continue
                if self.cache_shards and shard_id in self._shards:
                    source = self._shards[shard_id]
                else:
                    source = self._load_shard(shard_id)
                for key, entry in sorted(source.items()):
                    payload = {k: v for k, v in entry.items()
                               if k != "__seq__"}
                    if _is_alias_payload(payload):
                        if not include_aliases:
                            self.scan_alias_skips += 1
                            continue
                        target = payload.get("alias_of")
                        route_key = target if isinstance(target, str) else key
                        payload = {"alias_of": target}
                    else:
                        route_key = key
                    if ring.route(route_key) != owner:
                        self.routed_skips += 1
                        continue
                    self.routed_entries += 1
                    yield key, payload

    def _scan_binary_routed(self, shard_id: str, ring: Any, owner: str, *,
                            include_aliases: bool) -> Iterator[Tuple[str, Dict[str, Any]]]:
        """One packed shard's slice of :meth:`scan_routed` (decode-free
        rejection: non-owned report entries never have their blob read)."""
        reader = self._reader(shard_id)
        if reader is None:
            return
        for index in range(reader.count):
            try:
                key, _seq, offset, length, flags = reader.record(index)
            except (struct.error, UnicodeDecodeError):
                self.corrupt_shards += 1
                continue
            if flags & _FLAG_ALIAS:
                if not include_aliases:
                    self.scan_alias_skips += 1
                    continue
                try:
                    target = reader.blob(offset, length).decode("utf-8")
                except (_ShardCorrupt, UnicodeDecodeError):
                    self.corrupt_shards += 1
                    continue
                if ring.route(target) != owner:
                    self.routed_skips += 1
                    continue
                self.routed_entries += 1
                yield key, {"alias_of": target}
                continue
            if ring.route(key) != owner:
                self.routed_skips += 1
                continue
            try:
                payload = json.loads(reader.blob(offset, length).decode("utf-8"))
                self.payload_decodes += 1
                if not isinstance(payload, dict):
                    raise ValueError("payload is not an object")
            except (_ShardCorrupt, UnicodeDecodeError,
                    json.JSONDecodeError, ValueError):
                self.corrupt_shards += 1
                continue
            self.routed_entries += 1
            yield key, payload

    def refresh(self) -> None:
        """Drop the in-memory shard cache (re-read other processes' writes)."""
        with self._lock:
            self._shards.clear()
            self._readers.clear()
            self._failed_readers.clear()
            self._shard_sigs.clear()
            # Another process may have added entries (and higher sequence
            # numbers); rescan both lazily on next use.
            self._entry_total = None
            self._next_seq = None

    def clear(self) -> None:
        """Delete every shard blob and reset the statistics."""
        with self._lock:
            for shard_id in self._shard_ids():
                for path in (self._json_path(shard_id),
                             self._binary_path(shard_id)):
                    try:
                        os.unlink(path)
                    except OSError:
                        pass
            self._shards.clear()
            self._readers.clear()
            self._failed_readers.clear()
            self._shard_sigs.clear()
            self._entry_total = 0
            self._next_seq = None
            self.hits = self.misses = self.writes = 0
            self.evictions = self.compactions = self.corrupt_shards = 0
            self.schema_mismatches = self.skipped_writes = 0
            self.full_shard_parses = self.payload_decodes = 0
            self.alias_fast_hits = self.binary_shard_opens = 0
            self.scans = self.scan_entries = self.scan_alias_skips = 0
            self.migrated_shards = 0
            self.routed_scans = self.routed_entries = self.routed_skips = 0
            self.lock_acquires = self.lock_waits = self.lock_timeouts = 0
            self.stale_locks_recovered = self.compactions_skipped = 0
            self.stale_shard_reloads = 0
            self.batched_lookups = 0
            self.claims_acquired = self.claims_contended = 0
            self.stale_claims_recovered = 0
            if os.path.isdir(self._claim_dir):
                for name in os.listdir(self._claim_dir):
                    try:
                        os.unlink(os.path.join(self._claim_dir, name))
                    except OSError:
                        pass

    def info(self) -> dict:
        """Statistics dict mirroring :meth:`LRUCache.info` plus store extras."""
        with self._lock:
            return {
                "root": self.root,
                "schema": STORE_SCHEMA_VERSION,
                "shard_format": self.shard_format,
                "durable": self.durable,
                "entries": self.entry_count(),
                "shards": len(self._shard_ids()),
                "max_entries_per_shard": self.max_entries_per_shard,
                "max_total_entries": self.max_total_entries,
                "hits": self.hits,
                "misses": self.misses,
                "writes": self.writes,
                "evictions": self.evictions,
                "compactions": self.compactions,
                "corrupt_shards": self.corrupt_shards,
                "schema_mismatches": self.schema_mismatches,
                "skipped_writes": self.skipped_writes,
                "full_shard_parses": self.full_shard_parses,
                "payload_decodes": self.payload_decodes,
                "alias_fast_hits": self.alias_fast_hits,
                "binary_shard_opens": self.binary_shard_opens,
                "scans": self.scans,
                "scan_entries": self.scan_entries,
                "scan_alias_skips": self.scan_alias_skips,
                "migrated_shards": self.migrated_shards,
                "routed_scans": self.routed_scans,
                "routed_entries": self.routed_entries,
                "routed_skips": self.routed_skips,
                "locking": self.locking,
                "lock_acquires": self.lock_acquires,
                "lock_waits": self.lock_waits,
                "lock_timeouts": self.lock_timeouts,
                "stale_locks_recovered": self.stale_locks_recovered,
                "compactions_skipped": self.compactions_skipped,
                "stale_shard_reloads": self.stale_shard_reloads,
                "batched_lookups": self.batched_lookups,
                "claims_acquired": self.claims_acquired,
                "claims_contended": self.claims_contended,
                "stale_claims_recovered": self.stale_claims_recovered,
            }

    #: The numeric-counter subset of :meth:`info` exported to metrics
    #: snapshots: machine-independent work counts plus the two gauges a
    #: dashboard wants next to them (``entries``, ``shards``).  No paths,
    #: formats or configuration -- the snapshot stays comparable across
    #: hosts and deployments.
    COUNTER_FIELDS = (
        "entries", "shards", "hits", "misses", "writes", "evictions",
        "compactions", "corrupt_shards", "schema_mismatches",
        "skipped_writes", "full_shard_parses", "payload_decodes",
        "alias_fast_hits", "binary_shard_opens", "scans", "scan_entries",
        "scan_alias_skips", "migrated_shards", "routed_scans",
        "routed_entries", "routed_skips", "lock_acquires",
        "lock_waits", "lock_timeouts", "stale_locks_recovered",
        "compactions_skipped", "stale_shard_reloads", "batched_lookups",
        "claims_acquired", "claims_contended", "stale_claims_recovered",
    )

    def counters(self) -> Dict[str, int]:
        """Just the counters of :meth:`info` (see :data:`COUNTER_FIELDS`).

        This is what :meth:`AsyncSweepService.snapshot
        <repro.engine.async_service.AsyncSweepService.snapshot>` embeds
        under ``"store"`` and what the ``metrics`` wire op therefore
        exports -- keep it JSON-safe and host-independent.
        """
        info = self.info()
        return {name: info[name] for name in self.COUNTER_FIELDS}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SolutionStore(root={self.root!r}, entries={self.entry_count()}, "
                f"hits={self.hits}, misses={self.misses})")
