"""One-shot structure detection for tradeoff instances.

Every solver family has preconditions: the exhaustive solver needs a small
breakpoint product, the series-parallel DP needs an SP decomposition and an
integral budget, the Theorem 3.9 / 3.10 repairs need k-way / recursive-
binary duration functions.  Before the engine dispatches, it probes the
instance *once* and records everything the ``can_solve`` predicates and the
solvers themselves need:

* job/edge counts and the exhaustive-search combination count;
* the duration-function families present (``constant`` / ``general`` /
  ``binary`` / ``kway``);
* chain / series-parallel shape (the SP probe keeps the decomposition tree
  so the DP does not re-derive it);
* memoized activity-on-arc conversion and two-tuple expansion (the shared
  front half of every LP-based pipeline).

Probes are cached by DAG fingerprint, so sweeping many budgets over the
same DAG pays for SP recognition and the arc transforms once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.core.arcdag import ArcDAG, NodeToArcMapping, TwoTupleExpansion, \
    expand_to_two_tuples, node_to_arc_dag
from repro.core.dag import TradeoffDAG
from repro.core.duration import ConstantDuration, GeneralStepDuration, \
    KWaySplitDuration, RecursiveBinarySplitDuration
from repro.core.series_parallel import SPNode, decompose_series_parallel
from repro.engine.cache import LRUCache
from repro.engine.fingerprint import dag_fingerprint

__all__ = ["ProblemStructure", "analyze_dag", "clear_structure_cache", "structure_cache_info"]

#: Instances larger than this skip the (quadratic) series-parallel probe.
SP_PROBE_JOB_LIMIT = 600

#: The combination count is capped here; anything above is "not exact-able".
COMBINATION_CAP = 10 ** 12


def _duration_family(fn) -> str:
    if isinstance(fn, ConstantDuration):
        return "constant"
    if isinstance(fn, RecursiveBinarySplitDuration):
        return "binary"
    if isinstance(fn, KWaySplitDuration):
        return "kway"
    if isinstance(fn, GeneralStepDuration):
        return "general"
    return "general"


@dataclass
class ProblemStructure:
    """Everything the dispatcher knows about one DAG (see module docstring)."""

    fingerprint: str
    num_jobs: int
    num_edges: int
    duration_families: frozenset
    max_breakpoints: int
    exact_combinations: int
    integral_breakpoints: bool
    is_chain: bool
    sp_tree: Optional[SPNode]
    sp_probe_skipped: bool
    #: The normalized (single source/sink) DAG every probe and solver sees.
    dag: TradeoffDAG = field(repr=False, default=None)

    _arc_form: Optional[Tuple[ArcDAG, NodeToArcMapping]] = field(
        default=None, repr=False, compare=False)
    _expansion: Optional[TwoTupleExpansion] = field(default=None, repr=False, compare=False)

    @property
    def is_series_parallel(self) -> bool:
        return self.sp_tree is not None

    def improvable_families(self) -> frozenset:
        """Duration families excluding structural constants."""
        return frozenset(f for f in self.duration_families if f != "constant")

    def arc_form(self) -> Tuple[ArcDAG, NodeToArcMapping]:
        """The memoized activity-on-arc conversion (Section 2 transformation)."""
        if self._arc_form is None:
            self._arc_form = node_to_arc_dag(self.dag)
        return self._arc_form

    def expansion(self) -> TwoTupleExpansion:
        """The memoized two-tuple expansion (Section 3.1, Figure 6)."""
        if self._expansion is None:
            arc_dag, _ = self.arc_form()
            self._expansion = expand_to_two_tuples(arc_dag)
        return self._expansion

    def summary(self) -> dict:
        """A plain-dict view embedded into :class:`~repro.engine.core.SolveReport`."""
        return {
            "fingerprint": self.fingerprint,
            "num_jobs": self.num_jobs,
            "num_edges": self.num_edges,
            "duration_families": sorted(self.duration_families),
            "max_breakpoints": self.max_breakpoints,
            "exact_combinations": self.exact_combinations,
            "integral_breakpoints": self.integral_breakpoints,
            "is_chain": self.is_chain,
            "is_series_parallel": self.is_series_parallel,
            "sp_probe_skipped": self.sp_probe_skipped,
        }


def _probe(dag: TradeoffDAG, digest: str) -> ProblemStructure:
    families = set()
    combinations = 1
    max_breakpoints = 1
    integral = True
    for job in dag.jobs:
        fn = dag.duration_function(job)
        families.add(_duration_family(fn))
        n = fn.num_tuples()
        max_breakpoints = max(max_breakpoints, n)
        if combinations < COMBINATION_CAP:
            combinations = min(combinations * n, COMBINATION_CAP)
        if integral:
            integral = all(float(r).is_integer() for r, _t in fn.tuples())

    is_chain = all(dag.in_degree(j) <= 1 and dag.out_degree(j) <= 1 for j in dag.jobs)

    sp_probe_skipped = dag.num_jobs > SP_PROBE_JOB_LIMIT
    sp_tree = None if sp_probe_skipped else decompose_series_parallel(dag)

    return ProblemStructure(
        fingerprint=digest,
        num_jobs=dag.num_jobs,
        num_edges=dag.num_edges,
        duration_families=frozenset(families),
        max_breakpoints=max_breakpoints,
        exact_combinations=combinations,
        integral_breakpoints=integral,
        is_chain=is_chain,
        sp_tree=sp_tree,
        sp_probe_skipped=sp_probe_skipped,
        dag=dag,
    )


_CACHE = LRUCache(maxsize=128)

#: Identity fast path: ``id(dag) -> (dag, structure)``.  Keyed by object
#: identity so the per-scenario calls of a batched shard (every scenario in
#: a group shares one normalized DAG object) skip re-normalization,
#: re-validation and re-hashing entirely.  Entries hold the DAG strongly,
#: so a cached id cannot be recycled by a different object while the entry
#: lives; the ``is`` check below guards evict-then-recycle races.
_ID_CACHE = LRUCache(maxsize=256)

#: How many fingerprint computations the identity fast path skipped.
_PROBE_COUNTERS = {"identity_hits": 0, "probe_runs": 0}


def analyze_dag(dag: TradeoffDAG) -> ProblemStructure:
    """Probe (or fetch the memoized probe of) a DAG's structure.

    The DAG is normalized with
    :meth:`~repro.core.dag.TradeoffDAG.ensure_single_source_sink` first, so
    the recorded :attr:`ProblemStructure.dag` -- the one every registered
    solver runs on -- always has unique terminals.  Two memoization tiers
    apply: an identity fast path for the exact same DAG object (no hashing
    at all -- the batched-shard hot path) and the content-fingerprint LRU
    behind it.
    """
    hit = _ID_CACHE.get(id(dag))
    if (hit is not None and hit[0] is dag
            and hit[2] == (dag.num_jobs, dag.num_edges)):
        _PROBE_COUNTERS["identity_hits"] += 1
        return hit[1]
    original = dag
    dag = dag.ensure_single_source_sink()
    dag.validate()
    digest = dag_fingerprint(dag)
    structure = _CACHE.get(digest)
    if structure is None:
        structure = _probe(dag, digest)
        _PROBE_COUNTERS["probe_runs"] += 1
        _CACHE.put(digest, structure)
    # Entries carry the (num_jobs, num_edges) shape seen at probe time: a
    # DAG mutated in place (add_job / add_edge) falls back to the content
    # path, which re-fingerprints -- matching the pre-fast-path semantics.
    # (Mutations preserving both counts, e.g. remove_edge + add_edge of a
    # different edge, are not detected; rebuild the DAG instead.)
    _ID_CACHE.put(id(original),
                  (original, structure, (original.num_jobs, original.num_edges)))
    if structure.dag is not original:
        # Solvers re-enter analyze_dag with the *normalized* DAG the probe
        # recorded; map that object too so the re-entry is an identity hit.
        _ID_CACHE.put(id(structure.dag),
                      (structure.dag, structure,
                       (structure.dag.num_jobs, structure.dag.num_edges)))
    return structure


def clear_structure_cache() -> None:
    """Drop every memoized structure probe (used by tests and sweeps)."""
    _CACHE.clear()
    _ID_CACHE.clear()
    for key in _PROBE_COUNTERS:
        _PROBE_COUNTERS[key] = 0


def structure_cache_info() -> dict:
    """Hit/miss statistics of the structure cache.

    The fingerprint LRU's counters stay at the top level (back-compat);
    ``identity_hits`` counts calls served by the object-identity fast path
    (no normalization / validation / hashing performed at all) and
    ``probe_runs`` counts actual structure probes executed.
    """
    info = _CACHE.info()
    info["identity_hits"] = _PROBE_COUNTERS["identity_hits"]
    info["probe_runs"] = _PROBE_COUNTERS["probe_runs"]
    return info
