"""Instance generators used by tests, examples and benchmarks."""

from repro.generators.random_dag import (
    chain_dag,
    layered_random_dag,
    random_duration,
    random_step_duration,
)
from repro.generators.series_parallel_gen import balanced_sp_tree, random_sp_tree
from repro.generators.fork_join import fork_join_dag, staged_fork_join_dag
from repro.generators.workloads import WORKLOADS, Workload, get_workload, workload_names

__all__ = [
    "random_step_duration", "random_duration", "layered_random_dag", "chain_dag",
    "random_sp_tree", "balanced_sp_tree",
    "fork_join_dag", "staged_fork_join_dag",
    "Workload", "WORKLOADS", "get_workload", "workload_names",
]
