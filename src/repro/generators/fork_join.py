"""Fork-join style tradeoff DAGs (the shape produced by racy parallel loops).

These mirror the DAG shapes the race substrate produces (wide fans of
independent accumulations between a fork and a join, optionally staged), so
the optimisation experiments can be run on workloads that look like the
paper's motivating programs without going through the program model.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.dag import TradeoffDAG
from repro.core.duration import ConstantDuration, KWaySplitDuration, RecursiveBinarySplitDuration
from repro.generators.random_dag import random_duration
from repro.utils.validation import check_positive, require

__all__ = ["fork_join_dag", "staged_fork_join_dag"]


def fork_join_dag(width: int, work: int, family: str = "binary") -> TradeoffDAG:
    """A single fork-join: ``width`` independent jobs of equal ``work``.

    This is exactly the shape of Parallel-MM's output cells (Figure 3): the
    makespan is decided by the per-job duration only, so every unit of
    budget has to be split across the parallel jobs.
    """
    check_positive(width, "width")
    check_positive(work, "work")
    dag = TradeoffDAG()
    dag.add_job("fork", ConstantDuration(0.0))
    dag.add_job("join", ConstantDuration(0.0))
    for i in range(width):
        name = f"task_{i}"
        if family == "kway":
            dag.add_job(name, KWaySplitDuration(work))
        else:
            dag.add_job(name, RecursiveBinarySplitDuration(work))
        dag.add_edge("fork", name)
        dag.add_edge(name, "join")
    dag.validate()
    return dag


def staged_fork_join_dag(stage_widths: Sequence[int], work: int, family: str = "binary",
                         seed: int = 0) -> TradeoffDAG:
    """Several fork-join stages in series (pipelined parallel loops).

    Resources can be reused across stages (they lie on the same source-to-
    sink paths) but must be split within a stage -- the combination that
    separates the paper's path-reuse model from both the no-reuse and the
    global-reuse models.
    """
    require(len(stage_widths) >= 1, "need at least one stage")
    rng = np.random.default_rng(seed)
    dag = TradeoffDAG()
    dag.add_job("stage0_join", ConstantDuration(0.0))
    previous_join = "stage0_join"
    for s, width in enumerate(stage_widths, start=1):
        check_positive(width, "stage width")
        join = f"stage{s}_join"
        dag.add_job(join, ConstantDuration(0.0))
        for i in range(width):
            name = f"stage{s}_task_{i}"
            jitter = int(rng.integers(0, max(2, work // 4)))
            if family == "kway":
                dag.add_job(name, KWaySplitDuration(work + jitter))
            elif family == "general":
                dag.add_job(name, random_duration(rng, "general", max_base=work))
            else:
                dag.add_job(name, RecursiveBinarySplitDuration(work + jitter))
            dag.add_edge(previous_join, name)
            dag.add_edge(name, join)
        previous_join = join
    dag.validate()
    return dag
