"""Random tradeoff-DAG generators.

The paper has no benchmark suite of its own (it is a theory paper), so the
empirical approximation-ratio experiments of this reproduction run on
synthetic instances.  Three families are provided, chosen to stress the
algorithms in different ways:

* **layered DAGs** -- jobs arranged in layers with forward edges between
  consecutive layers; parallelism is wide and paths are short (LP rounding
  shines, min-flow reuse matters);
* **random step-function durations** -- arbitrary non-increasing step
  functions (the "general" duration class of Table 1, row 1);
* **reducer-style durations** -- recursive binary / k-way durations drawn
  from random work values (rows 2-3 of Table 1).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.core.dag import TradeoffDAG
from repro.core.duration import (
    ConstantDuration,
    DurationFunction,
    GeneralStepDuration,
    KWaySplitDuration,
    RecursiveBinarySplitDuration,
)
from repro.utils.validation import check_positive, require

__all__ = ["random_step_duration", "random_duration", "layered_random_dag", "chain_dag"]


def random_step_duration(rng: np.random.Generator, max_base: int = 40,
                         max_tuples: int = 4) -> GeneralStepDuration:
    """A random non-increasing step function with at most ``max_tuples`` breakpoints."""
    base = int(rng.integers(2, max_base + 1))
    n_tuples = int(rng.integers(1, max_tuples + 1))
    pairs = [(0.0, float(base))]
    resource = 0.0
    time = float(base)
    for _ in range(n_tuples - 1):
        resource += float(rng.integers(1, 5))
        time = max(0.0, time - float(rng.integers(1, max(2, base // 2))))
        pairs.append((resource, time))
        if time == 0:
            break
    return GeneralStepDuration(pairs)


def random_duration(rng: np.random.Generator, family: str, max_base: int = 40) -> DurationFunction:
    """Draw a duration function from the requested family."""
    require(family in ("general", "binary", "kway"), f"unknown duration family {family!r}")
    if family == "general":
        return random_step_duration(rng, max_base=max_base)
    work = int(rng.integers(2, max_base + 1))
    if family == "binary":
        return RecursiveBinarySplitDuration(work)
    return KWaySplitDuration(work)


def layered_random_dag(num_layers: int, jobs_per_layer: int, family: str = "general",
                       edge_probability: float = 0.5, max_base: int = 40,
                       seed: int = 0) -> TradeoffDAG:
    """A layered random DAG with a unique source and sink.

    Layers are fully ordered; each job in layer ``l`` gets an edge from a
    random subset of layer ``l - 1`` (at least one, so the DAG stays
    connected).  Duration functions are drawn from ``family``.
    """
    check_positive(num_layers, "num_layers")
    check_positive(jobs_per_layer, "jobs_per_layer")
    require(0 < edge_probability <= 1, "edge_probability must lie in (0, 1]")
    rng = np.random.default_rng(seed)
    dag = TradeoffDAG()
    dag.add_job("source", ConstantDuration(0.0))
    dag.add_job("sink", ConstantDuration(0.0))
    layers: List[List[str]] = []
    for layer in range(num_layers):
        names = []
        for j in range(jobs_per_layer):
            name = f"job_{layer}_{j}"
            dag.add_job(name, random_duration(rng, family, max_base=max_base))
            names.append(name)
        layers.append(names)
    for name in layers[0]:
        dag.add_edge("source", name)
    for prev, curr in zip(layers, layers[1:]):
        for name in curr:
            parents = [p for p in prev if rng.random() < edge_probability]
            if not parents:
                parents = [prev[int(rng.integers(0, len(prev)))]]
            for p in parents:
                dag.add_edge(p, name)
        # jobs the next layer did not pick as parents would become spurious
        # sinks; give each of them one forward edge to keep the terminals unique
        for name in prev:
            if not dag.successors(name):
                dag.add_edge(name, curr[int(rng.integers(0, len(curr)))])
    for name in layers[-1]:
        dag.add_edge(name, "sink")
    dag.validate()
    return dag


def chain_dag(lengths: Sequence[int], family: str = "binary", seed: int = 0) -> TradeoffDAG:
    """A single chain of jobs whose works are given by ``lengths``.

    Chains are the extreme case for resource reuse over paths: one unit of
    resource can serve every job, so the path-reuse model dominates the
    no-reuse model by the largest possible margin.
    """
    require(len(lengths) >= 1, "need at least one job")
    rng = np.random.default_rng(seed)
    dag = TradeoffDAG()
    dag.add_job("source", ConstantDuration(0.0))
    previous = "source"
    for idx, work in enumerate(lengths):
        check_positive(work, "chain job work")
        name = f"chain_{idx}"
        if family == "general":
            duration: DurationFunction = random_step_duration(rng, max_base=int(work))
        elif family == "kway":
            duration = KWaySplitDuration(int(work))
        else:
            duration = RecursiveBinarySplitDuration(int(work))
        dag.add_job(name, duration)
        dag.add_edge(previous, name)
        previous = name
    dag.add_job("sink", ConstantDuration(0.0))
    dag.add_edge(previous, "sink")
    dag.validate()
    return dag
