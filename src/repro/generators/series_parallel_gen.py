"""Random series-parallel instance generators (for the Section 3.4 experiments)."""

from __future__ import annotations


import numpy as np

from repro.core.series_parallel import SPLeaf, SPNode, SPParallel, SPSeries
from repro.generators.random_dag import random_duration
from repro.utils.validation import check_positive, require

__all__ = ["random_sp_tree", "balanced_sp_tree"]


def random_sp_tree(num_jobs: int, family: str = "binary", series_probability: float = 0.5,
                   max_base: int = 40, seed: int = 0) -> SPNode:
    """A random series-parallel decomposition tree with ``num_jobs`` leaves.

    The tree is built top-down: each internal node is a series composition
    with probability ``series_probability`` and a parallel composition
    otherwise; leaf duration functions are drawn from ``family``.
    """
    check_positive(num_jobs, "num_jobs")
    require(0 <= series_probability <= 1, "series_probability must lie in [0, 1]")
    rng = np.random.default_rng(seed)
    counter = iter(range(num_jobs))

    def build(count: int) -> SPNode:
        if count == 1:
            idx = next(counter)
            return SPLeaf(f"job_{idx}", random_duration(rng, family, max_base=max_base))
        left = int(rng.integers(1, count))
        left_tree = build(left)
        right_tree = build(count - left)
        if rng.random() < series_probability:
            return SPSeries(left_tree, right_tree)
        return SPParallel(left_tree, right_tree)

    return build(num_jobs)


def balanced_sp_tree(depth: int, family: str = "binary", max_base: int = 40,
                     seed: int = 0, alternate: bool = True) -> SPNode:
    """A perfectly balanced tree of depth ``depth`` (2^depth leaves).

    With ``alternate=True`` the composition kind alternates by level
    (series at even depths, parallel at odd), giving the classic
    fork-join / pipeline mix used by the scaling benchmark.
    """
    require(depth >= 0, "depth must be non-negative")
    rng = np.random.default_rng(seed)
    counter = iter(range(2 ** depth))

    def build(level: int) -> SPNode:
        if level == depth:
            idx = next(counter)
            return SPLeaf(f"job_{idx}", random_duration(rng, family, max_base=max_base))
        left = build(level + 1)
        right = build(level + 1)
        if alternate and level % 2 == 1:
            return SPParallel(left, right)
        if alternate:
            return SPSeries(left, right)
        return SPParallel(left, right) if rng.random() < 0.5 else SPSeries(left, right)

    return build(0)
