"""Named workload suite used by the benchmarks and EXPERIMENTS.md.

Since the scenario subsystem (:mod:`repro.scenarios`) every workload is a
thin wrapper around a declarative
:class:`~repro.scenarios.spec.ScenarioSpec` -- the catalog below is pure
data (generator id + params + seed + budget), so each benchmark row is
reproducible from a single identifier *and* shippable over the serve wire
as a few hundred bytes of spec.

A :class:`Workload` memoizes its built DAG: registered generators are
deterministic, so :meth:`Workload.build`, :meth:`Workload.fingerprint` and
:meth:`Workload.problem` all share one instance per workload object
instead of rebuilding the DAG per call -- repeated solves through one
workload hit the engine's object-identity fast paths on top of its content
caches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.dag import TradeoffDAG
from repro.core.problem import MinMakespanProblem
from repro.scenarios import ScenarioSpec
from repro.utils.validation import require

__all__ = ["Workload", "WORKLOADS", "get_workload", "workload_names"]


@dataclass(frozen=True, eq=False)
class Workload:
    """A named instance family: a scenario spec plus its experiment budget."""

    name: str
    description: str
    spec: ScenarioSpec
    _dag: Optional[TradeoffDAG] = field(default=None, repr=False, init=False)

    @property
    def budget(self) -> float:
        """The budget used in experiments (the spec's const budget rule)."""
        rule, value = self.spec.budget_rule
        require(rule == "const",
                f"workload {self.name!r} has a non-const budget rule {rule!r}")
        return value

    def build(self) -> TradeoffDAG:
        """The workload's DAG, built once and memoized on the workload.

        The spec's generator is deterministic and callers treat workload
        DAGs as immutable, so every call shares one instance -- which also
        makes repeated solves hit the engine's object-identity fast paths.
        """
        if self._dag is None:
            object.__setattr__(self, "_dag", self.spec.build_dag())
        return self._dag

    def fingerprint(self) -> str:
        """Content fingerprint of the built DAG (the engine's cache key).

        Workload builders are deterministic, so this identifies the
        instance a benchmark row ran on; rebuilding the workload in another
        process (e.g. a portfolio worker) hits the same engine cache entry.
        """
        from repro.engine.fingerprint import dag_fingerprint

        return dag_fingerprint(self.build())

    def problem(self) -> MinMakespanProblem:
        """The workload as a ready-to-solve min-makespan problem."""
        return MinMakespanProblem(self.build(), self.budget)


def _catalog(name: str, description: str, generator: str, params: dict,
             budget: float, seed: int = 0) -> Workload:
    return Workload(name, description,
                    ScenarioSpec(generator=generator, params=params, seed=seed,
                                 objective="min_makespan",
                                 budget_rule=("const", budget)))


WORKLOADS: Dict[str, Workload] = {
    w.name: w
    for w in [
        _catalog("small-layered-general", "3x3 layered DAG, general step durations",
                 "layered-random", {"num_layers": 3, "jobs_per_layer": 3,
                                    "family": "general"}, budget=6, seed=11),
        _catalog("small-layered-binary", "3x3 layered DAG, recursive binary durations",
                 "layered-random", {"num_layers": 3, "jobs_per_layer": 3,
                                    "family": "binary"}, budget=8, seed=12),
        _catalog("small-layered-kway", "3x3 layered DAG, k-way durations",
                 "layered-random", {"num_layers": 3, "jobs_per_layer": 3,
                                    "family": "kway"}, budget=8, seed=13),
        _catalog("medium-layered-general", "5x6 layered DAG, general step durations",
                 "layered-random", {"num_layers": 5, "jobs_per_layer": 6,
                                    "family": "general"}, budget=12, seed=21),
        _catalog("medium-layered-binary", "5x6 layered DAG, recursive binary durations",
                 "layered-random", {"num_layers": 5, "jobs_per_layer": 6,
                                    "family": "binary"}, budget=16, seed=22),
        _catalog("medium-layered-kway", "5x6 layered DAG, k-way durations",
                 "layered-random", {"num_layers": 5, "jobs_per_layer": 6,
                                    "family": "kway"}, budget=16, seed=23),
        _catalog("deep-chain-binary", "8-job chain, binary durations (max path reuse)",
                 "chain", {"lengths": [32, 16, 48, 24, 40, 56, 20, 36],
                           "family": "binary"}, budget=8),
        _catalog("deep-chain-kway", "8-job chain, k-way durations (max path reuse)",
                 "chain", {"lengths": [36, 25, 49, 16, 64, 30, 42, 20],
                           "family": "kway"}, budget=8),
        _catalog("matmul-like", "16-way fork-join of work-64 jobs (Parallel-MM shape)",
                 "fork-join", {"width": 16, "work": 64, "family": "binary"},
                 budget=32),
        _catalog("pipeline", "3-stage fork-join pipeline (stages reuse the budget)",
                 "staged-fork-join", {"stage_widths": [4, 8, 4], "work": 32,
                                      "family": "binary"}, budget=16, seed=7),
    ]
}


def workload_names() -> List[str]:
    return list(WORKLOADS)


def get_workload(name: str) -> Workload:
    require(name in WORKLOADS, f"unknown workload {name!r}; known: {sorted(WORKLOADS)}")
    return WORKLOADS[name]
