"""Named workload suite used by the benchmarks and EXPERIMENTS.md.

Each workload is a small factory returning ``(dag, budget)`` pairs; keeping
them named and centralised makes every benchmark row reproducible from a
single identifier (the experiment index in DESIGN.md references these
names).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.core.dag import TradeoffDAG
from repro.generators.fork_join import fork_join_dag, staged_fork_join_dag
from repro.generators.random_dag import chain_dag, layered_random_dag
from repro.utils.validation import require

__all__ = ["Workload", "WORKLOADS", "get_workload", "workload_names"]


@dataclass(frozen=True)
class Workload:
    """A named instance family: a builder plus the budget used in experiments."""

    name: str
    description: str
    build: Callable[[], TradeoffDAG]
    budget: float

    def fingerprint(self) -> str:
        """Content fingerprint of the built DAG (the engine's cache key).

        Workload builders are deterministic, so this identifies the
        instance a benchmark row ran on; rebuilding the workload in another
        process (e.g. a portfolio worker) hits the same engine cache entry.
        """
        from repro.engine.fingerprint import dag_fingerprint

        return dag_fingerprint(self.build())

    def problem(self):
        """The workload as a ready-to-solve min-makespan problem."""
        from repro.core.problem import MinMakespanProblem

        return MinMakespanProblem(self.build(), self.budget)


def _small_layered_general() -> TradeoffDAG:
    return layered_random_dag(3, 3, family="general", seed=11)


def _small_layered_binary() -> TradeoffDAG:
    return layered_random_dag(3, 3, family="binary", seed=12)


def _small_layered_kway() -> TradeoffDAG:
    return layered_random_dag(3, 3, family="kway", seed=13)


def _medium_layered_general() -> TradeoffDAG:
    return layered_random_dag(5, 6, family="general", seed=21)


def _medium_layered_binary() -> TradeoffDAG:
    return layered_random_dag(5, 6, family="binary", seed=22)


def _medium_layered_kway() -> TradeoffDAG:
    return layered_random_dag(5, 6, family="kway", seed=23)


def _deep_chain_binary() -> TradeoffDAG:
    return chain_dag([32, 16, 48, 24, 40, 56, 20, 36], family="binary")


def _deep_chain_kway() -> TradeoffDAG:
    return chain_dag([36, 25, 49, 16, 64, 30, 42, 20], family="kway")


def _matmul_like() -> TradeoffDAG:
    return fork_join_dag(width=16, work=64, family="binary")


def _pipeline() -> TradeoffDAG:
    return staged_fork_join_dag([4, 8, 4], work=32, family="binary", seed=7)


WORKLOADS: Dict[str, Workload] = {
    w.name: w
    for w in [
        Workload("small-layered-general", "3x3 layered DAG, general step durations",
                 _small_layered_general, budget=6),
        Workload("small-layered-binary", "3x3 layered DAG, recursive binary durations",
                 _small_layered_binary, budget=8),
        Workload("small-layered-kway", "3x3 layered DAG, k-way durations",
                 _small_layered_kway, budget=8),
        Workload("medium-layered-general", "5x6 layered DAG, general step durations",
                 _medium_layered_general, budget=12),
        Workload("medium-layered-binary", "5x6 layered DAG, recursive binary durations",
                 _medium_layered_binary, budget=16),
        Workload("medium-layered-kway", "5x6 layered DAG, k-way durations",
                 _medium_layered_kway, budget=16),
        Workload("deep-chain-binary", "8-job chain, binary durations (max path reuse)",
                 _deep_chain_binary, budget=8),
        Workload("deep-chain-kway", "8-job chain, k-way durations (max path reuse)",
                 _deep_chain_kway, budget=8),
        Workload("matmul-like", "16-way fork-join of work-64 jobs (Parallel-MM shape)",
                 _matmul_like, budget=32),
        Workload("pipeline", "3-stage fork-join pipeline (stages reuse the budget)",
                 _pipeline, budget=16),
    ]
}


def workload_names() -> List[str]:
    return list(WORKLOADS)


def get_workload(name: str) -> Workload:
    require(name in WORKLOADS, f"unknown workload {name!r}; known: {sorted(WORKLOADS)}")
    return WORKLOADS[name]
