"""Executable NP-hardness constructions (Section 4 and Appendix A).

Every reduction of the paper is implemented as a constructive builder
producing an activity-on-arc or activity-on-node tradeoff instance, plus a
witness-flow constructor for the forward direction and a verifier that
checks the reduction lemma against the exact solvers on small source
instances:

* :mod:`~repro.hardness.sat` -- 1-in-3SAT instances and oracle;
* :mod:`~repro.hardness.gadgets_general` -- Theorem 4.1 / Lemma 4.2 /
  Theorem 4.3 (general non-increasing durations) and Table 2;
* :mod:`~repro.hardness.gadgets_splitting` -- Section 4.2 (recursive binary
  and k-way durations), composite nodes and Table 3;
* :mod:`~repro.hardness.minresource_chain` -- the Theorem 4.4 chained
  variable gadgets and the 3/2 min-resource gap;
* :mod:`~repro.hardness.partition` / :mod:`~repro.hardness.treewidth` --
  Section 4.3 (bounded treewidth, weak NP-hardness via Partition);
* :mod:`~repro.hardness.matching3d` -- Appendix A (numerical 3D matching);
* :mod:`~repro.hardness.verify` -- end-to-end verification reports.
"""

from repro.hardness.sat import (
    OneInThreeSatInstance,
    figure9_formula,
    random_one_in_three_sat,
    satisfiable_one_in_three_sat,
)
from repro.hardness.gadgets_general import (
    TABLE2_HEADER,
    Theorem41Construction,
    build_theorem41_dag,
    construct_satisfying_flow,
    table2_rows,
)
from repro.hardness.gadgets_splitting import (
    TABLE3_HEADER,
    Section42Construction,
    build_section42_dag,
    composite_node_duration,
    section42_parameters,
    table3_rows,
    variable_branch_finish_times,
)
from repro.hardness.minresource_chain import (
    VariableChainConstruction,
    build_variable_chain,
    construct_chain_flow,
    minresource_gap,
)
from repro.hardness.partition import (
    PartitionConstruction,
    PartitionInstance,
    build_partition_dag,
    construct_partition_flow,
)
from repro.hardness.treewidth import (
    decomposition_width,
    partition_construction_decomposition,
    tree_decomposition_is_valid,
)
from repro.hardness.matching3d import (
    Matching3DConstruction,
    Numerical3DMInstance,
    best_achievable_makespan,
    build_matching3d_dag,
    construct_matching_flow,
)
from repro.hardness.verify import (
    ReductionReport,
    verify_matching3d_reduction,
    verify_partition_reduction,
    verify_theorem41,
)

__all__ = [
    "OneInThreeSatInstance", "figure9_formula", "random_one_in_three_sat",
    "satisfiable_one_in_three_sat",
    "Theorem41Construction", "build_theorem41_dag", "construct_satisfying_flow",
    "table2_rows", "TABLE2_HEADER",
    "Section42Construction", "build_section42_dag", "composite_node_duration",
    "section42_parameters", "table3_rows", "variable_branch_finish_times", "TABLE3_HEADER",
    "VariableChainConstruction", "build_variable_chain", "construct_chain_flow",
    "minresource_gap",
    "PartitionInstance", "PartitionConstruction", "build_partition_dag",
    "construct_partition_flow",
    "tree_decomposition_is_valid", "decomposition_width", "partition_construction_decomposition",
    "Numerical3DMInstance", "Matching3DConstruction", "build_matching3d_dag",
    "construct_matching_flow", "best_achievable_makespan",
    "ReductionReport", "verify_theorem41", "verify_partition_reduction",
    "verify_matching3d_reduction",
]
