"""Theorem 4.1 reduction: 1-in-3SAT -> resource-time tradeoff with reuse over paths.

The reduction (Section 4.1, Figures 8-9) maps a 1-in-3SAT formula with ``n``
variables and ``m`` clauses to an activity-on-arc DAG such that a makespan
of 1 is achievable with budget ``B = n + 2m`` **iff** the formula is 1-in-3
satisfiable (Lemma 4.2).  The same construction yields the factor-2
inapproximability of the minimum-makespan problem (Theorem 4.3): the optimal
makespan is 1 for yes-instances and at least 2 for no-instances.

Gadget layout (reconstructed from the prose of Section 4.1; the figure
artwork is not included in the paper text, so vertex wiring follows the
properties the proof relies on):

* **Variable gadget** for ``V`` -- vertices ``V(1) .. V(6)``; the two arcs
  ``(V(1), V(2))`` (TRUE branch) and ``(V(1), V(3))`` (FALSE branch) and the
  tail arcs ``(V(4), V(5))``, ``(V(5), V(6))`` all carry tuples
  ``{<0,1>, <1,0>}``.  One unit of resource must traverse the gadget (else
  the tail arcs alone cost 2); whichever branch it takes encodes the truth
  value, and the other branch's arc keeps duration 1 so the corresponding
  literal vertex "occurs" at time 1.
* **Clause gadget** for ``C`` -- vertices ``C(1) .. C(10)``; the diamond
  ``C(1)-C(2)/C(3)-C(4)`` forces two units in, which then expedite two of
  the three literal check arcs ``(C(5), C(8))``, ``(C(6), C(9))``,
  ``(C(7), C(10))``.  Vertex ``C(5)`` has precedence arcs from the variable
  vertices encoding ``(not l1, not l2, l3)``, ``C(6)`` from
  ``(not l1, l2, not l3)`` and ``C(7)`` from ``(l1, not l2, not l3)``
  (Table 2), so exactly one of them occurs at time 0 iff exactly one literal
  of the clause is true.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.arcdag import ArcDAG
from repro.core.duration import ConstantDuration, GeneralStepDuration
from repro.core.flow import ResourceFlow
from repro.hardness.sat import Assignment, OneInThreeSatInstance
from repro.utils.validation import require

__all__ = ["Theorem41Construction", "build_theorem41_dag", "construct_satisfying_flow",
           "table2_rows", "TABLE2_HEADER"]


def _unit_tuple() -> GeneralStepDuration:
    """The ``{<0,1>, <1,0>}`` resource-time pair used throughout the gadgets."""
    return GeneralStepDuration([(0, 1.0), (1, 0.0)])


@dataclass
class Theorem41Construction:
    """The reduced DAG plus the bookkeeping needed by the verifiers.

    Attributes
    ----------
    instance:
        The source 1-in-3SAT formula.
    arc_dag:
        The reduced activity-on-arc DAG.
    budget:
        The resource bound of Lemma 4.2, ``n + 2m``.
    target_makespan:
        The makespan bound of Lemma 4.2 (always 1).
    variable_vertices:
        ``variable -> dict`` with the six gadget vertices ``V1 .. V6``.
    clause_vertices:
        ``clause index -> dict`` with the ten gadget vertices ``C1 .. C10``.
    arc_ids:
        Named arcs used when constructing witness flows.
    """

    instance: OneInThreeSatInstance
    arc_dag: ArcDAG
    budget: float
    target_makespan: float
    variable_vertices: Dict[int, Dict[str, str]] = field(default_factory=dict)
    clause_vertices: Dict[int, Dict[str, str]] = field(default_factory=dict)
    arc_ids: Dict[Tuple, str] = field(default_factory=dict)

    def literal_vertex(self, literal: int) -> str:
        """The variable vertex whose event time is 0 iff ``literal`` is true.

        The TRUE branch vertex ``V(2)`` occurs at time 0 when the variable is
        set true; the FALSE branch vertex ``V(3)`` occurs at time 0 when it
        is set false.  Hence literal ``+v`` maps to ``V(2)`` and ``-v`` to
        ``V(3)``.
        """
        v = abs(literal)
        return self.variable_vertices[v]["V2" if literal > 0 else "V3"]

    def negated_literal_vertex(self, literal: int) -> str:
        """The vertex whose event time is 0 iff ``literal`` is FALSE."""
        return self.literal_vertex(-literal)


def build_theorem41_dag(instance: OneInThreeSatInstance) -> Theorem41Construction:
    """Build the Theorem 4.1 / Lemma 4.2 reduction for ``instance``."""
    dag = ArcDAG(source="S", sink="T")
    construction = Theorem41Construction(
        instance=instance,
        arc_dag=dag,
        budget=float(instance.num_variables + 2 * instance.num_clauses),
        target_makespan=1.0,
    )

    def add(key: Tuple, tail, head, duration, dummy=False) -> str:
        arc = dag.add_arc(tail, head, duration, is_dummy=dummy, arc_id="::".join(map(str, key)))
        construction.arc_ids[key] = arc.arc_id
        return arc.arc_id

    # Variable gadgets.
    for v in range(1, instance.num_variables + 1):
        names = {f"V{i}": f"x{v}.V{i}" for i in range(1, 7)}
        construction.variable_vertices[v] = names
        add(("var", v, "in"), "S", names["V1"], ConstantDuration(0.0), dummy=True)
        add(("var", v, "true"), names["V1"], names["V2"], _unit_tuple())
        add(("var", v, "false"), names["V1"], names["V3"], _unit_tuple())
        add(("var", v, "join_true"), names["V2"], names["V4"], ConstantDuration(0.0), dummy=True)
        add(("var", v, "join_false"), names["V3"], names["V4"], ConstantDuration(0.0), dummy=True)
        add(("var", v, "tail1"), names["V4"], names["V5"], _unit_tuple())
        add(("var", v, "tail2"), names["V5"], names["V6"], _unit_tuple())
        add(("var", v, "out"), names["V6"], "T", ConstantDuration(0.0), dummy=True)

    # Clause gadgets.
    for c, clause in enumerate(instance.clauses):
        names = {f"C{i}": f"c{c}.C{i}" for i in range(1, 11)}
        construction.clause_vertices[c] = names
        add(("clause", c, "in"), "S", names["C1"], ConstantDuration(0.0), dummy=True)
        add(("clause", c, "d12"), names["C1"], names["C2"], _unit_tuple())
        add(("clause", c, "d24"), names["C2"], names["C4"], _unit_tuple())
        add(("clause", c, "d13"), names["C1"], names["C3"], _unit_tuple())
        add(("clause", c, "d34"), names["C3"], names["C4"], _unit_tuple())
        for branch, check in (("C5", "C8"), ("C6", "C9"), ("C7", "C10")):
            add(("clause", c, "fan", branch), names["C4"], names[branch],
                ConstantDuration(0.0), dummy=True)
            add(("clause", c, "check", branch), names[branch], names[check], _unit_tuple())
            add(("clause", c, "out", check), names[check], "T", ConstantDuration(0.0), dummy=True)

        l1, l2, l3 = clause
        # C(5) <- (not l1, not l2, l3); C(6) <- (not l1, l2, not l3); C(7) <- (l1, not l2, not l3)
        patterns = {
            "C5": (-l1, -l2, l3),
            "C6": (-l1, l2, -l3),
            "C7": (l1, -l2, -l3),
        }
        for branch, lits in patterns.items():
            for pos, lit in enumerate(lits):
                source_vertex = construction.literal_vertex(lit)
                add(("clause", c, "literal", branch, pos), source_vertex, names[branch],
                    ConstantDuration(0.0), dummy=True)

    dag.validate()
    return construction


def construct_satisfying_flow(construction: Theorem41Construction,
                              assignment: Assignment) -> ResourceFlow:
    """The witness flow of Lemma 4.2's forward direction.

    Given a 1-in-3 satisfying ``assignment``, one unit of resource traverses
    every variable gadget along its chosen branch and two units traverse
    every clause gadget, expediting the diamond and the two literal-check
    arcs whose branch vertex occurs at time 1.  The returned flow uses
    exactly ``n + 2m`` units and achieves makespan 1.
    """
    instance = construction.instance
    require(instance.is_one_in_three_satisfying(assignment),
            "assignment is not 1-in-3 satisfying; the witness flow only exists for yes-instances")
    flow: Dict[str, float] = {}

    def push(key: Tuple, amount: float = 1.0) -> None:
        arc_id = construction.arc_ids[key]
        flow[arc_id] = flow.get(arc_id, 0.0) + amount

    for v in range(1, instance.num_variables + 1):
        branch = "true" if assignment[v] else "false"
        push(("var", v, "in"))
        push(("var", v, branch))
        push(("var", v, "join_true" if assignment[v] else "join_false"))
        push(("var", v, "tail1"))
        push(("var", v, "tail2"))
        push(("var", v, "out"))

    for c, clause in enumerate(instance.clauses):
        l1, l2, l3 = clause
        patterns = {
            "C5": (-l1, -l2, l3),
            "C6": (-l1, l2, -l3),
            "C7": (l1, -l2, -l3),
        }
        # The branch whose three encoded literals are all true occurs at time 0
        # and needs no resource; the other two need one unit each.
        needy = [branch for branch, lits in patterns.items()
                 if not all(instance.literal_true(lit, assignment) for lit in lits)]
        require(len(needy) == 2, "a 1-in-3 satisfying assignment leaves exactly two needy branches")
        check_of = {"C5": "C8", "C6": "C9", "C7": "C10"}
        push(("clause", c, "in"), 2.0)
        push(("clause", c, "d12"))
        push(("clause", c, "d24"))
        push(("clause", c, "d13"))
        push(("clause", c, "d34"))
        for branch in needy:
            push(("clause", c, "fan", branch))
            push(("clause", c, "check", branch))
            push(("clause", c, "out", check_of[branch]))

    resource_flow = ResourceFlow(construction.arc_dag, flow)
    resource_flow.validate()
    return resource_flow


#: Column header of Table 2.
TABLE2_HEADER = ("Vi", "Vj", "Vk", "C(5)", "C(6)", "C(7)")


def table2_rows() -> List[Tuple[str, str, str, int, int, int]]:
    """Regenerate Table 2: earliest start times of C(5), C(6), C(7).

    For a clause ``(Vi or Vj or Vk)`` (all positive literals, as in the
    paper's table) the branch vertices' earliest start times are the maxima
    of their three incoming literal vertices, where a literal vertex occurs
    at time 1 iff its literal is false under the row's assignment.
    """
    rows: List[Tuple[str, str, str, int, int, int]] = []
    patterns = {
        "C5": (False, False, True),   # (not Vi, not Vj, Vk)
        "C6": (False, True, False),
        "C7": (True, False, False),
    }
    for vi in (True, False):
        for vj in (True, False):
            for vk in (True, False):
                assignment = (vi, vj, vk)
                times = []
                for branch in ("C5", "C6", "C7"):
                    wanted = patterns[branch]
                    literal_times = [0 if assignment[i] == wanted[i] else 1 for i in range(3)]
                    times.append(max(literal_times))
                rows.append((
                    "True" if vi else "False",
                    "True" if vj else "False",
                    "True" if vk else "False",
                    times[0], times[1], times[2],
                ))
    # Order rows as in the paper: TTT, FTT, TFT, TTF, FFT, FTF, TFF, FFF.
    order = ["TrueTrueTrue", "FalseTrueTrue", "TrueFalseTrue", "TrueTrueFalse",
             "FalseFalseTrue", "FalseTrueFalse", "TrueFalseFalse", "FalseFalseFalse"]
    rows.sort(key=lambda r: order.index(r[0] + r[1] + r[2]))
    return rows
