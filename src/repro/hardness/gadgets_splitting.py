"""Section 4.2: hardness for recursive-binary and k-way duration functions.

Section 4.2 strengthens Theorem 4.1: the problem stays strongly NP-hard even
when every duration function comes from an actual reducer construction
(recursive binary splitting or k-way splitting).  The proof replaces the
unit-time arcs of Section 4.1 with *composite nodes* (Figure 12) whose
timing can only be improved by routing 2 units of resource through them,
plus long chains that translate the binary "expedited or not" signal into
the earliest-finish times of Table 3.

This module implements:

* the **composite node** gadget and its timing algebra
  (:func:`composite_node_duration`), matching the paper's
  ``k + 2`` (no resource) vs ``k/2 + 4`` (2 units) values;
* the **instance parameters** ``x``, ``y``, the target makespan
  ``7x + 2y + 12`` and the budget ``2n + 4m`` (:func:`section42_parameters`);
* the **variable-gadget timing** (earliest finish of ``V(5)`` / ``V(6)``:
  ``5x + 5`` on the chosen branch, ``6x + 3`` on the other,
  :func:`variable_branch_finish_times`);
* **Table 3** (:func:`table3_rows`), the earliest finish times of
  ``C(5)/C(6)/C(7)`` for all eight assignments, derived from the writer
  serialisation argument of the proof of Lemma 4.5;
* a structural **DAG reconstruction** (:func:`build_section42_dag`) of the
  variable and clause gadgets.  The figures' exact wiring is not part of the
  paper text, so the reconstruction is validated structurally (gadget sizes,
  acyclicity, composite-node timing) and through Table 3, not through a full
  end-to-end equivalence proof; this is recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.dag import TradeoffDAG
from repro.core.duration import (
    ConstantDuration,
    KWaySplitDuration,
    RecursiveBinarySplitDuration,
)
from repro.hardness.sat import OneInThreeSatInstance
from repro.utils.validation import check_positive, require

__all__ = [
    "composite_node_duration",
    "section42_parameters",
    "variable_branch_finish_times",
    "table3_rows",
    "TABLE3_HEADER",
    "Section42Construction",
    "build_section42_dag",
]


def composite_node_duration(order: int, resource_units: int, family: str = "kway") -> float:
    """End-to-end duration of a composite node of the given order (Figure 12).

    A composite node of order ``k`` is a chain of one entry write, ``k``
    parallel middle writes and an exit cell receiving ``k`` writes.  Without
    extra resource it takes ``1 + 1 + k = k + 2`` time; with 2 units (used by
    a 2-way split or a height-1 binary reducer at the exit cell) it takes
    ``1 + 1 + (k/2 + 2) = k/2 + 4`` time -- the two values the Section 4.2
    proof relies on.
    """
    check_positive(order, "order")
    require(family in ("kway", "binary"), "family must be 'kway' or 'binary'")
    entry_and_middle = 2.0
    if resource_units < 2:
        return entry_and_middle + order
    if family == "kway":
        exit_time = math.ceil(order / 2) + 2
    else:
        exit_time = math.ceil(order / 2) + 1 + 1
    return entry_and_middle + exit_time


def section42_parameters(num_variables: int, num_clauses: int) -> Dict[str, float]:
    """The numeric parameters of the Section 4.2 construction.

    ``k`` is the smallest power of two at least ``n + 3m`` (the in-degree of
    the sink), ``y = log2 k`` is the height of the binary reduction at the
    sink, ``x = max(2y + 13, 8)`` makes ``8x`` exceed the target makespan,
    which is ``7x + 2y + 12``; the resource budget is ``2n + 4m``.
    """
    check_positive(num_variables, "num_variables")
    check_positive(num_clauses, "num_clauses")
    sink_indegree = num_variables + 3 * num_clauses
    k = 1
    while k < sink_indegree:
        k *= 2
    y = int(math.log2(k))
    x = max(2 * y + 13, 8)
    return {
        "sink_indegree": float(sink_indegree),
        "k": float(k),
        "y": float(y),
        "x": float(x),
        "target_makespan": float(7 * x + 2 * y + 12),
        "budget": float(2 * num_variables + 4 * num_clauses),
    }


def variable_branch_finish_times(x: int) -> Dict[str, float]:
    """Earliest finish times inside a variable gadget (Section 4.2).

    Setting the variable TRUE routes 2 units through the ``V(2)`` composite
    node (order ``2x``), giving finish time ``1 + (x + 4) + 4x = 5x + 5`` at
    the end of its chain (``V(5)``) and ``1 + (2x + 2) + 4x = 6x + 3`` at the
    other chain's end (``V(6)``); setting it FALSE swaps the two.
    """
    chosen = 1 + composite_node_duration(2 * x, 2) + 4 * x
    other = 1 + composite_node_duration(2 * x, 0) + 4 * x
    return {"chosen_branch": float(chosen), "other_branch": float(other)}


#: Column header of Table 3.
TABLE3_HEADER = ("Vi", "Vj", "Vk", "C(5)", "C(6)", "C(7)")


def _writer_completion(ready_times: List[float]) -> float:
    """Completion time of serialising unit writes whose operands are ready at ``ready_times``.

    Writers are applied in ready-time order; each write takes one unit and
    the cell's lock serialises them, so the completion time is
    ``max_i (sorted_ready[i] + number of writes not earlier than it)`` --
    the same accounting used in the proof of Lemma 4.5 (e.g. ready times
    ``{5x+5, 6x+3, 6x+3}`` complete at ``6x+5``).
    """
    finish = 0.0
    for ready in sorted(ready_times):
        finish = max(finish, ready) + 1.0
    return finish


def table3_rows(x: int) -> List[Tuple[str, str, str, float, float, float]]:
    """Regenerate Table 3 for a given ``x``.

    For clause ``(Vi or Vj or Vk)`` the writer from a variable whose encoded
    literal is TRUE becomes ready at ``5x + 5`` and one whose literal is
    FALSE at ``6x + 3``; the completion times of the three serialised writes
    at ``C(5)``, ``C(6)``, ``C(7)`` give the table entries (``a = 6x + 4``,
    ``b = 5x + 6`` in the paper's shorthand).
    """
    check_positive(x, "x")
    times = variable_branch_finish_times(x)
    ready_true = times["chosen_branch"]    # 5x + 5
    ready_false = times["other_branch"]    # 6x + 3
    patterns = {
        "C5": (False, False, True),
        "C6": (False, True, False),
        "C7": (True, False, False),
    }
    rows: List[Tuple[str, str, str, float, float, float]] = []
    for vi in (True, False):
        for vj in (True, False):
            for vk in (True, False):
                assignment = (vi, vj, vk)
                completions = []
                for branch in ("C5", "C6", "C7"):
                    wanted = patterns[branch]
                    ready = [ready_true if assignment[i] == wanted[i] else ready_false
                             for i in range(3)]
                    completions.append(_writer_completion(ready))
                rows.append((
                    "T" if vi else "F", "T" if vj else "F", "T" if vk else "F",
                    completions[0], completions[1], completions[2],
                ))
    order = ["TTT", "FTT", "TFT", "TTF", "FFT", "FTF", "TFF", "FFF"]
    rows.sort(key=lambda r: order.index(r[0] + r[1] + r[2]))
    return rows


@dataclass
class Section42Construction:
    """Structural reconstruction of the Section 4.2 reduction."""

    instance: OneInThreeSatInstance
    dag: TradeoffDAG
    parameters: Dict[str, float]
    family: str
    variable_nodes: Dict[int, Dict[str, object]] = field(default_factory=dict)
    clause_nodes: Dict[int, Dict[str, object]] = field(default_factory=dict)


def _duration_for_work(work: int, family: str):
    if work <= 0:
        return ConstantDuration(0.0)
    if family == "kway":
        return KWaySplitDuration(int(work))
    return RecursiveBinarySplitDuration(int(work))


def _add_composite(dag: TradeoffDAG, prefix: str, order: int, family: str,
                   entry_from: object) -> Tuple[object, object]:
    """Add a composite node of the given order; returns (entry, exit) job names."""
    entry = f"{prefix}.in"
    exit_ = f"{prefix}.out"
    dag.add_job(entry, _duration_for_work(1, family))
    dag.add_job(exit_, _duration_for_work(order, family))
    dag.add_edge(entry_from, entry)
    for idx in range(order):
        mid = f"{prefix}.m{idx}"
        dag.add_job(mid, _duration_for_work(1, family))
        dag.add_edge(entry, mid)
        dag.add_edge(mid, exit_)
    return entry, exit_


def _add_chain(dag: TradeoffDAG, prefix: str, length: int, family: str,
               entry_from: object) -> object:
    """Add a chain of ``length`` unit-work nodes; returns the last job name."""
    previous = entry_from
    last = entry_from
    for idx in range(length):
        name = f"{prefix}.c{idx}"
        dag.add_job(name, _duration_for_work(1, family))
        dag.add_edge(previous, name)
        previous = name
        last = name
    return last


def build_section42_dag(instance: OneInThreeSatInstance,
                        family: str = "kway",
                        scale: Optional[int] = None) -> Section42Construction:
    """Structural reconstruction of the Section 4.2 reduction.

    Parameters
    ----------
    instance:
        The 1-in-3SAT formula.
    family:
        ``"kway"`` or ``"binary"`` -- which reducer family supplies the
        duration functions.
    scale:
        Optional override for the parameter ``x`` (the paper's value grows
        the gadgets to hundreds of nodes even for tiny formulas; tests use a
        smaller ``scale`` to keep construction fast while preserving the
        topology).

    Notes
    -----
    The construction follows the prose of Section 4.2: each variable gadget
    has an entry node, two order-``2x`` composite nodes (TRUE / FALSE
    branches) each followed by a chain of ``4x`` unit nodes ending at the
    literal output nodes ``V(5)`` / ``V(6)``, an order-``8x`` composite node
    fed by both branches, and an exit node ``V(7)`` connected to the sink.
    Each clause gadget has two order-``8x`` composite nodes behind its entry,
    three branch nodes ``C(5)/C(6)/C(7)`` wired to the literal outputs
    exactly as in Section 4.1, three order-``2x`` composite nodes, and three
    exits with long guard chains from the source.  Because the figure artwork
    is unavailable, the reconstruction is validated structurally and through
    the timing algebra above rather than via a full equivalence proof.
    """
    params = section42_parameters(instance.num_variables, instance.num_clauses)
    x = int(scale if scale is not None else params["x"])
    check_positive(x, "scale")
    dag = TradeoffDAG()
    dag.add_job("S", ConstantDuration(0.0))
    dag.add_job("T_sink", _duration_for_work(instance.num_variables + 3 * instance.num_clauses,
                                             family))
    construction = Section42Construction(instance=instance, dag=dag, parameters=params,
                                          family=family)

    literal_output: Dict[Tuple[int, bool], object] = {}

    for v in range(1, instance.num_variables + 1):
        entry = f"x{v}.V1"
        dag.add_job(entry, _duration_for_work(1, family))
        dag.add_edge("S", entry)
        _, true_comp_out = _add_composite(dag, f"x{v}.V2", 2 * x, family, entry)
        _, false_comp_out = _add_composite(dag, f"x{v}.V3", 2 * x, family, entry)
        true_end = _add_chain(dag, f"x{v}.chainT", 4 * x, family, true_comp_out)
        false_end = _add_chain(dag, f"x{v}.chainF", 4 * x, family, false_comp_out)
        dag.add_job(f"x{v}.V5", _duration_for_work(1, family))
        dag.add_job(f"x{v}.V6", _duration_for_work(1, family))
        dag.add_edge(true_end, f"x{v}.V5")
        dag.add_edge(false_end, f"x{v}.V6")
        _, big_comp_out = _add_composite(dag, f"x{v}.V4", 8 * x, family, entry)
        dag.add_job(f"x{v}.V7", _duration_for_work(1, family))
        dag.add_edge(big_comp_out, f"x{v}.V7")
        dag.add_edge(f"x{v}.V5", f"x{v}.V7")
        dag.add_edge(f"x{v}.V6", f"x{v}.V7")
        dag.add_edge(f"x{v}.V7", "T_sink")
        literal_output[(v, True)] = f"x{v}.V5"
        literal_output[(v, False)] = f"x{v}.V6"
        construction.variable_nodes[v] = {
            "entry": entry, "true_out": f"x{v}.V5", "false_out": f"x{v}.V6",
            "exit": f"x{v}.V7",
            "true_composite_exit": true_comp_out, "false_composite_exit": false_comp_out,
        }

    for c, clause in enumerate(instance.clauses):
        entry = f"c{c}.C1"
        dag.add_job(entry, _duration_for_work(1, family))
        dag.add_edge("S", entry)
        _, comp2_out = _add_composite(dag, f"c{c}.C2", 8 * x, family, entry)
        _, comp3_out = _add_composite(dag, f"c{c}.C3", 8 * x, family, entry)
        dag.add_job(f"c{c}.C4", _duration_for_work(2, family))
        dag.add_edge(comp2_out, f"c{c}.C4")
        dag.add_edge(comp3_out, f"c{c}.C4")

        l1, l2, l3 = clause
        patterns = {"C5": (-l1, -l2, l3), "C6": (-l1, l2, -l3), "C7": (l1, -l2, -l3)}
        exits = {"C5": "C8", "C6": "C9", "C7": "C10"}
        for branch, lits in patterns.items():
            branch_node = f"c{c}.{branch}"
            dag.add_job(branch_node, _duration_for_work(3, family))
            dag.add_edge(f"c{c}.C4", branch_node)
            for lit in lits:
                source = literal_output[(abs(lit), lit > 0)]
                dag.add_edge(source, branch_node)
            _, comp_out = _add_composite(dag, f"c{c}.{exits[branch]}", 2 * x, family, branch_node)
            guard_end = _add_chain(dag, f"c{c}.guard.{branch}", 7 * x + 11, family, "S")
            out_node = f"c{c}.{branch}.out"
            dag.add_job(out_node, _duration_for_work(2, family))
            dag.add_edge(comp_out, out_node)
            dag.add_edge(guard_end, out_node)
            dag.add_edge(out_node, "T_sink")
        construction.clause_nodes[c] = {"entry": entry, "c4": f"c{c}.C4"}

    dag.ensure_single_source_sink()
    dag.validate()
    return construction
