"""Appendix A: reduction from numerical 3-dimensional matching.

The appendix gives an alternative hardness proof: a numerical 3D matching
instance (sets ``A``, ``B``, ``C`` of ``n`` positive integers each, target
triple sum ``T = (sum A + sum B + sum C) / n``) reduces to a tradeoff DAG
built from two *bipartite matcher* gadgets (Figure 17) chained between the
``a_i``-edges, the ``b_i``-edges and the ``c_i``-edges (Figure 18).  Each
matcher forces a one-to-one mapping between its ``n`` incoming and ``n``
outgoing edges; with budget ``B = n^2`` the whole DAG admits makespan
``2M + T`` iff the matching instance is solvable (Lemma A.1).

The module implements the matcher gadget and the full reduction exactly as
described in the appendix, plus a brute-force 3DM oracle and the witness
flow of the forward direction.  Because every arc of the construction has an
"infinite without resource" tuple, the only freedom a solution has is which
permutations the two matchers realise -- which is what the exact
verification in the tests enumerates.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.arcdag import ArcDAG
from repro.core.duration import ConstantDuration, GeneralStepDuration
from repro.core.flow import ResourceFlow
from repro.utils.validation import check_positive, require

__all__ = ["Numerical3DMInstance", "Matching3DConstruction", "build_matching3d_dag",
           "construct_matching_flow", "best_achievable_makespan"]

INF = math.inf


@dataclass(frozen=True)
class Numerical3DMInstance:
    """A numerical 3-dimensional matching instance."""

    a: Tuple[int, ...]
    b: Tuple[int, ...]
    c: Tuple[int, ...]

    def __post_init__(self) -> None:
        require(len(self.a) == len(self.b) == len(self.c),
                "A, B and C must have the same cardinality")
        require(len(self.a) >= 1, "instance must be non-empty")
        for value in self.a + self.b + self.c:
            check_positive(value, "3DM value")
        require((sum(self.a) + sum(self.b) + sum(self.c)) % len(self.a) == 0,
                "total sum must be divisible by n for a numerical 3DM instance")

    @property
    def n(self) -> int:
        return len(self.a)

    @property
    def target(self) -> int:
        """The per-triple target sum ``T``."""
        return (sum(self.a) + sum(self.b) + sum(self.c)) // self.n

    def solve_brute_force(self) -> Optional[List[Tuple[int, int, int]]]:
        """Return index triples ``(i, j, k)`` forming a perfect matching, or ``None``."""
        n = self.n
        for perm_b in itertools.permutations(range(n)):
            # check a_i + b_{perm_b(i)} partial sums first to prune
            for perm_c in itertools.permutations(range(n)):
                if all(self.a[i] + self.b[perm_b[i]] + self.c[perm_c[i]] == self.target
                       for i in range(n)):
                    return [(i, perm_b[i], perm_c[i]) for i in range(n)]
        return None

    def is_solvable(self) -> bool:
        return self.solve_brute_force() is not None


@dataclass
class Matching3DConstruction:
    """The reduced DAG of Appendix A with its bookkeeping."""

    instance: Numerical3DMInstance
    arc_dag: ArcDAG
    budget: float
    big_m: float
    target_makespan: float
    arc_ids: Dict[Tuple, str] = field(default_factory=dict)


def _forced(duration_with_resource: float, resource: int, big_m: float) -> GeneralStepDuration:
    """``{<0, inf>, <resource, duration>}`` arcs, with ``inf`` modelled as a large M."""
    return GeneralStepDuration([(0, big_m), (resource, float(duration_with_resource))])


def _add_bipartite_matcher(dag: ArcDAG, construction: Matching3DConstruction,
                           name: str, inputs: Sequence, outputs: Sequence,
                           n: int, big_m: float) -> None:
    """Add one bipartite matcher gadget (Figure 17) between ``inputs`` and ``outputs``.

    ``inputs[i]`` is the vertex ``x_i`` at which ``n`` units of resource
    arrive; ``outputs[j]`` is the vertex ``z_j`` from which ``n`` units
    leave.  The internal wiring follows the appendix: every ``x_i`` fans out
    one unit to each ``y^j_i``; sending that unit onward to ``y_j``
    (realising the match ``x_i -> z_j``) makes the parallel arc
    ``(y^j_i, z'_j)`` cost ``M``, which is what delays ``z'_j`` until the
    matched input's start time plus ``M``.
    """
    def add(key: Tuple, tail, head, duration) -> None:
        arc = dag.add_arc(tail, head, duration, arc_id="::".join(map(str, key)))
        construction.arc_ids[key] = arc.arc_id

    for i in range(n):
        x_i = inputs[i]
        for j in range(n):
            y_ji = (name, "y", j, i)
            add((name, "fan", i, j), x_i, y_ji, _forced(0.0, 1, big_m))
            # Routing one unit from y^j_i to the selector vertex realises the
            # match x_i -> z_j; the arc itself costs nothing either way.
            add((name, "match", i, j), y_ji, (name, "ysel", j), ConstantDuration(0.0))
            # The parallel "skip" arc is the delay mechanism of Figure 17: the
            # matched input leaves it unexpedited, so z'_j waits M time units.
            add((name, "skip", i, j), y_ji, (name, "zprime", j),
                GeneralStepDuration([(0, big_m), (1, 0.0)]))
    for j in range(n):
        add((name, "collect", j), (name, "zprime", j), outputs[j],
            _forced(0.0, n - 1, big_m) if n > 1 else ConstantDuration(0.0))
        add((name, "select", j), (name, "ysel", j), outputs[j], _forced(0.0, 1, big_m))


def build_matching3d_dag(instance: Numerical3DMInstance) -> Matching3DConstruction:
    """Build the Appendix A reduction (Figure 18) for ``instance``.

    Arc families (all "impossible without resource"):

    * ``(s, a_i)`` with ``{<0, inf>, <n, a_i>}``;
    * first bipartite matcher from the ``a_i`` endpoints to the ``b_i``
      entry vertices;
    * ``(b_i, b'_i)`` with ``{<0, inf>, <n, b_i>}``;
    * second matcher from the ``b'_i`` endpoints to the ``c_i`` entry
      vertices;
    * ``(c_i, t)`` with ``{<0, inf>, <n, c_i>}``.

    With budget ``n^2`` every matcher passes ``n`` units along each matched
    pair; the makespan is ``2M + (a_i + b_j + c_k)`` along the slowest
    matched chain, hence ``2M + T`` exactly when the matching is perfect.
    """
    n = instance.n
    big_m = float(max(instance.a) + max(instance.b) + max(instance.c) + 1)
    dag = ArcDAG(source="s", sink="t")
    construction = Matching3DConstruction(
        instance=instance,
        arc_dag=dag,
        budget=float(n * n),
        big_m=big_m,
        target_makespan=2 * big_m + instance.target,
    )

    def add(key: Tuple, tail, head, duration) -> None:
        arc = dag.add_arc(tail, head, duration, arc_id="::".join(map(str, key)))
        construction.arc_ids[key] = arc.arc_id

    a_vertices = [("a", i) for i in range(n)]
    b_in = [("b", i) for i in range(n)]
    b_out = [("b'", i) for i in range(n)]
    c_vertices = [("c", i) for i in range(n)]

    for i in range(n):
        add(("edgeA", i), "s", a_vertices[i], _forced(instance.a[i], n, big_m * 4))
        add(("edgeB", i), b_in[i], b_out[i], _forced(instance.b[i], n, big_m * 4))
        add(("edgeC", i), c_vertices[i], "t", _forced(instance.c[i], n, big_m * 4))

    _add_bipartite_matcher(dag, construction, "M1", a_vertices, b_in, n, big_m)
    _add_bipartite_matcher(dag, construction, "M2", b_out, c_vertices, n, big_m)

    dag.validate()
    return construction


def construct_matching_flow(construction: Matching3DConstruction,
                            matching: Sequence[Tuple[int, int, int]]) -> ResourceFlow:
    """Witness flow realising ``matching`` (forward direction of Lemma A.1)."""
    instance = construction.instance
    n = instance.n
    require(len(matching) == n, "matching must cover every index")
    flow: Dict[str, float] = {}

    def push(key: Tuple, amount: float) -> None:
        arc_id = construction.arc_ids[key]
        flow[arc_id] = flow.get(arc_id, 0.0) + amount

    def route_matcher(name: str, pairs: Dict[int, int]) -> None:
        # pairs: input index -> output index
        for i in range(n):
            for j in range(n):
                push((name, "fan", i, j), 1.0)
                if pairs[i] == j:
                    push((name, "match", i, j), 1.0)
                else:
                    push((name, "skip", i, j), 1.0)
        for j in range(n):
            push((name, "select", j), 1.0)
            if n > 1:
                push((name, "collect", j), float(n - 1))

    ab = {i: j for (i, j, _k) in matching}
    bc = {j: k for (_i, j, k) in matching}

    for i in range(n):
        push(("edgeA", i), float(n))
        push(("edgeB", i), float(n))
        push(("edgeC", i), float(n))
    route_matcher("M1", ab)
    route_matcher("M2", bc)

    resource_flow = ResourceFlow(construction.arc_dag, flow)
    resource_flow.validate()
    return resource_flow


def best_achievable_makespan(construction: Matching3DConstruction) -> float:
    """Exact optimum over all matcher permutations (small ``n`` only).

    Because every arc must carry its full resource requirement (all tuples
    are "infinite without resource"), the only degrees of freedom are the
    two permutations realised by the matchers.  The makespan of a fixed pair
    of permutations is ``2M + max_i (a_i + b_{p(i)} + c_{q(p(i))})``; this
    helper minimises that over all pairs, which is the exact optimum of the
    reduced instance under budget ``n^2``.
    """
    instance = construction.instance
    n = instance.n
    best = math.inf
    for perm_b in itertools.permutations(range(n)):
        for perm_c in itertools.permutations(range(n)):
            worst = max(instance.a[i] + instance.b[perm_b[i]] + instance.c[perm_c[i]]
                        for i in range(n))
            best = min(best, 2 * construction.big_m + worst)
    return best
