"""Theorem 4.4: 3/2-inapproximability of the minimum-resource problem.

The paper sketches a second, more intricate 1-in-3SAT reduction in which the
*resource* (not the makespan) carries the gap: the reduced DAG admits the
target makespan with 2 units of resource iff the formula is 1-in-3
satisfiable, and needs at least 3 units otherwise -- hence no polynomial
algorithm approximates the minimum resource within a factor below 3/2.

The proof is only sketched in the paper (Figures 10-11 are not fully
specified in the text), so this module implements the two components that
*are* specified precisely, plus their timing properties:

* the **chained variable gadgets** (Figure 10): a single unit of resource
  walks the chain of variable gadgets, choosing one of two two-arc paths in
  each gadget; the entry of gadget ``i`` is reached at time exactly
  ``i - 1`` and its exit at time exactly ``i``; an extra direct arc
  ``(s, t)`` with options ``<1, n>`` / ``<0, M>`` carries a second unit that
  also arrives at time ``n``;
* the **gap statement** itself (:func:`minresource_gap`): a record of the
  claimed 2-vs-3 resource gap used by the Table 1 benchmark to report which
  part of the row is reproduced constructively and which is reproduced only
  as the paper's stated bound.

The full clause chain with buffer edges is *not* reconstructed (the paper
does not give enough detail to do so faithfully); EXPERIMENTS.md records
this as the one partially-reproduced artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.core.arcdag import ArcDAG
from repro.core.duration import ConstantDuration, GeneralStepDuration
from repro.core.flow import ResourceFlow
from repro.utils.validation import check_positive

__all__ = ["VariableChainConstruction", "build_variable_chain", "construct_chain_flow",
           "minresource_gap"]


@dataclass
class VariableChainConstruction:
    """The chained variable gadgets of Figure 10.

    Attributes
    ----------
    num_variables:
        Number of chained gadgets.
    arc_dag:
        The DAG: source ``s``, one gadget per variable, sink ``t``, plus the
        direct ``(s, t)`` arc.
    big_m:
        The penalty duration ``M`` (any value larger than ``n`` works).
    arc_ids:
        Named arcs for witness flows.
    """

    num_variables: int
    arc_dag: ArcDAG
    big_m: float
    arc_ids: Dict[Tuple, str] = field(default_factory=dict)


def build_variable_chain(num_variables: int, big_m: float = None) -> VariableChainConstruction:
    """Build the Figure 10 chain of variable gadgets.

    Gadget ``i`` has an entry vertex ``e_i`` and an exit vertex ``f_i`` with
    two parallel two-arc paths between them (via ``p_i`` for TRUE and
    ``q_i`` for FALSE), exactly as in the Figure 8(a) variable gadget: the
    first arc of each path has options ``{<0, 1>, <1, 0>}`` and the second
    arc is free.  The branch carrying the unit of resource is traversed
    instantly, so its branch vertex is reached at time ``i - 1`` while the
    other branch vertex is reached at time ``i`` -- the timing signal the
    clause gadgets of the full proof read.  Consecutive gadgets are linked
    by an arc with options ``{<1, 0>, <0, M>}``; the source feeds the first
    gadget at time 0 and a direct ``(s, t)`` arc with ``{<1, n>, <0, M>}``
    carries the second unit.  Both units reach the sink at time exactly
    ``n``.
    """
    check_positive(num_variables, "num_variables")
    n = num_variables
    if big_m is None:
        big_m = float(4 * n + 16)
    dag = ArcDAG(source="s", sink="t")
    construction = VariableChainConstruction(num_variables=n, arc_dag=dag, big_m=big_m)

    def add(key: Tuple, tail, head, duration, dummy=False) -> None:
        arc = dag.add_arc(tail, head, duration, is_dummy=dummy, arc_id="::".join(map(str, key)))
        construction.arc_ids[key] = arc.arc_id

    def expedite_or_m(time_with: float) -> GeneralStepDuration:
        return GeneralStepDuration([(0, big_m), (1, float(time_with))])

    choose = GeneralStepDuration([(0, 1.0), (1, 0.0)])
    add(("enter", 1), "s", ("e", 1), ConstantDuration(0.0), dummy=True)
    for i in range(1, n + 1):
        add(("true_a", i), ("e", i), ("p", i), choose)
        add(("true_b", i), ("p", i), ("f", i), ConstantDuration(0.0), dummy=True)
        add(("false_a", i), ("e", i), ("q", i), choose)
        add(("false_b", i), ("q", i), ("f", i), ConstantDuration(0.0), dummy=True)
        if i < n:
            add(("link", i), ("f", i), ("e", i + 1), expedite_or_m(0.0))
        else:
            add(("exit", i), ("f", i), "t", ConstantDuration(0.0), dummy=True)
    add(("direct",), "s", "t", GeneralStepDuration([(0, big_m), (1, float(n))]))
    dag.validate()
    return construction


def construct_chain_flow(construction: VariableChainConstruction,
                         assignment: Dict[int, bool]) -> ResourceFlow:
    """The witness flow: one unit walks the chain per ``assignment``, one goes direct.

    The returned flow uses 2 units; the chained unit reaches the entry of
    gadget ``i`` at time ``i - 1`` and its exit at time ``i`` (the property
    the clause timing of the full proof relies on), and both units arrive at
    the sink at time ``n``.
    """
    n = construction.num_variables
    flow: Dict[str, float] = {}

    def push(key: Tuple) -> None:
        arc_id = construction.arc_ids[key]
        flow[arc_id] = flow.get(arc_id, 0.0) + 1.0

    push(("enter", 1))
    for i in range(1, n + 1):
        branch = "true" if assignment.get(i, True) else "false"
        push((f"{branch}_a", i))
        push((f"{branch}_b", i))
        if i < n:
            push(("link", i))
        else:
            push(("exit", i))
    push(("direct",))
    resource_flow = ResourceFlow(construction.arc_dag, flow)
    resource_flow.validate()
    return resource_flow


def minresource_gap() -> Dict[str, float]:
    """The inapproximability gap claimed by Theorem 4.4.

    Yes-instances of the full construction achieve the target makespan with
    2 units of resource; no-instances need at least 3, so no polynomial-time
    algorithm can approximate the minimum resource within a factor below
    ``3/2`` unless P = NP.  The full clause chain is not reconstructed here
    (see the module docstring); this record is what the Table 1 benchmark
    reports for that row.
    """
    return {"yes_resource": 2.0, "no_resource": 3.0, "ratio": 1.5}
