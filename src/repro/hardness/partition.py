"""Section 4.3: weak NP-hardness on bounded-treewidth DAGs, via Partition.

The paper reduces Partition to the tradeoff problem on a DAG whose
underlying undirected graph has constant treewidth (Theorem 4.6,
Figures 15-16).  The construction forces ``s_i`` units of resource through
the gadget of element ``i``; those units then choose to expedite either the
"top" or the "bottom" choice arc of that element (encoding which side of
the partition the element joins) before being funnelled into a collector
vertex ``v0`` so they cannot be reused by later elements.  The makespan is
the longer of the two chains of unexpedited choice arcs, so makespan
``B/2`` (with ``B = sum(s_i)``) is achievable with budget ``B`` iff the
multiset can be partitioned into two halves of equal sum.

The exact wiring of Figure 15 is not included in the paper text; the gadget
below is a reconstruction that satisfies every property the proof uses
(forced supply, exclusive choice, per-element drain, two accumulating
chains, bounded treewidth).  Its correctness is verified empirically against
the exact solvers in the tests and the hardness benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from repro.core.arcdag import ArcDAG
from repro.core.duration import ConstantDuration, GeneralStepDuration
from repro.core.flow import ResourceFlow
from repro.utils.validation import check_positive, require

__all__ = ["PartitionInstance", "PartitionConstruction", "build_partition_dag",
           "construct_partition_flow"]


@dataclass(frozen=True)
class PartitionInstance:
    """A Partition instance: positive integers to split into two equal-sum halves."""

    values: Tuple[int, ...]

    def __post_init__(self) -> None:
        require(len(self.values) >= 1, "Partition needs at least one value")
        for v in self.values:
            check_positive(v, "partition value")

    @property
    def total(self) -> int:
        return int(sum(self.values))

    @property
    def half(self) -> float:
        return self.total / 2.0

    def solve_brute_force(self) -> Optional[Set[int]]:
        """Indices of one half of an equal-sum partition, or ``None``."""
        if self.total % 2 == 1:
            return None
        target = self.total // 2
        n = len(self.values)
        for mask in range(1 << n):
            subset = {i for i in range(n) if mask >> i & 1}
            if sum(self.values[i] for i in subset) == target:
                return subset
        return None

    def is_partitionable(self) -> bool:
        return self.solve_brute_force() is not None


@dataclass
class PartitionConstruction:
    """The reduced DAG and its verification metadata.

    Attributes
    ----------
    instance:
        The Partition instance.
    arc_dag:
        The reduced activity-on-arc DAG.
    budget:
        Total resource ``B = sum(s_i)``.
    target_makespan:
        ``B / 2`` -- achievable iff the instance is partitionable.
    big_m:
        The "must route resource here" penalty duration (``> B/2``).
    arc_ids:
        Named arcs for witness-flow construction.
    """

    instance: PartitionInstance
    arc_dag: ArcDAG
    budget: float
    target_makespan: float
    big_m: float
    arc_ids: Dict[Tuple, str] = field(default_factory=dict)


def build_partition_dag(instance: PartitionInstance) -> PartitionConstruction:
    """Build the Section 4.3 reduction for ``instance``.

    Per element ``i`` (value ``s_i``) the gadget has:

    * a supply arc ``(s, A_i)`` with ``{<0, M>, <s_i, 0>}`` forcing ``s_i``
      units into the gadget;
    * entry arcs ``A_i -> TP_{i-1}`` and ``A_i -> BT_{i-1}`` (duration 0)
      delivering those units to the chain vertices just before the element's
      choice arcs;
    * choice arcs ``(TP_{i-1}, TP_i)`` and ``(BT_{i-1}, BT_i)``, each with
      ``{<0, s_i>, <s_i, 0>}`` -- whichever chain the units traverse has its
      arc expedited, the other contributes ``s_i`` to the makespan;
    * drain arcs ``TP_i -> F_i`` and ``BT_i -> F_i`` (duration 0) plus
      ``(F_i, v0)`` with ``{<0, M>, <s_i, 0>}`` -- the units must leave the
      chains right after the choice arc, so they cannot expedite later
      elements.

    The two chains start at a common vertex fed from the source and end in
    the sink; the collector ``v0`` drains into the sink.
    """
    dag = ArcDAG(source="s", sink="t")
    values = instance.values
    big_m = float(instance.total + 1)
    construction = PartitionConstruction(
        instance=instance,
        arc_dag=dag,
        budget=float(instance.total),
        target_makespan=instance.half,
        big_m=big_m,
    )

    def add(key: Tuple, tail, head, duration, dummy=False) -> str:
        arc = dag.add_arc(tail, head, duration, is_dummy=dummy,
                          arc_id="::".join(map(str, key)))
        construction.arc_ids[key] = arc.arc_id
        return arc.arc_id

    n = len(values)
    add(("chain", "start_top"), "s", ("TP", 0), ConstantDuration(0.0), dummy=True)
    add(("chain", "start_bot"), "s", ("BT", 0), ConstantDuration(0.0), dummy=True)
    for i, s_i in enumerate(values, start=1):
        forced = GeneralStepDuration([(0, big_m), (s_i, 0.0)])
        choice = GeneralStepDuration([(0, float(s_i)), (s_i, 0.0)])
        add(("supply", i), "s", ("A", i), forced)
        add(("deliver_top", i), ("A", i), ("TP", i - 1), ConstantDuration(0.0), dummy=True)
        add(("deliver_bot", i), ("A", i), ("BT", i - 1), ConstantDuration(0.0), dummy=True)
        add(("choice_top", i), ("TP", i - 1), ("TP", i), choice)
        add(("choice_bot", i), ("BT", i - 1), ("BT", i), choice)
        add(("drain_top", i), ("TP", i), ("F", i), ConstantDuration(0.0), dummy=True)
        add(("drain_bot", i), ("BT", i), ("F", i), ConstantDuration(0.0), dummy=True)
        add(("drain", i), ("F", i), "v0", forced)
    add(("chain", "end_top"), ("TP", n), "t", ConstantDuration(0.0), dummy=True)
    add(("chain", "end_bot"), ("BT", n), "t", ConstantDuration(0.0), dummy=True)
    add(("collector",), "v0", "t", ConstantDuration(0.0), dummy=True)

    dag.validate()
    return construction


def construct_partition_flow(construction: PartitionConstruction,
                             top_half: Set[int]) -> ResourceFlow:
    """Witness flow for a given partition (forward direction of Theorem 4.6).

    ``top_half`` contains the 0-based indices of the elements whose ``s_i``
    units expedite the *top* choice arc; the remaining elements expedite the
    bottom one.  The resulting flow uses exactly ``B`` units; its makespan is
    ``max(sum bottom, sum top)``, which equals ``B/2`` iff the two halves
    balance.
    """
    values = construction.instance.values
    flow: Dict[str, float] = {}

    def push(key: Tuple, amount: float) -> None:
        arc_id = construction.arc_ids[key]
        flow[arc_id] = flow.get(arc_id, 0.0) + amount

    for i, s_i in enumerate(values, start=1):
        side = "top" if (i - 1) in top_half else "bot"
        push(("supply", i), float(s_i))
        push((f"deliver_{side}", i), float(s_i))
        push((f"choice_{side}", i), float(s_i))
        push((f"drain_{side}", i), float(s_i))
        push(("drain", i), float(s_i))
    push(("collector",), float(construction.instance.total))

    resource_flow = ResourceFlow(construction.arc_dag, flow)
    resource_flow.validate()
    return resource_flow
