"""1-in-3SAT instances (the source problem of the Section 4 reductions).

An instance has ``n`` boolean variables and ``m`` clauses of exactly three
literals; it is a *yes* instance iff some assignment makes **exactly one**
literal true in every clause (Schaefer's 1-in-3SAT, strongly NP-hard).

Literals are integers: ``+i`` for variable ``i`` (1-based), ``-i`` for its
negation.  The module provides a brute-force satisfiability oracle (used to
verify the reductions on small formulas), generators for random and
structured instances, and the running example of Figure 9,
``(V1 or not V2 or V3) and (not V1 or V2 or V3)``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.utils.validation import check_positive, require

__all__ = ["OneInThreeSatInstance", "figure9_formula", "random_one_in_three_sat",
           "satisfiable_one_in_three_sat"]

Clause = Tuple[int, int, int]
Assignment = Dict[int, bool]


@dataclass(frozen=True)
class OneInThreeSatInstance:
    """A 1-in-3SAT formula.

    Attributes
    ----------
    num_variables:
        Number of boolean variables (named ``1 .. num_variables``).
    clauses:
        Tuples of three non-zero literals.
    """

    num_variables: int
    clauses: Tuple[Clause, ...]

    def __post_init__(self) -> None:
        check_positive(self.num_variables, "num_variables")
        for clause in self.clauses:
            require(len(clause) == 3, f"clause {clause!r} must have exactly three literals")
            for lit in clause:
                require(lit != 0, "literal 0 is not allowed")
                require(abs(lit) <= self.num_variables,
                        f"literal {lit} references an unknown variable")

    # ------------------------------------------------------------------
    @property
    def num_clauses(self) -> int:
        return len(self.clauses)

    def literal_true(self, literal: int, assignment: Assignment) -> bool:
        value = assignment[abs(literal)]
        return value if literal > 0 else not value

    def clause_true_count(self, clause: Clause, assignment: Assignment) -> int:
        """Number of true literals of ``clause`` under ``assignment``."""
        return sum(1 for lit in clause if self.literal_true(lit, assignment))

    def is_one_in_three_satisfying(self, assignment: Assignment) -> bool:
        """Whether every clause has exactly one true literal."""
        return all(self.clause_true_count(c, assignment) == 1 for c in self.clauses)

    def all_assignments(self) -> Iterable[Assignment]:
        """Iterate over all ``2^n`` assignments (small ``n`` only)."""
        for bits in itertools.product([False, True], repeat=self.num_variables):
            yield {i + 1: bits[i] for i in range(self.num_variables)}

    def solve_brute_force(self) -> Optional[Assignment]:
        """Return a 1-in-3 satisfying assignment, or ``None`` if none exists."""
        for assignment in self.all_assignments():
            if self.is_one_in_three_satisfying(assignment):
                return assignment
        return None

    def is_satisfiable(self) -> bool:
        return self.solve_brute_force() is not None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"OneInThreeSatInstance(n={self.num_variables}, "
                f"m={self.num_clauses})")


def figure9_formula() -> OneInThreeSatInstance:
    """The Figure 9 running example ``(V1 ∨ ¬V2 ∨ V3) ∧ (¬V1 ∨ V2 ∨ V3)``.

    The paper states it is 1-in-3 satisfiable with
    ``V1 = TRUE, V2 = TRUE, V3 = FALSE``.
    """
    return OneInThreeSatInstance(3, ((1, -2, 3), (-1, 2, 3)))


def random_one_in_three_sat(num_variables: int, num_clauses: int,
                            seed: int = 0) -> OneInThreeSatInstance:
    """A uniformly random 1-in-3SAT formula (may or may not be satisfiable)."""
    check_positive(num_variables, "num_variables")
    check_positive(num_clauses, "num_clauses")
    require(num_variables >= 3, "need at least three variables to build 3-literal clauses")
    rng = np.random.default_rng(seed)
    clauses: List[Clause] = []
    for _ in range(num_clauses):
        vars_ = rng.choice(np.arange(1, num_variables + 1), size=3, replace=False)
        signs = rng.choice([-1, 1], size=3)
        clauses.append(tuple(int(v) * int(s) for v, s in zip(vars_, signs)))
    return OneInThreeSatInstance(num_variables, tuple(clauses))


def satisfiable_one_in_three_sat(num_variables: int, num_clauses: int,
                                 seed: int = 0) -> Tuple[OneInThreeSatInstance, Assignment]:
    """A random formula *planted* to be 1-in-3 satisfiable, with its witness.

    A random assignment is drawn first and every clause is built so that
    exactly one of its literals is true under it.
    """
    check_positive(num_variables, "num_variables")
    check_positive(num_clauses, "num_clauses")
    require(num_variables >= 3, "need at least three variables to build 3-literal clauses")
    rng = np.random.default_rng(seed)
    assignment = {i + 1: bool(rng.integers(0, 2)) for i in range(num_variables)}
    clauses: List[Clause] = []
    for _ in range(num_clauses):
        vars_ = [int(v) for v in rng.choice(np.arange(1, num_variables + 1), size=3, replace=False)]
        true_pos = int(rng.integers(0, 3))
        clause: List[int] = []
        for pos, var in enumerate(vars_):
            value = assignment[var]
            if pos == true_pos:
                clause.append(var if value else -var)      # literal true
            else:
                clause.append(-var if value else var)       # literal false
        clauses.append(tuple(clause))
    instance = OneInThreeSatInstance(num_variables, tuple(clauses))
    assert instance.is_one_in_three_satisfying(assignment)
    return instance, assignment
