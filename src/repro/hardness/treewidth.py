"""Tree decompositions for the Section 4.3 construction (Figure 16).

Theorem 4.6 only yields *weak* NP-hardness because the underlying
undirected graph of the Partition construction has bounded treewidth; the
paper exhibits an explicit tree decomposition of width 15 (Figure 16), a
path of bags each holding two consecutive element gadgets plus the two
global vertices.

This module provides:

* :func:`tree_decomposition_is_valid` -- a checker for the three tree-
  decomposition axioms (vertex coverage, edge coverage, connectivity of the
  bags containing each vertex);
* :func:`partition_construction_decomposition` -- the explicit path
  decomposition of our reconstruction of Figure 15, mirroring Figure 16;
* :func:`decomposition_width` -- ``max |bag| - 1``.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Sequence, Set, Tuple

from repro.hardness.partition import PartitionConstruction
from repro.utils.validation import require

__all__ = ["tree_decomposition_is_valid", "decomposition_width",
           "partition_construction_decomposition"]

Bag = Set[Hashable]


def decomposition_width(bags: Sequence[Bag]) -> int:
    """Width of a decomposition: ``max |bag| - 1``."""
    require(len(bags) >= 1, "a tree decomposition needs at least one bag")
    return max(len(bag) for bag in bags) - 1


def tree_decomposition_is_valid(vertices: Iterable[Hashable],
                                edges: Iterable[Tuple[Hashable, Hashable]],
                                bags: Sequence[Bag],
                                tree_edges: Sequence[Tuple[int, int]]) -> bool:
    """Check the three tree-decomposition axioms.

    Parameters
    ----------
    vertices, edges:
        The (undirected) graph being decomposed.
    bags:
        The bags, indexed ``0 .. len(bags) - 1``.
    tree_edges:
        Edges of the decomposition tree over bag indices (must form a tree).

    Returns
    -------
    bool
        ``True`` iff (1) every vertex appears in some bag, (2) every edge has
        both endpoints together in some bag, and (3) for every vertex the
        bags containing it induce a connected subtree.
    """
    vertices = list(vertices)
    edges = [tuple(e) for e in edges]
    n_bags = len(bags)
    # the tree must be connected and acyclic over the bags
    if n_bags == 0:
        return False
    if len(tree_edges) != n_bags - 1:
        return False
    adjacency: Dict[int, List[int]] = {i: [] for i in range(n_bags)}
    for a, b in tree_edges:
        adjacency[a].append(b)
        adjacency[b].append(a)
    seen = {0}
    stack = [0]
    while stack:
        u = stack.pop()
        for w in adjacency[u]:
            if w not in seen:
                seen.add(w)
                stack.append(w)
    if len(seen) != n_bags:
        return False

    # axiom 1: vertex coverage
    covered = set().union(*bags) if bags else set()
    if not set(vertices) <= covered:
        return False
    # axiom 2: edge coverage
    for u, v in edges:
        if not any(u in bag and v in bag for bag in bags):
            return False
    # axiom 3: connectivity of the bags containing each vertex
    for vertex in vertices:
        containing = [i for i, bag in enumerate(bags) if vertex in bag]
        if not containing:
            return False
        reached = {containing[0]}
        stack = [containing[0]]
        containing_set = set(containing)
        while stack:
            u = stack.pop()
            for w in adjacency[u]:
                if w in containing_set and w not in reached:
                    reached.add(w)
                    stack.append(w)
        if reached != containing_set:
            return False
    return True


def partition_construction_decomposition(construction: PartitionConstruction):
    """Explicit path decomposition of the Partition construction.

    Bag ``i`` (1-based over elements) holds the global vertices
    ``{s, t, v0}`` together with the vertices of element gadgets ``i-1`` and
    ``i`` (chain vertices ``TP/BT`` at positions ``i-1`` and ``i``, the
    supply vertex ``A_i`` and the drain vertex ``F_i``) -- the direct
    analogue of Figure 16.  Returns ``(vertices, undirected_edges, bags,
    tree_edges)`` ready for :func:`tree_decomposition_is_valid`.
    """
    dag = construction.arc_dag
    n = len(construction.instance.values)
    vertices = list(dag.vertices)
    edges = [(a.tail, a.head) for a in dag.arcs]

    bags: List[Bag] = []
    for i in range(1, n + 1):
        bag: Bag = {"s", "t", "v0",
                    ("TP", i - 1), ("TP", i), ("BT", i - 1), ("BT", i),
                    ("A", i), ("F", i)}
        if i > 1:
            bag |= {("A", i - 1), ("F", i - 1)}
        bags.append(bag)
    tree_edges = [(i, i + 1) for i in range(len(bags) - 1)]
    return vertices, edges, bags, tree_edges
