"""End-to-end verification of the hardness reductions.

The NP-hardness proofs of Section 4 and Appendix A are *constructive*; this
module executes them.  For small source instances it checks both directions
of the reduction lemmas against the exact solvers:

* :func:`verify_theorem41` -- Lemma 4.2: makespan 1 achievable with budget
  ``n + 2m`` iff the formula is 1-in-3 satisfiable (and the Theorem 4.3 gap:
  the optimum is >= 2 for no-instances);
* :func:`verify_partition_reduction` -- Theorem 4.6: makespan ``B/2``
  achievable with budget ``B`` iff the multiset is partitionable;
* :func:`verify_matching3d_reduction` -- Lemma A.1: makespan ``2M + T``
  achievable with budget ``n^2`` iff the numerical 3DM instance is solvable.

Each verifier returns a small report dataclass rather than asserting, so the
same code can back both the pytest suite and the hardness benchmark.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.core.exact import exact_min_makespan_arcs
from repro.hardness.gadgets_general import build_theorem41_dag, construct_satisfying_flow
from repro.hardness.matching3d import (
    Numerical3DMInstance,
    best_achievable_makespan,
    build_matching3d_dag,
    construct_matching_flow,
)
from repro.hardness.partition import (
    PartitionInstance,
    build_partition_dag,
    construct_partition_flow,
)
from repro.hardness.sat import OneInThreeSatInstance

__all__ = ["ReductionReport", "verify_theorem41", "verify_partition_reduction",
           "verify_matching3d_reduction"]


@dataclass
class ReductionReport:
    """Outcome of verifying one reduction on one source instance.

    Attributes
    ----------
    source_yes:
        Whether the source instance is a yes-instance (via brute force).
    reduced_optimum:
        Exact optimum of the reduced tradeoff instance (makespan, or
        resource for min-resource style checks).
    threshold:
        The yes/no threshold claimed by the reduction lemma.
    forward_witness_ok:
        Whether the constructive witness (built only for yes-instances)
        achieves the threshold.
    agrees:
        Whether the reduction answered the source instance correctly, i.e.
        ``source_yes == (reduced_optimum <= threshold)``.
    """

    source_yes: bool
    reduced_optimum: float
    threshold: float
    forward_witness_ok: Optional[bool]
    agrees: bool


def verify_theorem41(instance: OneInThreeSatInstance,
                     use_exact: bool = True,
                     node_limit: int = 400_000) -> ReductionReport:
    """Verify Lemma 4.2 / Theorem 4.3 on a (small) 1-in-3SAT instance."""
    construction = build_theorem41_dag(instance)
    assignment = instance.solve_brute_force()
    source_yes = assignment is not None

    forward_ok: Optional[bool] = None
    if source_yes:
        witness = construct_satisfying_flow(construction, assignment)
        forward_ok = (
            witness.makespan() <= construction.target_makespan + 1e-9
            and witness.budget_used() <= construction.budget + 1e-9
        )

    if use_exact:
        optimum, _ = exact_min_makespan_arcs(construction.arc_dag, construction.budget,
                                             node_limit=node_limit)
    else:
        optimum = construction.target_makespan if source_yes else math.inf

    agrees = source_yes == (optimum <= construction.target_makespan + 1e-9)
    return ReductionReport(source_yes, optimum, construction.target_makespan, forward_ok, agrees)


def verify_partition_reduction(instance: PartitionInstance,
                               node_limit: int = 400_000) -> ReductionReport:
    """Verify the Section 4.3 reduction on a (small) Partition instance."""
    construction = build_partition_dag(instance)
    subset = instance.solve_brute_force()
    source_yes = subset is not None

    forward_ok: Optional[bool] = None
    if source_yes:
        witness = construct_partition_flow(construction, subset)
        forward_ok = (
            witness.makespan() <= construction.target_makespan + 1e-9
            and witness.budget_used() <= construction.budget + 1e-9
        )

    optimum, _ = exact_min_makespan_arcs(construction.arc_dag, construction.budget,
                                         node_limit=node_limit)
    agrees = source_yes == (optimum <= construction.target_makespan + 1e-9)
    return ReductionReport(source_yes, optimum, construction.target_makespan, forward_ok, agrees)


def verify_matching3d_reduction(instance: Numerical3DMInstance) -> ReductionReport:
    """Verify Lemma A.1 on a (small) numerical 3DM instance.

    The exact optimum of the reduced instance is obtained by enumerating the
    matcher permutations (see
    :func:`repro.hardness.matching3d.best_achievable_makespan`), which is
    exact because every arc of the construction is mandatory.
    """
    construction = build_matching3d_dag(instance)
    matching = instance.solve_brute_force()
    source_yes = matching is not None

    forward_ok: Optional[bool] = None
    if source_yes:
        witness = construct_matching_flow(construction, matching)
        forward_ok = (
            witness.makespan() <= construction.target_makespan + 1e-9
            and witness.budget_used() <= construction.budget + 1e-9
        )

    optimum = best_achievable_makespan(construction)
    agrees = source_yes == (optimum <= construction.target_makespan + 1e-9)
    return ReductionReport(source_yes, optimum, construction.target_makespan, forward_ok, agrees)
