"""Traffic-realism harness for the serving stack.

``repro.loadgen`` replays seeded, deterministic open-loop request
schedules (:mod:`~repro.loadgen.arrivals`) against a live
``python -m repro.serve`` instance (:mod:`~repro.loadgen.client`),
optionally injecting wire-layer faults (:mod:`~repro.loadgen.chaos`),
and folds what the clients saw together with the server's own
``metrics`` counters into one reconciled report
(:mod:`~repro.loadgen.report`).

Run it: ``python -m repro.loadgen --quick`` spins an in-process
unix-socket server and prints the report; point it at an external
server with ``--unix PATH`` or ``--host/--port``.  See
``docs/serving.md`` for the full harness guide.
"""

from repro.loadgen.arrivals import (
    ARRIVAL_PROCESSES,
    Arrival,
    ArrivalSchedule,
    ZipfCells,
    build_schedule,
)
from repro.loadgen.chaos import (
    ChaosConfig,
    malformed_line,
    non_object_line,
    oversized_line,
)
from repro.loadgen.client import LoadClient, RequestOutcome, run_load
from repro.loadgen.report import (
    LoadReport,
    build_report,
    percentile,
    render_report,
)

__all__ = [
    "ARRIVAL_PROCESSES",
    "Arrival",
    "ArrivalSchedule",
    "ChaosConfig",
    "LoadClient",
    "LoadReport",
    "RequestOutcome",
    "ZipfCells",
    "build_report",
    "build_schedule",
    "malformed_line",
    "non_object_line",
    "oversized_line",
    "percentile",
    "render_report",
    "run_load",
]
