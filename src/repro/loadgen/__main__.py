"""``python -m repro.loadgen`` -- run a load test from the command line.

Without a target flag the harness is fully self-contained: it starts an
in-process :class:`~repro.serve.SweepServer` (thread-portfolio service,
temporary store) on a unix socket, replays the schedule against it, and
prints the reconciled report.  Point ``--unix PATH`` or ``--host/--port``
at an already-running ``python -m repro.serve`` to load-test that
instance instead (it must be started with the same scenario universe
semantics -- the harness only sends ``sweep_spec`` and ``metrics`` ops,
so any server build works).

Exit status is 0 only when client-side accounting reconciles with the
server's counters -- the CLI doubles as a smoke-level SLO check::

    python -m repro.loadgen --quick                 # 40 requests, ~1s
    python -m repro.loadgen --requests 500 --process bursty --skew 1.3
    python -m repro.loadgen --chaos --admission-limit 8
    python -m repro.loadgen --unix /tmp/sweep.sock --time-scale 0
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import sys
import tempfile
from typing import List, Optional

from repro.loadgen.arrivals import ARRIVAL_PROCESSES, build_schedule
from repro.loadgen.chaos import ChaosConfig
from repro.loadgen.client import run_load
from repro.loadgen.report import LoadReport, render_report
from repro.scenarios import Axis, ScenarioGrid


def default_grid() -> ScenarioGrid:
    """The CLI's scenario universe: 12 small fork-join cells.

    Small enough that a quick run solves every unique cell in seconds,
    varied enough (width x work x budget tightness) that latency spreads
    and the Zipf skew has distinct cells to concentrate on.
    """
    return ScenarioGrid(
        generators=({"generator": "fork-join",
                     "params": {"width": Axis([2, 3, 4]),
                                "work": Axis([4, 8])}},),
        budget_rules=(("makespan-factor", 0.5), ("makespan-factor", 0.75)),
    )


async def _run(args: argparse.Namespace) -> LoadReport:
    grid = default_grid()
    schedule = build_schedule(args.process, rate=args.rate,
                              count=args.requests,
                              num_cells=grid.size(), skew=args.skew,
                              seed=args.seed)
    chaos = None
    if args.chaos:
        chaos = ChaosConfig(malformed_every=7, oversize_every=11,
                            disconnect_every=13,
                            oversize_bytes=(1 << 16) + 512)
    external = args.unix or args.port
    if external:
        return await run_load(
            schedule, grid, host=args.host, port=args.port,
            unix_socket=args.unix, connections=args.connections,
            time_scale=args.time_scale, chaos=chaos)

    from repro.engine.async_service import AsyncSweepService
    from repro.engine.portfolio import Portfolio
    from repro.serve import SweepServer

    with tempfile.TemporaryDirectory(prefix="loadgen-") as tmp:
        socket_path = f"{tmp}/sweep.sock"
        async with AsyncSweepService(
                store=f"{tmp}/store",
                portfolio=Portfolio(executor="thread", max_workers=2)) \
                as service:
            server_kwargs = {}
            if args.chaos:
                # keep the injected oversized line actually oversized
                server_kwargs["max_line_bytes"] = 1 << 16
            if args.admission_limit:
                server_kwargs["admission_limit"] = args.admission_limit
            async with SweepServer(service, unix_socket=socket_path,
                                   **server_kwargs):
                return await run_load(
                    schedule, grid, unix_socket=socket_path,
                    connections=args.connections,
                    time_scale=args.time_scale, chaos=chaos)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.loadgen",
        description="Replay a seeded open-loop request schedule against a "
                    "SweepServer and print the reconciled SLO report.")
    parser.add_argument("--quick", action="store_true",
                        help="small fast run (40 requests, time-scale 0)")
    parser.add_argument("--requests", type=int, default=200,
                        help="number of arrivals to replay (default 200)")
    parser.add_argument("--rate", type=float, default=50.0,
                        help="mean arrival rate, requests/s (default 50)")
    parser.add_argument("--process", default="poisson",
                        choices=sorted(ARRIVAL_PROCESSES),
                        help="arrival process (default poisson)")
    parser.add_argument("--skew", type=float, default=1.1,
                        help="Zipf hot-key skew over cells (0 = uniform)")
    parser.add_argument("--seed", type=int, default=0,
                        help="schedule seed (same seed -> same schedule)")
    parser.add_argument("--connections", type=int, default=4,
                        help="persistent client connections (default 4)")
    parser.add_argument("--time-scale", type=float, default=None,
                        help="multiply scheduled times (0 = fire "
                             "as fast as possible; default 1.0)")
    parser.add_argument("--chaos", action="store_true",
                        help="inject wire faults (malformed/oversized/"
                             "disconnect) on a deterministic cadence")
    parser.add_argument("--admission-limit", type=int, default=None,
                        help="in-process server admission limit "
                             "(provokes rejections under load)")
    parser.add_argument("--host", default="127.0.0.1",
                        help="external server host (with --port)")
    parser.add_argument("--port", type=int, default=None,
                        help="load an external TCP server instead of "
                             "spinning one up")
    parser.add_argument("--unix", default=None, metavar="PATH",
                        help="load an external unix-socket server")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="also write the full report JSON to PATH")
    args = parser.parse_args(argv)
    if args.quick:
        args.requests = min(args.requests, 40)
        if args.time_scale is None:
            args.time_scale = 0.0
    if args.time_scale is None:
        args.time_scale = 1.0

    report = asyncio.run(_run(args))
    print(render_report(report))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(report.to_json())
            handle.write("\n")
        print(f"\nwrote {args.json}")
    return 0 if not report.reconcile() else 1


if __name__ == "__main__":
    with contextlib.suppress(KeyboardInterrupt):
        sys.exit(main())
